// Section 8.4: update performance — a single current-record update, a
// simulated daily update batch, and the (occasional) segment-archiving
// event, on ArchIS versus the native XML database's document-level update.
//
// Paper shape: single update 0.29s on ArchIS vs 1.2s on Tamino; daily
// batch 1.52s vs 15s; the freeze (archiving a full segment) is much more
// expensive but happens once per segment.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "archis/checkpoint.h"
#include "bench_common.h"

namespace archis::bench {
namespace {

// A fresh, smaller system per measurement: updates mutate state, so we
// rebuild outside the timed region.
BuildOptions SmallOpts(bool with_tamino) {
  BuildOptions o;
  o.base_employees = 60;
  o.years = 8;
  o.with_tamino = with_tamino;
  return o;
}

void BM_ArchISSingleUpdate(benchmark::State& state) {
  static Systems sys = BuildSystems(SmallOpts(false));
  int64_t salary = 90000;
  for (auto _ : state) {
    state.PauseTiming();
    auto now = sys.archis->Now().AddDays(1);
    if (!sys.archis->AdvanceClock(now).ok()) {
      state.SkipWithError("clock");
      return;
    }
    auto snap = sys.archis->Snapshot("employees", now);
    minirel::Tuple row = (*snap)[0];
    row.at(2) = minirel::Value(++salary);
    state.ResumeTiming();
    Status st = sys.archis->Update("employees", {row.at(0)}, row);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("one salary update, trigger-captured");
}

void BM_TaminoSingleUpdate(benchmark::State& state) {
  // Document-level update: materialise, mutate, re-store (what a native XML
  // DB without node-level updates does).
  static Systems sys = BuildSystems(SmallOpts(true));
  int64_t salary = 90000;
  for (auto _ : state) {
    Status st = sys.tamino->UpdateDocument(
        "employees.xml", [&](const xml::XmlNodePtr& root) -> Status {
          auto emp = root->ChildElements().front();
          auto salaries = emp->ChildrenNamed("salary");
          if (salaries.empty()) return Status::NotFound("no salary");
          salaries.back()->SetAttr("tend", "2002-12-31");
          auto fresh = xml::XmlNode::Element("salary");
          fresh->SetAttr("tstart", "2003-01-01");
          fresh->SetAttr("tend", "9999-12-31");
          fresh->AppendText(std::to_string(++salary));
          emp->AppendChild(std::move(fresh));
          return Status::OK();
        });
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("document-level update on native XML DB");
}

void BM_ArchISDailyUpdate(benchmark::State& state) {
  // A private system whose workload driver retains the employee state, so
  // SimulateDay can keep appending days.
  static core::ArchIS db(core::ArchISOptions{}, Date::FromYmd(1985, 1, 1));
  static workload::EmployeeWorkload driver([] {
    workload::WorkloadConfig cfg;
    cfg.initial_employees = 60;
    cfg.years = 8;
    return cfg;
  }());
  static bool primed = driver.Generate(&db).ok();
  if (!primed) {
    state.SkipWithError("prime failed");
    return;
  }
  uint64_t updates = 0;
  for (auto _ : state) {
    auto stats = driver.SimulateDay(&db);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    updates += stats.ok() ? stats->updates : 0;
  }
  state.counters["updates_applied"] = static_cast<double>(updates);
  state.SetLabel("one simulated day of updates");
}

void BM_SegmentFreeze(benchmark::State& state) {
  // Cost of the once-per-segment archiving event (optionally compressed).
  const bool compress = state.range(0) == 1;
  for (auto _ : state) {
    state.PauseTiming();
    BuildOptions o = SmallOpts(false);
    o.compress = compress;
    Systems sys = BuildSystems(o);
    state.ResumeTiming();
    Status st = sys.archis->FreezeAll();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel(compress ? "freeze all live segments + BlockZIP"
                          : "freeze all live segments");
}

void BM_CommitBatch(benchmark::State& state) {
  // The transactional write path end to end: each iteration commits one
  // explicit transaction of `batch` updates through the WAL (append +
  // fsync + archive), so the group of sizes shows how commit cost
  // amortises over the batch.
  const int batch = static_cast<int>(state.range(0));
  const std::string wal_path =
      (std::filesystem::temp_directory_path() / "bench_commit.wal").string();
  std::remove(wal_path.c_str());
  core::ArchISOptions opts;
  opts.wal.path = wal_path;
  auto db = core::ArchIS::Open(opts, Date::FromYmd(2000, 1, 1));
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  constexpr int kRows = 64;
  core::RelationSpec spec;
  spec.name = "employees";
  spec.schema = minirel::Schema({{"id", minirel::DataType::kInt64},
                                 {"name", minirel::DataType::kString},
                                 {"salary", minirel::DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "employees.xml";
  if (!(*db)->CreateRelation(spec).ok()) {
    state.SkipWithError("create");
    return;
  }
  for (int64_t id = 1; id <= kRows; ++id) {
    minirel::Tuple row{minirel::Value(id), minirel::Value("emp"),
                       minirel::Value(int64_t{50000})};
    if (!(*db)->Insert("employees", row).ok()) {
      state.SkipWithError("prime");
      return;
    }
  }
  int64_t salary = 50000;
  for (auto _ : state) {
    auto begun = (*db)->Begin();
    if (!begun.ok()) {
      state.SkipWithError(begun.status().ToString().c_str());
      return;
    }
    core::Transaction txn = std::move(*begun);
    for (int i = 0; i < batch; ++i) {
      const int64_t id = i % kRows + 1;
      minirel::Tuple row{minirel::Value(id), minirel::Value("emp"),
                         minirel::Value(++salary)};
      if (!txn.Update("employees", {minirel::Value(id)}, row).ok()) {
        state.SkipWithError("update");
        return;
      }
    }
    Status st = txn.Commit();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["wal_bytes"] =
      static_cast<double>((*db)->wal()->bytes_written());
  state.counters["wal_syncs"] =
      static_cast<double>((*db)->wal()->sync_count());
  db->reset();
  std::remove(wal_path.c_str());
  state.SetLabel("durable batched commit (WAL append + fsync + archive)");
}

void BM_RecoveryReplay(benchmark::State& state) {
  // Recovery-time-vs-WAL-size ablation (DESIGN.md §10): `txns` committed
  // transactions accumulate in the log; with checkpointing enabled a
  // quiesced Checkpoint() runs after them, so the timed Open replays only
  // the fixed post-checkpoint suffix instead of the whole history. The
  // wal_replayed_bytes counter is the receipt: it grows with `txns` in the
  // no-checkpoint rows and stays flat in the checkpointed ones.
  const int txns = static_cast<int>(state.range(0));
  const bool checkpointed = state.range(1) == 1;
  constexpr int kSuffixTxns = 4;
  constexpr int kRows = 64;
  const std::string wal_path =
      (std::filesystem::temp_directory_path() / "bench_recovery.wal")
          .string();
  core::ArchISOptions opts;
  opts.wal.path = wal_path;
  opts.wal.sync = false;  // measuring replay, not the build-up fsyncs
  uint64_t replayed_bytes = 0;
  uint64_t log_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(wal_path.c_str());
    std::remove(core::CheckpointPath(wal_path).c_str());
    std::remove(core::CheckpointPrevPath(wal_path).c_str());
    {
      auto db = core::ArchIS::Open(opts, Date::FromYmd(2000, 1, 1));
      if (!db.ok()) {
        state.SkipWithError(db.status().ToString().c_str());
        return;
      }
      core::RelationSpec spec;
      spec.name = "employees";
      spec.schema = minirel::Schema({{"id", minirel::DataType::kInt64},
                                     {"name", minirel::DataType::kString},
                                     {"salary", minirel::DataType::kInt64}});
      spec.key_columns = {"id"};
      spec.doc_name = "employees.xml";
      bool ok = (*db)->CreateRelation(spec).ok();
      for (int64_t id = 1; ok && id <= kRows; ++id) {
        ok = (*db)
                 ->Insert("employees",
                          minirel::Tuple{minirel::Value(id),
                                         minirel::Value("emp"),
                                         minirel::Value(int64_t{50000})})
                 .ok();
      }
      int64_t salary = 50000;
      auto commit_one = [&](int i) {
        auto begun = (*db)->Begin();
        if (!begun.ok()) return false;
        core::Transaction txn = std::move(*begun);
        const int64_t id = i % kRows + 1;
        minirel::Tuple row{minirel::Value(id), minirel::Value("emp"),
                           minirel::Value(++salary)};
        return txn.Update("employees", {minirel::Value(id)}, row).ok() &&
               txn.Commit().ok();
      };
      for (int i = 0; ok && i < txns; ++i) ok = commit_one(i);
      if (ok && checkpointed) ok = (*db)->Checkpoint().ok();
      for (int i = 0; ok && i < kSuffixTxns; ++i) ok = commit_one(txns + i);
      if (!ok) {
        state.SkipWithError("workload build-up failed");
        return;
      }
      log_bytes = (*db)->wal()->end_offset();
      db->reset();
    }
    state.ResumeTiming();
    auto recovered = core::ArchIS::Open(opts, Date::FromYmd(2000, 1, 1));
    if (!recovered.ok()) {
      state.SkipWithError(recovered.status().ToString().c_str());
      return;
    }
    state.PauseTiming();
    replayed_bytes = (*recovered)->last_recovery_replayed_bytes();
    recovered->reset();
    state.ResumeTiming();
  }
  std::remove(wal_path.c_str());
  std::remove(core::CheckpointPath(wal_path).c_str());
  std::remove(core::CheckpointPrevPath(wal_path).c_str());
  state.counters["wal_bytes"] = static_cast<double>(log_bytes);
  state.counters["wal_replayed_bytes"] = static_cast<double>(replayed_bytes);
  state.SetLabel(checkpointed
                     ? "Open after checkpoint: replay = post-ckpt suffix"
                     : "Open without checkpoint: replay = full history");
}

BENCHMARK(BM_ArchISSingleUpdate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CommitBatch)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TaminoSingleUpdate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ArchISDailyUpdate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SegmentFreeze)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RecoveryReplay)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Section 8.4: update performance ==\n");
  printf("Paper shape: ArchIS updates only touch the live segment and are\n"
         "several times faster than document-level updates on the native\n"
         "XML DB (0.29s vs 1.2s single; 1.52s vs 15s daily); the segment\n"
         "freeze is costly but amortised once per segment.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
