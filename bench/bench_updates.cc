// Section 8.4: update performance — a single current-record update, a
// simulated daily update batch, and the (occasional) segment-archiving
// event, on ArchIS versus the native XML database's document-level update.
//
// Paper shape: single update 0.29s on ArchIS vs 1.2s on Tamino; daily
// batch 1.52s vs 15s; the freeze (archiving a full segment) is much more
// expensive but happens once per segment.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace archis::bench {
namespace {

// A fresh, smaller system per measurement: updates mutate state, so we
// rebuild outside the timed region.
BuildOptions SmallOpts(bool with_tamino) {
  BuildOptions o;
  o.base_employees = 60;
  o.years = 8;
  o.with_tamino = with_tamino;
  return o;
}

void BM_ArchISSingleUpdate(benchmark::State& state) {
  static Systems sys = BuildSystems(SmallOpts(false));
  int64_t salary = 90000;
  for (auto _ : state) {
    state.PauseTiming();
    auto now = sys.archis->Now().AddDays(1);
    if (!sys.archis->AdvanceClock(now).ok()) {
      state.SkipWithError("clock");
      return;
    }
    auto snap = sys.archis->Snapshot("employees", now);
    minirel::Tuple row = (*snap)[0];
    row.at(2) = minirel::Value(++salary);
    state.ResumeTiming();
    Status st = sys.archis->Update("employees", {row.at(0)}, row);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("one salary update, trigger-captured");
}

void BM_TaminoSingleUpdate(benchmark::State& state) {
  // Document-level update: materialise, mutate, re-store (what a native XML
  // DB without node-level updates does).
  static Systems sys = BuildSystems(SmallOpts(true));
  int64_t salary = 90000;
  for (auto _ : state) {
    Status st = sys.tamino->UpdateDocument(
        "employees.xml", [&](const xml::XmlNodePtr& root) -> Status {
          auto emp = root->ChildElements().front();
          auto salaries = emp->ChildrenNamed("salary");
          if (salaries.empty()) return Status::NotFound("no salary");
          salaries.back()->SetAttr("tend", "2002-12-31");
          auto fresh = xml::XmlNode::Element("salary");
          fresh->SetAttr("tstart", "2003-01-01");
          fresh->SetAttr("tend", "9999-12-31");
          fresh->AppendText(std::to_string(++salary));
          emp->AppendChild(std::move(fresh));
          return Status::OK();
        });
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("document-level update on native XML DB");
}

void BM_ArchISDailyUpdate(benchmark::State& state) {
  // A private system whose workload driver retains the employee state, so
  // SimulateDay can keep appending days.
  static core::ArchIS db(core::ArchISOptions{}, Date::FromYmd(1985, 1, 1));
  static workload::EmployeeWorkload driver([] {
    workload::WorkloadConfig cfg;
    cfg.initial_employees = 60;
    cfg.years = 8;
    return cfg;
  }());
  static bool primed = driver.Generate(&db).ok();
  if (!primed) {
    state.SkipWithError("prime failed");
    return;
  }
  uint64_t updates = 0;
  for (auto _ : state) {
    auto stats = driver.SimulateDay(&db);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    updates += stats.ok() ? stats->updates : 0;
  }
  state.counters["updates_applied"] = static_cast<double>(updates);
  state.SetLabel("one simulated day of updates");
}

void BM_SegmentFreeze(benchmark::State& state) {
  // Cost of the once-per-segment archiving event (optionally compressed).
  const bool compress = state.range(0) == 1;
  for (auto _ : state) {
    state.PauseTiming();
    BuildOptions o = SmallOpts(false);
    o.compress = compress;
    Systems sys = BuildSystems(o);
    state.ResumeTiming();
    Status st = sys.archis->FreezeAll();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel(compress ? "freeze all live segments + BlockZIP"
                          : "freeze all live segments");
}

BENCHMARK(BM_ArchISSingleUpdate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TaminoSingleUpdate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ArchISDailyUpdate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SegmentFreeze)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Section 8.4: update performance ==\n");
  printf("Paper shape: ArchIS updates only touch the live segment and are\n"
         "several times faster than document-level updates on the native\n"
         "XML DB (0.29s vs 1.2s single; 1.52s vs 15s daily); the segment\n"
         "freeze is costly but amortised once per segment.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
