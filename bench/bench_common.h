// Shared fixtures for the benchmark suite: the three systems of the paper's
// Section 7 (TaminoLite native XML DB, ArchIS with segment clustering,
// ArchIS variants), the generated temporal employee dataset, and the six
// Table 3 queries in both XQuery (native) and prepared SQL/XML plan form.
#ifndef ARCHIS_BENCH_BENCH_COMMON_H_
#define ARCHIS_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "archis/archis.h"
#include "workload/employee_workload.h"
#include "xml/serializer.h"
#include "xmldb/xml_database.h"

namespace archis::bench {

/// One fully-loaded system-under-test bundle.
struct Systems {
  std::unique_ptr<core::ArchIS> archis;  ///< the configured ArchIS instance
  std::unique_ptr<xmldb::XmlDatabase> tamino;  ///< native XML DB baseline
  workload::WorkloadConfig config;
  int64_t probe_id = 0;
  Date snapshot_date;            ///< mid-history date for Q1/Q2
  TimeInterval slice;            ///< one-year window for Q5
  Date join_after;               ///< start date for Q6's 2-year window
  uint64_t hdoc_bytes = 0;       ///< serialized H-document size
};

/// Configuration for BuildSystems.
struct BuildOptions {
  bool segment_clustering = true;
  bool compress = false;
  double umin = 0.4;
  int scale = 1;                  ///< multiplies the employee population
  bool with_tamino = true;
  bool tamino_compressed = true;
  int years = 17;
  int base_employees = 120;
  int scan_threads = 1;           ///< parallel frozen-segment scan workers
  uint64_t block_cache_bytes = 16ull << 20;  ///< 0 disables the block cache
};

/// Generates the workload into a fresh ArchIS (and TaminoLite fed from the
/// published H-documents). Deterministic per options.
inline Systems BuildSystems(const BuildOptions& opts) {
  Systems sys;
  core::ArchISOptions aopts;
  aopts.segment.enabled = opts.segment_clustering;
  aopts.segment.compress = opts.compress;
  aopts.segment.umin = opts.umin;
  aopts.segment.scan_threads = opts.scan_threads;
  aopts.segment.block_cache_bytes = opts.block_cache_bytes;
  sys.archis = std::make_unique<core::ArchIS>(aopts,
                                              Date::FromYmd(1985, 1, 1));
  sys.config.initial_employees = opts.base_employees * opts.scale;
  sys.config.years = opts.years;
  workload::EmployeeWorkload wl(sys.config);
  auto stats = wl.Generate(sys.archis.get());
  if (!stats.ok()) {
    fprintf(stderr, "workload generation failed: %s\n",
            stats.status().ToString().c_str());
    abort();
  }
  sys.probe_id = wl.probe_id();
  sys.snapshot_date = Date::FromYmd(1993, 5, 16);  // Table 3's 05/16/1993
  sys.slice = TimeInterval(Date::FromYmd(1993, 5, 16),
                           Date::FromYmd(1994, 5, 16));
  sys.join_after = Date::FromYmd(1998, 4, 1);

  if (opts.with_tamino) {
    sys.tamino = std::make_unique<xmldb::XmlDatabase>(
        opts.tamino_compressed ? xmldb::StorageMode::kCompressed
                               : xmldb::StorageMode::kNative,
        sys.archis->Now());
    for (const char* rel : {"employees", "depts"}) {
      auto doc = sys.archis->PublishHistory(rel);
      if (!doc.ok()) abort();
      if (rel == std::string("employees")) {
        sys.hdoc_bytes = xml::Serialize(*doc).size();
      }
      if (!sys.tamino->PutDocument(std::string(rel) + ".xml", *doc).ok()) {
        abort();
      }
    }
  }
  return sys;
}

// ---------------------------------------------------------------------------
// The six queries of Table 3, as XQuery (native path).
// ---------------------------------------------------------------------------

inline std::string XqQ1(const Systems& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "for $s in doc(\"employees.xml\")/employees/"
                "employee[id=%lld]/salary[tstart(.) <= xs:date(\"%s\") and "
                "tend(.) >= xs:date(\"%s\")] return $s",
                static_cast<long long>(s.probe_id),
                s.snapshot_date.ToString().c_str(),
                s.snapshot_date.ToString().c_str());
  return buf;
}

inline std::string XqQ2(const Systems& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "avg(doc(\"employees.xml\")/employees/employee/"
                "salary[tstart(.) <= xs:date(\"%s\") and "
                "tend(.) >= xs:date(\"%s\")])",
                s.snapshot_date.ToString().c_str(),
                s.snapshot_date.ToString().c_str());
  return buf;
}

inline std::string XqQ3(const Systems& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "for $s in doc(\"employees.xml\")/employees/"
                "employee[id=%lld]/salary return $s",
                static_cast<long long>(s.probe_id));
  return buf;
}

inline std::string XqQ4(const Systems&) {
  return "count(doc(\"employees.xml\")/employees/employee/salary)";
}

inline std::string XqQ5(const Systems& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "count(for $e in doc(\"employees.xml\")/employees/employee "
                "where exists($e/salary[. > 60000 and "
                "tstart(.) <= xs:date(\"%s\") and "
                "tend(.) >= xs:date(\"%s\")]) return $e)",
                s.slice.tend.ToString().c_str(),
                s.slice.tstart.ToString().c_str());
  return buf;
}

inline std::string XqQ6(const Systems& s) {
  char buf[700];
  std::snprintf(
      buf, sizeof(buf),
      "max(for $e in doc(\"employees.xml\")/employees/employee "
      "for $s1 in $e/salary for $s2 in $e/salary "
      "where tstart($s1) >= xs:date(\"%s\") and "
      "tstart($s2) > tstart($s1) and "
      "tstart($s2) <= tstart($s1) + 730 "
      "return number($s2) - number($s1))",
      s.join_after.ToString().c_str());
  return buf;
}

// ---------------------------------------------------------------------------
// The six queries as prepared SQL/XML plans (translated path).
// ---------------------------------------------------------------------------

inline core::SqlXmlPlan PlanQ1(const Systems& s) {
  core::SqlXmlPlan plan;
  core::PlanVar v;
  v.relation = "employees";
  v.attribute = "salary";
  v.id_eq = s.probe_id;
  v.snapshot = s.snapshot_date;
  plan.vars.push_back(v);
  core::OutputSpec out;
  out.kind = core::OutputSpec::Kind::kElement;
  out.name = "salary";
  out.attr_var = 0;
  out.column = core::HColRef{0, core::HCol::kValue};
  plan.output = out;
  return plan;
}

inline core::SqlXmlPlan PlanQ2(const Systems& s) {
  core::SqlXmlPlan plan;
  core::PlanVar v;
  v.relation = "employees";
  v.attribute = "salary";
  v.snapshot = s.snapshot_date;
  plan.vars.push_back(v);
  plan.aggregate = core::PlanAggregate::kAvgValue;
  plan.output.name = "avg_salary";
  return plan;
}

inline core::SqlXmlPlan PlanQ3(const Systems& s) {
  core::SqlXmlPlan plan;
  core::PlanVar v;
  v.relation = "employees";
  v.attribute = "salary";
  v.id_eq = s.probe_id;
  plan.vars.push_back(v);
  core::OutputSpec item;
  item.kind = core::OutputSpec::Kind::kElement;
  item.name = "salary";
  item.attr_var = 0;
  item.column = core::HColRef{0, core::HCol::kValue};
  core::OutputSpec agg;
  agg.kind = core::OutputSpec::Kind::kAgg;
  agg.children.push_back(item);
  core::OutputSpec root;
  root.kind = core::OutputSpec::Kind::kElement;
  root.name = "salary_history";
  root.children.push_back(agg);
  plan.output = root;
  return plan;
}

inline core::SqlXmlPlan PlanQ4(const Systems&) {
  core::SqlXmlPlan plan;
  core::PlanVar v;
  v.relation = "employees";
  v.attribute = "salary";
  plan.vars.push_back(v);
  plan.aggregate = core::PlanAggregate::kCount;
  plan.output.name = "salary_versions";
  return plan;
}

inline core::SqlXmlPlan PlanQ5(const Systems& s) {
  core::SqlXmlPlan plan;
  core::PlanVar v;
  v.relation = "employees";
  v.attribute = "salary";
  v.overlap = s.slice;
  v.value_conds.push_back(
      {minirel::CompareOp::kGt, minirel::Value(int64_t{60000})});
  plan.vars.push_back(v);
  plan.aggregate = core::PlanAggregate::kCountDistinctIds;
  plan.output.name = "employees_over_60k";
  return plan;
}

inline core::SqlXmlPlan PlanQ6(const Systems& s) {
  core::SqlXmlPlan plan;
  core::PlanVar v;
  v.relation = "employees";
  v.attribute = "salary";
  v.overlap = TimeInterval(s.join_after, Date::Forever());
  v.tstart_conds.push_back(
      {minirel::CompareOp::kGe, minirel::Value(s.join_after)});
  plan.vars.push_back(v);
  plan.aggregate = core::PlanAggregate::kMaxIncrease;
  plan.agg_window_days = 730;
  plan.output.name = "max_increase";
  return plan;
}

/// Query descriptors for table-driven benchmarks.
struct BenchQuery {
  const char* name;
  const char* description;
  std::string (*xq)(const Systems&);
  core::SqlXmlPlan (*plan)(const Systems&);
};

inline const BenchQuery kTable3Queries[6] = {
    {"Q1", "snapshot, single object", XqQ1, PlanQ1},
    {"Q2", "snapshot, avg salary", XqQ2, PlanQ2},
    {"Q3", "history, single object", XqQ3, PlanQ3},
    {"Q4", "history, count salary versions", XqQ4, PlanQ4},
    {"Q5", "temporal slicing, salary > 60K", XqQ5, PlanQ5},
    {"Q6", "temporal join, max 2y raise", XqQ6, PlanQ6},
};

}  // namespace archis::bench

#endif  // ARCHIS_BENCH_BENCH_COMMON_H_
