// Figure 7: storage size ratio of the segmented archive versus the
// unsegmented history, as a function of the usefulness threshold U_min.
//
// Paper shape: the ratio grows with U_min and respects the Eq. 3 bound
// N_seg/N_noseg <= 1/(1-U_min); the paper observes 3 segments at U_min=0.2,
// 5 at 0.26, 7 at 0.36, 9 at 0.4 on its dataset, with U_min=0.26 costing
// about as much as an unsegmented table at 75% page utilisation.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace archis::bench {
namespace {

struct UminPoint {
  double umin;
  double tuple_ratio;
  double byte_ratio;
  uint64_t segments;
};

UminPoint Measure(double umin) {
  BuildOptions opts;
  opts.umin = umin;
  opts.with_tamino = false;
  Systems sys = BuildSystems(opts);

  BuildOptions base_opts;
  base_opts.segment_clustering = false;
  base_opts.with_tamino = false;
  Systems base = BuildSystems(base_opts);

  auto count = [](core::ArchIS& db) {
    auto set = db.archiver().htables("employees");
    return (*set)->TotalTuples();
  };
  UminPoint point;
  point.umin = umin;
  point.tuple_ratio = static_cast<double>(count(*sys.archis)) /
                      static_cast<double>(count(*base.archis));
  point.byte_ratio = static_cast<double>(sys.archis->HistoryStorageBytes()) /
                     static_cast<double>(base.archis->HistoryStorageBytes());
  auto set = sys.archis->archiver().htables("employees");
  auto salary = (*set)->attribute_store("salary");
  point.segments = (*salary)->segments().size();
  return point;
}

void BM_StorageVsUmin(benchmark::State& state) {
  const double umin = static_cast<double>(state.range(0)) / 100.0;
  UminPoint point{};
  for (auto _ : state) {
    point = Measure(umin);
    benchmark::DoNotOptimize(point);
  }
  state.counters["tuple_ratio"] = point.tuple_ratio;
  state.counters["byte_ratio"] = point.byte_ratio;
  state.counters["eq3_bound"] = 1.0 / (1.0 - umin);
  state.counters["salary_segments"] = static_cast<double>(point.segments);
}

// The paper's U_min sweep: 0.2, 0.26, 0.36, 0.4.
BENCHMARK(BM_StorageVsUmin)
    ->Arg(20)
    ->Arg(26)
    ->Arg(36)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Figure 7: archive storage vs U_min ==\n");
  printf("Paper shape: ratio rises with U_min, bounded by 1/(1-U_min) "
         "(Eq. 3);\nsegment count grows with U_min.\n");
  printf("Counters: tuple_ratio = N_seg/N_noseg, byte_ratio = bytes ratio,\n"
         "eq3_bound = the analytic bound, salary_segments = frozen segment "
         "count.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
