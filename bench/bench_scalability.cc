// Figure 10: scalability — query time on a 7x larger dataset versus the
// base dataset (paper: 334 MB -> 2.28 GB).
//
// Paper shape: most queries grow roughly linearly with data size; the
// single-object queries Q1/Q3 grow much more slowly (index/pruned access).
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace archis::bench {
namespace {

Systems& AtScale(int scale) {
  static Systems scale1 = [] {
    BuildOptions o;
    o.with_tamino = false;
    o.scale = 1;
    return BuildSystems(o);
  }();
  static Systems scale7 = [] {
    BuildOptions o;
    o.with_tamino = false;
    o.scale = 7;
    return BuildSystems(o);
  }();
  return scale == 1 ? scale1 : scale7;
}

void BM_Scale(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  Systems& sys = AtScale(scale);
  const BenchQuery& q = kTable3Queries[state.range(1)];
  core::SqlXmlPlan plan = q.plan(sys);
  core::PlanStats stats;
  for (auto _ : state) {
    stats = core::PlanStats();
    auto r = sys.archis->Execute(plan, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["scale"] = scale;
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
  state.counters["history_bytes"] =
      static_cast<double>(sys.archis->HistoryStorageBytes());
  state.SetLabel(q.description);
}

void RegisterAll() {
  for (int scale : {1, 7}) {
    for (int q = 0; q < 6; ++q) {
      benchmark::RegisterBenchmark("BM_Scale", BM_Scale)
          ->Args({scale, q})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Figure 10: scalability (1x vs 7x dataset) ==\n");
  printf("Paper shape: Q2/Q4/Q5/Q6 scale ~linearly in data size; the\n"
         "single-object Q1/Q3 grow much less.\n\n");
  archis::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
