// Observability overhead: the metrics layer must be invisible on the hot
// query path. BM_MetricsOverhead runs the Q2 cached-snapshot workload (the
// same shape as BM_CachedSnapshot in bench_queries) with the registry
// globally disabled (Arg 0) and enabled (Arg 1); the acceptance bar is
// an enabled/disabled delta under 2%. The micro-benchmarks price the
// individual instruments so a regression is attributable.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/metrics.h"

namespace archis::bench {
namespace {

Systems& CachedSystems() {
  static Systems sys = [] {
    BuildOptions opts;
    opts.compress = true;
    opts.block_cache_bytes = 16ull << 20;
    opts.with_tamino = false;
    return BuildSystems(opts);
  }();
  return sys;
}

// The ablation lever: Arg(0) freezes every instrument (Counter::Inc is a
// single relaxed load), Arg(1) is production configuration.
void BM_MetricsOverhead(benchmark::State& state) {
  Systems& sys = CachedSystems();
  core::SqlXmlPlan plan = PlanQ2(sys);
  core::PlanStats stats;
  metrics::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    stats = core::PlanStats();
    auto r = sys.archis->Execute(plan, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  metrics::SetEnabled(true);
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
  state.SetLabel(state.range(0) != 0 ? "Q2 snapshot, metrics enabled"
                                     : "Q2 snapshot, metrics disabled");
}

void BM_CounterInc(benchmark::State& state) {
  static metrics::Counter counter;
  metrics::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    counter.Inc();
  }
  metrics::SetEnabled(true);
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}

void BM_HistogramObserve(benchmark::State& state) {
  static metrics::Histogram hist(metrics::DefaultLatencyBuckets());
  double v = 1e-6;
  for (auto _ : state) {
    hist.Observe(v);
    v = v < 1.0 ? v * 1.7 : 1e-6;  // sweep the bucket ladder
  }
}

void BM_ProfiledQuery(benchmark::State& state) {
  // Prices QueryOptions::collect_profile end to end (span allocation +
  // tree build + TakeProfile) against the same query unprofiled.
  Systems& sys = CachedSystems();
  const std::string xq = XqQ2(sys);
  core::QueryOptions opts;
  opts.collect_profile = state.range(0) != 0;
  for (auto _ : state) {
    auto r = sys.archis->Query(xq, opts);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(opts.collect_profile ? "collect_profile=true"
                                      : "collect_profile=false");
}

BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProfiledQuery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CounterInc)->Arg(0)->Arg(1);
BENCHMARK(BM_HistogramObserve);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Observability overhead: metrics/trace cost on the Q2 hot path "
         "==\n");
  printf("Acceptance: BM_MetricsOverhead enabled vs disabled within 2%%.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
