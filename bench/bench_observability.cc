// Observability overhead: the metrics layer must be invisible on the hot
// query path. BM_MetricsOverhead runs the Q2 cached-snapshot workload (the
// same shape as BM_CachedSnapshot in bench_queries) with the registry
// globally disabled (Arg 0) and enabled (Arg 1); the acceptance bar is
// an enabled/disabled delta under 2%. The micro-benchmarks price the
// individual instruments so a regression is attributable.
//
// The flight recorder is always on in production, so it carries its own
// acceptance bar: BM_FlightRecorderOverhead is the BM_CommitThroughput
// shape (8 writers, disjoint keys, group-committed WAL) with the recorder
// disabled (Arg 0) and enabled (Arg 1); the enabled/disabled delta must
// stay under 1%. BM_EventAppend prices one seqlock ring append.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "archis/checkpoint.h"
#include "bench_common.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"

namespace archis::bench {
namespace {

Systems& CachedSystems() {
  static Systems sys = [] {
    BuildOptions opts;
    opts.compress = true;
    opts.block_cache_bytes = 16ull << 20;
    opts.with_tamino = false;
    return BuildSystems(opts);
  }();
  return sys;
}

// The ablation lever: Arg(0) freezes every instrument (Counter::Inc is a
// single relaxed load), Arg(1) is production configuration.
void BM_MetricsOverhead(benchmark::State& state) {
  Systems& sys = CachedSystems();
  core::SqlXmlPlan plan = PlanQ2(sys);
  core::PlanStats stats;
  metrics::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    stats = core::PlanStats();
    auto r = sys.archis->Execute(plan, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  metrics::SetEnabled(true);
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
  state.SetLabel(state.range(0) != 0 ? "Q2 snapshot, metrics enabled"
                                     : "Q2 snapshot, metrics disabled");
}

void BM_CounterInc(benchmark::State& state) {
  static metrics::Counter counter;
  metrics::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    counter.Inc();
  }
  metrics::SetEnabled(true);
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}

void BM_HistogramObserve(benchmark::State& state) {
  static metrics::Histogram hist(metrics::DefaultLatencyBuckets());
  double v = 1e-6;
  for (auto _ : state) {
    hist.Observe(v);
    v = v < 1.0 ? v * 1.7 : 1e-6;  // sweep the bucket ladder
  }
}

void BM_ProfiledQuery(benchmark::State& state) {
  // Prices QueryOptions::collect_profile end to end (span allocation +
  // tree build + TakeProfile) against the same query unprofiled.
  Systems& sys = CachedSystems();
  const std::string xq = XqQ2(sys);
  core::QueryOptions opts;
  opts.collect_profile = state.range(0) != 0;
  for (auto _ : state) {
    auto r = sys.archis->Query(xq, opts);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(opts.collect_profile ? "collect_profile=true"
                                      : "collect_profile=false");
}

void BM_EventAppend(benchmark::State& state) {
  // One seqlock ring append: claim-ring + timestamp + 5 relaxed stores +
  // the odd/even sequence bracket. This is the unit cost every
  // instrumented code path pays.
  fr::SetEnabled(state.range(0) != 0);
  uint64_t i = 0;
  for (auto _ : state) {
    fr::Record(fr::EventType::kWalAppend, i, i * 2);
    ++i;
  }
  fr::SetEnabled(true);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) != 0 ? "recorder enabled"
                                     : "recorder disabled");
}

// BM_CommitThroughput's shape (bench_concurrency.cc) with the flight
// recorder as the ablation lever: 8 writer threads, each committing
// single-key transactions against its own key through the shared
// group-committed WAL. Acceptance: Arg(1) within 1% of Arg(0).
void BM_FlightRecorderOverhead(benchmark::State& state) {
  static std::unique_ptr<core::ArchIS> db;
  static std::string wal_path;
  if (state.thread_index() == 0) {
    wal_path = (std::filesystem::temp_directory_path() /
                "bench_observability_fr.wal")
                   .string();
    std::remove(wal_path.c_str());
    std::remove(core::CheckpointPath(wal_path).c_str());
    std::remove(core::CheckpointPrevPath(wal_path).c_str());
    std::remove(core::CheckpointTmpPath(wal_path).c_str());
    core::ArchISOptions opts;
    opts.wal.path = wal_path;
    opts.wal.checkpoint_base_every = 8;
    auto opened = core::ArchIS::Open(opts, Date::FromYmd(2000, 1, 1));
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      return;
    }
    db = std::move(*opened);
    core::RelationSpec spec;
    spec.name = "counters";
    spec.schema = minirel::Schema({{"id", minirel::DataType::kInt64},
                                   {"count", minirel::DataType::kInt64}});
    spec.key_columns = {"id"};
    spec.doc_name = "counters.xml";
    if (!db->CreateRelation(spec).ok()) {
      state.SkipWithError("create relation");
      return;
    }
    for (int64_t id = 1; id <= 8; ++id) {
      if (!db->Insert("counters", minirel::Tuple{minirel::Value(id),
                                                 minirel::Value(int64_t{0})})
               .ok()) {
        state.SkipWithError("seed row");
        return;
      }
    }
    fr::SetEnabled(state.range(0) != 0);
  }
  int64_t count = 0;
  const int64_t id = state.thread_index() + 1;
  for (auto _ : state) {
    auto begun = db->Begin();
    if (!begun.ok()) {
      state.SkipWithError(begun.status().ToString().c_str());
      return;
    }
    core::Transaction txn = std::move(*begun);
    if (!txn.Update("counters", {minirel::Value(id)},
                    minirel::Tuple{minirel::Value(id),
                                   minirel::Value(++count)})
             .ok()) {
      state.SkipWithError("update");
      return;
    }
    Status st = txn.Commit();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    fr::SetEnabled(true);
    db.reset();
    std::remove(wal_path.c_str());
    std::remove(core::CheckpointPath(wal_path).c_str());
    std::remove(core::CheckpointPrevPath(wal_path).c_str());
    std::remove(core::CheckpointTmpPath(wal_path).c_str());
  }
  state.SetLabel(state.range(0) != 0
                     ? "8-writer commits, recorder enabled"
                     : "8-writer commits, recorder disabled");
}

BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProfiledQuery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CounterInc)->Arg(0)->Arg(1);
BENCHMARK(BM_HistogramObserve);
BENCHMARK(BM_EventAppend)->Arg(0)->Arg(1);
BENCHMARK(BM_FlightRecorderOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Observability overhead: metrics/trace cost on the Q2 hot path "
         "==\n");
  printf("Acceptance: BM_MetricsOverhead enabled vs disabled within 2%%;\n"
         "BM_FlightRecorderOverhead enabled vs disabled within 1%%.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
