// Figure 9: query performance with vs without segment-based clustering on
// the same H-table data, plus Section 7.1's "snapshot on history vs current
// database" comparison (~27% slower in the paper).
//
// Paper shape: clustering speeds up snapshot (Q2 ~5.7x) and slicing (Q5
// ~5.5x) and the join (Q6 ~1.7x); single-object queries (Q1/Q3) are close
// (the id index dominates); the full-history scan Q4 is *slower* with
// clustering because of segment redundancy.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace archis::bench {
namespace {

Systems& Clustered() {
  static Systems sys = BuildSystems(BuildOptions{});
  return sys;
}

Systems& Unclustered() {
  static Systems sys = [] {
    BuildOptions o;
    o.segment_clustering = false;
    o.with_tamino = false;
    return BuildSystems(o);
  }();
  return sys;
}

void BM_Clustered(benchmark::State& state) {
  Systems& sys = Clustered();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  core::SqlXmlPlan plan = q.plan(sys);
  for (auto _ : state) {
    auto r = sys.archis->Execute(plan);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(q.description);
}

void BM_Unclustered(benchmark::State& state) {
  Systems& sys = Unclustered();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  core::SqlXmlPlan plan = q.plan(sys);
  for (auto _ : state) {
    auto r = sys.archis->Execute(plan);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(q.description);
}

// Section 7.1: snapshot at `now` served from the H-tables vs scanning the
// current database directly. The paper reports ~27% overhead.
void BM_SnapshotOnHistory(benchmark::State& state) {
  // The paper's methodology: run Q2 (avg salary) as a snapshot at the
  // current date against the salary H-table, vs directly on the current
  // table below.
  Systems& sys = Clustered();
  core::SqlXmlPlan plan = PlanQ2(sys);
  plan.vars[0].snapshot = sys.archis->Now();
  for (auto _ : state) {
    auto r = sys.archis->Execute(plan);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("avg current salary via salary H-table");
}

void BM_SnapshotOnCurrentDb(benchmark::State& state) {
  Systems& sys = Clustered();
  auto table = sys.archis->current_db().catalog().GetTable("employees");
  if (!table.ok()) {
    state.SkipWithError("no current table");
    return;
  }
  double avg = 0;
  for (auto _ : state) {
    double sum = 0;
    uint64_t n = 0;
    Status st =
        (*table)->Scan([&](const storage::RecordId&, const minirel::Tuple& t) {
          sum += static_cast<double>(t.at(2).AsInt());
          ++n;
          return true;
        });
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    avg = n == 0 ? 0 : sum / static_cast<double>(n);
    benchmark::DoNotOptimize(avg);
  }
  state.counters["avg_salary"] = avg;
  state.SetLabel("avg current salary via current table");
}

BENCHMARK(BM_Clustered)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Unclustered)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotOnHistory)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotOnCurrentDb)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Figure 9: segment-based clustering on vs off (same data) ==\n");
  printf("Paper shape: snapshot Q2 ~5.7x and slicing Q5 ~5.5x faster with\n"
         "clustering; Q1/Q3 close (id index); Q4 slower with clustering\n"
         "(segment redundancy); join Q6 ~1.7x faster.\n");
  printf("Also Section 7.1: snapshot via H-tables vs current DB (~27%% "
         "overhead in the paper).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
