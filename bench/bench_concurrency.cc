// Concurrency ablations for the transactional write path (DESIGN.md §13):
//
//   BM_CommitThroughput/threads:N — N writer threads, each committing
//   single-key transactions against its own key through the shared WAL.
//   Group commit batches the fsyncs, so throughput should grow with the
//   writer count instead of serializing behind the log.
//
//   BM_CheckpointVsDbSize/N — a fuzzy incremental checkpoint over a
//   database of N rows with a fixed 16-row dirty set. The paper-shaped
//   result is a flat curve: delta manifests are proportional to the dirty
//   set, not the database, so checkpoint time stays put as N grows.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "archis/archis.h"
#include "archis/checkpoint.h"

namespace archis::bench {
namespace {

using core::ArchIS;
using core::ArchISOptions;
using core::RelationSpec;
using core::Transaction;
using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;

std::string WalPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void RemoveInstanceFiles(const std::string& wal_path) {
  std::remove(wal_path.c_str());
  std::remove(core::CheckpointPath(wal_path).c_str());
  std::remove(core::CheckpointPrevPath(wal_path).c_str());
  std::remove(core::CheckpointTmpPath(wal_path).c_str());
}

RelationSpec CounterSpec() {
  RelationSpec spec;
  spec.name = "counters";
  spec.schema = Schema({{"id", DataType::kInt64},
                        {"count", DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "counters.xml";
  return spec;
}

Result<std::unique_ptr<ArchIS>> OpenWithRows(const std::string& wal_path,
                                             int64_t rows,
                                             uint64_t base_every) {
  RemoveInstanceFiles(wal_path);
  ArchISOptions opts;
  opts.wal.path = wal_path;
  opts.wal.checkpoint_base_every = base_every;
  ARCHIS_ASSIGN_OR_RETURN(std::unique_ptr<ArchIS> db,
                          ArchIS::Open(opts, Date::FromYmd(2000, 1, 1)));
  ARCHIS_RETURN_NOT_OK(db->CreateRelation(CounterSpec()));
  for (int64_t id = 1; id <= rows; ++id) {
    ARCHIS_RETURN_NOT_OK(
        db->Insert("counters", Tuple{Value(id), Value(int64_t{0})}));
  }
  return db;
}

void BM_CommitThroughput(benchmark::State& state) {
  // Shared across the worker threads of one run; thread 0 owns setup and
  // teardown (the library barriers the others at the loop edges).
  static std::unique_ptr<ArchIS> db;
  static std::string wal_path;
  if (state.thread_index() == 0) {
    wal_path = WalPath("bench_concurrency_commit.wal");
    auto opened = OpenWithRows(wal_path, 8, 8);
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      return;
    }
    db = std::move(*opened);
  }
  int64_t count = 0;
  const int64_t id = state.thread_index() + 1;
  for (auto _ : state) {
    auto begun = db->Begin();
    if (!begun.ok()) {
      state.SkipWithError(begun.status().ToString().c_str());
      return;
    }
    Transaction txn = std::move(*begun);
    if (!txn.Update("counters", {Value(id)},
                    Tuple{Value(id), Value(++count)}).ok()) {
      state.SkipWithError("update");
      return;
    }
    Status st = txn.Commit();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["wal_syncs"] =
        static_cast<double>(db->wal()->sync_count());
    db.reset();
    RemoveInstanceFiles(wal_path);
  }
  state.SetLabel("disjoint single-key commits, group-committed WAL");
}

void BM_CheckpointVsDbSize(benchmark::State& state) {
  const int64_t rows = state.range(0);
  constexpr int64_t kDirtyRows = 16;
  const std::string wal_path = WalPath("bench_concurrency_ckpt.wal");
  // A huge base period keeps every timed checkpoint a delta; the one
  // explicit base below absorbs the initial load.
  auto opened = OpenWithRows(wal_path, rows, 1u << 30);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  std::unique_ptr<ArchIS> db = std::move(*opened);
  if (!db->Checkpoint().ok()) {
    state.SkipWithError("base checkpoint");
    return;
  }
  int64_t tick = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto begun = db->Begin();
    if (!begun.ok()) {
      state.SkipWithError(begun.status().ToString().c_str());
      return;
    }
    Transaction txn = std::move(*begun);
    ++tick;
    for (int64_t id = 1; id <= kDirtyRows; ++id) {
      if (!txn.Update("counters", {Value(id)},
                      Tuple{Value(id), Value(tick)}).ok()) {
        state.SkipWithError("dirty update");
        return;
      }
    }
    if (!txn.Commit().ok()) {
      state.SkipWithError("dirty commit");
      return;
    }
    state.ResumeTiming();
    Status st = db->Checkpoint();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.counters["db_rows"] = static_cast<double>(rows);
  state.counters["dirty_rows"] = static_cast<double>(kDirtyRows);
  db.reset();
  RemoveInstanceFiles(wal_path);
  state.SetLabel("fuzzy delta checkpoint, fixed 16-row dirty set");
}

BENCHMARK(BM_CommitThroughput)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointVsDbSize)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Concurrency: commit throughput and fuzzy checkpoints ==\n");
  printf("Expected shape: commit throughput grows with writer count\n"
         "(group commit shares each fsync); incremental checkpoint time is\n"
         "flat in database size because delta manifests carry only the\n"
         "dirty rows.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
