// Figures 11 and 13: storage footprints relative to the H-document size,
// without and with compression, across the three systems — plus the
// block-pruning ablation that motivates BlockZIP (Section 8.1).
//
// Paper shape (ratio = stored bytes / H-document bytes):
//   Figure 11 (no RDBMS compression): Tamino 0.22 (it always compresses),
//     ArchIS-DB2 0.75, ArchIS-ATLaS 1.02; plain H-tables about 0.5.
//   Figure 13 (BlockZIP on): ArchIS drops to ~0.23, nearly matching
//     Tamino's 0.22; Tamino *without* compression expands to 1.47.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "compress/blob_store.h"

namespace archis::bench {
namespace {

struct Ratios {
  double tamino_compressed;
  double tamino_native;
  double htables_unsegmented;
  double htables_segmented;
  double htables_segmented_zip;
  uint64_t hdoc_bytes;
};

const Ratios& MeasureRatios() {
  static Ratios r = [] {
    // Segmented, uncompressed (the ArchIS-DB2 configuration).
    Systems seg = BuildSystems(BuildOptions{});
    // Unsegmented H-tables.
    BuildOptions o2;
    o2.segment_clustering = false;
    o2.with_tamino = false;
    Systems plain = BuildSystems(o2);
    // Segmented + BlockZIP (Section 8), frozen fully so everything is
    // compressed.
    BuildOptions o3;
    o3.compress = true;
    o3.with_tamino = false;
    Systems zip = BuildSystems(o3);
    if (!zip.archis->FreezeAll().ok()) abort();

    // TaminoLite in both storage modes, fed the same H-documents.
    xmldb::XmlDatabase tam_zip(xmldb::StorageMode::kCompressed,
                               seg.archis->Now());
    xmldb::XmlDatabase tam_raw(xmldb::StorageMode::kNative,
                               seg.archis->Now());
    uint64_t hdoc = 0;
    for (const char* rel : {"employees", "depts"}) {
      auto doc = seg.archis->PublishHistory(rel);
      if (!doc.ok()) abort();
      hdoc += xml::Serialize(*doc).size();
      if (!tam_zip.PutDocument(std::string(rel) + ".xml", *doc).ok()) abort();
      if (!tam_raw.PutDocument(std::string(rel) + ".xml", *doc).ok()) abort();
    }
    auto ratio = [hdoc](uint64_t bytes) {
      return static_cast<double>(bytes) / static_cast<double>(hdoc);
    };
    Ratios out;
    out.hdoc_bytes = hdoc;
    out.tamino_compressed = ratio(tam_zip.store().TotalStoredBytes());
    out.tamino_native = ratio(tam_raw.store().TotalStoredBytes());
    out.htables_unsegmented = ratio(plain.archis->HistoryStorageBytes());
    out.htables_segmented = ratio(seg.archis->HistoryStorageBytes());
    out.htables_segmented_zip = ratio(zip.archis->HistoryStorageBytes());
    return out;
  }();
  return r;
}

void BM_CompressionRatios(benchmark::State& state) {
  const Ratios& r = MeasureRatios();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&r);
  }
  state.counters["hdoc_bytes"] = static_cast<double>(r.hdoc_bytes);
  state.counters["tamino_compressed"] = r.tamino_compressed;
  state.counters["tamino_native"] = r.tamino_native;
  state.counters["htables_unsegmented"] = r.htables_unsegmented;
  state.counters["htables_segmented"] = r.htables_segmented;
  state.counters["htables_segmented_blockzip"] = r.htables_segmented_zip;
}

// Ablation: block-pruned decompression (BlockZIP's point) vs decompressing
// the whole segment for a single-object lookup.
void BM_BlockPrunedLookup(benchmark::State& state) {
  static Systems sys = [] {
    BuildOptions o;
    o.compress = true;
    o.with_tamino = false;
    Systems s = BuildSystems(o);
    if (!s.archis->FreezeAll().ok()) abort();
    return s;
  }();
  auto set = sys.archis->archiver().htables("employees");
  auto salary = (*set)->attribute_store("salary");
  const bool pruned = state.range(0) == 1;
  core::StoreScanStats stats;
  for (auto _ : state) {
    stats = core::StoreScanStats();
    Status st;
    if (pruned) {
      st = (*salary)->ScanId(sys.probe_id,
                             [](const minirel::Tuple&) { return true; },
                             &stats);
    } else {
      // Whole-history scan filtered by id afterwards: what a store without
      // per-block key ranges would have to do.
      st = (*salary)->ScanHistory(
          [&](const minirel::Tuple& row) {
            benchmark::DoNotOptimize(row.at(0).AsInt() == sys.probe_id);
            return true;
          },
          &stats);
    }
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["blocks_decompressed"] =
      static_cast<double>(stats.blocks_decompressed);
  state.SetLabel(pruned ? "block-pruned (BlockZIP ranges)"
                        : "decompress whole history");
}

BENCHMARK(BM_CompressionRatios)->Iterations(1);
BENCHMARK(BM_BlockPrunedLookup)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Figures 11 & 13: storage ratios (stored / H-document size) "
         "==\n");
  printf("Paper shape: Tamino compressed ~0.22, Tamino uncompressed ~1.47;\n"
         "H-tables ~0.5, segmented ~0.75-1.02; with BlockZIP the RDBMS\n"
         "drops to ~0.23, closing the gap with the native XML DB.\n");
  printf("Plus the BlockZIP ablation: block-pruned vs whole-history "
         "decompression.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
