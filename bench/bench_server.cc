// End-to-end latency of the archisd network front end (DESIGN.md §15):
//
//   BM_ServerMixedWorkload/K — K concurrent client connections replay a
//   mixed workload against an in-process ArchisServer: 80% Table-3
//   queries (Q1–Q6 round-robin over the native XQuery forms) and 20%
//   update batches rewriting a per-client employee's salary. Each
//   request's wall-clock latency is recorded client-side; the run
//   reports p50/p95/p99 in milliseconds plus aggregate throughput, so
//   BENCH_server.json captures how tail latency moves as the connection
//   count crosses the worker-pool size.
//
// The server runs with its production defaults (4 workers, 64-deep
// admission queue, no default deadline); clients never set per-request
// deadlines here, so every request is admitted and measured rather than
// shed — overload behaviour is covered by tests, not benchmarked.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"

namespace archis::bench {
namespace {

using server::ArchisClient;
using server::ArchisServer;
using server::ClientOptions;
using server::ServerOptions;

constexpr int kMaxClients = 16;
/// Requests issued by every client per timed iteration; one in five is
/// an update batch, the rest walk Q1..Q6.
constexpr int kRequestsPerClient = 20;
constexpr int64_t kBenchIdBase = 900000;

/// The shared system under test: one dataset, one server, reused across
/// the /1, /4 and /16 runs so their numbers are comparable.
struct ServerFixture {
  Systems sys;
  std::unique_ptr<ArchisServer> srv;
  std::vector<std::string> queries;  ///< pre-rendered XQuery texts

  ServerFixture() {
    BuildOptions opts;
    opts.years = 8;
    opts.base_employees = 60;
    opts.with_tamino = false;
    sys = BuildSystems(opts);
    ServerOptions sopts;
    sopts.port = 0;  // ephemeral; clients read it back from srv->port()
    auto started = ArchisServer::Start(sys.archis.get(), sopts);
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.status().ToString().c_str());
      std::abort();
    }
    srv = std::move(*started);
    for (const BenchQuery& q : kTable3Queries) {
      queries.push_back(q.xq(sys));
    }
    // Seed one employee per potential client so update batches touch
    // disjoint keys and never conflict with each other.
    ArchisClient seed(ClientFor());
    std::string script;
    for (int k = 0; k < kMaxClients; ++k) {
      char line[128];
      std::snprintf(line, sizeof(line),
                    "insert employees|%lld|Bench Client %d|50000|Engineer|D1\n",
                    static_cast<long long>(kBenchIdBase + k), k);
      script += line;
    }
    auto ack = seed.UpdateBatch(script);
    if (!ack.ok()) {
      std::fprintf(stderr, "seed batch failed: %s\n",
                   ack.status().ToString().c_str());
      std::abort();
    }
  }

  ClientOptions ClientFor() const {
    ClientOptions copts;
    copts.port = srv->port();
    return copts;
  }

  std::string UpdateScript(int client, int64_t salary) const {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "update employees|%lld|Bench Client %d|%lld|Engineer|D1\n",
                  static_cast<long long>(kBenchIdBase + client), client,
                  static_cast<long long>(salary));
    return line;
  }

  static ServerFixture& Get() {
    static ServerFixture fixture;
    return fixture;
  }
};

double PercentileMs(const std::vector<int64_t>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ns.size()));
  idx = std::min(idx, sorted_ns.size() - 1);
  return static_cast<double>(sorted_ns[idx]) / 1e6;
}

void BM_ServerMixedWorkload(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  ServerFixture& fx = ServerFixture::Get();

  std::mutex merge_mu;
  std::vector<int64_t> latencies_ns;
  double total_seconds = 0.0;
  int64_t total_requests = 0;
  int64_t round = 0;

  for (auto _ : state) {
    std::vector<std::vector<int64_t>> per_thread(clients);
    std::vector<std::thread> threads;
    bool failed = false;
    std::string failure;
    const int64_t salary = 50000 + ++round;
    auto round_start = std::chrono::steady_clock::now();
    threads.reserve(clients);
    for (int k = 0; k < clients; ++k) {
      threads.emplace_back([&, k]() {
        ArchisClient client(fx.ClientFor());
        auto& samples = per_thread[k];
        samples.reserve(kRequestsPerClient);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          auto begin = std::chrono::steady_clock::now();
          Status st =
              i % 5 == 4
                  ? client.UpdateBatch(fx.UpdateScript(k, salary)).status()
                  : client.Query(fx.queries[i % fx.queries.size()]).status();
          auto end = std::chrono::steady_clock::now();
          if (!st.ok()) {
            std::lock_guard<std::mutex> lk(merge_mu);
            failed = true;
            failure = st.ToString();
            return;
          }
          samples.push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  end - begin)
                  .count());
        }
      });
    }
    for (auto& t : threads) t.join();
    auto round_end = std::chrono::steady_clock::now();
    if (failed) {
      state.SkipWithError(failure.c_str());
      return;
    }
    total_seconds +=
        std::chrono::duration<double>(round_end - round_start).count();
    for (auto& samples : per_thread) {
      total_requests += static_cast<int64_t>(samples.size());
      latencies_ns.insert(latencies_ns.end(), samples.begin(),
                          samples.end());
    }
  }

  std::sort(latencies_ns.begin(), latencies_ns.end());
  state.SetItemsProcessed(total_requests);
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["p50_ms"] = PercentileMs(latencies_ns, 0.50);
  state.counters["p95_ms"] = PercentileMs(latencies_ns, 0.95);
  state.counters["p99_ms"] = PercentileMs(latencies_ns, 0.99);
  state.counters["qps"] =
      total_seconds > 0.0
          ? static_cast<double>(total_requests) / total_seconds
          : 0.0;
  state.SetLabel("80% Table-3 queries / 20% update batches over TCP");
}

BENCHMARK(BM_ServerMixedWorkload)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("archisd network front end: %d-request mixed rounds per client\n"
         "(80%% Table-3 queries, 20%% update batches).\n\n"
         "Expected shape: p50 stays near the single-client service time\n"
         "while p95/p99 grow once the connection count exceeds the 4-way\n"
         "worker pool and requests start queueing for admission.\n\n",
         archis::bench::kRequestsPerClient);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
