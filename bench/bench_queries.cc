// Figure 8 + Table 3: the six temporal queries on the native XML database
// (TaminoLite, compressed documents — Tamino's default) versus ArchIS with
// segment-based clustering on the RDBMS.
//
// Paper shape to reproduce: the RDBMS path wins every query; snapshot (Q2)
// by ~2 orders of magnitude, slicing (Q5) by ~66x, history (Q4) by ~4x,
// temporal join (Q6) by ~35x. Absolute times differ (their testbed was
// disk-bound); the ordering and rough factors are the claim under test.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace archis::bench {
namespace {

Systems& SegSystems() {
  static Systems sys = BuildSystems(BuildOptions{});
  return sys;
}

void BM_Tamino(benchmark::State& state) {
  Systems& sys = SegSystems();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  std::string xq = q.xq(sys);
  size_t items = 0;
  for (auto _ : state) {
    auto r = sys.tamino->Query(xq);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    items = r.ok() ? r->size() : 0;
    benchmark::DoNotOptimize(items);
  }
  state.counters["result_items"] = static_cast<double>(items);
  state.SetLabel(q.description);
}

void BM_ArchIS(benchmark::State& state) {
  Systems& sys = SegSystems();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  core::SqlXmlPlan plan = q.plan(sys);
  core::PlanStats stats;
  for (auto _ : state) {
    stats = core::PlanStats();
    auto r = sys.archis->Execute(plan, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
  state.counters["segments_scanned"] =
      static_cast<double>(stats.segments_scanned);
  state.SetLabel(q.description);
}

// Ablation: the same plans executed against an un-indexed full-history scan
// is covered by bench_clustering; here we add the id-sorted merge join vs
// hash join ablation on a two-variable query (salary joined with title).
void BM_JoinAblation(benchmark::State& state) {
  Systems& sys = SegSystems();
  const bool merge = state.range(0) == 0;
  core::SqlXmlPlan plan;
  core::PlanVar a, b;
  a.relation = "employees";
  a.attribute = "salary";
  b.relation = "employees";
  b.attribute = "title";
  plan.vars = {a, b};
  plan.join_on_id = merge;
  if (!merge) {
    // Emulate the value-join fallback: join via a cross condition instead
    // of the sorted id merge (quadratic pairing within the cross product).
    core::CrossCond cond;
    cond.kind = core::CrossCond::Kind::kCompare;
    cond.lhs = {0, core::HCol::kId};
    cond.op = minirel::CompareOp::kEq;
    cond.rhs = {1, core::HCol::kId};
    plan.cross_conds.push_back(cond);
  }
  plan.aggregate = core::PlanAggregate::kCount;
  for (auto _ : state) {
    auto r = sys.archis->Execute(plan);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(merge ? "id-sorted merge join" : "cross-product join");
}

BENCHMARK(BM_Tamino)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ArchIS)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinAblation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Figure 8 / Table 3: query performance, native XML DB vs "
         "ArchIS(segmented) ==\n");
  printf("Paper shape: ArchIS wins all six; Q2 ~100x, Q5 ~66x, Q4 ~4x, "
         "Q6 ~35x.\n");
  printf("Args 0..5 map to Table 3 queries Q1..Q6.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
