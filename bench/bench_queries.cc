// Figure 8 + Table 3: the six temporal queries on the native XML database
// (TaminoLite, compressed documents — Tamino's default) versus ArchIS with
// segment-based clustering on the RDBMS.
//
// Paper shape to reproduce: the RDBMS path wins every query; snapshot (Q2)
// by ~2 orders of magnitude, slicing (Q5) by ~66x, history (Q4) by ~4x,
// temporal join (Q6) by ~35x. Absolute times differ (their testbed was
// disk-bound); the ordering and rough factors are the claim under test.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace archis::bench {
namespace {

Systems& SegSystems() {
  static Systems sys = BuildSystems(BuildOptions{});
  return sys;
}

void BM_Tamino(benchmark::State& state) {
  Systems& sys = SegSystems();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  std::string xq = q.xq(sys);
  size_t items = 0;
  for (auto _ : state) {
    auto r = sys.tamino->Query(xq);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    items = r.ok() ? r->size() : 0;
    benchmark::DoNotOptimize(items);
  }
  state.counters["result_items"] = static_cast<double>(items);
  state.SetLabel(q.description);
}

void BM_ArchIS(benchmark::State& state) {
  Systems& sys = SegSystems();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  core::SqlXmlPlan plan = q.plan(sys);
  core::PlanStats stats;
  for (auto _ : state) {
    stats = core::PlanStats();
    auto r = sys.archis->Execute(plan, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
  state.counters["segments_scanned"] =
      static_cast<double>(stats.segments_scanned);
  state.counters["blocks_pruned_by_time"] =
      static_cast<double>(stats.blocks_pruned_by_time);
  state.counters["block_cache_hits"] =
      static_cast<double>(stats.block_cache_hits);
  state.SetLabel(q.description);
}

// Ablation: the cost-based planner against the fixed pre-planner executor
// shape, on all six Table 3 queries. PlanForce::kCostBased plans once and
// then hits the facade's plan cache (prepared-statement steady state —
// the cache-hit cost IS in the timing); kFixed is the legacy shape.
// Counters surface the estimate-vs-actual gap per query.
void BM_PlannerAblation(benchmark::State& state) {
  Systems& sys = SegSystems();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  const bool planner_on = state.range(1) != 0;
  const core::PlanForce force =
      planner_on ? core::PlanForce::kCostBased : core::PlanForce::kFixed;
  core::SqlXmlPlan plan = q.plan(sys);
  core::PlanStats stats;
  for (auto _ : state) {
    stats = core::PlanStats();
    auto r = sys.archis->Execute(plan, &stats, nullptr, force);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
  state.counters["est_rows"] = stats.est_rows;
  state.counters["actual_rows"] = static_cast<double>(stats.result_rows);
  state.SetLabel(std::string(q.description) +
                 (planner_on ? " [planner on]" : " [planner off]"));
}

// Ablation: the same plans executed against an un-indexed full-history scan
// is covered by bench_clustering; here we add the id-sorted merge join vs
// hash join ablation on a two-variable query (salary joined with title).
void BM_JoinAblation(benchmark::State& state) {
  Systems& sys = SegSystems();
  const bool merge = state.range(0) == 0;
  core::SqlXmlPlan plan;
  core::PlanVar a, b;
  a.relation = "employees";
  a.attribute = "salary";
  b.relation = "employees";
  b.attribute = "title";
  plan.vars = {a, b};
  plan.join_on_id = merge;
  if (!merge) {
    // Emulate the value-join fallback: join via a cross condition instead
    // of the sorted id merge (quadratic pairing within the cross product).
    core::CrossCond cond;
    cond.kind = core::CrossCond::Kind::kCompare;
    cond.lhs = {0, core::HCol::kId};
    cond.op = minirel::CompareOp::kEq;
    cond.rhs = {1, core::HCol::kId};
    plan.cross_conds.push_back(cond);
  }
  plan.aggregate = core::PlanAggregate::kCount;
  for (auto _ : state) {
    auto r = sys.archis->Execute(plan);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(merge ? "id-sorted merge join" : "cross-product join");
}

// Ablation: parallel multi-segment scan. Compressed frozen segments (so a
// worker's unit of work is block inflation + decode), block cache off to
// isolate the parallelism lever, Q4's full-history scan as the workload.
Systems& ParallelSystems(int threads) {
  static std::map<int, std::unique_ptr<Systems>> instances;
  std::unique_ptr<Systems>& slot = instances[threads];
  if (slot == nullptr) {
    BuildOptions opts;
    opts.compress = true;
    opts.scan_threads = threads;
    opts.block_cache_bytes = 0;
    opts.scale = 2;
    opts.with_tamino = false;
    slot = std::make_unique<Systems>(BuildSystems(opts));
  }
  return *slot;
}

void BM_ParallelScan(benchmark::State& state) {
  Systems& sys = ParallelSystems(static_cast<int>(state.range(0)));
  core::SqlXmlPlan plan = PlanQ4(sys);
  core::PlanStats stats;
  for (auto _ : state) {
    stats = core::PlanStats();
    auto r = sys.archis->Execute(plan, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["segments_scanned"] =
      static_cast<double>(stats.segments_scanned);
  state.counters["blocks_decompressed"] =
      static_cast<double>(stats.blocks_decompressed);
  state.SetLabel("Q4 full history, scan_threads=" +
                 std::to_string(state.range(0)));
}

// Ablation: the decompressed-block LRU cache on a repeated snapshot query
// (Q2). Iterations after the first run warm; with the cache off every
// iteration re-inflates the covering segment's blocks.
Systems& CacheSystems(bool cached) {
  static std::map<bool, std::unique_ptr<Systems>> instances;
  std::unique_ptr<Systems>& slot = instances[cached];
  if (slot == nullptr) {
    BuildOptions opts;
    opts.compress = true;
    opts.block_cache_bytes = cached ? (16ull << 20) : 0;
    opts.with_tamino = false;
    slot = std::make_unique<Systems>(BuildSystems(opts));
  }
  return *slot;
}

void BM_CachedSnapshot(benchmark::State& state) {
  Systems& sys = CacheSystems(state.range(0) != 0);
  core::SqlXmlPlan plan = PlanQ2(sys);
  core::PlanStats stats;
  for (auto _ : state) {
    stats = core::PlanStats();
    auto r = sys.archis->Execute(plan, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["blocks_decompressed"] =
      static_cast<double>(stats.blocks_decompressed);
  state.counters["block_cache_hits"] =
      static_cast<double>(stats.block_cache_hits);
  state.SetLabel(state.range(0) != 0 ? "Q2 snapshot, 16MiB block cache"
                                     : "Q2 snapshot, cache off");
}

BENCHMARK(BM_Tamino)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ArchIS)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlannerAblation)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinAblation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelScan)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedSnapshot)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Figure 8 / Table 3: query performance, native XML DB vs "
         "ArchIS(segmented) ==\n");
  printf("Paper shape: ArchIS wins all six; Q2 ~100x, Q5 ~66x, Q4 ~4x, "
         "Q6 ~35x.\n");
  printf("Args 0..5 map to Table 3 queries Q1..Q6.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
