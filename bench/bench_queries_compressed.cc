// Figure 14: the six Table 3 queries with database compression enabled.
//
// Paper shape: the RDBMS keeps a large advantage on compressed data —
// snapshot Q2 ~67x/37x and slicing Q5 ~46x/26x faster than Tamino — and
// ArchIS with compression stays close to ArchIS without compression.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace archis::bench {
namespace {

Systems& Compressed() {
  static Systems sys = [] {
    BuildOptions o;
    o.compress = true;
    Systems s = BuildSystems(o);
    if (!s.archis->FreezeAll().ok()) abort();
    return s;
  }();
  return sys;
}

Systems& Uncompressed() {
  static Systems sys = [] {
    BuildOptions o;
    o.with_tamino = false;
    return BuildSystems(o);
  }();
  return sys;
}

void BM_TaminoCompressed(benchmark::State& state) {
  Systems& sys = Compressed();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  std::string xq = q.xq(sys);
  for (auto _ : state) {
    auto r = sys.tamino->Query(xq);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(q.description);
}

void BM_ArchISCompressed(benchmark::State& state) {
  Systems& sys = Compressed();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  core::SqlXmlPlan plan = q.plan(sys);
  core::PlanStats stats;
  for (auto _ : state) {
    stats = core::PlanStats();
    auto r = sys.archis->Execute(plan, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["blocks_decompressed"] =
      static_cast<double>(stats.blocks_decompressed);
  state.SetLabel(q.description);
}

void BM_ArchISUncompressed(benchmark::State& state) {
  Systems& sys = Uncompressed();
  const BenchQuery& q = kTable3Queries[state.range(0)];
  core::SqlXmlPlan plan = q.plan(sys);
  for (auto _ : state) {
    auto r = sys.archis->Execute(plan);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(q.description);
}

BENCHMARK(BM_TaminoCompressed)->DenseRange(0, 5)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_ArchISCompressed)->DenseRange(0, 5)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_ArchISUncompressed)->DenseRange(0, 5)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Figure 14: query performance with compression ==\n");
  printf("Paper shape: ArchIS (BlockZIP) beats the native XML DB on every\n"
         "query (Q2 ~37-67x, Q5 ~26-46x) and stays close to uncompressed\n"
         "ArchIS thanks to block-pruned decompression.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
