// Section 7.1, "Query Translation Cost": the paper reports that translating
// each of the six Section 4 example queries from XQuery to SQL/XML costs
// under 0.1 ms. This benchmark measures parse+translate time for the
// translatable queries and parse time alone for all of them.
#include <benchmark/benchmark.h>

#include "archis/translator.h"
#include "xquery/parser.h"

namespace archis::bench {
namespace {

const char* kQueries[] = {
    // QUERY 1: temporal projection.
    "element title_history{ for $t in doc(\"employees.xml\")/employees/"
    "employee[name=\"Bob\"]/title return $t }",
    // QUERY 2: temporal snapshot.
    "for $m in doc(\"depts.xml\")/depts/dept/mgrno"
    "[tstart(.) <= xs:date(\"1994-05-06\") and "
    "tend(.) >= xs:date(\"1994-05-06\")] return $m",
    // QUERY 3: temporal slicing.
    "for $e in doc(\"employees.xml\")/employees/employee"
    "[ toverlaps(., telement(xs:date(\"1994-05-06\"),"
    "xs:date(\"1995-05-06\"))) ] return $e/name",
    // QUERY 5: temporal aggregate.
    "let $s := doc(\"employees.xml\")/employees/employee/salary "
    "return tavg($s)",
    // QUERY 7-lite: since-style current-tense query.
    "for $e in doc(\"employees.xml\")/employees/employee "
    "let $m := $e/title[.=\"Sr Engineer\" and tend(.)=current-date()] "
    "where not empty($m) return $e/id",
    // Single-object snapshot (bench Q1 shape).
    "for $s in doc(\"employees.xml\")/employees/employee[id=100002]/salary"
    "[tstart(.) <= xs:date(\"1993-05-16\") and "
    "tend(.) >= xs:date(\"1993-05-16\")] return $s",
};

core::TranslatorContext Ctx() {
  core::TranslatorContext ctx;
  ctx.current_date = Date::FromYmd(2003, 6, 1);
  ctx.docs["employees.xml"] = {"employees", "employees", "employee"};
  ctx.docs["depts.xml"] = {"depts", "depts", "dept"};
  return ctx;
}

void BM_ParseOnly(benchmark::State& state) {
  const char* q = kQueries[state.range(0)];
  for (auto _ : state) {
    auto ast = xquery::ParseXQuery(q);
    if (!ast.ok()) state.SkipWithError(ast.status().ToString().c_str());
    benchmark::DoNotOptimize(ast);
  }
}

void BM_ParseAndTranslate(benchmark::State& state) {
  const char* q = kQueries[state.range(0)];
  core::TranslatorContext ctx = Ctx();
  for (auto _ : state) {
    auto plan = core::TranslateXQuery(q, ctx);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
}

void BM_RenderSql(benchmark::State& state) {
  core::TranslatorContext ctx = Ctx();
  auto plan = core::TranslateXQuery(kQueries[0], ctx);
  if (!plan.ok()) {
    state.SkipWithError("translate failed");
    return;
  }
  for (auto _ : state) {
    std::string sql = plan->ToSql();
    benchmark::DoNotOptimize(sql);
  }
}

BENCHMARK(BM_ParseOnly)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ParseAndTranslate)->DenseRange(0, 5)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_RenderSql)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace archis::bench

int main(int argc, char** argv) {
  printf("== Section 7.1: query translation cost ==\n");
  printf("Paper claim: each example query translates in < 0.1 ms "
         "(100 us).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
