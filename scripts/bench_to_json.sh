#!/usr/bin/env bash
# Runs the benchmark suites and records the results as JSON, so the perf
# trajectory is tracked PR over PR:
#   bench_queries       -> BENCH_queries.json       (Table 3 / Figure 8)
#   bench_updates       -> BENCH_updates.json       (Section 8.4 updates)
#   bench_observability -> BENCH_observability.json (metrics overhead)
#   bench_concurrency   -> BENCH_concurrency.json   (commit throughput vs
#                          writer count; checkpoint time vs DB size)
#   recovery            -> BENCH_recovery.json      (recovery time vs WAL
#                          size, with/without checkpoint; a filtered run of
#                          bench_updates)
#   bench_server        -> BENCH_server.json        (archisd end-to-end
#                          latency percentiles vs connection count)
#
# Usage: scripts/bench_to_json.sh [suite ...]
#   scripts/bench_to_json.sh                  # all suites
#   scripts/bench_to_json.sh updates          # just bench_updates
#   scripts/bench_to_json.sh recovery         # just the recovery ablation
#   BUILD_DIR=build-release scripts/bench_to_json.sh
#   MIN_TIME=1s scripts/bench_to_json.sh queries   # steadier numbers for
#                                                  # A/B ablation pairs
#
# Uses --benchmark_out (not --benchmark_format=json on stdout) so the
# binary's human-readable preamble does not corrupt the JSON.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
SUITES=("$@")
if [[ ${#SUITES[@]} -eq 0 ]]; then
  SUITES=(queries updates observability recovery concurrency server)
fi

for suite in "${SUITES[@]}"; do
  # The recovery ablation lives in bench_updates; select it by filter so it
  # gets its own JSON series without a dedicated binary.
  FILTER=()
  if [[ "$suite" == "recovery" ]]; then
    BIN="$BUILD_DIR/bench/bench_updates"
    FILTER=(--benchmark_filter=Recovery)
  else
    BIN="$BUILD_DIR/bench/bench_$suite"
  fi
  OUT="BENCH_$suite.json"
  if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
  MT=()
  if [[ -n "${MIN_TIME:-}" ]]; then
    MT=(--benchmark_min_time="$MIN_TIME")
  fi
  "$BIN" --benchmark_out="$OUT" --benchmark_out_format=json \
         --benchmark_repetitions="${REPETITIONS:-1}" "${MT[@]}" "${FILTER[@]}"
  echo "wrote $OUT"
done
