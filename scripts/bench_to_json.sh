#!/usr/bin/env bash
# Runs the Table 3 / Figure 8 query benchmark suite and records the results
# as JSON, so the perf trajectory is tracked PR over PR.
#
# Usage: scripts/bench_to_json.sh [output.json]
#   BUILD_DIR=build-release scripts/bench_to_json.sh   # non-default build
#
# Uses --benchmark_out (not --benchmark_format=json on stdout) so the
# binary's human-readable preamble does not corrupt the JSON.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_queries.json}"
BIN="$BUILD_DIR/bench/bench_queries"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

"$BIN" --benchmark_out="$OUT" --benchmark_out_format=json \
       --benchmark_repetitions="${REPETITIONS:-1}"
echo "wrote $OUT"
