#!/usr/bin/env bash
# Full static + dynamic check gate for archis.
#
#   1. Default build (GCC or Clang) with -Werror=unused-result, full ctest.
#   2. If clang++ is available: ARCHIS_ANALYZE=ON build, which turns on
#      Clang thread-safety analysis with -Werror=thread-safety.
#   3. archis-lint over src/ and tools/ (domain-invariant checker).
#   4. recovery_fuzz smoke sweep: randomized WAL crash points, checkpoint
#      crash-phase sweeps, and auto-checkpoint + crash combinations must
#      all recover to the durably-committed state exactly.
#   5. metrics smoke: archis-stats on a durable workload must produce the
#      full profile span tree and a well-formed, non-zero exposition.
#   6. planner-forced equivalence: the translated-vs-native equivalence
#      suite re-runs with the physical planner pinned both ways
#      (ARCHIS_FORCE_PLAN=cost, then =fixed), so cost-based plans and the
#      legacy shape must both match native answers exactly.
#   7. If clang-tidy is available: .clang-tidy checks over src/.
#
# Exits nonzero on the first failing step. Run from the repo root:
#   scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "==> [1/7] default build + tests"
cmake -B build-check -S . >/dev/null
cmake --build build-check -j"$JOBS"
ctest --test-dir build-check --output-on-failure -j"$JOBS"

echo "==> [2/7] clang thread-safety analysis (ARCHIS_ANALYZE=ON)"
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-analyze -S . \
    -DCMAKE_CXX_COMPILER=clang++ -DARCHIS_ANALYZE=ON >/dev/null
  cmake --build build-analyze -j"$JOBS"
else
  echo "    clang++ not found; skipping (annotations are no-ops under GCC)"
fi

echo "==> [3/7] archis-lint (domain invariants)"
./build-check/tools/archis-lint src tools

echo "==> [4/7] recovery fuzz (WAL crash points + checkpoint phases)"
./build-check/tools/recovery_fuzz --runs "${FUZZ_RUNS:-8}"

echo "==> [5/7] metrics smoke (profile spans + exposition)"
BUILD_DIR=build-check scripts/metrics_smoke.sh

echo "==> [6/7] planner-forced equivalence (cost-based, then fixed)"
ARCHIS_FORCE_PLAN=cost ./build-check/tests/equivalence_test
ARCHIS_FORCE_PLAN=fixed ./build-check/tests/equivalence_test

echo "==> [7/7] clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # shellcheck disable=SC2046
  clang-tidy -p build-tidy --warnings-as-errors='*' \
    $(find src -name '*.cc')
else
  echo "    clang-tidy not found; skipping"
fi

echo "==> all checks passed"
