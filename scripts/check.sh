#!/usr/bin/env bash
# Full static + dynamic check gate for archis.
#
#   1. Default build (GCC or Clang) with -Werror=unused-result, full ctest.
#   2. If clang++ is available: ARCHIS_ANALYZE=ON build, which turns on
#      Clang thread-safety analysis with -Werror=thread-safety.
#   3. archis-lint over src/ and tools/ (domain-invariant checker).
#   4. archis-analyze over src/ and tools/: whole-program lock-order
#      cycle search and status-propagation check (DESIGN.md §12).
#   5. recovery_fuzz smoke sweep: randomized WAL crash points, checkpoint
#      crash-phase sweeps, auto-checkpoint + crash combinations, and a
#      concurrent-writer pass (4 threads, fuzzy checkpoints mid-flight,
#      commit-time conflicts on a shared key) must all recover to the
#      durably-committed state exactly.
#   6. metrics smoke: archis-stats on a durable workload must produce the
#      full profile span tree and a well-formed, non-zero exposition.
#   7. flight-recorder trace: archis-stats runs the workload with the
#      always-on recorder, dumps the Chrome trace JSON, and trace_check
#      validates it structurally (snake_case names, phases, timestamps).
#   8. planner-forced equivalence: the translated-vs-native equivalence
#      suite re-runs with the physical planner pinned both ways
#      (ARCHIS_FORCE_PLAN=cost, then =fixed), so cost-based plans and the
#      legacy shape must both match native answers exactly.
#   9. archisd smoke: boots the network daemon on ephemeral ports with a
#      seeded workload, round-trips ping/query/update through
#      archis-client, scrapes GET /metrics and POSTs a query over the
#      HTTP shim, then sends SIGTERM and requires a clean exit 0.
#  10. ThreadSanitizer build + full ctest, with the debug-build lock-rank
#      assertions live: every test doubles as a validation of the lock
#      hierarchy in src/common/lock_rank.h, and TSan catches the races
#      the static side cannot see. The flight-recorder seqlock tests run
#      here too, so a data race in the ring protocol fails this step.
#  11. If clang-tidy is available: .clang-tidy checks over src/.
#
# Exits nonzero on the first failing step and prints a per-step timing
# summary on exit (success or failure). Run from the repo root:
#   scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

STEP_NAMES=()
STEP_SECS=()
CURRENT_STEP=""
STEP_START=0

step() {
  step_end
  CURRENT_STEP="$1"
  STEP_START=$SECONDS
  echo "==> $1"
}

step_end() {
  if [[ -n "$CURRENT_STEP" ]]; then
    STEP_NAMES+=("$CURRENT_STEP")
    STEP_SECS+=($((SECONDS - STEP_START)))
    CURRENT_STEP=""
  fi
}

timing_summary() {
  local status=$?
  step_end
  if [[ ${#STEP_NAMES[@]} -gt 0 ]]; then
    echo
    echo "==> timing summary"
    local i
    for i in "${!STEP_NAMES[@]}"; do
      printf '    %4ss  %s\n' "${STEP_SECS[$i]}" "${STEP_NAMES[$i]}"
    done
    printf '    %4ss  total\n' "$SECONDS"
  fi
  if [[ $status -ne 0 ]]; then
    echo "==> FAILED (exit $status)"
  fi
  return "$status"
}
trap timing_summary EXIT

step "[1/11] default build + tests"
cmake -B build-check -S . >/dev/null
cmake --build build-check -j"$JOBS"
ctest --test-dir build-check --output-on-failure -j"$JOBS"

step "[2/11] clang thread-safety analysis (ARCHIS_ANALYZE=ON)"
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-analyze -S . \
    -DCMAKE_CXX_COMPILER=clang++ -DARCHIS_ANALYZE=ON >/dev/null
  cmake --build build-analyze -j"$JOBS"
else
  echo "    clang++ not found; skipping (annotations are no-ops under GCC)"
fi

step "[3/11] archis-lint (domain invariants)"
./build-check/tools/archis-lint src tools

step "[4/11] archis-analyze (lock-order graph + status propagation)"
./build-check/tools/archis-analyze src tools

step "[5/11] recovery fuzz (WAL crash points + checkpoint phases + concurrent writers)"
./build-check/tools/recovery_fuzz --runs "${FUZZ_RUNS:-8}"

step "[6/11] metrics smoke (profile spans + exposition)"
BUILD_DIR=build-check scripts/metrics_smoke.sh

step "[7/11] flight-recorder trace (workload -> Chrome trace -> trace_check)"
TRACE_TMP="$(mktemp /tmp/archis_trace.XXXXXX.json)"
./build-check/tools/archis-stats --workload --default-query --trace - \
  > "$TRACE_TMP"
./build-check/tools/trace_check "$TRACE_TMP" --min-events 50
rm -f "$TRACE_TMP"

step "[8/11] planner-forced equivalence (cost-based, then fixed)"
ARCHIS_FORCE_PLAN=cost ./build-check/tests/equivalence_test
ARCHIS_FORCE_PLAN=fixed ./build-check/tests/equivalence_test

step "[9/11] archisd smoke (boot, wire + HTTP round trips, clean SIGTERM)"
ARCHISD_DIR="$(mktemp -d /tmp/archisd_smoke.XXXXXX)"
# `exec` so $! is archisd itself, not a shell wrapper.
( exec ./build-check/tools/archisd --data "$ARCHISD_DIR/data" \
    --port 0 --http-port 0 --port-file "$ARCHISD_DIR/ports" \
    --seed-workload --employees 20 --years 2 ) \
  > "$ARCHISD_DIR/log" 2>&1 &
ARCHISD_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$ARCHISD_DIR/ports" ]] && break
  sleep 0.1
done
[[ -s "$ARCHISD_DIR/ports" ]] || {
  echo "archisd never wrote its port file"; cat "$ARCHISD_DIR/log"; exit 1; }
read -r ARCHISD_PORT ARCHISD_HTTP < "$ARCHISD_DIR/ports"
./build-check/tools/archis-client --port "$ARCHISD_PORT" ping
./build-check/tools/archis-client --port "$ARCHISD_PORT" query \
  'for $e in doc("employees.xml")/employees/employee return $e/name' \
  | grep -q '<results>'
./build-check/tools/archis-client --port "$ARCHISD_PORT" update \
  'insert employees|990001|Smoke Person|50000|Engineer|D1' \
  | grep -q 'committed 1'
if command -v curl >/dev/null 2>&1; then
  curl -sf "http://127.0.0.1:$ARCHISD_HTTP/metrics" \
    | grep -q 'archis_server_requests_total'
  curl -sf -X POST --data-binary \
    'for $e in doc("employees.xml")/employees/employee[id=990001]/name return $e' \
    "http://127.0.0.1:$ARCHISD_HTTP/query" | grep -q 'Smoke Person'
else
  # No curl in the image: a bare /dev/tcp HTTP/1.0 GET still proves the shim.
  exec 3<>"/dev/tcp/127.0.0.1/$ARCHISD_HTTP"
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  grep -q 'archis_server_requests_total' <&3
  exec 3<&- 3>&-
fi
kill -TERM "$ARCHISD_PID"
ARCHISD_EXIT=0
wait "$ARCHISD_PID" || ARCHISD_EXIT=$?
[[ "$ARCHISD_EXIT" -eq 0 ]] || {
  echo "archisd exited $ARCHISD_EXIT on SIGTERM"; cat "$ARCHISD_DIR/log"
  exit 1; }
rm -rf "$ARCHISD_DIR"

step "[10/11] ThreadSanitizer + lock-rank assertions (full ctest)"
cmake -B build-tsan -S . -DARCHIS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS"
ctest --test-dir build-tsan --output-on-failure -j"$JOBS"

step "[11/11] clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # shellcheck disable=SC2046
  clang-tidy -p build-tidy --warnings-as-errors='*' \
    $(find src -name '*.cc')
else
  echo "    clang-tidy not found; skipping"
fi

step_end
echo "==> all checks passed"
