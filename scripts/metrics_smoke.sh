#!/usr/bin/env bash
# Metrics smoke test: drives tools/archis-stats through a durable employee
# workload plus a profiled snapshot query, then asserts that
#   - the trace profile contains the parse/translate/execute/segment-scan
#     span tree,
#   - the Prometheus exposition is well-formed and every load-bearing
#     instrument (WAL fsync, block cache, page IO, segment usefulness)
#     actually moved.
#
# Usage: BUILD_DIR=build scripts/metrics_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
BIN="$BUILD_DIR/tools/archis-stats"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built" >&2
  exit 1
fi

WAL="$(mktemp -u /tmp/archis-metrics-smoke.XXXXXX.wal)"
trap 'rm -f "$WAL"' EXIT

OUT="$("$BIN" --workload --employees 60 --years 8 --wal "$WAL" \
              --default-query --repeat 2 --profile)"

fail() {
  echo "metrics smoke FAILED: $1" >&2
  echo "---- archis-stats output ----" >&2
  echo "$OUT" >&2
  exit 1
}

# 1. The profile renders the full span tree. (Herestrings, not
#    `echo | grep -q`: under pipefail an early-exiting grep -q can EPIPE
#    the echo and fail the check even though the pattern matched.)
for span in query parse translate execute segment-scan; do
  grep -qE "^ *$span +[0-9.]+ ms" <<<"$OUT" \
    || fail "profile is missing span '$span'"
done

# 2. Load-bearing counters moved: WAL group commit, block cache, page IO,
#    clustering, capture, query accounting.
for metric in \
    archis_wal_fsync_seconds_count \
    archis_wal_syncs_total \
    archis_block_cache_hits_total \
    archis_page_reads_total \
    archis_segment_freezes_total \
    archis_segment_freeze_usefulness_count \
    archis_txn_commits_total \
    archis_changes_captured_total \
    archis_queries_translated_total \
    archis_query_seconds_count; do
  grep -qE "^$metric [1-9][0-9]*$" <<<"$OUT" \
    || fail "metric '$metric' absent or zero"
done

# 3. The sliding-window families render their labeled gauges (rate plus
#    percentiles over the trailing windows — DESIGN.md §14.5).
for line in \
    'archis_query_window_seconds\{window="1s",stat="rate"\}' \
    'archis_query_window_seconds\{window="60s",stat="p99"\}' \
    'archis_fsync_window_seconds\{window="10s",stat="p95"\}'; do
  grep -qE "^$line " <<<"$OUT" \
    || fail "windowed gauge '$line' absent from exposition"
done

# 4. Exposition well-formedness: after '== metrics ==', every line is a
#    comment or `name[{label="...",...}] value` (labels cover `le` buckets,
#    windowed `window`/`stat` pairs and breakdown families like
#    `archis_txn_abort_total{reason=...}`).
BAD=$(echo "$OUT" | sed -n '/^== metrics ==$/,$p' | tail -n +2 | grep -vE \
  '^(# (HELP|TYPE) .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9][0-9eE.+-]*)$' \
  || true)
[[ -z "$BAD" ]] || fail "malformed exposition lines: $BAD"

echo "metrics smoke passed"
