// archis-client: command-line client for archisd's binary protocol.
//
//   archis-client --port N [--host H] ping
//   archis-client --port N [--deadline-ms N] query "<XQuery>"
//   archis-client --port N update "<script>"     (see server/protocol.h
//                                                 for the line grammar)
//
// Prints the response payload to stdout; protocol/server errors go to
// stderr with exit code 1 (3 for Overloaded, 4 for DeadlineExceeded, so
// scripts can distinguish admission outcomes).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/client.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: archis-client --port N [--host H] [--deadline-ms N]\n"
               "                     ping | query XQ | update SCRIPT\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  archis::server::ClientOptions opts;
  uint32_t deadline_ms = 0;
  std::string command;
  std::string operand;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port") {
      if ((v = next()) == nullptr) return Usage();
      opts.port = std::atoi(v);
    } else if (arg == "--host") {
      if ((v = next()) == nullptr) return Usage();
      opts.host = v;
    } else if (arg == "--deadline-ms") {
      if ((v = next()) == nullptr) return Usage();
      deadline_ms = static_cast<uint32_t>(std::atol(v));
    } else if (command.empty()) {
      command = arg;
    } else if (operand.empty()) {
      operand = arg;
    } else {
      return Usage();
    }
  }
  if (opts.port <= 0 || command.empty()) return Usage();

  archis::server::ArchisClient client(opts);
  const auto report = [](const archis::Status& st) {
    std::fprintf(stderr, "archis-client: %s\n", st.ToString().c_str());
    switch (st.code()) {
      case archis::StatusCode::kOverloaded:       return 3;
      case archis::StatusCode::kDeadlineExceeded: return 4;
      default:                                    return 1;
    }
  };

  if (command == "ping") {
    archis::Status st = client.Ping();
    if (!st.ok()) return report(st);
    std::printf("pong\n");
    return 0;
  }
  if (operand.empty()) return Usage();
  archis::Result<std::string> result =
      command == "query"    ? client.Query(operand, deadline_ms)
      : command == "update" ? client.UpdateBatch(operand)
                            : archis::Result<std::string>(
                                  archis::Status::InvalidArgument(
                                      "unknown command '" + command + "'"));
  if (command != "query" && command != "update") return Usage();
  if (!result.ok()) return report(result.status());
  std::printf("%s\n", result->c_str());
  return 0;
}
