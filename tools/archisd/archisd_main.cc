// archisd: the ArchIS network daemon.
//
//   archisd --data DIR --port N [--http-port N] [--workers N]
//           [--queue-depth N] [--deadline-ms N] [--seed-workload]
//           [--employees N] [--years N] [--port-file PATH]
//
// Serves the binary protocol (server/protocol.h) on --port and, when
// --http-port is given, an HTTP/1.0 shim with GET /metrics (Prometheus
// text exposition) and POST /query (body = XQuery, response = XML).
// Port 0 binds an ephemeral port; --port-file writes the actual bound
// ports ("<port> <http_port>\n") so scripts can find them.
//
// --data DIR makes the store durable (WAL + checkpoints under DIR);
// without it the instance is in-memory. --seed-workload loads the
// synthetic employee history (the paper's evaluation data) before
// serving, so a fresh daemon has something to query.
//
// SIGTERM / SIGINT trigger a graceful shutdown: stop accepting, drain
// every admitted request, exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

#include "archis/archis.h"
#include "server/server.h"
#include "workload/employee_workload.h"

namespace {

using archis::Date;
using archis::Status;
using archis::core::ArchIS;
using archis::core::ArchISOptions;

int Usage() {
  std::fprintf(
      stderr,
      "usage: archisd [--data DIR] [--port N] [--http-port N]\n"
      "               [--host ADDR] [--workers N] [--queue-depth N]\n"
      "               [--deadline-ms N] [--max-connections N]\n"
      "               [--seed-workload] [--employees N] [--years N]\n"
      "               [--port-file PATH]\n");
  return 2;
}

// Self-pipe: the signal handler only writes one byte; the main thread
// blocks on the read end and runs the actual (non-async-signal-safe)
// shutdown.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  const char byte = 1;
  // Best effort: a full pipe means a shutdown is already pending.
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir;
  std::string port_file;
  archis::server::ServerOptions server_opts;
  server_opts.port = 4846;
  bool seed_workload = false;
  int employees = 60;
  int years = 8;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--data") {
      if ((v = next()) == nullptr) return Usage();
      data_dir = v;
    } else if (arg == "--port") {
      if ((v = next()) == nullptr) return Usage();
      server_opts.port = std::atoi(v);
    } else if (arg == "--http-port") {
      if ((v = next()) == nullptr) return Usage();
      server_opts.http_port = std::atoi(v);
    } else if (arg == "--host") {
      if ((v = next()) == nullptr) return Usage();
      server_opts.host = v;
    } else if (arg == "--workers") {
      if ((v = next()) == nullptr) return Usage();
      server_opts.workers = std::atoi(v);
    } else if (arg == "--queue-depth") {
      if ((v = next()) == nullptr) return Usage();
      server_opts.queue_capacity = static_cast<size_t>(std::atol(v));
    } else if (arg == "--deadline-ms") {
      if ((v = next()) == nullptr) return Usage();
      server_opts.default_deadline_ms =
          static_cast<uint32_t>(std::atol(v));
    } else if (arg == "--max-connections") {
      if ((v = next()) == nullptr) return Usage();
      server_opts.max_connections = static_cast<size_t>(std::atol(v));
    } else if (arg == "--seed-workload") {
      seed_workload = true;
    } else if (arg == "--employees") {
      if ((v = next()) == nullptr) return Usage();
      employees = std::atoi(v);
    } else if (arg == "--years") {
      if ((v = next()) == nullptr) return Usage();
      years = std::atoi(v);
    } else if (arg == "--port-file") {
      if ((v = next()) == nullptr) return Usage();
      port_file = v;
    } else {
      return Usage();
    }
  }

  ArchISOptions options;
  if (!data_dir.empty()) {
    ::mkdir(data_dir.c_str(), 0755);
    options.wal.path = data_dir + "/archis.wal";
  }
  archis::workload::WorkloadConfig config;
  config.initial_employees = employees;
  config.years = years;

  auto opened = ArchIS::Open(options, config.start_date);
  if (!opened.ok()) {
    std::fprintf(stderr, "archisd: open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  ArchIS& db = **opened;

  if (seed_workload) {
    archis::workload::EmployeeWorkload wl(config);
    auto stats = wl.Generate(&db);
    if (!stats.ok()) {
      std::fprintf(stderr, "archisd: workload failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (Status st = db.FreezeAll(); !st.ok()) {
      std::fprintf(stderr, "archisd: freeze failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  // Install signal handling BEFORE starting the server so a racing
  // SIGTERM still shuts down cleanly.
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "archisd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // dead peers surface as write errors

  auto server = archis::server::ArchisServer::Start(&db, server_opts);
  if (!server.ok()) {
    std::fprintf(stderr, "archisd: start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "archisd: serving on port %d (http %d)\n",
               (*server)->port(), (*server)->http_port());

  if (!port_file.empty()) {
    // Write to a temp name and rename so readers never see a partial
    // file.
    const std::string tmp = port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "archisd: cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d %d\n", (*server)->port(), (*server)->http_port());
    std::fclose(f);
    std::rename(tmp.c_str(), port_file.c_str());
  }

  // Park until a shutdown signal arrives.
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "archisd: shutting down\n");
  Status st = (*server)->Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "archisd: stop failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
