// trace_check: validates a flight-recorder artifact — either a Chrome
// trace_event JSON file (archis-stats --trace, ArchIS::DumpTrace) or a
// `.crashdump` written by the crash handler / recovery_fuzz.
//
//   trace_check FILE [--min-events N]      (FILE may be "-" for stdin)
//
// Checks, via the in-tree JSON parser (common/json.h):
//   - the file parses as one JSON object;
//   - it carries a "traceEvents" array (trace) or an "events" array plus
//     "reason"/"unix_ms"/"pid" (crashdump);
//   - every event object has a snake_case string "name", a string "ph"
//     of "i" or "X", numeric "ts"/"pid"/"tid", and "dur" when ph=="X";
//   - at least --min-events events are present (default 1).
//
// Exit 0 on success; 1 with one diagnostic line per violation otherwise.
// scripts/check.sh runs it over a fresh workload trace so a malformed
// emitter fails tier-1 verification.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json.h"

namespace {

using archis::json::Value;
using Type = archis::json::Value::Type;

bool IsSnakeCase(const std::string& s) {
  if (s.empty() || s[0] < 'a' || s[0] > 'z') return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

int g_errors = 0;

void Fail(size_t index, const char* what) {
  std::fprintf(stderr, "trace_check: event %zu: %s\n", index, what);
  ++g_errors;
}

void CheckEvent(size_t i, const Value& ev) {
  if (ev.type() != Type::kObject) {
    Fail(i, "not a JSON object");
    return;
  }
  const Value* name = ev.Find("name");
  if (name == nullptr || name->type() != Type::kString) {
    Fail(i, "missing string \"name\"");
  } else if (!IsSnakeCase(name->AsString())) {
    Fail(i, "\"name\" is not snake_case");
  }
  const Value* ph = ev.Find("ph");
  bool complete = false;
  if (ph == nullptr || ph->type() != Type::kString) {
    Fail(i, "missing string \"ph\"");
  } else if (ph->AsString() == "X") {
    complete = true;
  } else if (ph->AsString() != "i") {
    Fail(i, "\"ph\" must be \"i\" or \"X\"");
  }
  for (const char* key : {"ts", "pid", "tid"}) {
    const Value* v = ev.Find(key);
    if (v == nullptr || v->type() != Type::kNumber) {
      Fail(i, "missing numeric ts/pid/tid field");
      break;
    }
  }
  if (complete) {
    const Value* dur = ev.Find("dur");
    if (dur == nullptr || dur->type() != Type::kNumber) {
      Fail(i, "complete event (ph=X) without numeric \"dur\"");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  long min_events = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-events") == 0 && i + 1 < argc) {
      min_events = std::atol(argv[++i]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: trace_check FILE [--min-events N]\n");
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: trace_check FILE [--min-events N]\n");
    return 2;
  }

  std::ostringstream buf;
  if (std::strcmp(path, "-") == 0) {
    buf << std::cin.rdbuf();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "trace_check: cannot read %s\n", path);
      return 1;
    }
    buf << in.rdbuf();
  }
  const std::string text = buf.str();

  auto parsed = archis::json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path,
                 parsed.status().ToString().c_str());
    return 1;
  }
  const Value& root = *parsed;
  if (root.type() != Type::kObject) {
    std::fprintf(stderr, "trace_check: %s: root is not an object\n", path);
    return 1;
  }

  const Value* events = root.Find("traceEvents");
  if (events == nullptr) {
    // Crashdump shape: events plus the crash envelope.
    events = root.Find("events");
    if (events != nullptr) {
      for (const char* key : {"reason", "unix_ms", "pid"}) {
        if (root.Find(key) == nullptr) {
          std::fprintf(stderr, "trace_check: %s: crashdump missing \"%s\"\n",
                       path, key);
          ++g_errors;
        }
      }
    }
  }
  if (events == nullptr || events->type() != Type::kArray) {
    std::fprintf(stderr,
                 "trace_check: %s: no \"traceEvents\"/\"events\" array\n",
                 path);
    return 1;
  }

  const auto& items = events->items();
  for (size_t i = 0; i < items.size(); ++i) CheckEvent(i, items[i]);
  if (static_cast<long>(items.size()) < min_events) {
    std::fprintf(stderr, "trace_check: %s: %zu events, expected >= %ld\n",
                 path, items.size(), min_events);
    ++g_errors;
  }

  if (g_errors > 0) return 1;
  std::printf("trace_check: %s: %zu events ok\n", path, items.size());
  return 0;
}
