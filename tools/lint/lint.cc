#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace archis::lint {
namespace {

namespace fs = std::filesystem;

/// Whether `path` (forward slashes) ends with any of `suffixes`.
bool PathEndsWithAny(const std::string& path,
                     const std::vector<std::string>& suffixes) {
  return std::any_of(suffixes.begin(), suffixes.end(),
                     [&](const std::string& s) {
                       return path.size() >= s.size() &&
                              path.compare(path.size() - s.size(), s.size(),
                                           s) == 0;
                     });
}

bool PathContains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Line number (1-based) of byte offset `pos`.
int LineOf(const std::string& text, size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() + pos,
                                         '\n'));
}

/// Lines carrying an `archis-lint: allow(<rule>)` suppression, per rule.
/// A suppression covers its own line and the next one, so the comment can
/// sit above the offending statement.
std::set<std::pair<std::string, int>> Suppressions(const std::string& src) {
  std::set<std::pair<std::string, int>> out;
  static const std::string kTag = "archis-lint: allow(";
  size_t pos = 0;
  while ((pos = src.find(kTag, pos)) != std::string::npos) {
    size_t open = pos + kTag.size();
    size_t close = src.find(')', open);
    if (close != std::string::npos) {
      std::string rule = src.substr(open, close - open);
      int line = LineOf(src, pos);
      out.insert({rule, line});
      out.insert({rule, line + 1});
    }
    pos = open;
  }
  return out;
}

struct RuleContext {
  const std::string& path;      // normalized, forward slashes
  const std::string& code;      // comments stripped, strings kept
  const std::set<std::pair<std::string, int>>& suppressed;
  std::vector<Finding>* findings;

  void Report(const std::string& rule, size_t pos,
              const std::string& message) const {
    int line = LineOf(code, pos);
    if (suppressed.count({rule, line}) != 0) return;
    findings->push_back({path, line, rule, message});
  }
};

// ---- Rule: forbidden-literal ---------------------------------------------

void CheckForbiddenLiteral(const RuleContext& ctx) {
  if (PathEndsWithAny(ctx.path, {"common/date.h", "common/date.cc",
                                 "temporal/now.h", "temporal/now.cc"})) {
    return;
  }
  for (const std::string& needle :
       {std::string("9999-12-31"), std::string("FromYmd(9999")}) {
    size_t pos = 0;
    while ((pos = ctx.code.find(needle, pos)) != std::string::npos) {
      ctx.Report("forbidden-literal", pos,
                 "raw `now` sentinel ('" + needle +
                     "'); use Date::Forever() / temporal::ForeverString()");
      pos += needle.size();
    }
  }
}

// ---- Rule: raw-interval ---------------------------------------------------

void CheckRawInterval(const RuleContext& ctx) {
  if (PathEndsWithAny(ctx.path,
                      {"common/interval.h", "common/interval.cc"})) {
    return;
  }
  static const std::string kName = "TimeInterval";
  size_t pos = 0;
  while ((pos = ctx.code.find(kName, pos)) != std::string::npos) {
    size_t start = pos;
    pos += kName.size();
    // Must be a whole identifier ("MakeTimeIntervalish" doesn't count).
    if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
    size_t after = pos;
    while (after < ctx.code.size() &&
           std::isspace(static_cast<unsigned char>(ctx.code[after]))) {
      ++after;
    }
    if (after >= ctx.code.size()) break;
    char open = ctx.code[after];
    if (open != '(' && open != '{') continue;  // not a construction
    char close = open == '(' ? ')' : '}';
    size_t arg = after + 1;
    while (arg < ctx.code.size() &&
           std::isspace(static_cast<unsigned char>(ctx.code[arg]))) {
      ++arg;
    }
    if (arg >= ctx.code.size() || ctx.code[arg] == close) {
      continue;  // TimeInterval() / TimeInterval{}: default init is fine
    }
    ctx.Report("raw-interval", start,
               "direct TimeInterval construction bypasses validation; use "
               "MakeInterval (guaranteed-valid bounds) or "
               "MakeIntervalChecked (untrusted input)");
  }
}

// ---- Rule: raw-mutex ------------------------------------------------------

void CheckRawMutex(const RuleContext& ctx) {
  if (PathEndsWithAny(ctx.path, {"common/mutex.h"})) return;
  static const std::vector<std::string> kBanned = {
      "std::mutex",       "std::recursive_mutex",
      "std::timed_mutex", "std::shared_mutex",
      "std::lock_guard",  "std::unique_lock",
      "std::scoped_lock", "std::condition_variable",
      "std::once_flag",   "std::call_once",
  };
  for (const std::string& needle : kBanned) {
    size_t pos = 0;
    while ((pos = ctx.code.find(needle, pos)) != std::string::npos) {
      size_t start = pos;
      pos += needle.size();
      // Whole-token match only (std::condition_variable_any is caught by
      // its own prefix entry, but don't double-report it).
      if (pos < ctx.code.size() && IsIdentChar(ctx.code[pos])) {
        if (needle != "std::condition_variable") {
          continue;
        }
      }
      ctx.Report("raw-mutex", start,
                 "raw " + needle +
                     " is invisible to thread-safety analysis; use the "
                     "annotated archis::Mutex / MutexLock / CondVar "
                     "(common/mutex.h)");
    }
  }
}

// ---- Rule: void-mutator ---------------------------------------------------

void CheckVoidMutator(const RuleContext& ctx) {
  // Public persistence-facing APIs only: a void mutator there has no
  // error channel for the I/O failure it will eventually meet.
  const bool in_scope =
      (PathContains(ctx.path, "/storage/") ||
       PathContains(ctx.path, "/archis/") ||
       PathContains(ctx.path, "/compress/") ||
       PathContains(ctx.path, "/xmldb/")) &&
      PathEndsWithAny(ctx.path, {".h"});
  if (!in_scope) return;
  static const std::vector<std::string> kVerbs = {
      "Insert", "Put",    "Write",   "Flush",  "Persist", "Load",
      "Store",  "Append", "Close",   "Freeze", "Delete",  "Remove",
      "Archive", "Commit", "Capture", "Publish",
  };
  static const std::string kVoid = "void";
  size_t pos = 0;
  while ((pos = ctx.code.find(kVoid, pos)) != std::string::npos) {
    size_t start = pos;
    pos += kVoid.size();
    if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
    if (pos < ctx.code.size() && IsIdentChar(ctx.code[pos])) continue;
    // Skip whitespace to the function name.
    size_t name = pos;
    while (name < ctx.code.size() &&
           std::isspace(static_cast<unsigned char>(ctx.code[name]))) {
      ++name;
    }
    size_t name_end = name;
    while (name_end < ctx.code.size() && IsIdentChar(ctx.code[name_end])) {
      ++name_end;
    }
    if (name_end == name || name_end >= ctx.code.size() ||
        ctx.code[name_end] != '(') {
      continue;  // `void*`, `void>`, or not a declaration
    }
    std::string fn = ctx.code.substr(name, name_end - name);
    for (const std::string& verb : kVerbs) {
      if (fn.compare(0, verb.size(), verb) == 0) {
        ctx.Report("void-mutator", start,
                   "public mutator '" + fn +
                       "' returns void; return Status so failures are "
                       "reportable (or suppress with a reason if it is "
                       "provably infallible)");
        break;
      }
    }
  }
}

// ---- Rule: lock-rank ------------------------------------------------------

void CheckLockRank(const RuleContext& ctx) {
  // Named mutexes in src/ must join the lock hierarchy at declaration.
  // The primitive's own internals are exempt; tests and tools may declare
  // scratch mutexes (fixtures, selftests) without a rank.
  if (!PathContains(ctx.path, "src/")) return;
  if (PathEndsWithAny(ctx.path, {"common/mutex.h"})) return;
  static const std::string kNeedle = "Mutex";
  size_t pos = 0;
  while ((pos = ctx.code.find(kNeedle, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += kNeedle.size();
    // Whole token only: MutexLock, SomeMutexish etc. are not declarations
    // of archis::Mutex.
    if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
    if (pos < ctx.code.size() && IsIdentChar(ctx.code[pos])) continue;
    size_t i = pos;
    auto skip_ws = [&] {
      while (i < ctx.code.size() &&
             std::isspace(static_cast<unsigned char>(ctx.code[i]))) {
        ++i;
      }
    };
    skip_ws();
    // `Mutex&`, `Mutex*`, `Mutex(` ... are uses, not declarations.
    if (i >= ctx.code.size() || !IsIdentChar(ctx.code[i]) ||
        std::isdigit(static_cast<unsigned char>(ctx.code[i])) != 0) {
      continue;
    }
    while (i < ctx.code.size() && IsIdentChar(ctx.code[i])) ++i;
    skip_ws();
    if (i >= ctx.code.size()) continue;
    if (ctx.code[i] == ';') {
      ctx.Report("lock-rank", start,
                 "named archis::Mutex declared without a LockRank; "
                 "construct it with an ordinal from common/lock_rank.h "
                 "(e.g. Mutex mu_{LockRank::kWal}) so rank-monotonic "
                 "acquisition is enforced in debug builds");
      continue;
    }
    if (ctx.code[i] == '{') {
      size_t close = ctx.code.find('}', i);
      if (close == std::string::npos) continue;
      if (ctx.code.substr(i, close - i).find("LockRank") ==
          std::string::npos) {
        ctx.Report("lock-rank", start,
                   "named archis::Mutex initialized without a LockRank; "
                   "construct it with an ordinal from common/lock_rank.h "
                   "(e.g. Mutex mu_{LockRank::kWal}) so rank-monotonic "
                   "acquisition is enforced in debug builds");
      }
      continue;
    }
  }
}

// ---- Rule: deprecated-api -------------------------------------------------

void CheckDeprecatedApi(const RuleContext& ctx) {
  // The shims are gone from the facade; only the linter itself (which
  // holds the pattern strings) is exempt.
  if (PathEndsWithAny(ctx.path, {"tools/lint/lint.cc"})) {
    return;
  }
  // FlushLog: retired by the transactional write path.
  static const std::string kFlush = "FlushLog";
  size_t pos = 0;
  while ((pos = ctx.code.find(kFlush, pos)) != std::string::npos) {
    size_t start = pos;
    pos += kFlush.size();
    if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
    if (pos < ctx.code.size() && IsIdentChar(ctx.code[pos])) continue;
    ctx.Report("deprecated-api", start,
               "FlushLog() is deprecated; commit through "
               "Transaction::Commit() or ArchIS::Commit()");
  }
  // Legacy five-parameter CreateRelation: its first argument was the
  // relation name — a string literal right after the paren gives it away.
  // The replacement takes a RelationSpec.
  static const std::string kCreate = "CreateRelation";
  pos = 0;
  while ((pos = ctx.code.find(kCreate, pos)) != std::string::npos) {
    size_t start = pos;
    pos += kCreate.size();
    if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
    size_t after = pos;
    while (after < ctx.code.size() &&
           std::isspace(static_cast<unsigned char>(ctx.code[after]))) {
      ++after;
    }
    if (after >= ctx.code.size() || ctx.code[after] != '(') continue;
    ++after;
    while (after < ctx.code.size() &&
           std::isspace(static_cast<unsigned char>(ctx.code[after]))) {
      ++after;
    }
    if (after >= ctx.code.size() || ctx.code[after] != '"') continue;
    ctx.Report("deprecated-api", start,
               "legacy five-parameter CreateRelation(name, ...); pass a "
               "RelationSpec instead");
  }
}

// ---- Rule: raw-logging ----------------------------------------------------

void CheckRawLogging(const RuleContext& ctx) {
  // Production sources only: tools, tests and bench are user-facing
  // programs that legitimately print. The logger implementation is the
  // one sanctioned raw writer.
  const bool in_scope =
      ctx.path.rfind("src/", 0) == 0 || PathContains(ctx.path, "/src/");
  if (!in_scope) return;
  if (PathEndsWithAny(ctx.path, {"common/log.h", "common/log.cc"})) return;
  // Whole-token matches only, so std::snprintf / fwrite(file IO) never
  // fire. std::clog is the iostream third sibling; vprintf/vfprintf the
  // stdio variadic forms.
  static const std::vector<std::string> kBanned = {
      "printf",    "fprintf",   "vprintf",   "vfprintf",
      "puts",      "fputs",     "std::cout", "std::cerr",
      "std::clog",
  };
  for (const std::string& needle : kBanned) {
    size_t pos = 0;
    while ((pos = ctx.code.find(needle, pos)) != std::string::npos) {
      size_t start = pos;
      pos += needle.size();
      // Token boundaries: "snprintf" must not match "printf", and
      // "fprintf" must not match inside "vfprintf". A preceding ':' means
      // a qualified name we didn't spell (std::printf is still printf —
      // allow the qualifier itself).
      if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
      if (pos < ctx.code.size() && IsIdentChar(ctx.code[pos])) continue;
      ctx.Report("raw-logging", start,
                 "raw console output ('" + needle +
                     "') in src/; emit structured events through the "
                     "leveled logger (common/log.h), e.g. "
                     "archis::logging::Warn(\"event\").Kv(...)");
    }
  }
}

// ---- Rule: plan-ownership -------------------------------------------------

void CheckPlanOwnership(const RuleContext& ctx) {
  // PhysicalPlan values are produced by the cost-based planner alone
  // (archis/planner.*); any other construction — brace-init or a local
  // declaration — bypasses the cost model and ships an unplanned shape to
  // the executor. References and pointers are fine: the executor consumes
  // plans read-only.
  const bool in_scope =
      ctx.path.rfind("src/", 0) == 0 || PathContains(ctx.path, "/src/");
  if (!in_scope) return;
  if (PathEndsWithAny(ctx.path, {"archis/planner.cc"})) return;
  static const std::string kName = "PhysicalPlan";
  size_t pos = 0;
  while ((pos = ctx.code.find(kName, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += kName.size();
    if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
    if (pos < ctx.code.size() && IsIdentChar(ctx.code[pos])) continue;
    // The type's own definition ("struct PhysicalPlan { ... }").
    size_t before = start;
    while (before > 0 && std::isspace(static_cast<unsigned char>(
                             ctx.code[before - 1]))) {
      --before;
    }
    size_t word = before;
    while (word > 0 && IsIdentChar(ctx.code[word - 1])) --word;
    const std::string prev = ctx.code.substr(word, before - word);
    if (prev == "struct" || prev == "class") continue;
    size_t after = pos;
    while (after < ctx.code.size() &&
           std::isspace(static_cast<unsigned char>(ctx.code[after]))) {
      ++after;
    }
    if (after >= ctx.code.size()) break;
    bool constructs = false;
    if (ctx.code[after] == '{') {
      constructs = true;  // PhysicalPlan{...} aggregate construction
    } else if (IsIdentChar(ctx.code[after])) {
      // `PhysicalPlan name;` / `= ...` / `{...}` declares a value; a '('
      // after the identifier is a function declaration returning one.
      size_t ident_end = after;
      while (ident_end < ctx.code.size() && IsIdentChar(ctx.code[ident_end])) {
        ++ident_end;
      }
      size_t tail = ident_end;
      while (tail < ctx.code.size() &&
             std::isspace(static_cast<unsigned char>(ctx.code[tail]))) {
        ++tail;
      }
      if (tail < ctx.code.size() &&
          (ctx.code[tail] == ';' || ctx.code[tail] == '=' ||
           ctx.code[tail] == '{')) {
        constructs = true;
      }
    }
    if (constructs) {
      ctx.Report("plan-ownership", start,
                 "PhysicalPlan constructed outside the planner; obtain one "
                 "from PlanQuery() / DefaultPhysicalPlan() "
                 "(archis/planner.h) — the planner is the sole producer of "
                 "physical plans");
    }
  }
}

// ---- Rule: trace-event-names ----------------------------------------------

void CheckTraceEventNames(const RuleContext& ctx) {
  // (a) Every fr::Record call site must pass a registered EventType
  // enumerator as its first argument — never an integer, a cast or a
  // variable — so the trace vocabulary stays closed by construction and
  // tools (trace_check, Perfetto queries) can rely on the name set.
  static const std::string kCall = "fr::Record(";
  size_t pos = 0;
  while ((pos = ctx.code.find(kCall, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += kCall.size();
    if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
    size_t arg = pos;
    while (arg < ctx.code.size() &&
           std::isspace(static_cast<unsigned char>(ctx.code[arg]))) {
      ++arg;
    }
    static const std::vector<std::string> kAllowed = {
        "fr::EventType::k", "EventType::k", "archis::fr::EventType::k"};
    bool ok = false;
    for (const std::string& prefix : kAllowed) {
      if (ctx.code.compare(arg, prefix.size(), prefix) == 0) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      ctx.Report("trace-event-names", start,
                 "fr::Record's first argument must be a registered "
                 "fr::EventType enumerator (EventType::k...); raw integers "
                 "or variables open the closed trace-event vocabulary");
    }
  }
  // (b) The registered display names themselves must be snake_case
  // literals, so every emitted trace/crashdump name is greppable and
  // tools never see mixed-case event names.
  if (!PathEndsWithAny(ctx.path, {"common/flight_recorder.h"})) return;
  static const std::string kEntry = "X(k";
  pos = 0;
  while ((pos = ctx.code.find(kEntry, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += kEntry.size();
    if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
    size_t open = ctx.code.find('"', start);
    if (open == std::string::npos) break;
    size_t close = ctx.code.find('"', open + 1);
    if (close == std::string::npos) break;
    const std::string name = ctx.code.substr(open + 1, close - open - 1);
    bool snake = !name.empty() && name[0] >= 'a' && name[0] <= 'z';
    for (char c : name) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
        snake = false;
        break;
      }
    }
    if (!snake) {
      ctx.Report("trace-event-names", start,
                 "trace event display name '" + name +
                     "' must be snake_case ([a-z][a-z0-9_]*)");
    }
    pos = close + 1;
  }
}

// Rule: raw-socket. Raw socket(2)-family calls are confined to
// src/server/, the one subsystem whose job is the network. Everything
// else talks through server::ArchisClient / server::ArchisServer, so
// socket lifecycle, timeouts and shutdown semantics have a single home.
void CheckRawSocket(const RuleContext& ctx) {
  if (PathContains(ctx.path, "src/server/")) return;
  static const std::vector<std::string> kBanned = {
      "socket", "accept", "accept4", "getsockname", "setsockopt",
  };
  for (const std::string& needle : kBanned) {
    size_t pos = 0;
    while ((pos = ctx.code.find(needle, pos)) != std::string::npos) {
      const size_t start = pos;
      pos += needle.size();
      if (start > 0 && IsIdentChar(ctx.code[start - 1])) continue;
      if (pos < ctx.code.size() && IsIdentChar(ctx.code[pos])) continue;
      // Only call sites: the token must be followed by '(' (possibly
      // after whitespace), so identifiers like `socket_path` or prose in
      // string literals do not fire.
      size_t call = pos;
      while (call < ctx.code.size() &&
             std::isspace(static_cast<unsigned char>(ctx.code[call]))) {
        ++call;
      }
      if (call >= ctx.code.size() || ctx.code[call] != '(') continue;
      ctx.Report("raw-socket", start,
                 "raw socket call ('" + needle +
                     "') outside src/server/; the network front end owns "
                     "all socket handling — use server::ArchisClient or "
                     "server::ArchisServer instead");
    }
  }
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::string StripComments(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& contents) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  // The rule tables below necessarily spell every banned token in string
  // literals, so the checker exempts its own implementation.
  if (PathEndsWithAny(normalized, {"tools/lint/lint.cc"})) return {};
  // Suppressions live in comments, so collect them before stripping.
  const auto suppressed = Suppressions(contents);
  const std::string code = StripComments(contents);
  std::vector<Finding> findings;
  RuleContext ctx{normalized, code, suppressed, &findings};
  CheckForbiddenLiteral(ctx);
  CheckRawInterval(ctx);
  CheckRawMutex(ctx);
  CheckVoidMutator(ctx);
  CheckLockRank(ctx);
  CheckDeprecatedApi(ctx);
  CheckRawLogging(ctx);
  CheckPlanOwnership(ctx);
  CheckTraceEventNames(ctx);
  CheckRawSocket(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

Result<std::vector<Finding>> LintTree(const std::vector<std::string>& roots) {
  std::vector<Finding> all;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (!fs::exists(root, ec)) {
      return Status::NotFound("lint root '" + root + "' does not exist");
    }
    std::vector<fs::path> files;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        const fs::path& p = it->path();
        // Never descend into build output or seeded violation fixtures.
        if (it->is_directory()) {
          const std::string name = p.filename().string();
          if (name.rfind("build", 0) == 0 || name == "lint_fixtures") {
            it.disable_recursion_pending();
          }
          continue;
        }
        const std::string ext = p.extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
          files.push_back(p);
        }
      }
      if (ec) {
        return Status::IOError("walking '" + root + "': " + ec.message());
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& p : files) {
      std::ifstream in(p, std::ios::binary);
      if (!in) return Status::IOError("cannot read " + p.generic_string());
      std::ostringstream buf;
      buf << in.rdbuf();
      std::vector<Finding> f = LintSource(p.generic_string(), buf.str());
      all.insert(all.end(), f.begin(), f.end());
    }
  }
  return all;
}

}  // namespace archis::lint
