// archis-lint CLI: scans source roots for domain-invariant violations.
//
//   archis-lint <path> [<path>...]
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.
#include <cstdio>

#include "lint/lint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path> [<path>...]\n", argv[0]);
    return 2;
  }
  std::vector<std::string> roots(argv + 1, argv + argc);
  archis::Result<std::vector<archis::lint::Finding>> findings =
      archis::lint::LintTree(roots);
  if (!findings.ok()) {
    std::fprintf(stderr, "archis-lint: %s\n",
                 findings.status().ToString().c_str());
    return 2;
  }
  for (const archis::lint::Finding& f : *findings) {
    std::fprintf(stderr, "%s\n", f.ToString().c_str());
  }
  if (!findings->empty()) {
    std::fprintf(stderr, "archis-lint: %zu violation(s)\n", findings->size());
    return 1;
  }
  return 0;
}
