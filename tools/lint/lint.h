// archis-lint: a domain-invariant checker for the archis source tree.
//
// Compile-time guarantees (thread-safety annotations, [[nodiscard]]) catch
// whole bug classes, but some of the paper's invariants are conventions a
// compiler cannot see. This checker pins those down:
//
//   forbidden-literal  The `now` sentinel 9999-12-31 is an encoding detail
//                      owned by common/date.* and temporal/now.*; spelling
//                      it anywhere else re-encodes the sentinel and breaks
//                      the moment the encoding changes.
//   raw-interval       TimeInterval(s, e) built directly can be ill-formed
//                      (tstart > tend); every construction outside
//                      common/interval.* must go through MakeInterval /
//                      MakeIntervalChecked, which enforce well-formedness.
//   raw-mutex          std::mutex / std::lock_guard / std::call_once are
//                      invisible to clang's thread-safety analysis; all
//                      locking goes through the annotated archis::Mutex
//                      wrappers in common/mutex.h.
//   void-mutator       Public mutating APIs in storage/archis/compress/
//                      xmldb headers must return Status — a void mutator
//                      has no way to report the I/O or validation failure
//                      it will eventually hit.
//   deprecated-api     Retired facade entry points (FlushLog, the
//                      five-parameter CreateRelation) still compile through
//                      [[deprecated]] shims; new code must use the
//                      transactional write path and RelationSpec.
//   raw-logging        printf / fprintf / std::cout / std::cerr logging in
//                      src/ produces unstructured, unfilterable prose; all
//                      diagnostics go through the leveled key=value logger
//                      in common/log.h (which is itself exempt, as are
//                      tools/tests/bench outside src/).
//   plan-ownership     PhysicalPlan values (the executor's physical query
//                      shape) are produced only by the cost-based planner
//                      in archis/planner.*; constructing one anywhere else
//                      in src/ ships an unplanned shape to the executor.
//                      Consumers hold references/pointers only.
//   lock-rank          Every named archis::Mutex declared in src/ must be
//                      constructed with a LockRank from common/lock_rank.h
//                      (e.g. `Mutex mu_{LockRank::kWal};`). Ranked locks
//                      are what the debug-build monotonic-acquisition
//                      assertion and archis-analyze's lock-order graph
//                      key off; an unranked mutex is invisible to both.
//
// Findings on a line (or the line below) can be suppressed with a comment:
//   // archis-lint: allow(<rule>) -- <why this is safe>
#ifndef ARCHIS_TOOLS_LINT_LINT_H_
#define ARCHIS_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace archis::lint {

/// One rule violation.
struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;

  std::string ToString() const;
};

/// Runs every rule over one file's contents. `path` decides which
/// allowlists apply (matched by suffix, forward-slash separated).
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& contents);

/// Recursively lints all *.h / *.cc / *.cpp files under `roots`, skipping
/// build directories and lint fixture trees.
Result<std::vector<Finding>> LintTree(const std::vector<std::string>& roots);

/// Replaces comments with spaces (preserving line structure and string
/// literals) so rules don't fire on prose. Exposed for tests.
std::string StripComments(const std::string& src);

}  // namespace archis::lint

#endif  // ARCHIS_TOOLS_LINT_LINT_H_
