// archis-stats: opens (or builds) an ArchIS store and dumps its catalog,
// per-query EXPLAIN profiles and the process-wide metrics registry.
//
// Modes:
//   archis-stats --workload [--employees N] [--years N] [--no-compress]
//                [--wal PATH] [--query XQ | --default-query] [--profile]
//     Builds the synthetic employee workload (the paper's evaluation
//     data), freezes it, optionally runs a query (twice: a cold run and a
//     warm run, so cache-hit metrics are meaningful), then prints the
//     catalog and the Prometheus text exposition.
//
//   archis-stats --wal PATH
//     Recovers an existing durable store from its change WAL and dumps
//     catalog + metrics (recovery counters included).
//
//   archis-stats ... --trace PATH
//     Additionally drains the flight recorder into Chrome trace_event
//     JSON at PATH ("-" = stdout, suppressing the human report), loadable
//     in chrome://tracing / Perfetto and checked by tools/trace_check.
//
//   archis-stats ... --watch N
//     After the workload, ticks N times at ~1s intervals, re-running the
//     query each tick and printing the sliding-window metric lines
//     (window="1s|10s|60s" rate/p50/p95/p99) — a poor man's `top` for a
//     live store.
//
// This binary doubles as the metrics smoke-test vehicle for
// scripts/check.sh (see scripts/metrics_smoke.sh).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "archis/archis.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "workload/employee_workload.h"
#include "xml/serializer.h"

namespace {

using archis::Date;
using archis::Status;
using archis::core::ArchIS;
using archis::core::ArchISOptions;
using archis::core::HTableSet;
using archis::core::QueryOptions;
using archis::core::QueryResult;
using archis::core::SegmentedStore;

int Usage() {
  std::fprintf(
      stderr,
      "usage: archis-stats [--workload] [--wal PATH] [--employees N]\n"
      "                    [--years N] [--no-compress] [--query XQ]\n"
      "                    [--default-query] [--profile]\n"
      "                    [--trace PATH|-] [--watch N]\n");
  return 2;
}

// Prints the window="..." gauge lines of the exposition — the sliding
// 1s/10s/60s rate & percentile view archis-stats --watch refreshes.
void PrintWindowedLines(const std::string& exposition) {
  std::istringstream in(exposition);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("window=") != std::string::npos) {
      std::printf("%s\n", line.c_str());
    }
  }
}

void PrintStore(const char* label, const SegmentedStore* store) {
  uint64_t frozen_tuples = 0;
  size_t compressed_segs = 0;
  for (const auto& seg : store->segments()) {
    frozen_tuples += seg.tuple_count;
    if (seg.compressed) ++compressed_segs;
  }
  std::printf(
      "    %-12s frozen_segments=%zu (%zu compressed) frozen_tuples=%llu "
      "live_tuples=%llu usefulness=%.3f\n",
      label, store->segments().size(), compressed_segs,
      static_cast<unsigned long long>(frozen_tuples),
      static_cast<unsigned long long>(store->live_total()),
      store->Usefulness());
}

void PrintCatalog(const ArchIS& db) {
  std::printf("== catalog ==\n");
  for (const auto& entry : db.archiver().relations()) {
    std::printf("  relation %s [%s, %s]\n", entry.name.c_str(),
                entry.interval.tstart.ToString().c_str(),
                entry.interval.tend.ToString().c_str());
    auto set = db.archiver().htables(entry.name);
    if (!set.ok()) continue;
    std::printf("    tuples=%llu storage_bytes=%llu\n",
                static_cast<unsigned long long>((*set)->TotalTuples()),
                static_cast<unsigned long long>((*set)->StorageBytes()));
    PrintStore("key", (*set)->key_store());
    for (const std::string& attr : (*set)->attribute_names()) {
      auto store = (*set)->attribute_store(attr);
      if (store.ok()) PrintStore(attr.c_str(), *store);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool workload = false;
  bool profile = false;
  bool compress = true;
  bool default_query = false;
  int employees = 60;
  int years = 8;
  int repeat = 1;
  int watch = 0;
  std::string wal_path;
  std::string query;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      workload = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--no-compress") {
      compress = false;
    } else if (arg == "--default-query") {
      default_query = true;
    } else if (arg == "--wal") {
      const char* v = next();
      if (v == nullptr) return Usage();
      wal_path = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage();
      query = v;
    } else if (arg == "--repeat") {
      const char* v = next();
      if (v == nullptr) return Usage();
      repeat = std::atoi(v);
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return Usage();
      trace_path = v;
    } else if (arg == "--watch") {
      const char* v = next();
      if (v == nullptr) return Usage();
      watch = std::atoi(v);
    } else if (arg == "--employees") {
      const char* v = next();
      if (v == nullptr) return Usage();
      employees = std::atoi(v);
    } else if (arg == "--years") {
      const char* v = next();
      if (v == nullptr) return Usage();
      years = std::atoi(v);
    } else {
      return Usage();
    }
  }
  if (!workload && wal_path.empty()) return Usage();
  // Trace-to-stdout must stay pure JSON for tools/trace_check, so the
  // human report is suppressed.
  const bool quiet = trace_path == "-";

  ArchISOptions options;
  options.segment.compress = compress;
  options.wal.path = wal_path;
  archis::workload::WorkloadConfig config;
  config.initial_employees = employees;
  config.years = years;

  auto opened = ArchIS::Open(options, config.start_date);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  ArchIS& db = **opened;

  if (workload) {
    archis::workload::EmployeeWorkload wl(config);
    auto stats = wl.Generate(&db);
    if (!stats.ok()) {
      std::fprintf(stderr, "workload failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf(
          "workload: inserts=%llu updates=%llu deletes=%llu employees=%d\n",
          static_cast<unsigned long long>(stats->inserts),
          static_cast<unsigned long long>(stats->updates),
          static_cast<unsigned long long>(stats->deletes),
          stats->final_employee_count);
    }
    if (Status st = db.FreezeAll(); !st.ok()) {
      std::fprintf(stderr, "freeze failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (default_query && query.empty()) {
    // Mid-history snapshot of every salary: exercises translate, segment
    // scans, zone maps and (on the second run) the block cache.
    const Date mid = Date::FromYmd(1985 + years / 2, 6, 1);
    query = "for $s in doc(\"employees.xml\")/employees/employee/"
            "salary[tstart(.) <= xs:date(\"" +
            mid.ToString() + "\") and tend(.) >= xs:date(\"" +
            mid.ToString() + "\")] return $s";
  }

  if (!query.empty()) {
    // Cold run warms the block cache; the profiled warm run then shows
    // cache hits in its segment-scan spans.
    QueryOptions qopts;
    for (int r = 0; r < repeat; ++r) {
      if (auto cold = db.Query(query, qopts); !cold.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     cold.status().ToString().c_str());
        return 1;
      }
    }
    qopts.collect_profile = true;
    auto warm = db.Query(query, qopts);
    if (!warm.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   warm.status().ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("== query ==\n%s\npath=%s results=%zu\n", query.c_str(),
                  warm->path == archis::core::QueryPath::kTranslated
                      ? "translated"
                      : "native",
                  warm->xml->children().size());
      if (!warm->sql.empty()) std::printf("sql: %s\n", warm->sql.c_str());
      if (profile && warm->profile.has_value()) {
        std::printf("== profile ==\n%s", warm->profile->Render().c_str());
      }
    }
  }

  if (watch > 0) {
    // Live windowed view: re-drive the query each tick so the 1s window
    // has fresh observations, then print the window="..." gauge lines.
    QueryOptions qopts;
    for (int tick = 0; tick < watch; ++tick) {
      if (!query.empty()) {
        if (auto r = db.Query(query, qopts); !r.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
      }
      std::printf("== watch tick %d/%d ==\n", tick + 1, watch);
      PrintWindowedLines(ArchIS::DumpMetrics());
      std::fflush(stdout);
      if (tick + 1 < watch) {
        std::this_thread::sleep_for(std::chrono::seconds(1));
      }
    }
  }

  if (!quiet) {
    PrintCatalog(db);
    std::printf("== metrics ==\n%s", ArchIS::DumpMetrics().c_str());
  }

  if (!trace_path.empty()) {
    const std::string json = ArchIS::DumpTrace();
    if (trace_path == "-") {
      std::fwrite(json.data(), 1, json.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::FILE* f = std::fopen(trace_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write trace to %s\n",
                     trace_path.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("trace: %s (%zu bytes)\n", trace_path.c_str(),
                  json.size());
    }
  }
  return 0;
}
