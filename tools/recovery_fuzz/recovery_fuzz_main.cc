// recovery_fuzz: randomized crash-recovery checker for the WAL write path
// and the checkpoint protocol.
//
// Each run drives the scripted DML workload (src/workload/scripted_dml.h)
// through four passes against a WAL-backed ArchIS instance:
//
//   1. A clean pass measures the log size and verifies that a clean
//      close-and-reopen reproduces the H-documents byte for byte.
//   2. A crash pass injects an I/O failure at a seed-derived byte offset
//      inside the log, mirrors durably-committed units onto an in-memory
//      shadow, reopens the torn log, and verifies the recovered
//      H-documents match the shadow exactly.
//   3. A checkpoint sweep runs the workload to completion, then crashes
//      the checkpoint at every phase of its protocol (before the manifest
//      fsync, before the atomic install, before the WAL reset) plus the
//      no-crash case; every variant must reopen to the shadow's state,
//      and the clean variant must replay zero WAL suffix bytes.
//   4. An auto-checkpoint crash pass enables
//      WalOptions::checkpoint_after_bytes with a seed-derived threshold
//      and re-injects the crash offset, so torn logs around checkpoint
//      truncations are exercised too.
//   5. A concurrent-writer pass runs four writer threads with disjoint
//      key ranges (plus one deliberately shared key) against one
//      WAL-backed instance while the main thread advances the clock and
//      takes fuzzy checkpoints mid-flight; after the writers join, the
//      instance is dropped without a clean close and the reopen must
//      reproduce the pre-crash H-documents byte for byte, with every
//      acknowledged commit present.
//
// The crash pass additionally snapshots a flight-recorder `.crashdump`
// at the injected crash, parses it, and verifies its txn_commit events
// against the torn log's own recovery: every commit the recorder
// acknowledged must be durable in the WAL tail (txn_commit is recorded
// only after WaitDurable succeeds, so a divergence here means the
// recorder and the log disagree about what committed).
//
// Exits nonzero (with the offending seed and crash offset) on the first
// divergence, so a failure is directly reproducible:
//   recovery_fuzz --runs 16 --seed 7 --transactions 24
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "archis/archis.h"
#include "archis/checkpoint.h"
#include "archis/wal.h"
#include "common/flight_recorder.h"
#include "common/json.h"
#include "workload/scripted_dml.h"

namespace {

using archis::Date;
using archis::core::ArchIS;
using archis::core::ArchISOptions;
using archis::core::CheckpointCrashPoint;
using archis::core::CheckpointPath;
using archis::core::CheckpointPrevPath;
using archis::core::CheckpointTmpPath;
using archis::Status;
using archis::StatusCode;
using archis::core::RelationSpec;
using archis::core::Transaction;
namespace minirel = archis::minirel;
using archis::workload::RunScriptedDml;
using archis::workload::ScriptedDmlConfig;
using archis::workload::SerializeAllHistories;

struct Args {
  int runs = 8;
  uint32_t seed = 1;
  int transactions = 24;
  std::string dir;
};

/// Deterministic per-run randomness (LCG), independent of the workload's
/// own generator so crash offsets don't perturb the statement script.
uint32_t NextRand(uint32_t* state) {
  *state = *state * 1664525u + 1013904223u;
  return *state;
}

int Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "recovery_fuzz: %s: %s\n", what, detail.c_str());
  return 1;
}

/// Dumps both sides of a failed equivalence next to the WAL so a
/// divergence is diffable, not just detectable.
void WriteMismatch(const std::string& wal_path, const std::string& recovered,
                   const std::string& shadow) {
  auto dump = [](const std::string& path, const std::string& text) {
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
    }
  };
  dump(wal_path + ".recovered.xml", recovered);
  dump(wal_path + ".shadow.xml", shadow);
  std::fprintf(stderr, "recovery_fuzz: dumped %s.{recovered,shadow}.xml\n",
               wal_path.c_str());
}

/// Removes the WAL and every checkpoint artefact so the next pass starts
/// from a genuinely empty instance (the paths are reused across passes).
void RemoveInstanceFiles(const std::string& wal_path) {
  std::remove(wal_path.c_str());
  std::remove(CheckpointPath(wal_path).c_str());
  std::remove(CheckpointPrevPath(wal_path).c_str());
  std::remove(CheckpointTmpPath(wal_path).c_str());
}

namespace fr = archis::fr;
namespace json = archis::json;

/// Snapshots a `.crashdump` at the injected crash and validates it: the
/// dump must parse as JSON, end in the injected crash event, and every
/// txn_commit it carries must name a transaction the torn log recovers
/// as committed. Returns 0 on success.
int ValidateCrashDump(uint32_t seed, const std::string& wal_path) {
  const std::string tag = "seed=" + std::to_string(seed);
  const std::string dump_path = fr::WriteCrashDump("injected_wal_crash");
  if (dump_path.empty()) {
    return Fail("crashdump write", tag);
  }
  std::string text;
  if (std::FILE* f = std::fopen(dump_path.c_str(), "rb")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
  } else {
    return Fail("crashdump read", tag + " " + dump_path);
  }
  auto parsed = json::Parse(text);
  if (!parsed.ok()) {
    return Fail("crashdump parse",
                tag + " " + dump_path + ": " +
                    parsed.status().ToString());
  }
  const json::Value* events = parsed->Find("events");
  if (events == nullptr || !events->is_array() || events->items().empty()) {
    return Fail("crashdump events", tag + " missing/empty events array");
  }
  // The dump's final event is the crash stamp itself.
  const json::Value* last_name = events->items().back().Find("name");
  if (last_name == nullptr || last_name->AsString() != "crash") {
    return Fail("crashdump tail", tag + " last event is not the crash");
  }

  // The torn log's own recovery is the ground truth for what committed.
  auto recovery = archis::core::Wal::Recover(wal_path);
  if (!recovery.ok()) {
    return Fail("crashdump wal recover", tag + recovery.status().ToString());
  }
  std::set<uint64_t> durable;
  for (const auto& item : recovery->items) {
    if (const auto* txn = std::get_if<archis::core::WalCommittedTxn>(&item)) {
      durable.insert(txn->txn_id);
    }
  }
  size_t commit_events = 0;
  for (const json::Value& ev : events->items()) {
    const json::Value* name = ev.Find("name");
    if (name == nullptr || name->AsString() != "txn_commit") continue;
    ++commit_events;
    const json::Value* args = ev.Find("args");
    const json::Value* a = args != nullptr ? args->Find("a") : nullptr;
    if (a == nullptr) {
      return Fail("crashdump commit event", tag + " missing args.a");
    }
    const uint64_t txn_id = static_cast<uint64_t>(a->AsInt());
    if (durable.count(txn_id) == 0) {
      return Fail("crashdump commit not durable",
                  tag + " txn_id=" + std::to_string(txn_id) +
                      " acknowledged by the recorder but absent from the "
                      "recovered WAL");
    }
  }
  if (commit_events == 0 && !durable.empty()) {
    return Fail("crashdump commit events",
                tag + " WAL recovered " + std::to_string(durable.size()) +
                    " commits but the dump recorded none");
  }
  std::remove(dump_path.c_str());
  return 0;
}

/// Concurrent-writer pass: four writer threads with disjoint key ranges
/// (plus one shared key they contend on) run against one WAL-backed
/// instance while the main thread advances the clock and takes fuzzy
/// checkpoints. The instance is then dropped without a clean close; the
/// reopen must reproduce the pre-drop H-documents exactly and every
/// acknowledged commit must be present. Returns 0 on success.
int RunConcurrentPass(uint32_t seed, const std::string& wal_path) {
  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 4;
  constexpr int kTxnsPerWriter = 24;
  constexpr int64_t kSharedKey = 9000;
  constexpr int64_t kSharedValue = 777;
  const std::string tag = "seed=" + std::to_string(seed);

  RemoveInstanceFiles(wal_path);
  ArchISOptions opts;
  opts.wal.path = wal_path;
  // A short chain period so the pass crosses base and delta manifests.
  opts.wal.checkpoint_base_every = 2;
  const Date start = Date::FromYmd(2000, 1, 1);
  auto opened = ArchIS::Open(opts, start);
  if (!opened.ok()) {
    return Fail("open (concurrent)", opened.status().ToString());
  }
  ArchIS* db = opened->get();
  RelationSpec spec;
  spec.name = "counters";
  spec.schema = minirel::Schema({{"id", minirel::DataType::kInt64},
                                 {"count", minirel::DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "counters.xml";
  if (!db->CreateRelation(spec).ok()) {
    return Fail("create (concurrent)", tag);
  }

  std::atomic<int> failures{0};
  std::atomic<int> conflicts{0};
  // Per-slot count of acknowledged (durably committed) increments. Each
  // slot is written by exactly one thread; the join is the read barrier.
  std::vector<int> acked(kWriters * kKeysPerWriter, 0);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, db, w] {
      uint32_t rng = seed * 7919u + static_cast<uint32_t>(w) * 104729u + 1;
      for (int t = 0; t < kTxnsPerWriter; ++t) {
        const int slot =
            w * kKeysPerWriter +
            static_cast<int>(NextRand(&rng) % kKeysPerWriter);
        const int64_t id = 1 + slot;
        const int64_t next = acked[slot] + 1;
        auto begun = db->Begin();
        if (!begun.ok()) {
          ++failures;
          return;
        }
        Transaction txn = std::move(*begun);
        minirel::Tuple row{minirel::Value(id), minirel::Value(next)};
        Status st = next == 1
                        ? txn.Insert("counters", row)
                        : txn.Update("counters", {minirel::Value(id)}, row);
        if (!st.ok()) {
          std::fprintf(stderr, "concurrent writer %d: write slot %d: %s\n", w,
                       slot, st.ToString().c_str());
          ++failures;
          return;
        }
        if (NextRand(&rng) % 5 == 0) {
          // Exercise interleaved ABORT frames: the batch must vanish.
          if (!txn.Abort().ok()) ++failures;
          continue;
        }
        if (NextRand(&rng) % 4 == 0) {
          // Contend on the shared key; the write is idempotent so the
          // final value is fixed no matter which committer wins.
          minirel::Tuple shared{minirel::Value(kSharedKey),
                                minirel::Value(kSharedValue)};
          Status sst = txn.Update("counters", {minirel::Value(kSharedKey)},
                                  shared);
          if (sst.code() == StatusCode::kNotFound) {
            sst = txn.Insert("counters", shared);
          }
          // A commit landing between the probe and the insert can turn
          // either arm into AlreadyExists/NotFound; the commit-time
          // conflict check is the real arbiter, so just drop the write.
          if (!sst.ok() && sst.code() != StatusCode::kAlreadyExists &&
              sst.code() != StatusCode::kNotFound) {
            ++failures;
            return;
          }
          // Hold the shared key in the write set a moment so overlapping
          // committers actually collide and exercise kConflict.
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
        Status cst = txn.Commit();
        if (cst.ok()) {
          acked[slot] = static_cast<int>(next);
        } else if (cst.code() == StatusCode::kConflict) {
          ++conflicts;  // first committer won the shared key; batch dropped
        } else {
          ++failures;
          return;
        }
      }
    });
  }
  // Fuzzy checkpoints and clock advances race the writers.
  Date clock = start;
  Status pace = Status::OK();
  for (int i = 0; i < 6 && pace.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    clock = clock.AddDays(1);
    pace = db->AdvanceClock(clock);
    if (pace.ok()) pace = db->Checkpoint();
  }
  for (std::thread& thr : writers) thr.join();
  if (!pace.ok()) {
    return Fail("checkpoint (concurrent)", tag + " -> " + pace.ToString());
  }
  if (failures.load() != 0) {
    return Fail("writer failures (concurrent)",
                tag + " failures=" + std::to_string(failures.load()));
  }

  // Every acknowledged increment must be visible, at its final value.
  auto snap = db->Snapshot("counters", db->Now());
  if (!snap.ok()) return Fail("snapshot (concurrent)", tag);
  std::vector<int64_t> current(kWriters * kKeysPerWriter, 0);
  bool shared_present = false;
  for (const minirel::Tuple& row : *snap) {
    const int64_t id = row.at(0).AsInt();
    if (id == kSharedKey) {
      shared_present = true;
      if (row.at(1).AsInt() != kSharedValue) {
        return Fail("shared key value (concurrent)", tag);
      }
      continue;
    }
    current[static_cast<size_t>(id - 1)] = row.at(1).AsInt();
  }
  for (size_t slot = 0; slot < acked.size(); ++slot) {
    if (current[slot] != acked[slot]) {
      return Fail("acked commit missing (concurrent)",
                  tag + " slot=" + std::to_string(slot) + " acked=" +
                      std::to_string(acked[slot]) + " visible=" +
                      std::to_string(current[slot]));
    }
  }

  // "Power loss" after the writers are done: everything acknowledged is
  // durable, so the reopen must rebuild this exact state from the
  // checkpoint chain plus the WAL suffix.
  const std::string pre_drop = SerializeAllHistories(db);
  opened->reset();
  auto recovered = ArchIS::Open(opts, start);
  if (!recovered.ok()) {
    return Fail("reopen (concurrent)", recovered.status().ToString());
  }
  if (SerializeAllHistories(recovered->get()) != pre_drop) {
    WriteMismatch(wal_path, SerializeAllHistories(recovered->get()),
                  pre_drop);
    return Fail("concurrent recovery mismatch",
                tag + " conflicts=" + std::to_string(conflicts.load()));
  }
  std::printf("  seed=%u concurrent: %d writers, conflicts=%d, shared=%s, "
              "recovered exactly\n",
              seed, kWriters, conflicts.load(),
              shared_present ? "yes" : "no");
  return 0;
}

/// One fuzz iteration; returns 0 on success.
int RunOne(uint32_t seed, int transactions, const std::string& wal_path,
           uint32_t* rng) {
  ScriptedDmlConfig cfg;
  cfg.seed = seed;
  cfg.transactions = transactions;

  ArchISOptions wal_opts;
  wal_opts.wal.path = wal_path;

  // ---- clean pass: measure the log, verify clean reopen ----
  RemoveInstanceFiles(wal_path);
  auto clean = ArchIS::Open(wal_opts, cfg.start_date);
  if (!clean.ok()) return Fail("open (clean)", clean.status().ToString());
  auto clean_run = RunScriptedDml(clean->get(), nullptr, cfg);
  if (!clean_run.ok()) {
    return Fail("scripted dml (clean)", clean_run.status().ToString());
  }
  if (clean_run->crashed) {
    return Fail("scripted dml (clean)", "unexpected crash without injection");
  }
  const uint64_t log_bytes = (*clean)->wal()->bytes_written();
  const std::string clean_hist = SerializeAllHistories(clean->get());
  clean->reset();

  auto reopened = ArchIS::Open(wal_opts, cfg.start_date);
  if (!reopened.ok()) {
    return Fail("reopen (clean)", reopened.status().ToString());
  }
  if (SerializeAllHistories(reopened->get()) != clean_hist) {
    return Fail("clean reopen mismatch",
                "seed=" + std::to_string(seed));
  }
  reopened->reset();

  // ---- crash pass: torn log must recover to the shadow's state ----
  if (log_bytes == 0) return Fail("clean pass", "empty log");
  const uint64_t budget = 1 + NextRand(rng) % log_bytes;
  RemoveInstanceFiles(wal_path);
  // Txn ids restart per instance: drop the clean pass's events so the
  // crash dump speaks only about this torn log.
  fr::ResetForTest();
  ArchISOptions crash_opts = wal_opts;
  crash_opts.wal.fail_after_bytes = budget;
  auto primary = ArchIS::Open(crash_opts, cfg.start_date);
  if (!primary.ok()) return Fail("open (crash)", primary.status().ToString());
  ArchIS shadow(ArchISOptions{}, cfg.start_date);
  auto crash_run = RunScriptedDml(primary->get(), &shadow, cfg);
  if (!crash_run.ok()) {
    return Fail("scripted dml (crash)", crash_run.status().ToString());
  }
  // Snapshot and validate a crash dump at the injected crash: its
  // txn_commit tail must agree with what the torn log actually holds.
  if (int rc = ValidateCrashDump(seed, wal_path)) return rc;
  primary->reset();  // "power loss": drop all in-memory state

  auto recovered = ArchIS::Open(wal_opts, cfg.start_date);
  if (!recovered.ok()) {
    return Fail("reopen (crash)", recovered.status().ToString());
  }
  if (SerializeAllHistories(recovered->get()) !=
      SerializeAllHistories(&shadow)) {
    return Fail("recovery mismatch",
                "seed=" + std::to_string(seed) +
                    " fail_after_bytes=" + std::to_string(budget) +
                    " committed_units=" +
                    std::to_string(crash_run->committed_units));
  }
  // ---- checkpoint sweep: crash at every phase of the protocol ----
  const CheckpointCrashPoint phases[] = {
      CheckpointCrashPoint::kNone,
      CheckpointCrashPoint::kBeforeManifestSync,
      CheckpointCrashPoint::kBeforeInstall,
      CheckpointCrashPoint::kBeforeWalReset,
  };
  for (CheckpointCrashPoint phase : phases) {
    const std::string tag =
        "seed=" + std::to_string(seed) +
        " phase=" + std::to_string(static_cast<int>(phase));
    RemoveInstanceFiles(wal_path);
    auto ckpt_db = ArchIS::Open(wal_opts, cfg.start_date);
    if (!ckpt_db.ok()) {
      return Fail("open (checkpoint)", ckpt_db.status().ToString());
    }
    ArchIS ckpt_shadow(ArchISOptions{}, cfg.start_date);
    auto ckpt_run = RunScriptedDml(ckpt_db->get(), &ckpt_shadow, cfg);
    if (!ckpt_run.ok()) {
      return Fail("scripted dml (checkpoint)", ckpt_run.status().ToString());
    }
    archis::Status st = (*ckpt_db)->Checkpoint(phase);
    if (phase == CheckpointCrashPoint::kNone ? !st.ok() : st.ok()) {
      return Fail("checkpoint status", tag + " -> " + st.ToString());
    }
    ckpt_db->reset();  // "power loss" at the injected phase

    auto ckpt_recovered = ArchIS::Open(wal_opts, cfg.start_date);
    if (!ckpt_recovered.ok()) {
      return Fail("reopen (checkpoint)",
                  tag + " -> " + ckpt_recovered.status().ToString());
    }
    if (SerializeAllHistories(ckpt_recovered->get()) !=
        SerializeAllHistories(&ckpt_shadow)) {
      return Fail("checkpoint recovery mismatch", tag);
    }
    if (phase == CheckpointCrashPoint::kNone &&
        (*ckpt_recovered)->last_recovery_replayed_bytes() != 0) {
      return Fail("checkpoint suffix not bounded",
                  tag + " replayed_bytes=" +
                      std::to_string(
                          (*ckpt_recovered)->last_recovery_replayed_bytes()));
    }
  }

  // ---- auto-checkpoint crash pass: torn logs around truncations ----
  const uint64_t auto_threshold = 1 + NextRand(rng) % (1 + log_bytes / 2);
  RemoveInstanceFiles(wal_path);
  ArchISOptions auto_opts = wal_opts;
  auto_opts.wal.fail_after_bytes = budget;
  auto_opts.wal.checkpoint_after_bytes = auto_threshold;
  auto auto_primary = ArchIS::Open(auto_opts, cfg.start_date);
  if (!auto_primary.ok()) {
    return Fail("open (auto-checkpoint)", auto_primary.status().ToString());
  }
  ArchIS auto_shadow(ArchISOptions{}, cfg.start_date);
  auto auto_run = RunScriptedDml(auto_primary->get(), &auto_shadow, cfg);
  if (!auto_run.ok()) {
    return Fail("scripted dml (auto-checkpoint)",
                auto_run.status().ToString());
  }
  auto_primary->reset();

  auto auto_recovered = ArchIS::Open(wal_opts, cfg.start_date);
  if (!auto_recovered.ok()) {
    return Fail("reopen (auto-checkpoint)",
                auto_recovered.status().ToString());
  }
  if (SerializeAllHistories(auto_recovered->get()) !=
      SerializeAllHistories(&auto_shadow)) {
    WriteMismatch(wal_path, SerializeAllHistories(auto_recovered->get()),
                  SerializeAllHistories(&auto_shadow));
    return Fail("auto-checkpoint recovery mismatch",
                "seed=" + std::to_string(seed) +
                    " fail_after_bytes=" + std::to_string(budget) +
                    " checkpoint_after_bytes=" +
                    std::to_string(auto_threshold));
  }

  std::printf(
      "  seed=%u log=%llu bytes crash@%llu committed=%d crashed=%s "
      "ckpt-phases=4 auto-ckpt@%llu ok\n",
      seed, static_cast<unsigned long long>(log_bytes),
      static_cast<unsigned long long>(budget), crash_run->committed_units,
      crash_run->crashed ? "yes" : "no",
      static_cast<unsigned long long>(auto_threshold));

  // ---- concurrent-writer pass: fuzzy checkpoints under real threads ----
  return RunConcurrentPass(seed, wal_path);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--runs") {
      if (const char* v = next()) args.runs = std::atoi(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) {
        args.seed = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      }
    } else if (arg == "--transactions") {
      if (const char* v = next()) args.transactions = std::atoi(v);
    } else if (arg == "--dir") {
      if (const char* v = next()) args.dir = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--runs N] [--seed S] [--transactions T] "
                   "[--dir PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (args.runs < 1 || args.transactions < 1) {
    return Fail("args", "--runs and --transactions must be >= 1");
  }

  namespace fs = std::filesystem;
  fs::path dir = args.dir.empty()
                     ? fs::temp_directory_path() / "archis_recovery_fuzz"
                     : fs::path(args.dir);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Fail("create dir", ec.message());
  const std::string wal_path = (dir / "fuzz.wal").string();
  // Crash dumps land next to the WAL under test, not in the cwd.
  ::setenv("ARCHIS_CRASHDUMP_DIR", dir.string().c_str(), /*overwrite=*/0);

  std::printf("recovery_fuzz: %d runs, base seed %u, %d transactions\n",
              args.runs, args.seed, args.transactions);
  uint32_t rng = args.seed * 2654435761u + 1;
  for (int i = 0; i < args.runs; ++i) {
    if (int rc = RunOne(args.seed + static_cast<uint32_t>(i),
                        args.transactions, wal_path, &rng)) {
      return rc;
    }
  }
  RemoveInstanceFiles(wal_path);
  std::printf("recovery_fuzz: all %d runs recovered exactly\n", args.runs);
  return 0;
}
