// recovery_fuzz: randomized crash-recovery checker for the WAL write path.
//
// Each run drives the scripted DML workload (src/workload/scripted_dml.h)
// twice against a WAL-backed ArchIS instance:
//
//   1. A clean pass measures the log size and verifies that a clean
//      close-and-reopen reproduces the H-documents byte for byte.
//   2. A crash pass injects an I/O failure at a seed-derived byte offset
//      inside the log, mirrors durably-committed units onto an in-memory
//      shadow, reopens the torn log, and verifies the recovered
//      H-documents match the shadow exactly.
//
// Exits nonzero (with the offending seed and crash offset) on the first
// divergence, so a failure is directly reproducible:
//   recovery_fuzz --runs 16 --seed 7 --transactions 24
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "archis/archis.h"
#include "workload/scripted_dml.h"

namespace {

using archis::Date;
using archis::core::ArchIS;
using archis::core::ArchISOptions;
using archis::workload::RunScriptedDml;
using archis::workload::ScriptedDmlConfig;
using archis::workload::SerializeAllHistories;

struct Args {
  int runs = 8;
  uint32_t seed = 1;
  int transactions = 24;
  std::string dir;
};

/// Deterministic per-run randomness (LCG), independent of the workload's
/// own generator so crash offsets don't perturb the statement script.
uint32_t NextRand(uint32_t* state) {
  *state = *state * 1664525u + 1013904223u;
  return *state;
}

int Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "recovery_fuzz: %s: %s\n", what, detail.c_str());
  return 1;
}

/// One fuzz iteration; returns 0 on success.
int RunOne(uint32_t seed, int transactions, const std::string& wal_path,
           uint32_t* rng) {
  ScriptedDmlConfig cfg;
  cfg.seed = seed;
  cfg.transactions = transactions;

  ArchISOptions wal_opts;
  wal_opts.wal.path = wal_path;

  // ---- clean pass: measure the log, verify clean reopen ----
  std::remove(wal_path.c_str());
  auto clean = ArchIS::Open(wal_opts, cfg.start_date);
  if (!clean.ok()) return Fail("open (clean)", clean.status().ToString());
  auto clean_run = RunScriptedDml(clean->get(), nullptr, cfg);
  if (!clean_run.ok()) {
    return Fail("scripted dml (clean)", clean_run.status().ToString());
  }
  if (clean_run->crashed) {
    return Fail("scripted dml (clean)", "unexpected crash without injection");
  }
  const uint64_t log_bytes = (*clean)->wal()->bytes_written();
  const std::string clean_hist = SerializeAllHistories(clean->get());
  clean->reset();

  auto reopened = ArchIS::Open(wal_opts, cfg.start_date);
  if (!reopened.ok()) {
    return Fail("reopen (clean)", reopened.status().ToString());
  }
  if (SerializeAllHistories(reopened->get()) != clean_hist) {
    return Fail("clean reopen mismatch",
                "seed=" + std::to_string(seed));
  }
  reopened->reset();

  // ---- crash pass: torn log must recover to the shadow's state ----
  if (log_bytes == 0) return Fail("clean pass", "empty log");
  const uint64_t budget = 1 + NextRand(rng) % log_bytes;
  std::remove(wal_path.c_str());
  ArchISOptions crash_opts = wal_opts;
  crash_opts.wal.fail_after_bytes = budget;
  auto primary = ArchIS::Open(crash_opts, cfg.start_date);
  if (!primary.ok()) return Fail("open (crash)", primary.status().ToString());
  ArchIS shadow(ArchISOptions{}, cfg.start_date);
  auto crash_run = RunScriptedDml(primary->get(), &shadow, cfg);
  if (!crash_run.ok()) {
    return Fail("scripted dml (crash)", crash_run.status().ToString());
  }
  primary->reset();  // "power loss": drop all in-memory state

  auto recovered = ArchIS::Open(wal_opts, cfg.start_date);
  if (!recovered.ok()) {
    return Fail("reopen (crash)", recovered.status().ToString());
  }
  if (SerializeAllHistories(recovered->get()) !=
      SerializeAllHistories(&shadow)) {
    return Fail("recovery mismatch",
                "seed=" + std::to_string(seed) +
                    " fail_after_bytes=" + std::to_string(budget) +
                    " committed_units=" +
                    std::to_string(crash_run->committed_units));
  }
  std::printf(
      "  seed=%u log=%llu bytes crash@%llu committed=%d crashed=%s ok\n",
      seed, static_cast<unsigned long long>(log_bytes),
      static_cast<unsigned long long>(budget), crash_run->committed_units,
      crash_run->crashed ? "yes" : "no");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--runs") {
      if (const char* v = next()) args.runs = std::atoi(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) {
        args.seed = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      }
    } else if (arg == "--transactions") {
      if (const char* v = next()) args.transactions = std::atoi(v);
    } else if (arg == "--dir") {
      if (const char* v = next()) args.dir = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--runs N] [--seed S] [--transactions T] "
                   "[--dir PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (args.runs < 1 || args.transactions < 1) {
    return Fail("args", "--runs and --transactions must be >= 1");
  }

  namespace fs = std::filesystem;
  fs::path dir = args.dir.empty()
                     ? fs::temp_directory_path() / "archis_recovery_fuzz"
                     : fs::path(args.dir);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Fail("create dir", ec.message());
  const std::string wal_path = (dir / "fuzz.wal").string();

  std::printf("recovery_fuzz: %d runs, base seed %u, %d transactions\n",
              args.runs, args.seed, args.transactions);
  uint32_t rng = args.seed * 2654435761u + 1;
  for (int i = 0; i < args.runs; ++i) {
    if (int rc = RunOne(args.seed + static_cast<uint32_t>(i),
                        args.transactions, wal_path, &rng)) {
      return rc;
    }
  }
  std::remove(wal_path.c_str());
  std::printf("recovery_fuzz: all %d runs recovered exactly\n", args.runs);
  return 0;
}
