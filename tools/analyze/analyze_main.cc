// archis-analyze CLI.
//
//   archis-analyze [--json] [--lock-table] <root>...
//
// Analyzes every C++ source under the given roots. Exit code 0 when the
// tree is clean, 1 when there are unsuppressed findings, 2 on usage or
// I/O errors. --json emits the machine-readable findings document on
// stdout instead of the human-readable report; --lock-table prints the
// discovered lock-hierarchy markdown table (used to regenerate the
// DESIGN.md §12 table) and nothing else.
#include <cstdio>
#include <string>
#include <vector>

#include "analyze/analyze.h"

int main(int argc, char** argv) {
  bool json = false;
  bool lock_table = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--lock-table") {
      lock_table = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: archis-analyze [--json] [--lock-table] <root>...\n");
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: archis-analyze [--json] [--lock-table] <root>...\n");
    return 2;
  }

  auto result = archis::analyze::AnalyzeTree(roots);
  if (!result.ok()) {
    std::fprintf(stderr, "archis-analyze: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const archis::analyze::Analyzer& analyzer = result.value();

  if (lock_table) {
    std::fputs(analyzer.LockHierarchyTable().c_str(), stdout);
    return analyzer.findings().empty() ? 0 : 1;
  }
  if (json) {
    std::fputs(archis::analyze::FindingsToJson(analyzer.findings()).c_str(),
               stdout);
    std::fputc('\n', stdout);
    return analyzer.findings().empty() ? 0 : 1;
  }

  for (const auto& f : analyzer.findings()) {
    std::fprintf(stdout, "%s\n", f.ToString().c_str());
  }
  if (analyzer.findings().empty()) {
    std::fprintf(stdout,
                 "archis-analyze: clean (%zu mutexes, %zu lock-order edges)\n",
                 analyzer.mutex_decls().size(), analyzer.edges().size());
    return 0;
  }
  std::fprintf(stdout, "archis-analyze: %zu finding(s)\n",
               analyzer.findings().size());
  return 1;
}
