// archis-analyze: flow-aware static analysis over the archis source tree.
//
// Where archis-lint (tools/lint/) pins line-scoped textual invariants,
// this pass understands enough C++ structure — scopes, function bodies,
// lock lifetimes — to check two whole-program properties that regexes
// cannot see:
//
//   lock-cycle         Builds the whole-program lock-order graph: an edge
//                      A → B means "some thread acquires mutex B while
//                      holding mutex A", discovered either directly inside
//                      one function body (MutexLock scopes and the manual
//                      Lock()/Unlock() leader handoff in the WAL are both
//                      tracked flow-sensitively) or through a direct
//                      callee defined in the scanned tree. Any cycle in
//                      the graph is a potential deadlock; the finding
//                      carries a witness line for every edge on the cycle,
//                      so a 2-cycle reports both interleavings.
//
//   dropped-error-arm  Per-function status propagation: a local Status /
//                      Result<T> that is branched on for success
//                      (`.ok()`) but never returned, assigned onward,
//                      passed to another function, inspected
//                      (status/message/code/ToString) or explicitly
//                      IgnoreStatus()-ed has an error arm that falls off
//                      the end of the function — the silent-data-loss
//                      shape the [[nodiscard]] layer cannot catch once
//                      the value has been named.
//
// The analysis is deliberately lightweight: a lexer plus a scope tracker,
// not a compiler. It resolves a lock acquisition to its declaration by
// member name, preferring (1) a member of the enclosing class, (2) a
// declaration in the sibling header/source of the use site, (3) a unique
// global match; unresolvable acquisitions are tracked for scope lifetime
// but excluded from the graph rather than guessed at. Call edges resolve
// one level deep (direct callees by unqualified name, union over
// same-named definitions).
//
// The statically derived hierarchy is mirrored at runtime by the
// LockRank registry (src/common/lock_rank.h): ranks must follow the
// topological order of this graph, and debug builds assert it per-thread
// on every acquisition.
//
// False positives are suppressed in place, same shape as archis-lint:
//   // archis-analyze: allow(<rule>) -- <why this is safe>
// covering the tagged line and the next. For lock-cycle findings the
// suppression may sit on any witness line of the cycle.
#ifndef ARCHIS_TOOLS_ANALYZE_ANALYZE_H_
#define ARCHIS_TOOLS_ANALYZE_ANALYZE_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace archis::analyze {

/// One analysis finding.
struct Finding {
  std::string file;   // anchor site (first witness / declaration)
  int line = 0;       // 1-based
  std::string rule;   // "lock-cycle" | "dropped-error-arm"
  std::string message;
  std::vector<std::string> witness;  // one human-readable step per line

  std::string ToString() const;
};

/// A named mutex declaration discovered in the tree.
struct MutexDecl {
  std::string id;      // "Wal::mu_", "BlobStore::CacheShard::mu", ...
  std::string member;  // "mu_"
  std::string file;
  int line = 0;
  std::string rank;    // "kWal" if declared with a LockRank, else ""
};

/// A directed lock-order edge with its witnesses.
struct LockEdge {
  std::string from;
  std::string to;
  std::vector<std::string> witness;  // capped; first is the anchor
  std::string file;                  // anchor site of first witness
  int line = 0;
};

/// Whole-program analysis over a set of sources. Feed every file first,
/// then Finalize() once; the accessors are valid afterwards.
class Analyzer {
 public:
  /// Parses one source file into the program model. `path` is kept for
  /// reporting and drives sibling-file lock resolution.
  void AddSource(const std::string& path, const std::string& contents);

  /// Resolves call edges, builds the lock-order graph, runs the checks.
  void Finalize();

  /// All findings, deterministically ordered, suppressions applied.
  const std::vector<Finding>& findings() const { return findings_; }

  /// Every named mutex declaration seen (sorted by id).
  const std::vector<MutexDecl>& mutex_decls() const { return mutex_decls_; }

  /// The lock-order graph (sorted by from/to).
  const std::vector<LockEdge>& edges() const { return edges_; }

  /// Markdown table of the discovered hierarchy: one row per declared
  /// mutex, with its rank, declaration site and outgoing edges. This is
  /// what DESIGN.md §12 embeds.
  std::string LockHierarchyTable() const;

 private:
  // Program model. AddSource records acquisitions by member name only;
  // Finalize resolves them against the full declaration registry (a .cc
  // may be added before the .h that declares its mutex).
  struct RawAcq {
    std::string member;    // last identifier of the lock expression
    std::string owner;     // receiver ident in `beta.mu_` / `shard.mu`, ""
    std::string resolved;  // lock id, filled in by Finalize ("" if not)
    std::string file;
    int line = 0;
  };
  struct RawCall {
    std::string callee;     // unqualified callee name
    // Explicit receiver identifier for `obj.f()` / `obj->f()`, "" for a
    // bare call. A non-`this` receiver cannot dispatch to the caller's
    // own class, which resolution uses to avoid phantom self-edges.
    std::string receiver;
    std::vector<int> held;  // indices into FunctionRec::acquires
    std::string file;
    int line = 0;
  };
  struct FunctionRec {
    std::string qual_name;    // "Wal::Append"
    std::string unqual;       // "Append"
    std::string class_chain;  // "Wal", "BlobStore::CacheShard", "" if free
    std::string file;
    int line = 0;
    std::vector<RawAcq> acquires;
    std::vector<std::pair<int, int>> intra_edges;  // (held, acquired)
    std::vector<RawCall> calls;  // every direct call (held set may be empty)
    // Local/parameter variable → declared type (last class-like
    // identifier), harvested lexically. Lets `page.Insert(...)` dispatch
    // to Page::Insert instead of every Insert in the program.
    std::map<std::string, std::string> var_types;
    std::vector<Finding> local_findings;  // dropped-error-arm, unsuppressed
  };

  void ResolveLocks();
  void BuildGraphAndCycles();

  std::vector<Finding> findings_;
  std::vector<MutexDecl> mutex_decls_;
  std::vector<LockEdge> edges_;
  std::vector<FunctionRec> functions_;
  std::map<std::string, int> rank_values_;  // harvested from enum LockRank
  std::set<std::string> class_names_;       // every class/struct defined
  // class chain → member name → declared type (same harvest as
  // FunctionRec::var_types but over the class body; resolves `file_->`).
  std::map<std::string, std::map<std::string, std::string>> class_var_types_;
  // (rule, file, line) triples carrying an allow() suppression.
  std::vector<std::pair<std::string, std::pair<std::string, int>>> allows_;
  bool finalized_ = false;

  bool IsSuppressed(const std::string& rule, const std::string& file,
                    int line) const;
};

/// Loads and analyzes every *.h/*.cc/*.cpp under `roots` (skipping build
/// trees and seeded fixture directories), returning a finalized Analyzer.
Result<Analyzer> AnalyzeTree(const std::vector<std::string>& roots);

/// Machine-readable form: {"version":1,"findings":[{file,line,rule,
/// message,witness:[...]}]}.
std::string FindingsToJson(const std::vector<Finding>& findings);

}  // namespace archis::analyze

#endif  // ARCHIS_TOOLS_ANALYZE_ANALYZE_H_
