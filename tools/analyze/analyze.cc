#include "analyze/analyze.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lint/lint.h"  // StripComments: same comment/string semantics

namespace archis::analyze {
namespace {

namespace fs = std::filesystem;

// ---- Lexer ----------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct } kind;
  std::string text;
  int line = 0;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Tokenizes comment-stripped C++. String/char literals collapse to one
/// token so nothing inside them can look like code.
std::vector<Token> Lex(const std::string& code) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  const size_t n = code.size();
  while (i < n) {
    char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(code[j])) ++j;
      out.push_back({Token::kIdent, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t j = i + 1;
      while (j < n && (IsIdentChar(code[j]) || code[j] == '.')) ++j;
      out.push_back({Token::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && code[j] != quote) {
        if (code[j] == '\\') ++j;
        if (code[j] == '\n') ++line;
        ++j;
      }
      out.push_back({Token::kString, std::string(1, quote), line});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Multi-char punctuation the parser cares about.
    if (c == ':' && i + 1 < n && code[i + 1] == ':') {
      out.push_back({Token::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && code[i + 1] == '>') {
      out.push_back({Token::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.push_back({Token::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

/// Index of the token matching the opener at `open` ('(', '{' or '<' with
/// its closer), or toks.size() if unbalanced.
size_t MatchForward(const std::vector<Token>& toks, size_t open,
                    const char* opener, const char* closer) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::kPunct) continue;
    if (toks[i].text == opener) ++depth;
    else if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

bool IsPunct(const Token& t, const char* s) {
  return t.kind == Token::kPunct && t.text == s;
}
bool IsIdent(const Token& t, const char* s) {
  return t.kind == Token::kIdent && t.text == s;
}

/// All-caps identifiers are macros (EXPECT_*, ARCHIS_*) — never call
/// targets or lock names.
bool LooksLikeMacro(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0) has_alpha = true;
  }
  return has_alpha;
}

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kw = {
      "if",       "for",         "while",          "switch",
      "return",   "sizeof",      "catch",          "new",
      "delete",   "throw",       "static_cast",    "dynamic_cast",
      "const_cast", "reinterpret_cast", "alignof", "decltype",
      "noexcept", "assert",      "defined",        "alignas",
  };
  return kw;
}

/// "src/archis/wal.cc" -> "wal" (drives sibling-file lock resolution).
std::string FileStem(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

std::string LastComponent(const std::string& qual) {
  size_t pos = qual.rfind("::");
  return pos == std::string::npos ? qual : qual.substr(pos + 2);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  for (const std::string& w : witness) os << "\n    " << w;
  return os.str();
}

// ---- Structure parse ------------------------------------------------------

namespace {

/// Walks one file's token stream, discovering mutex declarations,
/// LockRank enum values and function definitions; function bodies are
/// handed to the flow pass via the callback.
struct StructureParser {
  const std::vector<Token>& toks;
  const std::string& file;
  std::vector<MutexDecl>* decls;
  std::map<std::string, int>* rank_values;
  // (qual_name, unqual, class_chain, line, body_begin, body_end)
  struct FnSpan {
    std::string qual;
    std::string unqual;
    std::string class_chain;
    int line;
    size_t begin;
    size_t end;
    size_t params_begin = 0;  // inside the parameter parens
    size_t params_end = 0;
  };
  std::vector<FnSpan>* functions;
  struct ClassSpan {
    std::string chain;
    size_t begin;
    size_t end;
  };
  std::vector<ClassSpan>* class_spans;
  std::set<std::string>* class_names;

  std::vector<std::string> class_stack;  // enclosing class/struct names

  void Parse() { ParseDeclarations(0, toks.size()); }

  std::string ClassChain() const {
    std::string out;
    for (const std::string& c : class_stack) {
      if (!out.empty()) out += "::";
      out += c;
    }
    return out;
  }

  /// Skips a balanced (), {} or <> group starting at `i` (which must be
  /// the opener); returns the index after the closer.
  size_t SkipBalanced(size_t i, const char* open, const char* close) {
    size_t m = MatchForward(toks, i, open, close);
    return m >= toks.size() ? toks.size() : m + 1;
  }

  /// Advances to just after the next ';' at brace/paren depth zero.
  size_t SkipToSemicolon(size_t i) {
    int pdepth = 0, bdepth = 0;
    for (; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::kPunct) continue;
      if (t.text == "(") ++pdepth;
      else if (t.text == ")") --pdepth;
      else if (t.text == "{") ++bdepth;
      else if (t.text == "}") --bdepth;
      else if (t.text == ";" && pdepth <= 0 && bdepth <= 0) return i + 1;
    }
    return toks.size();
  }

  void ParseDeclarations(size_t begin, size_t end) {
    size_t i = begin;
    while (i < end) {
      const Token& t = toks[i];
      if (IsPunct(t, "{")) {  // stray block / brace initializer
        size_t close = MatchForward(toks, i, "{", "}");
        ParseDeclarations(i + 1, std::min(close, end));
        i = close >= end ? end : close + 1;
        continue;
      }
      if (IsPunct(t, "}")) return;  // caller mismatch; be forgiving
      if (t.kind != Token::kIdent) {
        if (IsPunct(t, "=")) {
          i = SkipToSemicolon(i);  // initializer (may hold lambdas)
          continue;
        }
        ++i;
        continue;
      }
      if (t.text == "namespace") {
        i = ParseNamespace(i, end);
        continue;
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union") {
        i = ParseClass(i, end);
        continue;
      }
      if (t.text == "enum") {
        i = ParseEnum(i, end);
        continue;
      }
      if (t.text == "template") {
        ++i;
        if (i < end && IsPunct(toks[i], "<")) i = SkipBalanced(i, "<", ">");
        continue;
      }
      if (t.text == "using" || t.text == "typedef" ||
          t.text == "static_assert" || t.text == "friend") {
        i = SkipToSemicolon(i);
        continue;
      }
      if (t.text == "public" || t.text == "private" ||
          t.text == "protected") {
        ++i;  // and the ':' after it
        if (i < end && IsPunct(toks[i], ":")) ++i;
        continue;
      }
      if (t.text == "mutable" || t.text == "static" || t.text == "inline" ||
          t.text == "constexpr" || t.text == "extern" ||
          t.text == "explicit" || t.text == "virtual" ||
          t.text == "thread_local" || t.text == "const") {
        ++i;
        continue;
      }
      // Mutex member/variable declaration?
      size_t after_mutex = MatchMutexType(i, end);
      if (after_mutex != 0) {
        i = ParseMutexDecl(after_mutex, end);
        continue;
      }
      // Function definition?
      size_t next = TryParseFunction(i, end);
      if (next != 0) {
        i = next;
        continue;
      }
      ++i;
    }
  }

  size_t ParseNamespace(size_t i, size_t end) {
    ++i;  // 'namespace'
    while (i < end && (toks[i].kind == Token::kIdent ||
                       IsPunct(toks[i], "::"))) {
      ++i;  // name (possibly nested a::b)
    }
    if (i < end && IsPunct(toks[i], "{")) {
      size_t close = MatchForward(toks, i, "{", "}");
      ParseDeclarations(i + 1, std::min(close, end));
      return close >= end ? end : close + 1;
    }
    return i;  // alias or malformed; resume
  }

  size_t ParseClass(size_t i, size_t end) {
    ++i;  // 'class' / 'struct'
    // The name is the last plain identifier before '{', ':' or ';' —
    // attribute macros like ARCHIS_CAPABILITY("mutex") precede it and are
    // recognized by their parenthesized arguments.
    std::string name;
    while (i < end) {
      const Token& t = toks[i];
      if (t.kind == Token::kIdent && !IsIdent(t, "final") &&
          !IsIdent(t, "alignas")) {
        ++i;
        if (i < end && IsPunct(toks[i], "(")) {
          i = SkipBalanced(i, "(", ")");  // macro invocation, not the name
          continue;
        }
        name = t.text;
        continue;
      }
      if (IsPunct(t, "<")) {  // template args in a specialization
        i = SkipBalanced(i, "<", ">");
        continue;
      }
      if (IsPunct(t, "{") || IsPunct(t, ";") || IsPunct(t, ":")) break;
      ++i;
    }
    // Base-clause: skip to the '{' or ';'.
    while (i < end && !IsPunct(toks[i], "{") && !IsPunct(toks[i], ";")) {
      if (IsPunct(toks[i], "<")) {
        i = SkipBalanced(i, "<", ">");
        continue;
      }
      ++i;
    }
    if (i >= end || IsPunct(toks[i], ";")) return i + 1;  // fwd decl
    size_t close = MatchForward(toks, i, "{", "}");
    class_stack.push_back(name.empty() ? "<anon>" : name);
    if (!name.empty() && class_names != nullptr) class_names->insert(name);
    if (class_spans != nullptr) {
      class_spans->push_back({ClassChain(), i + 1, std::min(close, end)});
    }
    ParseDeclarations(i + 1, std::min(close, end));
    class_stack.pop_back();
    return close >= end ? end : close + 1;
  }

  size_t ParseEnum(size_t i, size_t end) {
    // Harvest `enum class LockRank : int { kName = N, ... }` ordinals so
    // the hierarchy table can sort by rank without hardcoding the enum.
    size_t j = i + 1;
    if (j < end && (IsIdent(toks[j], "class") || IsIdent(toks[j], "struct"))) {
      ++j;
    }
    std::string name;
    if (j < end && toks[j].kind == Token::kIdent) name = toks[j].text;
    while (j < end && !IsPunct(toks[j], "{") && !IsPunct(toks[j], ";")) ++j;
    if (j >= end || IsPunct(toks[j], ";")) return j + 1;
    size_t close = MatchForward(toks, j, "{", "}");
    if (name == "LockRank" && rank_values != nullptr) {
      for (size_t k = j + 1; k + 2 < close; ++k) {
        if (toks[k].kind == Token::kIdent && IsPunct(toks[k + 1], "=") &&
            toks[k + 2].kind == Token::kNumber) {
          (*rank_values)[toks[k].text] = std::atoi(toks[k + 2].text.c_str());
        }
      }
    }
    return close >= end ? end : close + 1;
  }

  /// If tokens at `i` name the archis Mutex type ("Mutex" or
  /// "archis::Mutex"), returns the index just after the type name;
  /// otherwise 0.
  size_t MatchMutexType(size_t i, size_t end) {
    if (IsIdent(toks[i], "archis") && i + 2 < end &&
        IsPunct(toks[i + 1], "::") && IsIdent(toks[i + 2], "Mutex")) {
      return i + 3;
    }
    if (IsIdent(toks[i], "Mutex")) return i + 1;
    return 0;
  }

  /// Parses `Mutex name;` / `Mutex name{LockRank::kX};` after the type.
  /// Returns the index to resume from (0 = not a declaration).
  size_t ParseMutexDecl(size_t i, size_t end) {
    if (i >= end || toks[i].kind != Token::kIdent) return i;  // `Mutex&` etc
    const std::string member = toks[i].text;
    const int line = toks[i].line;
    size_t j = i + 1;
    std::string rank;
    if (j < end && IsPunct(toks[j], "{")) {
      size_t close = MatchForward(toks, j, "{", "}");
      for (size_t k = j + 1; k + 2 < close && k + 2 < end; ++k) {
        if (IsIdent(toks[k], "LockRank") && IsPunct(toks[k + 1], "::") &&
            toks[k + 2].kind == Token::kIdent) {
          rank = toks[k + 2].text;
        }
      }
      j = close >= end ? end : close + 1;
    }
    if (j >= end || !IsPunct(toks[j], ";")) return i;  // not a declaration
    MutexDecl d;
    d.member = member;
    d.file = file;
    d.line = line;
    d.rank = rank;
    const std::string owner = ClassChain();
    d.id = (owner.empty() ? FileStem(file) : owner) + "::" + member;
    decls->push_back(d);
    return j + 1;
  }

  /// Attempts to parse a function definition starting at token `i`.
  /// Returns the index after the body on success, 0 otherwise.
  size_t TryParseFunction(size_t i, size_t end) {
    // Qualified name chain: [~] IDENT ( :: [~] IDENT )*, or operatorX.
    std::vector<std::string> chain;
    size_t j = i;
    int name_line = toks[i].line;
    while (j < end) {
      bool dtor = false;
      if (IsPunct(toks[j], "~")) {
        dtor = true;
        ++j;
      }
      if (j >= end || toks[j].kind != Token::kIdent) return 0;
      if (IsIdent(toks[j], "operator")) {
        // operator==, operator(), operator[], operator bool, ...
        std::string op = "operator";
        ++j;
        if (j + 1 < end && IsPunct(toks[j], "(") && IsPunct(toks[j + 1], ")")) {
          op += "()";
          j += 2;
        } else {
          while (j < end && !IsPunct(toks[j], "(")) {
            op += toks[j].text;
            ++j;
          }
        }
        chain.push_back(op);
        break;
      }
      chain.push_back((dtor ? "~" : "") + toks[j].text);
      ++j;
      if (j < end && IsPunct(toks[j], "<")) {
        // Template-id (rare in definitions); skip the arguments.
        size_t after = SkipBalanced(j, "<", ">");
        // Only treat as part of the name if a '::' or '(' follows —
        // otherwise this was a comparison and we are not in a function.
        if (after < end &&
            (IsPunct(toks[after], "::") || IsPunct(toks[after], "("))) {
          j = after;
        }
      }
      if (j < end && IsPunct(toks[j], "::")) {
        ++j;
        continue;
      }
      break;
    }
    if (chain.empty() || j >= end || !IsPunct(toks[j], "(")) return 0;
    size_t params_close = MatchForward(toks, j, "(", ")");
    if (params_close >= end) return 0;
    // Trailer: const/noexcept/ref-qualifiers/attribute macros/-> type,
    // then either '{' (definition), ':' (ctor-init then '{'), or ';'/'='
    // (declaration — not ours).
    size_t k = params_close + 1;
    while (k < end) {
      const Token& t = toks[k];
      if (IsPunct(t, "{")) break;
      if (IsPunct(t, ";") || IsPunct(t, "=") || IsPunct(t, ",") ||
          IsPunct(t, ")")) {
        return 0;
      }
      if (IsPunct(t, ":")) {
        // Ctor-init list: scan to the body '{' at depth 0. A '{' whose
        // previous token is an identifier or '>' is a member brace-init.
        ++k;
        int pdepth = 0;
        while (k < end) {
          const Token& u = toks[k];
          if (IsPunct(u, "(")) {
            k = SkipBalanced(k, "(", ")");
            continue;
          }
          if (IsPunct(u, "{")) {
            const Token& prev = toks[k - 1];
            if (pdepth == 0 && prev.kind != Token::kIdent &&
                !IsPunct(prev, ">")) {
              break;  // the body
            }
            k = SkipBalanced(k, "{", "}");
            continue;
          }
          if (IsPunct(u, ";")) return 0;  // gave up: not a definition
          ++k;
        }
        break;
      }
      if (t.kind == Token::kIdent) {
        ++k;
        if (k < end && IsPunct(toks[k], "(")) k = SkipBalanced(k, "(", ")");
        continue;
      }
      if (IsPunct(t, "->")) {
        ++k;  // trailing return type: idents/templates until '{' or ';'
        continue;
      }
      if (IsPunct(t, "<")) {
        k = SkipBalanced(k, "<", ">");
        continue;
      }
      ++k;  // &, &&, *, etc.
    }
    if (k >= end || !IsPunct(toks[k], "{")) return 0;
    size_t body_close = MatchForward(toks, k, "{", "}");

    FnSpan fn;
    fn.unqual = chain.back();
    std::string qual = ClassChain();
    for (size_t c = 0; c + 1 < chain.size(); ++c) {
      if (!qual.empty()) qual += "::";
      qual += chain[c];
    }
    fn.class_chain = qual;
    fn.qual = qual.empty() ? fn.unqual : qual + "::" + fn.unqual;
    fn.line = name_line;
    fn.begin = k + 1;
    fn.end = std::min(body_close, end);
    fn.params_begin = j + 1;
    fn.params_end = params_close;
    functions->push_back(fn);
    return body_close >= end ? end : body_close + 1;
  }
};

/// Lexical variable-type harvest over a token range: records `Type name`
/// declaration pairs (also through `&`, `*` and one template level, so
/// `std::unique_ptr<storage::LogFile> file_` maps file_ → LogFile).
/// Heuristic by design — first recording per name wins, and consumers
/// only trust a type that names a class defined in the scanned tree.
void HarvestVarTypes(const std::vector<Token>& toks, size_t begin, size_t end,
                     std::map<std::string, std::string>* out) {
  static const std::set<std::string> kNotTypes = {
      "return", "new",    "delete", "const",  "constexpr", "static",
      "mutable", "inline", "auto",  "case",   "goto",      "using",
      "typename", "else",  "do",    "throw",  "operator",  "struct",
      "class",  "enum",   "public", "private", "protected", "template",
      "namespace", "if",  "while",  "for",    "switch",    "sizeof",
      "explicit", "virtual", "override", "final", "typedef", "friend",
      "extern", "thread_local", "co_return", "co_await", "break",
      "continue", "default", "union", "this", "static_assert",
  };
  static const std::set<std::string> kSmartPtr = {"unique_ptr",
                                                  "shared_ptr"};
  for (size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Token::kIdent || kNotTypes.count(toks[i].text) != 0) {
      continue;
    }
    std::string type = toks[i].text;
    size_t j = i + 1;
    if (j < end && IsPunct(toks[j], "<")) {
      size_t close = MatchForward(toks, j, "<", ">");
      if (close >= end) continue;
      if (kSmartPtr.count(type) != 0) {
        for (size_t k = j + 1; k < close; ++k) {  // pointee is the type
          if (toks[k].kind == Token::kIdent) type = toks[k].text;
        }
      }
      j = close + 1;
    }
    while (j < end && (IsPunct(toks[j], "&") || IsPunct(toks[j], "*"))) ++j;
    if (j >= end || toks[j].kind != Token::kIdent ||
        kNotTypes.count(toks[j].text) != 0) {
      continue;
    }
    if (j + 1 >= end) {
      // Range end terminates the declaration (a parameter list's closing
      // paren sits just outside the harvested span).
      out->emplace(toks[j].text, type);
      continue;
    }
    const Token& after = toks[j + 1];
    if (IsPunct(after, ";") || IsPunct(after, "=") || IsPunct(after, ",") ||
        IsPunct(after, ")") || IsPunct(after, "{")) {
      out->emplace(toks[j].text, type);
    }
  }
}

}  // namespace

// ---- Flow pass over one function body -------------------------------------

namespace {

/// Tracks lock lifetimes through a function body: MutexLock RAII scopes,
/// manual Lock()/Unlock() pairs (the WAL group-commit leader handoff),
/// and calls made while at least one lock is held.
struct BodyFlow {
  const std::vector<Token>& toks;
  const std::string& file;
  size_t begin;
  size_t end;

  // Output: indices into `acquires` for edges/calls.
  struct Acq {
    std::string member;
    std::string owner;  // receiver ident of the lock expression, or ""
    int line;
  };
  std::vector<Acq>* acquires;
  std::vector<std::pair<int, int>>* intra_edges;
  struct Call {
    std::string callee;
    std::string receiver;
    std::vector<int> held;
    int line;
  };
  std::vector<Call>* calls;

  void Run() {
    // Scope stack: each entry holds indices of locks acquired in it.
    std::vector<std::vector<int>> scopes(1);
    // Manual acquisitions (via .Lock()) live in the scope where they
    // happened but are released by .Unlock() wherever it appears.
    size_t i = begin;
    while (i < end) {
      const Token& t = toks[i];
      if (IsPunct(t, "{")) {
        scopes.emplace_back();
        ++i;
        continue;
      }
      if (IsPunct(t, "}")) {
        if (scopes.size() > 1) scopes.pop_back();
        ++i;
        continue;
      }
      // MutexLock var(expr) / MutexLock var{expr}
      if (IsIdent(t, "MutexLock") && i + 2 < end &&
          toks[i + 1].kind == Token::kIdent) {
        size_t open = i + 2;
        if (IsPunct(toks[open], "(") || IsPunct(toks[open], "{")) {
          const char* op = toks[open].text == "(" ? "(" : "{";
          const char* cl = toks[open].text == "(" ? ")" : "}";
          size_t close = MatchForward(toks, open, op, cl);
          auto [member, owner] = MemberAndOwnerIn(open + 1, close);
          if (!member.empty()) {
            Acquire(member, owner, toks[i].line, &scopes);
          }
          i = close >= end ? end : close + 1;
          continue;
        }
      }
      // expr.Lock() / expr->Lock() ; expr.Unlock() / expr->Unlock()
      if ((IsIdent(t, "Lock") || IsIdent(t, "Unlock")) && i > begin &&
          (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")) &&
          i + 1 < end && IsPunct(toks[i + 1], "(")) {
        std::string member = ObjectMemberBefore(i - 1);
        if (!member.empty()) {
          std::string owner;  // `beta.mu_.Lock()` → owner beta
          if (i >= begin + 4 &&
              (IsPunct(toks[i - 3], ".") || IsPunct(toks[i - 3], "->")) &&
              toks[i - 4].kind == Token::kIdent) {
            owner = toks[i - 4].text;
          }
          if (t.text == "Lock") {
            Acquire(member, owner, t.line, &scopes);
          } else {
            Release(member, &scopes);
          }
        }
        i += 2;
        continue;
      }
      // Call site: IDENT '(' with locks held.
      if (t.kind == Token::kIdent && i + 1 < end && IsPunct(toks[i + 1], "(") &&
          CallKeywords().count(t.text) == 0 && !LooksLikeMacro(t.text) &&
          !IsIdent(t, "MutexLock") && !IsIdent(t, "Mutex") &&
          !IsIdent(t, "CondVar") && !IsIdent(t, "Wait") &&
          !IsIdent(t, "NotifyOne") && !IsIdent(t, "NotifyAll") &&
          !IsIdent(t, "TryLock")) {
        // Record every call: lock-free calls still matter, because the
        // callee's transitive acquisitions propagate to call sites that
        // DO hold locks.
        std::vector<int> held;
        for (const auto& scope : scopes) {
          held.insert(held.end(), scope.begin(), scope.end());
        }
        std::string receiver;
        if (i >= begin + 1 &&
            (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
          // `obj.f()` keeps the object name; `Expr().f()` keeps a marker
          // meaning "a method of some class we could not name".
          receiver = (i >= begin + 2 && toks[i - 2].kind == Token::kIdent)
                         ? toks[i - 2].text
                         : "<expr>";
        } else if (i >= begin + 2 && IsPunct(toks[i - 1], "::") &&
                   toks[i - 2].kind == Token::kIdent) {
          receiver = "::" + toks[i - 2].text;  // Class:: or namespace::
        }
        calls->push_back({t.text, std::move(receiver), std::move(held),
                          t.line});
        ++i;
        continue;
      }
      ++i;
    }
  }

  /// Lock member name + receiver ident of an acquisition expression:
  /// `mu_` → (mu_, ""), `shard.mu` → (mu, shard), `this->mu_` → (mu_, this).
  std::pair<std::string, std::string> MemberAndOwnerIn(size_t from,
                                                       size_t to) const {
    size_t last = to;
    for (size_t k = from; k < to && k < end; ++k) {
      if (toks[k].kind == Token::kIdent) last = k;
    }
    if (last >= to) return {"", ""};
    std::string owner;
    if (last >= from + 2 &&
        (IsPunct(toks[last - 1], ".") || IsPunct(toks[last - 1], "->")) &&
        toks[last - 2].kind == Token::kIdent) {
      owner = toks[last - 2].text;
    }
    return {toks[last].text, owner};
  }

  /// The identifier immediately before a `.`/`->` at index `dot`.
  std::string ObjectMemberBefore(size_t dot) const {
    if (dot == 0) return "";
    const Token& t = toks[dot - 1];
    return t.kind == Token::kIdent ? t.text : "";
  }

  void Acquire(const std::string& member, const std::string& owner, int line,
               std::vector<std::vector<int>>* scopes) {
    int idx = static_cast<int>(acquires->size());
    acquires->push_back({member, owner, line});
    for (const auto& scope : *scopes) {
      for (int h : scope) intra_edges->push_back({h, idx});
    }
    scopes->back().push_back(idx);
  }

  void Release(const std::string& member,
               std::vector<std::vector<int>>* scopes) {
    // Innermost-first search; member-name match is exact enough inside
    // one function.
    for (auto s = scopes->rbegin(); s != scopes->rend(); ++s) {
      for (auto it = s->rbegin(); it != s->rend(); ++it) {
        if ((*acquires)[*it].member == member) {
          s->erase(std::next(it).base());
          return;
        }
      }
    }
  }
};

// ---- Status-propagation pass ----------------------------------------------

/// Scans one function body for Status/Result locals whose error arm is
/// dropped: tested with .ok() but never propagated anywhere.
void CheckStatusPropagation(const std::vector<Token>& toks, size_t begin,
                            size_t end, const std::string& file,
                            const std::string& fn_name,
                            std::vector<Finding>* out) {
  struct Local {
    std::string name;
    int line;
    size_t decl_index;
    bool is_result;
  };
  std::vector<Local> locals;
  std::set<std::string> seen;  // first declaration wins per name
  for (size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    bool is_result = IsIdent(t, "Result");
    if (!IsIdent(t, "Status") && !is_result) continue;
    if (i > begin && IsPunct(toks[i - 1], "::") &&
        !(i > begin + 1 && IsIdent(toks[i - 2], "archis"))) {
      continue;  // SomeOther::Status
    }
    size_t j = i + 1;
    if (is_result) {
      if (j >= end || !IsPunct(toks[j], "<")) continue;
      j = MatchForward(toks, j, "<", ">");
      if (j >= end) continue;
      ++j;
    }
    if (j >= end || toks[j].kind != Token::kIdent) continue;
    // Declaration needs an initializer or bare ';' next: `Status st = ..`,
    // `Status st(..)`, `Status st;`. Anything else (e.g. a cast, a
    // function declaration) is skipped.
    if (j + 1 >= end) continue;
    const Token& after = toks[j + 1];
    if (!IsPunct(after, "=") && !IsPunct(after, ";") && !IsPunct(after, "(") &&
        !IsPunct(after, "{")) {
      continue;
    }
    if (IsPunct(after, "(")) {
      // `Status name(...)` could be a local function-style init; require
      // the close to be followed by ';' to exclude declarations.
      size_t close = MatchForward(toks, j + 1, "(", ")");
      if (close + 1 >= end || !IsPunct(toks[close + 1], ";")) continue;
    }
    if (seen.insert(toks[j].text).second) {
      locals.push_back({toks[j].text, toks[j].line, j, is_result});
    }
  }

  for (const Local& v : locals) {
    bool branched = false;
    bool consumed = false;
    bool in_return = false;
    for (size_t i = v.decl_index + 1; i < end && !consumed; ++i) {
      const Token& t = toks[i];
      if (IsIdent(t, "return")) in_return = true;
      if (IsPunct(t, ";")) in_return = false;
      if (t.kind != Token::kIdent || t.text != v.name) continue;
      // Member access spelled `x.name` is some other entity's member.
      if (i > begin &&
          (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
        continue;
      }
      // `v.ok()` → branched; `v.status()/message()/code()/ToString()` →
      // the error is inspected, i.e. consumed.
      if (i + 3 < end &&
          (IsPunct(toks[i + 1], ".") || IsPunct(toks[i + 1], "->")) &&
          toks[i + 2].kind == Token::kIdent && IsPunct(toks[i + 3], "(")) {
        const std::string& m = toks[i + 2].text;
        if (m == "ok") {
          branched = true;
          continue;
        }
        if (m == "status" || m == "message" || m == "code" ||
            m == "ToString") {
          consumed = true;
          break;
        }
      }
      if (in_return) {  // `return v;` / `return cond ? x : v;`
        consumed = true;
        break;
      }
      if (i > begin && IsPunct(toks[i - 1], "=")) {  // assigned onward
        consumed = true;
        break;
      }
      // Passed as an argument (including IgnoreStatus(v), Use(&v),
      // std::move(v)) — but `(v.ok()` was already classified above.
      size_t p = i;
      while (p > begin && IsPunct(toks[p - 1], "&")) --p;
      if (p > begin && (IsPunct(toks[p - 1], "(") || IsPunct(toks[p - 1], ","))) {
        bool is_ok_probe =
            i + 2 < end &&
            (IsPunct(toks[i + 1], ".") || IsPunct(toks[i + 1], "->")) &&
            IsIdent(toks[i + 2], "ok");
        if (!is_ok_probe) {
          consumed = true;
          break;
        }
      }
    }
    if (branched && !consumed) {
      Finding f;
      f.file = file;
      f.line = v.line;
      f.rule = "dropped-error-arm";
      f.message = std::string(v.is_result ? "Result" : "Status") + " '" +
                  v.name + "' in " + fn_name +
                  " is branched on with ok() but its error arm is never "
                  "propagated (not returned, assigned onward, passed on, "
                  "inspected, or IgnoreStatus()-ed)";
      out->push_back(f);
    }
  }
}

/// Collects `archis-analyze: allow(<rule>)` suppressions from the raw
/// (un-stripped) contents; each covers its own line and the next.
void CollectAllows(
    const std::string& path, const std::string& contents,
    std::vector<std::pair<std::string, std::pair<std::string, int>>>* out) {
  static const std::string kTag = "archis-analyze: allow(";
  size_t pos = 0;
  while ((pos = contents.find(kTag, pos)) != std::string::npos) {
    size_t open = pos + kTag.size();
    size_t close = contents.find(')', open);
    if (close == std::string::npos) break;
    std::string rule = contents.substr(open, close - open);
    int line = 1 + static_cast<int>(
                       std::count(contents.begin(), contents.begin() + pos,
                                  '\n'));
    out->push_back({rule, {path, line}});
    out->push_back({rule, {path, line + 1}});
    pos = open;
  }
}

}  // namespace

// ---- Analyzer -------------------------------------------------------------

void Analyzer::AddSource(const std::string& path,
                         const std::string& contents) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  CollectAllows(normalized, contents, &allows_);
  const std::string code = lint::StripComments(contents);
  const std::vector<Token> toks = Lex(code);

  std::vector<StructureParser::FnSpan> spans;
  std::vector<StructureParser::ClassSpan> class_spans;
  StructureParser parser{toks,   normalized,   &mutex_decls_, &rank_values_,
                         &spans, &class_spans, &class_names_, {}};
  parser.Parse();
  for (const auto& cs : class_spans) {
    HarvestVarTypes(toks, cs.begin, cs.end, &class_var_types_[cs.chain]);
  }

  for (const auto& span : spans) {
    FunctionRec fn;
    fn.qual_name = span.qual;
    fn.unqual = span.unqual;
    fn.class_chain = span.class_chain;
    fn.file = normalized;
    fn.line = span.line;

    std::vector<BodyFlow::Acq> raw_acquires;
    std::vector<BodyFlow::Call> raw_calls;
    BodyFlow flow{toks,          normalized,  span.begin, span.end,
                  &raw_acquires, &fn.intra_edges, &raw_calls};
    flow.Run();
    for (const auto& a : raw_acquires) {
      fn.acquires.push_back({a.member, a.owner, "", normalized, a.line});
    }
    for (auto& c : raw_calls) {
      fn.calls.push_back({c.callee, std::move(c.receiver), std::move(c.held),
                          normalized, c.line});
    }
    CheckStatusPropagation(toks, span.begin, span.end, normalized,
                           span.qual, &fn.local_findings);
    HarvestVarTypes(toks, span.params_begin, span.params_end, &fn.var_types);
    HarvestVarTypes(toks, span.begin, span.end, &fn.var_types);
    functions_.push_back(std::move(fn));
  }
}

bool Analyzer::IsSuppressed(const std::string& rule, const std::string& file,
                            int line) const {
  return std::find(allows_.begin(), allows_.end(),
                   std::make_pair(rule, std::make_pair(file, line))) !=
         allows_.end();
}

void Analyzer::ResolveLocks() {
  // member name → declarations, for steps 2/3 of resolution.
  std::map<std::string, std::vector<const MutexDecl*>> by_member;
  for (const MutexDecl& d : mutex_decls_) by_member[d.member].push_back(&d);

  auto owner_type = [&](const FunctionRec& fn,
                        const std::string& owner) -> std::string {
    auto local = fn.var_types.find(owner);
    if (local != fn.var_types.end()) return local->second;
    auto cls = class_var_types_.find(fn.class_chain);
    if (cls != class_var_types_.end()) {
      auto member = cls->second.find(owner);
      if (member != cls->second.end()) return member->second;
    }
    return "";
  };
  auto resolve = [&](const RawAcq& acq,
                     const FunctionRec& fn) -> std::string {
    auto it = by_member.find(acq.member);
    if (it == by_member.end()) return "";
    const std::vector<const MutexDecl*>& cands = it->second;
    auto decl_owner = [&](const MutexDecl* d) {
      return d->id.substr(0, d->id.size() - acq.member.size() - 2);
    };
    // 0. Explicit receiver with a harvested type: `shard.mu` binds to
    //    CacheShard::mu, `beta.mu_` to Beta::mu_ — never to the caller's
    //    own same-named member.
    if (!acq.owner.empty() && acq.owner != "this") {
      const std::string t = owner_type(fn, acq.owner);
      if (!t.empty()) {
        for (const MutexDecl* d : cands) {
          if (LastComponent(decl_owner(d)) == t) return d->id;
        }
        return "";  // typed receiver, but no such mutex: stay unresolved
      }
    }
    // 1. A member of the enclosing class (implicit `this`).
    if (acq.owner.empty() || acq.owner == "this") {
      if (!fn.class_chain.empty()) {
        const std::string cls = LastComponent(fn.class_chain);
        for (const MutexDecl* d : cands) {
          const std::string owner = decl_owner(d);
          if (LastComponent(owner) == cls || owner == fn.class_chain) {
            return d->id;
          }
        }
      }
    }
    // 2. Declared in the sibling header/source of the use site.
    const std::string stem = FileStem(acq.file);
    const MutexDecl* sibling = nullptr;
    int sibling_count = 0;
    for (const MutexDecl* d : cands) {
      if (FileStem(d->file) == stem) {
        sibling = d;
        ++sibling_count;
      }
    }
    if (sibling_count == 1) return sibling->id;
    // 3. Unique across the whole tree.
    if (cands.size() == 1) return cands[0]->id;
    return "";  // ambiguous: excluded from the graph rather than guessed
  };

  for (FunctionRec& fn : functions_) {
    for (RawAcq& a : fn.acquires) {
      a.resolved = resolve(a, fn);
    }
  }
}

void Analyzer::BuildGraphAndCycles() {
  struct WitnessSite {
    std::string file;
    int line;
    std::string text;
  };
  std::map<std::pair<std::string, std::string>, std::vector<WitnessSite>>
      graph;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line,
                      const std::string& text) {
    auto& wits = graph[{from, to}];
    if (wits.size() < 6) wits.push_back({file, line, text});
  };

  // Intra-function edges.
  for (const FunctionRec& fn : functions_) {
    for (const auto& [h, a] : fn.intra_edges) {
      const RawAcq& held = fn.acquires[h];
      const RawAcq& acq = fn.acquires[a];
      if (held.resolved.empty() || acq.resolved.empty()) continue;
      std::ostringstream w;
      w << acq.file << ":" << acq.line << ": " << fn.qual_name
        << " acquires " << acq.resolved << " while holding " << held.resolved
        << " (held since :" << held.line << ")";
      add_edge(held.resolved, acq.resolved, acq.file, acq.line, w.str());
    }
  }

  // Call edges. Each function's *transitive* acquisition set is computed
  // to a fixpoint over the call graph (callees resolve by unqualified
  // name, union over same-named definitions, minus candidates excluded by
  // an explicit receiver). Transitivity matters: the blob-cache shard
  // lock reaches the metrics-registry lock only through a metric-helper
  // hop that never takes a lock itself.
  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t i = 0; i < functions_.size(); ++i) {
    by_name[functions_[i].unqual].push_back(i);
  }
  // Per function: lock id → representative acquisition site + call path.
  struct AcqSite {
    std::string file;
    int line = 0;
    std::string path;  // "Registry::GetOrCreate" or "Helper -> ... -> f"
  };
  std::vector<std::map<std::string, AcqSite>> trans(functions_.size());
  for (size_t i = 0; i < functions_.size(); ++i) {
    for (const RawAcq& a : functions_[i].acquires) {
      if (a.resolved.empty()) continue;
      trans[i].emplace(a.resolved,
                       AcqSite{a.file, a.line, functions_[i].qual_name});
    }
  }
  // Dispatch rules, keyed by the shape of the call expression:
  //   bare `f()` / `this->f()`  — the caller's own class or a free
  //                               function; never another class's method.
  //   `Q::f()`                  — methods of class Q (or a free function:
  //                               Q may be a namespace).
  //   `obj.f()` / `obj->f()`    — if obj's declared type is known (local,
  //                               parameter or member harvest) and names a
  //                               class in the tree, exactly that class's
  //                               methods; a known but foreign type (std::
  //                               etc.) dispatches nowhere; an unknown
  //                               receiver falls back to any class's
  //                               method except the caller's own
  //                               (`file_->bytes_written()` must not loop
  //                               back into Wal and fake a self-deadlock).
  //   `Expr().f()`              — any class's method.
  auto receiver_type = [&](const FunctionRec& fn,
                           const std::string& receiver) -> std::string {
    auto local = fn.var_types.find(receiver);
    if (local != fn.var_types.end()) return local->second;
    auto cls = class_var_types_.find(fn.class_chain);
    if (cls != class_var_types_.end()) {
      auto member = cls->second.find(receiver);
      if (member != cls->second.end()) return member->second;
    }
    return "";
  };
  auto candidates_of = [&](const FunctionRec& fn, const RawCall& call) {
    std::vector<size_t> out;
    auto it = by_name.find(call.callee);
    if (it == by_name.end()) return out;
    std::string recv_type;
    bool typed = false;
    if (!call.receiver.empty() && call.receiver != "this" &&
        call.receiver != "<expr>" && call.receiver[0] != ':') {
      recv_type = receiver_type(fn, call.receiver);
      typed = !recv_type.empty();
      if (typed && class_names_.count(recv_type) == 0) {
        return out;  // a type we never parsed: its methods are not ours
      }
    }
    for (size_t j : it->second) {
      const FunctionRec& callee = functions_[j];
      if (&callee == &fn) continue;  // self-recursion adds nothing
      if (call.receiver.empty() || call.receiver == "this") {
        if (!callee.class_chain.empty() &&
            callee.class_chain != fn.class_chain) {
          continue;
        }
      } else if (call.receiver[0] == ':') {
        const std::string qualifier = call.receiver.substr(2);
        if (!callee.class_chain.empty() &&
            LastComponent(callee.class_chain) != qualifier) {
          continue;
        }
      } else if (call.receiver == "<expr>") {
        if (callee.class_chain.empty()) continue;
      } else if (typed) {
        if (LastComponent(callee.class_chain) != recv_type) continue;
      } else {
        if (callee.class_chain.empty()) continue;
        if (!fn.class_chain.empty() &&
            callee.class_chain == fn.class_chain) {
          continue;
        }
      }
      out.push_back(j);
    }
    return out;
  };
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t i = 0; i < functions_.size(); ++i) {
      for (const RawCall& call : functions_[i].calls) {
        for (size_t j : candidates_of(functions_[i], call)) {
          for (const auto& [lock, site] : trans[j]) {
            if (trans[i].count(lock) != 0) continue;
            AcqSite inherited = site;
            if (inherited.path.size() < 160) {  // keep witnesses readable
              inherited.path =
                  functions_[i].qual_name + " -> " + inherited.path;
            }
            trans[i].emplace(lock, std::move(inherited));
            changed = true;
          }
        }
      }
    }
  }
  for (const FunctionRec& fn : functions_) {
    for (const RawCall& call : fn.calls) {
      if (call.held.empty()) continue;
      for (size_t j : candidates_of(fn, call)) {
        for (const auto& [lock, site] : trans[j]) {
          for (int h : call.held) {
            const RawAcq& held = fn.acquires[h];
            if (held.resolved.empty()) continue;
            std::ostringstream w;
            w << call.file << ":" << call.line << ": " << fn.qual_name
              << " holds " << held.resolved << " while calling "
              << functions_[j].qual_name << "(), which acquires " << lock
              << " at " << site.file << ":" << site.line << " (via "
              << site.path << ")";
            add_edge(held.resolved, lock, call.file, call.line, w.str());
          }
        }
      }
    }
  }

  // Publish the edge list.
  for (const auto& [key, wits] : graph) {
    LockEdge e;
    e.from = key.first;
    e.to = key.second;
    e.file = wits.front().file;
    e.line = wits.front().line;
    for (const WitnessSite& w : wits) e.witness.push_back(w.text);
    edges_.push_back(std::move(e));
  }

  // Cycle search: Tarjan SCCs, then one canonical shortest cycle per SCC.
  std::vector<std::string> nodes;
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, wits] : graph) {
    (void)wits;
    adj[key.first].push_back(key.second);
    nodes.push_back(key.first);
    nodes.push_back(key.second);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::map<std::string, int> index, low, comp;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int next_index = 0, next_comp = 0;
  // Iterative Tarjan (explicit frames; the graph is tiny but recursion
  // depth should not depend on it).
  struct Frame {
    std::string node;
    size_t child = 0;
  };
  for (const std::string& root : nodes) {
    if (index.count(root) != 0) continue;
    std::vector<Frame> frames{{root, 0}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::string& v = f.node;
      if (f.child == 0 && index.count(v) == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
      }
      const std::vector<std::string>& out = adj[v];
      bool descended = false;
      while (f.child < out.size()) {
        const std::string& w = out[f.child++];
        if (index.count(w) == 0) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack.count(w) != 0) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          std::string w = stack.back();
          stack.pop_back();
          on_stack.erase(w);
          comp[w] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      std::string finished = v;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] =
            std::min(low[frames.back().node], low[finished]);
      }
    }
  }

  std::map<int, std::vector<std::string>> sccs;
  for (const auto& [node, c] : comp) sccs[c].push_back(node);

  for (auto& [c, members] : sccs) {
    (void)c;
    std::sort(members.begin(), members.end());
    const std::string& start = members.front();
    bool self_loop = graph.count({start, start}) != 0;
    if (members.size() == 1 && !self_loop) continue;

    // Shortest cycle from `start` back to itself inside the SCC.
    std::vector<std::string> path;
    if (self_loop) {
      path = {start, start};
    } else {
      std::set<std::string> in_scc(members.begin(), members.end());
      std::map<std::string, std::string> parent;
      std::deque<std::string> queue;
      for (const std::string& n : adj[start]) {
        if (in_scc.count(n) != 0 && parent.count(n) == 0) {
          parent[n] = start;
          queue.push_back(n);
        }
      }
      std::string found;
      while (!queue.empty() && found.empty()) {
        std::string v = queue.front();
        queue.pop_front();
        if (v == start) {
          found = v;
          break;
        }
        for (const std::string& w : adj[v]) {
          if (in_scc.count(w) == 0) continue;
          if (w == start) {
            parent[start + "\x01"] = v;  // sentinel key for the return hop
            found = start;
            break;
          }
          if (parent.count(w) == 0) {
            parent[w] = v;
            queue.push_back(w);
          }
        }
      }
      if (found.empty()) continue;  // disconnected? (cannot happen in SCC)
      // Reconstruct start → ... → start.
      std::vector<std::string> rev{start};
      std::string cur = parent[start + "\x01"];
      while (cur != start) {
        rev.push_back(cur);
        cur = parent[cur];
      }
      rev.push_back(start);
      path.assign(rev.rbegin(), rev.rend());
    }

    // Assemble the finding: every witness of every edge on the cycle.
    Finding f;
    f.rule = "lock-cycle";
    std::ostringstream msg;
    msg << "potential deadlock: lock-order cycle ";
    for (size_t i = 0; i < path.size(); ++i) {
      if (i != 0) msg << " -> ";
      msg << path[i];
    }
    f.message = msg.str();
    bool suppressed = false;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const auto& wits = graph[{path[i], path[i + 1]}];
      for (const WitnessSite& w : wits) {
        f.witness.push_back(w.text);
        if (IsSuppressed("lock-cycle", w.file, w.line)) suppressed = true;
        if (f.file.empty()) {
          f.file = w.file;
          f.line = w.line;
        }
      }
    }
    if (!suppressed) findings_.push_back(std::move(f));
  }
}

void Analyzer::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  ResolveLocks();
  BuildGraphAndCycles();
  for (const FunctionRec& fn : functions_) {
    for (const Finding& f : fn.local_findings) {
      if (!IsSuppressed(f.rule, f.file, f.line)) findings_.push_back(f);
    }
  }
  std::sort(mutex_decls_.begin(), mutex_decls_.end(),
            [](const MutexDecl& a, const MutexDecl& b) {
              return std::tie(a.id, a.file, a.line) <
                     std::tie(b.id, b.file, b.line);
            });
  std::sort(edges_.begin(), edges_.end(),
            [](const LockEdge& a, const LockEdge& b) {
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });
  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

std::string Analyzer::LockHierarchyTable() const {
  // Out-edges per lock id.
  std::map<std::string, std::vector<std::string>> out;
  for (const LockEdge& e : edges_) out[e.from].push_back(e.to);

  auto ordinal = [&](const MutexDecl& d) {
    auto it = rank_values_.find(d.rank);
    return it == rank_values_.end() ? 1 << 30 : it->second;
  };
  std::vector<const MutexDecl*> rows;
  for (const MutexDecl& d : mutex_decls_) rows.push_back(&d);
  std::sort(rows.begin(), rows.end(),
            [&](const MutexDecl* a, const MutexDecl* b) {
              return std::make_pair(ordinal(*a), a->id) <
                     std::make_pair(ordinal(*b), b->id);
            });

  std::ostringstream os;
  os << "| Ordinal | LockRank | Mutex | Declared | Acquired while held |\n";
  os << "|---:|---|---|---|---|\n";
  for (const MutexDecl* d : rows) {
    os << "| " << (ordinal(*d) == 1 << 30 ? std::string("—")
                                          : std::to_string(ordinal(*d)))
       << " | `" << (d->rank.empty() ? std::string("(unranked)") : d->rank)
       << "` | `" << d->id << "` | " << d->file << ":" << d->line << " | ";
    auto it = out.find(d->id);
    if (it == out.end()) {
      os << "—";
    } else {
      std::vector<std::string> targets = it->second;
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
      for (size_t i = 0; i < targets.size(); ++i) {
        if (i != 0) os << ", ";
        os << "`" << targets[i] << "`";
      }
    }
    os << " |\n";
  }
  return os.str();
}

Result<Analyzer> AnalyzeTree(const std::vector<std::string>& roots) {
  Analyzer analyzer;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (!fs::exists(root, ec)) {
      return Status::NotFound("analyze root '" + root + "' does not exist");
    }
    std::vector<fs::path> files;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      for (fs::recursive_directory_iterator it(root, ec), dir_end;
           it != dir_end && !ec; it.increment(ec)) {
        const fs::path& p = it->path();
        if (it->is_directory()) {
          const std::string name = p.filename().string();
          if (name.rfind("build", 0) == 0 || name == "lint_fixtures" ||
              name == "analyze_fixtures" || name == ".git") {
            it.disable_recursion_pending();
          }
          continue;
        }
        const std::string ext = p.extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
          files.push_back(p);
        }
      }
      if (ec) {
        return Status::IOError("walking '" + root + "': " + ec.message());
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& p : files) {
      std::ifstream in(p, std::ios::binary);
      if (!in) return Status::IOError("cannot read " + p.generic_string());
      std::ostringstream buf;
      buf << in.rdbuf();
      analyzer.AddSource(p.generic_string(), buf.str());
    }
  }
  analyzer.Finalize();
  return analyzer;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\"version\":1,\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) os << ",";
    os << "{\"file\":\"" << JsonEscape(f.file) << "\",\"line\":" << f.line
       << ",\"rule\":\"" << JsonEscape(f.rule) << "\",\"message\":\""
       << JsonEscape(f.message) << "\",\"witness\":[";
    for (size_t w = 0; w < f.witness.size(); ++w) {
      if (w != 0) os << ",";
      os << "\"" << JsonEscape(f.witness[w]) << "\"";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace archis::analyze
