# Empty compiler generated dependencies file for archis_storage.
# This may be replaced when dependencies are built.
