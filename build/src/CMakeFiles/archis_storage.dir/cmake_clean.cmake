file(REMOVE_RECURSE
  "CMakeFiles/archis_storage.dir/storage/bptree.cc.o"
  "CMakeFiles/archis_storage.dir/storage/bptree.cc.o.d"
  "CMakeFiles/archis_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/archis_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/archis_storage.dir/storage/page.cc.o"
  "CMakeFiles/archis_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/archis_storage.dir/storage/page_manager.cc.o"
  "CMakeFiles/archis_storage.dir/storage/page_manager.cc.o.d"
  "libarchis_storage.a"
  "libarchis_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
