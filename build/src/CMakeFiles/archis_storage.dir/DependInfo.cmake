
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bptree.cc" "src/CMakeFiles/archis_storage.dir/storage/bptree.cc.o" "gcc" "src/CMakeFiles/archis_storage.dir/storage/bptree.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/archis_storage.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/archis_storage.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/archis_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/archis_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/page_manager.cc" "src/CMakeFiles/archis_storage.dir/storage/page_manager.cc.o" "gcc" "src/CMakeFiles/archis_storage.dir/storage/page_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
