file(REMOVE_RECURSE
  "libarchis_storage.a"
)
