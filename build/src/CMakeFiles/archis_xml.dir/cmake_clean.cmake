file(REMOVE_RECURSE
  "CMakeFiles/archis_xml.dir/xml/node.cc.o"
  "CMakeFiles/archis_xml.dir/xml/node.cc.o.d"
  "CMakeFiles/archis_xml.dir/xml/parser.cc.o"
  "CMakeFiles/archis_xml.dir/xml/parser.cc.o.d"
  "CMakeFiles/archis_xml.dir/xml/serializer.cc.o"
  "CMakeFiles/archis_xml.dir/xml/serializer.cc.o.d"
  "libarchis_xml.a"
  "libarchis_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
