# Empty compiler generated dependencies file for archis_xml.
# This may be replaced when dependencies are built.
