file(REMOVE_RECURSE
  "libarchis_xml.a"
)
