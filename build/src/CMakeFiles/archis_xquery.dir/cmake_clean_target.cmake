file(REMOVE_RECURSE
  "libarchis_xquery.a"
)
