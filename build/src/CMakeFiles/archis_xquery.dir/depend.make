# Empty dependencies file for archis_xquery.
# This may be replaced when dependencies are built.
