
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xquery/ast.cc" "src/CMakeFiles/archis_xquery.dir/xquery/ast.cc.o" "gcc" "src/CMakeFiles/archis_xquery.dir/xquery/ast.cc.o.d"
  "/root/repo/src/xquery/evaluator.cc" "src/CMakeFiles/archis_xquery.dir/xquery/evaluator.cc.o" "gcc" "src/CMakeFiles/archis_xquery.dir/xquery/evaluator.cc.o.d"
  "/root/repo/src/xquery/functions.cc" "src/CMakeFiles/archis_xquery.dir/xquery/functions.cc.o" "gcc" "src/CMakeFiles/archis_xquery.dir/xquery/functions.cc.o.d"
  "/root/repo/src/xquery/lexer.cc" "src/CMakeFiles/archis_xquery.dir/xquery/lexer.cc.o" "gcc" "src/CMakeFiles/archis_xquery.dir/xquery/lexer.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/CMakeFiles/archis_xquery.dir/xquery/parser.cc.o" "gcc" "src/CMakeFiles/archis_xquery.dir/xquery/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archis_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
