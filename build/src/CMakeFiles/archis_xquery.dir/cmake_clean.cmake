file(REMOVE_RECURSE
  "CMakeFiles/archis_xquery.dir/xquery/ast.cc.o"
  "CMakeFiles/archis_xquery.dir/xquery/ast.cc.o.d"
  "CMakeFiles/archis_xquery.dir/xquery/evaluator.cc.o"
  "CMakeFiles/archis_xquery.dir/xquery/evaluator.cc.o.d"
  "CMakeFiles/archis_xquery.dir/xquery/functions.cc.o"
  "CMakeFiles/archis_xquery.dir/xquery/functions.cc.o.d"
  "CMakeFiles/archis_xquery.dir/xquery/lexer.cc.o"
  "CMakeFiles/archis_xquery.dir/xquery/lexer.cc.o.d"
  "CMakeFiles/archis_xquery.dir/xquery/parser.cc.o"
  "CMakeFiles/archis_xquery.dir/xquery/parser.cc.o.d"
  "libarchis_xquery.a"
  "libarchis_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
