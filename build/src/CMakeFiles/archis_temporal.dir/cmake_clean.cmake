file(REMOVE_RECURSE
  "CMakeFiles/archis_temporal.dir/temporal/aggregate.cc.o"
  "CMakeFiles/archis_temporal.dir/temporal/aggregate.cc.o.d"
  "CMakeFiles/archis_temporal.dir/temporal/coalesce.cc.o"
  "CMakeFiles/archis_temporal.dir/temporal/coalesce.cc.o.d"
  "CMakeFiles/archis_temporal.dir/temporal/now.cc.o"
  "CMakeFiles/archis_temporal.dir/temporal/now.cc.o.d"
  "CMakeFiles/archis_temporal.dir/temporal/restructure.cc.o"
  "CMakeFiles/archis_temporal.dir/temporal/restructure.cc.o.d"
  "libarchis_temporal.a"
  "libarchis_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
