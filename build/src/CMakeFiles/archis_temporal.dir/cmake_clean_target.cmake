file(REMOVE_RECURSE
  "libarchis_temporal.a"
)
