# Empty dependencies file for archis_temporal.
# This may be replaced when dependencies are built.
