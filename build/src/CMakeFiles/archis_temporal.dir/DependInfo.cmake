
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/aggregate.cc" "src/CMakeFiles/archis_temporal.dir/temporal/aggregate.cc.o" "gcc" "src/CMakeFiles/archis_temporal.dir/temporal/aggregate.cc.o.d"
  "/root/repo/src/temporal/coalesce.cc" "src/CMakeFiles/archis_temporal.dir/temporal/coalesce.cc.o" "gcc" "src/CMakeFiles/archis_temporal.dir/temporal/coalesce.cc.o.d"
  "/root/repo/src/temporal/now.cc" "src/CMakeFiles/archis_temporal.dir/temporal/now.cc.o" "gcc" "src/CMakeFiles/archis_temporal.dir/temporal/now.cc.o.d"
  "/root/repo/src/temporal/restructure.cc" "src/CMakeFiles/archis_temporal.dir/temporal/restructure.cc.o" "gcc" "src/CMakeFiles/archis_temporal.dir/temporal/restructure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archis_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
