file(REMOVE_RECURSE
  "CMakeFiles/archis_workload.dir/workload/employee_workload.cc.o"
  "CMakeFiles/archis_workload.dir/workload/employee_workload.cc.o.d"
  "libarchis_workload.a"
  "libarchis_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
