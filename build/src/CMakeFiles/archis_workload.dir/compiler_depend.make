# Empty compiler generated dependencies file for archis_workload.
# This may be replaced when dependencies are built.
