file(REMOVE_RECURSE
  "libarchis_workload.a"
)
