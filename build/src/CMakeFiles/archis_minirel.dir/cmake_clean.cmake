file(REMOVE_RECURSE
  "CMakeFiles/archis_minirel.dir/minirel/catalog.cc.o"
  "CMakeFiles/archis_minirel.dir/minirel/catalog.cc.o.d"
  "CMakeFiles/archis_minirel.dir/minirel/database.cc.o"
  "CMakeFiles/archis_minirel.dir/minirel/database.cc.o.d"
  "CMakeFiles/archis_minirel.dir/minirel/executor.cc.o"
  "CMakeFiles/archis_minirel.dir/minirel/executor.cc.o.d"
  "CMakeFiles/archis_minirel.dir/minirel/predicate.cc.o"
  "CMakeFiles/archis_minirel.dir/minirel/predicate.cc.o.d"
  "CMakeFiles/archis_minirel.dir/minirel/schema.cc.o"
  "CMakeFiles/archis_minirel.dir/minirel/schema.cc.o.d"
  "CMakeFiles/archis_minirel.dir/minirel/table.cc.o"
  "CMakeFiles/archis_minirel.dir/minirel/table.cc.o.d"
  "CMakeFiles/archis_minirel.dir/minirel/tuple.cc.o"
  "CMakeFiles/archis_minirel.dir/minirel/tuple.cc.o.d"
  "CMakeFiles/archis_minirel.dir/minirel/value.cc.o"
  "CMakeFiles/archis_minirel.dir/minirel/value.cc.o.d"
  "libarchis_minirel.a"
  "libarchis_minirel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_minirel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
