# Empty compiler generated dependencies file for archis_minirel.
# This may be replaced when dependencies are built.
