file(REMOVE_RECURSE
  "libarchis_minirel.a"
)
