
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minirel/catalog.cc" "src/CMakeFiles/archis_minirel.dir/minirel/catalog.cc.o" "gcc" "src/CMakeFiles/archis_minirel.dir/minirel/catalog.cc.o.d"
  "/root/repo/src/minirel/database.cc" "src/CMakeFiles/archis_minirel.dir/minirel/database.cc.o" "gcc" "src/CMakeFiles/archis_minirel.dir/minirel/database.cc.o.d"
  "/root/repo/src/minirel/executor.cc" "src/CMakeFiles/archis_minirel.dir/minirel/executor.cc.o" "gcc" "src/CMakeFiles/archis_minirel.dir/minirel/executor.cc.o.d"
  "/root/repo/src/minirel/predicate.cc" "src/CMakeFiles/archis_minirel.dir/minirel/predicate.cc.o" "gcc" "src/CMakeFiles/archis_minirel.dir/minirel/predicate.cc.o.d"
  "/root/repo/src/minirel/schema.cc" "src/CMakeFiles/archis_minirel.dir/minirel/schema.cc.o" "gcc" "src/CMakeFiles/archis_minirel.dir/minirel/schema.cc.o.d"
  "/root/repo/src/minirel/table.cc" "src/CMakeFiles/archis_minirel.dir/minirel/table.cc.o" "gcc" "src/CMakeFiles/archis_minirel.dir/minirel/table.cc.o.d"
  "/root/repo/src/minirel/tuple.cc" "src/CMakeFiles/archis_minirel.dir/minirel/tuple.cc.o" "gcc" "src/CMakeFiles/archis_minirel.dir/minirel/tuple.cc.o.d"
  "/root/repo/src/minirel/value.cc" "src/CMakeFiles/archis_minirel.dir/minirel/value.cc.o" "gcc" "src/CMakeFiles/archis_minirel.dir/minirel/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archis_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
