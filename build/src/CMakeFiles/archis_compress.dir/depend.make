# Empty dependencies file for archis_compress.
# This may be replaced when dependencies are built.
