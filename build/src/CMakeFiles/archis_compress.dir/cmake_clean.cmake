file(REMOVE_RECURSE
  "CMakeFiles/archis_compress.dir/compress/blob_store.cc.o"
  "CMakeFiles/archis_compress.dir/compress/blob_store.cc.o.d"
  "CMakeFiles/archis_compress.dir/compress/block_zip.cc.o"
  "CMakeFiles/archis_compress.dir/compress/block_zip.cc.o.d"
  "libarchis_compress.a"
  "libarchis_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
