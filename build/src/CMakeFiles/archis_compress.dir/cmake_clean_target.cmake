file(REMOVE_RECURSE
  "libarchis_compress.a"
)
