# Empty compiler generated dependencies file for archis_common.
# This may be replaced when dependencies are built.
