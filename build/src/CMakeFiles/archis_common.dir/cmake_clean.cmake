file(REMOVE_RECURSE
  "CMakeFiles/archis_common.dir/common/date.cc.o"
  "CMakeFiles/archis_common.dir/common/date.cc.o.d"
  "CMakeFiles/archis_common.dir/common/interval.cc.o"
  "CMakeFiles/archis_common.dir/common/interval.cc.o.d"
  "CMakeFiles/archis_common.dir/common/status.cc.o"
  "CMakeFiles/archis_common.dir/common/status.cc.o.d"
  "CMakeFiles/archis_common.dir/common/str_util.cc.o"
  "CMakeFiles/archis_common.dir/common/str_util.cc.o.d"
  "libarchis_common.a"
  "libarchis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
