
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/date.cc" "src/CMakeFiles/archis_common.dir/common/date.cc.o" "gcc" "src/CMakeFiles/archis_common.dir/common/date.cc.o.d"
  "/root/repo/src/common/interval.cc" "src/CMakeFiles/archis_common.dir/common/interval.cc.o" "gcc" "src/CMakeFiles/archis_common.dir/common/interval.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/archis_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/archis_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/archis_common.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/archis_common.dir/common/str_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
