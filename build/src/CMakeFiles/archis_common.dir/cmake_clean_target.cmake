file(REMOVE_RECURSE
  "libarchis_common.a"
)
