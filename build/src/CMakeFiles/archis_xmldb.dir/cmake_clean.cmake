file(REMOVE_RECURSE
  "CMakeFiles/archis_xmldb.dir/xmldb/document_store.cc.o"
  "CMakeFiles/archis_xmldb.dir/xmldb/document_store.cc.o.d"
  "CMakeFiles/archis_xmldb.dir/xmldb/xml_database.cc.o"
  "CMakeFiles/archis_xmldb.dir/xmldb/xml_database.cc.o.d"
  "libarchis_xmldb.a"
  "libarchis_xmldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_xmldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
