# Empty compiler generated dependencies file for archis_xmldb.
# This may be replaced when dependencies are built.
