file(REMOVE_RECURSE
  "libarchis_xmldb.a"
)
