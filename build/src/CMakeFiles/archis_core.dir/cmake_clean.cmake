file(REMOVE_RECURSE
  "CMakeFiles/archis_core.dir/archis/archis.cc.o"
  "CMakeFiles/archis_core.dir/archis/archis.cc.o.d"
  "CMakeFiles/archis_core.dir/archis/archiver.cc.o"
  "CMakeFiles/archis_core.dir/archis/archiver.cc.o.d"
  "CMakeFiles/archis_core.dir/archis/change_capture.cc.o"
  "CMakeFiles/archis_core.dir/archis/change_capture.cc.o.d"
  "CMakeFiles/archis_core.dir/archis/compressed_segment.cc.o"
  "CMakeFiles/archis_core.dir/archis/compressed_segment.cc.o.d"
  "CMakeFiles/archis_core.dir/archis/htable.cc.o"
  "CMakeFiles/archis_core.dir/archis/htable.cc.o.d"
  "CMakeFiles/archis_core.dir/archis/publisher.cc.o"
  "CMakeFiles/archis_core.dir/archis/publisher.cc.o.d"
  "CMakeFiles/archis_core.dir/archis/segment_manager.cc.o"
  "CMakeFiles/archis_core.dir/archis/segment_manager.cc.o.d"
  "CMakeFiles/archis_core.dir/archis/sqlxml.cc.o"
  "CMakeFiles/archis_core.dir/archis/sqlxml.cc.o.d"
  "CMakeFiles/archis_core.dir/archis/translator.cc.o"
  "CMakeFiles/archis_core.dir/archis/translator.cc.o.d"
  "libarchis_core.a"
  "libarchis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
