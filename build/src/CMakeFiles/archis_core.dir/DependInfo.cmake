
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/archis/archis.cc" "src/CMakeFiles/archis_core.dir/archis/archis.cc.o" "gcc" "src/CMakeFiles/archis_core.dir/archis/archis.cc.o.d"
  "/root/repo/src/archis/archiver.cc" "src/CMakeFiles/archis_core.dir/archis/archiver.cc.o" "gcc" "src/CMakeFiles/archis_core.dir/archis/archiver.cc.o.d"
  "/root/repo/src/archis/change_capture.cc" "src/CMakeFiles/archis_core.dir/archis/change_capture.cc.o" "gcc" "src/CMakeFiles/archis_core.dir/archis/change_capture.cc.o.d"
  "/root/repo/src/archis/compressed_segment.cc" "src/CMakeFiles/archis_core.dir/archis/compressed_segment.cc.o" "gcc" "src/CMakeFiles/archis_core.dir/archis/compressed_segment.cc.o.d"
  "/root/repo/src/archis/htable.cc" "src/CMakeFiles/archis_core.dir/archis/htable.cc.o" "gcc" "src/CMakeFiles/archis_core.dir/archis/htable.cc.o.d"
  "/root/repo/src/archis/publisher.cc" "src/CMakeFiles/archis_core.dir/archis/publisher.cc.o" "gcc" "src/CMakeFiles/archis_core.dir/archis/publisher.cc.o.d"
  "/root/repo/src/archis/segment_manager.cc" "src/CMakeFiles/archis_core.dir/archis/segment_manager.cc.o" "gcc" "src/CMakeFiles/archis_core.dir/archis/segment_manager.cc.o.d"
  "/root/repo/src/archis/sqlxml.cc" "src/CMakeFiles/archis_core.dir/archis/sqlxml.cc.o" "gcc" "src/CMakeFiles/archis_core.dir/archis/sqlxml.cc.o.d"
  "/root/repo/src/archis/translator.cc" "src/CMakeFiles/archis_core.dir/archis/translator.cc.o" "gcc" "src/CMakeFiles/archis_core.dir/archis/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archis_minirel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
