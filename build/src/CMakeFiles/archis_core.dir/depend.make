# Empty dependencies file for archis_core.
# This may be replaced when dependencies are built.
