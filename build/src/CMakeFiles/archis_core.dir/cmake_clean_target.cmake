file(REMOVE_RECURSE
  "libarchis_core.a"
)
