# Empty compiler generated dependencies file for minirel_test.
# This may be replaced when dependencies are built.
