file(REMOVE_RECURSE
  "CMakeFiles/minirel_test.dir/minirel_test.cc.o"
  "CMakeFiles/minirel_test.dir/minirel_test.cc.o.d"
  "minirel_test"
  "minirel_test.pdb"
  "minirel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minirel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
