file(REMOVE_RECURSE
  "CMakeFiles/compress_test.dir/compress_test.cc.o"
  "CMakeFiles/compress_test.dir/compress_test.cc.o.d"
  "compress_test"
  "compress_test.pdb"
  "compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
