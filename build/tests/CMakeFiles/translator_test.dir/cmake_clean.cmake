file(REMOVE_RECURSE
  "CMakeFiles/translator_test.dir/translator_test.cc.o"
  "CMakeFiles/translator_test.dir/translator_test.cc.o.d"
  "translator_test"
  "translator_test.pdb"
  "translator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
