# Empty compiler generated dependencies file for sqlxml_test.
# This may be replaced when dependencies are built.
