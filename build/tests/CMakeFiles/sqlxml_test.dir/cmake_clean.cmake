file(REMOVE_RECURSE
  "CMakeFiles/sqlxml_test.dir/sqlxml_test.cc.o"
  "CMakeFiles/sqlxml_test.dir/sqlxml_test.cc.o.d"
  "sqlxml_test"
  "sqlxml_test.pdb"
  "sqlxml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlxml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
