
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sqlxml_test.cc" "tests/CMakeFiles/sqlxml_test.dir/sqlxml_test.cc.o" "gcc" "tests/CMakeFiles/sqlxml_test.dir/sqlxml_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archis_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_xmldb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_minirel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
