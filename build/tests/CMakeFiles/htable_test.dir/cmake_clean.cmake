file(REMOVE_RECURSE
  "CMakeFiles/htable_test.dir/htable_test.cc.o"
  "CMakeFiles/htable_test.dir/htable_test.cc.o.d"
  "htable_test"
  "htable_test.pdb"
  "htable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
