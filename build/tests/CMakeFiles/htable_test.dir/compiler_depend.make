# Empty compiler generated dependencies file for htable_test.
# This may be replaced when dependencies are built.
