# Empty compiler generated dependencies file for archis_integration_test.
# This may be replaced when dependencies are built.
