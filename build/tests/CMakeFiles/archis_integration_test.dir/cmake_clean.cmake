file(REMOVE_RECURSE
  "CMakeFiles/archis_integration_test.dir/archis_integration_test.cc.o"
  "CMakeFiles/archis_integration_test.dir/archis_integration_test.cc.o.d"
  "archis_integration_test"
  "archis_integration_test.pdb"
  "archis_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archis_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
