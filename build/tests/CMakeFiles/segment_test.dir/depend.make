# Empty dependencies file for segment_test.
# This may be replaced when dependencies are built.
