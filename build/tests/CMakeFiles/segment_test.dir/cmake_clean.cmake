file(REMOVE_RECURSE
  "CMakeFiles/segment_test.dir/segment_test.cc.o"
  "CMakeFiles/segment_test.dir/segment_test.cc.o.d"
  "segment_test"
  "segment_test.pdb"
  "segment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
