file(REMOVE_RECURSE
  "CMakeFiles/xmldb_test.dir/xmldb_test.cc.o"
  "CMakeFiles/xmldb_test.dir/xmldb_test.cc.o.d"
  "xmldb_test"
  "xmldb_test.pdb"
  "xmldb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmldb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
