# Empty compiler generated dependencies file for xmldb_test.
# This may be replaced when dependencies are built.
