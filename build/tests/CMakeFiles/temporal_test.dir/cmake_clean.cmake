file(REMOVE_RECURSE
  "CMakeFiles/temporal_test.dir/temporal_test.cc.o"
  "CMakeFiles/temporal_test.dir/temporal_test.cc.o.d"
  "temporal_test"
  "temporal_test.pdb"
  "temporal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
