# Empty dependencies file for xquery_test.
# This may be replaced when dependencies are built.
