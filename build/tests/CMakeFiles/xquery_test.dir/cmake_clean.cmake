file(REMOVE_RECURSE
  "CMakeFiles/xquery_test.dir/xquery_test.cc.o"
  "CMakeFiles/xquery_test.dir/xquery_test.cc.o.d"
  "xquery_test"
  "xquery_test.pdb"
  "xquery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
