# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/archis_integration_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/minirel_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_test[1]_include.cmake")
include("/root/repo/build/tests/xquery_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/segment_test[1]_include.cmake")
include("/root/repo/build/tests/translator_test[1]_include.cmake")
include("/root/repo/build/tests/xmldb_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sqlxml_test[1]_include.cmake")
include("/root/repo/build/tests/htable_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
