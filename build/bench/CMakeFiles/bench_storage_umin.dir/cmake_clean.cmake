file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_umin.dir/bench_storage_umin.cc.o"
  "CMakeFiles/bench_storage_umin.dir/bench_storage_umin.cc.o.d"
  "bench_storage_umin"
  "bench_storage_umin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_umin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
