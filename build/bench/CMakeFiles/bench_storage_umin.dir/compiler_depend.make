# Empty compiler generated dependencies file for bench_storage_umin.
# This may be replaced when dependencies are built.
