file(REMOVE_RECURSE
  "CMakeFiles/bench_clustering.dir/bench_clustering.cc.o"
  "CMakeFiles/bench_clustering.dir/bench_clustering.cc.o.d"
  "bench_clustering"
  "bench_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
