# Empty dependencies file for bench_clustering.
# This may be replaced when dependencies are built.
