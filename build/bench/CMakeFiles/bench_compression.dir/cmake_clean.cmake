file(REMOVE_RECURSE
  "CMakeFiles/bench_compression.dir/bench_compression.cc.o"
  "CMakeFiles/bench_compression.dir/bench_compression.cc.o.d"
  "bench_compression"
  "bench_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
