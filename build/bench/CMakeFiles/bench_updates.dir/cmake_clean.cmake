file(REMOVE_RECURSE
  "CMakeFiles/bench_updates.dir/bench_updates.cc.o"
  "CMakeFiles/bench_updates.dir/bench_updates.cc.o.d"
  "bench_updates"
  "bench_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
