# Empty compiler generated dependencies file for bench_updates.
# This may be replaced when dependencies are built.
