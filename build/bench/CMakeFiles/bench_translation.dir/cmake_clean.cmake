file(REMOVE_RECURSE
  "CMakeFiles/bench_translation.dir/bench_translation.cc.o"
  "CMakeFiles/bench_translation.dir/bench_translation.cc.o.d"
  "bench_translation"
  "bench_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
