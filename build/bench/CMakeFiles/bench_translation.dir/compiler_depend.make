# Empty compiler generated dependencies file for bench_translation.
# This may be replaced when dependencies are built.
