# Empty compiler generated dependencies file for bench_queries_compressed.
# This may be replaced when dependencies are built.
