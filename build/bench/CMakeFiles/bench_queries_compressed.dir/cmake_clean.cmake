file(REMOVE_RECURSE
  "CMakeFiles/bench_queries_compressed.dir/bench_queries_compressed.cc.o"
  "CMakeFiles/bench_queries_compressed.dir/bench_queries_compressed.cc.o.d"
  "bench_queries_compressed"
  "bench_queries_compressed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queries_compressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
