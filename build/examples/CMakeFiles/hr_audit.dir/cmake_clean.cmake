file(REMOVE_RECURSE
  "CMakeFiles/hr_audit.dir/hr_audit.cpp.o"
  "CMakeFiles/hr_audit.dir/hr_audit.cpp.o.d"
  "hr_audit"
  "hr_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hr_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
