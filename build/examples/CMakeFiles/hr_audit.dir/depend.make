# Empty dependencies file for hr_audit.
# This may be replaced when dependencies are built.
