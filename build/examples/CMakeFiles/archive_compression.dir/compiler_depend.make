# Empty compiler generated dependencies file for archive_compression.
# This may be replaced when dependencies are built.
