file(REMOVE_RECURSE
  "CMakeFiles/archive_compression.dir/archive_compression.cpp.o"
  "CMakeFiles/archive_compression.dir/archive_compression.cpp.o.d"
  "archive_compression"
  "archive_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
