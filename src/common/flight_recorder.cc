#include "common/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/log.h"
#include "common/metrics.h"
#include "common/parse.h"

namespace archis::fr {
namespace {

// ---------------------------------------------------------------------------
// Ring pool

// One published event: a per-slot seqlock word bracketing six relaxed
// atomic data words (48 bytes of payload). See the header comment for
// the publish/read protocol.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> w[6] = {};
};

struct Ring {
  uint16_t tid = 0;       // index in the pool, stamped into events
  uint32_t capacity = 0;  // slots; events older than the last `capacity`
                          // are overwritten
  std::atomic<uint64_t> next{0};  // monotonic count of events ever written
  std::unique_ptr<Slot[]> slots;
};

constexpr uint32_t kMaxRings = 256;
constexpr uint32_t kDefaultRingEvents = 2048;

std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<uint32_t> g_ring_count{0};

uint32_t RingCapacityFromEnv() {
  static const uint32_t cap = [] {
    const char* env = std::getenv("ARCHIS_FR_RING");
    if (env == nullptr) return kDefaultRingEvents;
    // Strict parse (the old strtol ignored the end pointer, so "4096xyz"
    // half-parsed); a rejected or out-of-range value falls back to the
    // default with one warning instead of a silent drop.
    const Result<int64_t> v = ParseInt64(env);
    if (!v.ok()) {
      logging::Warn("env.rejected")
          .Kv("var", "ARCHIS_FR_RING")
          .Kv("value", env)
          .Kv("error", v.status().message());
      return kDefaultRingEvents;
    }
    if (*v < 8 || *v > (1 << 20)) {
      logging::Warn("env.rejected")
          .Kv("var", "ARCHIS_FR_RING")
          .Kv("value", env)
          .Kv("error", "out of range [8, 1048576]");
      return kDefaultRingEvents;
    }
    return static_cast<uint32_t>(*v);
  }();
  return cap;
}

// Claims one pool slot for the calling thread. Rings are heap-allocated
// on first use (never from a signal context: Record is only called from
// regular code) and intentionally leaked so a crash dump still sees the
// events of exited threads.
Ring* ClaimRing() {
  const uint32_t idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxRings) return nullptr;  // pool exhausted: drop events
  Ring* ring = new Ring();
  ring->tid = static_cast<uint16_t>(idx);
  ring->capacity = RingCapacityFromEnv();
  ring->slots = std::make_unique<Slot[]>(ring->capacity);
  g_rings[idx].store(ring, std::memory_order_release);
  return ring;
}

thread_local Ring* t_ring = nullptr;
thread_local bool t_ring_unavailable = false;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// -1 = read ARCHIS_FLIGHT_RECORDER on first use.
std::atomic<int> g_enabled{-1};

}  // namespace

bool Enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("ARCHIS_FLIGHT_RECORDER");
    const int on = (env == nullptr || std::strcmp(env, "0") != 0) ? 1 : 0;
    g_enabled.compare_exchange_strong(v, on, std::memory_order_relaxed);
    v = g_enabled.load(std::memory_order_relaxed);
  }
  return v != 0;
}

void SetEnabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

const char* EventTypeName(EventType type) {
  switch (type) {
#define ARCHIS_FR_NAME(sym, name) \
  case EventType::sym:            \
    return name;
    ARCHIS_FR_EVENT_LIST(ARCHIS_FR_NAME)
#undef ARCHIS_FR_NAME
    case EventType::kNone:
      break;
  }
  return "unknown";
}

bool EventHasDuration(EventType type) {
  return type == EventType::kWalFsync || type == EventType::kQueryExecute ||
         type == EventType::kSlowQuery || type == EventType::kRequestEnd;
}

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kExplicit:
      return "explicit";
    case AbortReason::kConflict:
      return "conflict";
    case AbortReason::kWrongThread:
      return "wrong_thread";
    case AbortReason::kWalPoison:
      return "wal_poison";
  }
  return "unknown";
}

void Record(EventType type, uint64_t a, uint64_t b, uint32_t flags,
            std::string_view detail) {
  if (!Enabled()) return;
  Ring* ring = t_ring;
  if (ring == nullptr) {
    if (t_ring_unavailable) return;
    ring = ClaimRing();
    if (ring == nullptr) {
      t_ring_unavailable = true;
      return;
    }
    t_ring = ring;
  }
  const uint64_t ts = NowNs();
  uint64_t d[2] = {0, 0};
  if (!detail.empty()) {
    std::memcpy(d, detail.data(), std::min<size_t>(detail.size(), 16));
  }
  const uint64_t idx = ring->next.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[idx % ring->capacity];
  // Seqlock publish: odd marks the slot in-flight; the release fence
  // keeps the mark ahead of the data stores, and the final release store
  // publishes the whole slot.
  const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.w[0].store(ts, std::memory_order_relaxed);
  slot.w[1].store(static_cast<uint64_t>(type) |
                      (static_cast<uint64_t>(ring->tid) << 16) |
                      (static_cast<uint64_t>(flags) << 32),
                  std::memory_order_relaxed);
  slot.w[2].store(a, std::memory_order_relaxed);
  slot.w[3].store(b, std::memory_order_relaxed);
  slot.w[4].store(d[0], std::memory_order_relaxed);
  slot.w[5].store(d[1], std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
  ring->next.store(idx + 1, std::memory_order_release);
}

std::vector<Event> Snapshot() {
  std::vector<Event> out;
  const uint32_t rings =
      std::min(g_ring_count.load(std::memory_order_acquire), kMaxRings);
  for (uint32_t i = 0; i < rings; ++i) {
    Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;  // claim in flight
    const uint64_t next = ring->next.load(std::memory_order_acquire);
    const uint64_t count = std::min<uint64_t>(next, ring->capacity);
    for (uint64_t j = next - count; j < next; ++j) {
      Slot& slot = ring->slots[j % ring->capacity];
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;  // writer mid-publish
      uint64_t w[6];
      for (int k = 0; k < 6; ++k) {
        w[k] = slot.w[k].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
      const auto type = static_cast<uint16_t>(w[1] & 0xffff);
      if (type == 0 || type > static_cast<uint16_t>(EventType::kCrash)) {
        continue;
      }
      Event ev;
      ev.ts_ns = w[0];
      ev.type = static_cast<EventType>(type);
      ev.tid = static_cast<uint16_t>((w[1] >> 16) & 0xffff);
      ev.flags = static_cast<uint32_t>(w[1] >> 32);
      ev.a = w[2];
      ev.b = w[3];
      uint64_t d[2] = {w[4], w[5]};
      std::memcpy(ev.detail, d, 16);
      ev.detail[16] = '\0';
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) {
    if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
    return x.tid < y.tid;
  });
  return out;
}

void ResetForTest() {
  const uint32_t rings =
      std::min(g_ring_count.load(std::memory_order_acquire), kMaxRings);
  for (uint32_t i = 0; i < rings; ++i) {
    Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (uint32_t j = 0; j < ring->capacity; ++j) {
      Slot& slot = ring->slots[j];
      for (auto& word : slot.w) word.store(0, std::memory_order_relaxed);
      slot.seq.store(0, std::memory_order_relaxed);
    }
    ring->next.store(0, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// JSON rendering

namespace {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          // Control and non-ASCII bytes (binary key material) escape to
          // \u00XX so the dump is always valid JSON.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(ch);
        }
    }
  }
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

// One Chrome trace_event object. Duration-carrying events render as "X"
// (complete) events starting at ts - dur; the rest are thread-scoped
// instants.
void AppendEventJson(const Event& ev, std::string* out) {
  const bool has_dur = EventHasDuration(ev.type);
  const uint64_t dur_ns = has_dur ? ev.b : 0;
  const uint64_t start_ns = ev.ts_ns >= dur_ns ? ev.ts_ns - dur_ns : 0;
  out->append("{\"name\":\"");
  out->append(EventTypeName(ev.type));
  out->append(has_dur ? "\",\"ph\":\"X\"" : "\",\"ph\":\"i\",\"s\":\"t\"");
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"ts\":%llu.%03llu",
                static_cast<unsigned long long>(start_ns / 1000),
                static_cast<unsigned long long>(start_ns % 1000));
  out->append(buf);
  if (has_dur) {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%llu.%03llu",
                  static_cast<unsigned long long>(dur_ns / 1000),
                  static_cast<unsigned long long>(dur_ns % 1000));
    out->append(buf);
  }
  out->append(",\"pid\":1,\"tid\":");
  AppendU64(ev.tid, out);
  out->append(",\"args\":{\"a\":");
  AppendU64(ev.a, out);
  out->append(",\"b\":");
  AppendU64(ev.b, out);
  out->append(",\"flags\":");
  AppendU64(ev.flags, out);
  if (ev.detail[0] != '\0') {
    out->append(",\"detail\":\"");
    AppendJsonEscaped(ev.detail, out);
    out->append("\"");
  }
  out->append("}}");
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 128 + 32);
  out.append("{\"traceEvents\":[");
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append("\n");
    AppendEventJson(events[i], &out);
  }
  out.append("\n]}\n");
  return out;
}

// ---------------------------------------------------------------------------
// Crash dumps

namespace {

constexpr int kMaxCrashSources = 8;
std::atomic<CrashInfoSource*> g_crash_sources[kMaxCrashSources];

bool WriteWholeFile(const char* path, const std::string& bytes) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return true;
}

}  // namespace

void RegisterCrashInfoSource(CrashInfoSource* source) {
  for (auto& slot : g_crash_sources) {
    CrashInfoSource* expected = nullptr;
    if (slot.compare_exchange_strong(expected, source,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

void UnregisterCrashInfoSource(CrashInfoSource* source) {
  for (auto& slot : g_crash_sources) {
    CrashInfoSource* expected = source;
    slot.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel);
  }
}

std::string WriteCrashDump(const char* reason) {
  // One dump at a time; a crash while dumping must not recurse.
  static std::atomic<bool> dumping{false};
  bool expected = false;
  if (!dumping.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    return "";
  }
  const uint64_t unix_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const char* dir = std::getenv("ARCHIS_CRASHDUMP_DIR");
  if (dir == nullptr || dir[0] == '\0') dir = ".";
  char path[512];
  std::snprintf(path, sizeof(path), "%s/archis-%llu-%d.crashdump", dir,
                static_cast<unsigned long long>(unix_ms),
                static_cast<int>(::getpid()));

  // Stamp the reason into the stream so the dump's last event is the
  // crash itself, then drain.
  Record(EventType::kCrash, 0, 0, 0, reason);
  const std::vector<Event> events = Snapshot();

  std::string out;
  out.reserve(events.size() * 128 + 4096);
  out.append("{\"reason\":\"");
  AppendJsonEscaped(reason, &out);
  out.append("\",\"unix_ms\":");
  AppendU64(unix_ms, &out);
  out.append(",\"pid\":");
  AppendU64(static_cast<uint64_t>(::getpid()), &out);
  out.append(",\n\"sources\":[");
  bool first = true;
  for (auto& slot : g_crash_sources) {
    CrashInfoSource* source = slot.load(std::memory_order_acquire);
    if (source == nullptr) continue;
    if (!first) out.push_back(',');
    first = false;
    source->AppendCrashJson(&out);
  }
  out.append("],\n\"metrics\":\"");
  // Best-effort: empty when the crashing thread holds the registry lock.
  AppendJsonEscaped(metrics::Registry::Global().TryTextFormat(), &out);
  out.append("\",\n\"events\":[");
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append("\n");
    AppendEventJson(events[i], &out);
  }
  out.append("\n]}\n");

  const bool ok = WriteWholeFile(path, out);
  dumping.store(false, std::memory_order_release);
  return ok ? std::string(path) : std::string();
}

namespace {

const char* SignalReason(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "signal:SIGSEGV";
    case SIGABRT:
      return "signal:SIGABRT";
    case SIGBUS:
      return "signal:SIGBUS";
    case SIGFPE:
      return "signal:SIGFPE";
    case SIGILL:
      return "signal:SIGILL";
  }
  return "signal:unknown";
}

// Best-effort by design (it allocates and takes no locks it can avoid):
// the usual failure-signal-handler trade-off. The default disposition is
// restored before re-raising, so wait status and core dumps are exactly
// what they would have been without the handler.
void CrashSignalHandler(int sig) {
  WriteCrashDump(SignalReason(sig));
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void InstallCrashHandler() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &CrashSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_NODEFER;
    sigaction(sig, &sa, nullptr);
  }
}

}  // namespace archis::fr
