#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace archis {

namespace {

std::string Quoted(std::string_view text) {
  constexpr size_t kMax = 64;
  std::string out = "'";
  out.append(text.substr(0, kMax));
  if (text.size() > kMax) out += "...";
  out += "'";
  return out;
}

}  // namespace

Result<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) {
    return Status::ParseError("empty string is not an integer");
  }
  // strtoll needs NUL termination; string_views are often substrings.
  const std::string buf(text);
  // strtoll skips leading whitespace; reject it up front so the accepted
  // grammar is exactly [-+]?digits.
  if (std::isspace(static_cast<unsigned char>(buf[0])) != 0) {
    return Status::ParseError("not an integer: " + Quoted(text));
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || end == buf.c_str()) {
    return Status::ParseError("not an integer: " + Quoted(text));
  }
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: " + Quoted(text));
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) {
    return Status::ParseError("empty string is not a number");
  }
  const std::string buf(text);
  if (std::isspace(static_cast<unsigned char>(buf[0])) != 0) {
    return Status::ParseError("not a number: " + Quoted(text));
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || end == buf.c_str()) {
    return Status::ParseError("not a number: " + Quoted(text));
  }
  // ERANGE covers both overflow (HUGE_VAL) and underflow-to-denormal;
  // only overflow loses information worth failing on.
  if (errno == ERANGE && std::abs(v) == HUGE_VAL) {
    return Status::ParseError("number out of range: " + Quoted(text));
  }
  // strtod accepts "inf"/"nan" spellings; neither is a usable value for
  // any caller here (column data, env thresholds, wire payloads).
  if (!std::isfinite(v)) {
    return Status::ParseError("not a finite number: " + Quoted(text));
  }
  return v;
}

}  // namespace archis
