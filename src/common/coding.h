// Little-endian byte codec helpers shared by the storage and WAL record
// formats. Append* writes raw fixed-width values; Read* decodes with
// bounds checking and returns Corruption on truncated input, so log
// readers can treat any malformed record as a torn tail.
#ifndef ARCHIS_COMMON_CODING_H_
#define ARCHIS_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace archis::coding {

template <typename T>
void AppendRaw(T v, std::string* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

inline void AppendU32(uint32_t v, std::string* out) { AppendRaw(v, out); }
inline void AppendU64(uint64_t v, std::string* out) { AppendRaw(v, out); }
inline void AppendI64(int64_t v, std::string* out) { AppendRaw(v, out); }

inline void AppendLengthPrefixed(std::string_view s, std::string* out) {
  AppendU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

template <typename T>
Result<T> ReadRaw(std::string_view data, size_t* pos) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*pos + sizeof(T) > data.size()) {
    return Status::Corruption("record truncated (fixed-width field)");
  }
  T v;
  std::memcpy(&v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}

inline Result<uint32_t> ReadU32(std::string_view data, size_t* pos) {
  return ReadRaw<uint32_t>(data, pos);
}
inline Result<uint64_t> ReadU64(std::string_view data, size_t* pos) {
  return ReadRaw<uint64_t>(data, pos);
}
inline Result<int64_t> ReadI64(std::string_view data, size_t* pos) {
  return ReadRaw<int64_t>(data, pos);
}

inline Result<std::string> ReadLengthPrefixed(std::string_view data,
                                              size_t* pos) {
  ARCHIS_ASSIGN_OR_RETURN(uint32_t len, ReadU32(data, pos));
  if (*pos + len > data.size()) {
    return Status::Corruption("record truncated (length-prefixed field)");
  }
  std::string s(data.substr(*pos, len));
  *pos += len;
  return s;
}

}  // namespace archis::coding

#endif  // ARCHIS_COMMON_CODING_H_
