// Always-on flight recorder: per-thread lock-free ring buffers of
// fixed-size binary trace events (DESIGN.md §14).
//
// Every hot-path subsystem — the transaction facade, the WAL group
// commit, checkpoints, the query executor, the block cache, segment
// freezes — appends 48-byte events into a ring owned by the calling
// thread. Appends are wait-free (one seqlock publish over six relaxed
// atomic words, no CAS, no shared cache line between threads), so the
// recorder stays on in production: its budget is <1% of commit
// throughput (BM_FlightRecorderOverhead) and tens of nanoseconds per
// event (BM_EventAppend).
//
// Memory model (the Boehm seqlock-with-atomics recipe): every data word
// of a slot is a relaxed std::atomic<uint64_t>, bracketed by a per-slot
// sequence word. The writer publishes odd (release fence), stores the
// words relaxed, then stores even with release; a reader snapshots the
// sequence with acquire, copies the words relaxed, fences acquire, and
// re-checks the sequence — a torn slot is simply discarded. Because the
// data words are themselves atomics there is no undefined behaviour in
// the racing read, which keeps the scheme ThreadSanitizer-clean.
//
// Rings are claimed from a fixed global pool on a thread's first append
// and are never freed: a thread's last events survive its exit so a
// crash dump sees the whole recent history. Draining (DumpTrace, the
// crash handler) walks every claimed ring concurrently with writers.
//
// The crash path: InstallCrashHandler() hooks the fatal signals
// (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL — which also covers lock-rank
// aborts and assertion failures, both of which die via abort()) and
// writes a timestamped `.crashdump` JSON file carrying the drained
// event history, a best-effort metrics exposition and the active
// transaction table, then re-raises. The dump is best-effort by design
// (it allocates), mirroring the usual failure-signal-handler trade-off:
// a diagnostic that usually works beats none at all.
#ifndef ARCHIS_COMMON_FLIGHT_RECORDER_H_
#define ARCHIS_COMMON_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace archis::fr {

// The registered trace-event vocabulary. Every display name must be a
// snake_case literal (archis-lint rule `trace-event-names`), and every
// fr::Record call site must pass an EventType enumerator, never an
// integer or a variable — the trace schema is closed by construction.
#define ARCHIS_FR_EVENT_LIST(X)              \
  X(kTxnBegin, "txn_begin")                  \
  X(kTxnCommit, "txn_commit")                \
  X(kTxnAbort, "txn_abort")                  \
  X(kTxnConflict, "txn_conflict")            \
  X(kWalAppend, "wal_append")                \
  X(kWalFsync, "wal_fsync")                  \
  X(kWalLeaderHandoff, "wal_leader_handoff") \
  X(kCheckpointPhase, "checkpoint_phase")    \
  X(kQueryPlan, "query_plan")                \
  X(kQueryExecute, "query_execute")          \
  X(kBlockCacheEvict, "block_cache_evict")   \
  X(kSegmentFreeze, "segment_freeze")        \
  X(kSlowQuery, "slow_query")                \
  X(kRequestBegin, "request_begin")          \
  X(kRequestEnd, "request_end")              \
  X(kCrash, "crash")

enum class EventType : uint16_t {
  kNone = 0,
#define ARCHIS_FR_ENUM(sym, name) sym,
  ARCHIS_FR_EVENT_LIST(ARCHIS_FR_ENUM)
#undef ARCHIS_FR_ENUM
};

/// The snake_case display name ("txn_begin"); "unknown" for kNone or an
/// out-of-range value read from a torn slot.
const char* EventTypeName(EventType type);

/// Whether `b` carries a duration in nanoseconds (rendered as a Chrome
/// "X" complete event instead of an instant).
bool EventHasDuration(EventType type);

/// One decoded event. `a` and `b` are type-specific operands:
///   txn_begin            a=txn_id
///   txn_commit           a=txn_id     b=commit_seq   flags=changes
///   txn_abort            a=txn_id                    flags=AbortReason
///   txn_conflict         a=txn_id     b=winner_seq   detail=key
///   wal_append           a=txn_id     b=bytes
///   wal_fsync            a=batch_bytes b=dur_ns      flags=batch_txns
///   wal_leader_handoff   a=batch_txns
///   checkpoint_phase     a=manifest_seq              detail=phase
///   query_plan           a=plan_epoch                flags=1 cache hit
///   query_execute        a=rows       b=dur_ns       flags=1 ok
///   block_cache_evict    a=block      b=bytes_freed
///   segment_freeze       a=segno      b=tuples       detail=store
///   slow_query           a=threshold_ns b=dur_ns
///   request_begin        a=request_seq               detail=frame type
///   request_end          a=request_seq b=dur_ns      flags=wire status
///   crash                                            detail=reason
struct Event {
  uint64_t ts_ns = 0;  // steady-clock, comparable across threads
  EventType type = EventType::kNone;
  uint16_t tid = 0;  // recorder thread id (ring index), not the OS tid
  uint32_t flags = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  char detail[17] = {0};  // NUL-terminated, truncated to 16 bytes
};

/// Abort reasons carried in txn_abort's flags (and mirrored into the
/// labeled archis_txn_abort_total{reason=...} counters).
enum class AbortReason : uint32_t {
  kExplicit = 0,
  kConflict = 1,
  kWrongThread = 2,
  kWalPoison = 3,
};
const char* AbortReasonName(AbortReason reason);

/// Appends one event to the calling thread's ring. Wait-free; silently
/// drops the event when the recorder is disabled or the thread pool is
/// exhausted. `detail` is truncated to 16 bytes.
void Record(EventType type, uint64_t a = 0, uint64_t b = 0,
            uint32_t flags = 0, std::string_view detail = {});

/// Recorder kill switch. Defaults to on; ARCHIS_FLIGHT_RECORDER=0 in the
/// environment starts it disabled (the overhead-ablation knob).
bool Enabled();
void SetEnabled(bool on);

/// Drains every claimed ring into one timestamp-sorted vector. Safe to
/// call while other threads keep recording: in-flight slots are detected
/// by their seqlock and skipped.
std::vector<Event> Snapshot();

/// Renders events as Chrome trace_event JSON
/// ({"traceEvents":[...]}), loadable in chrome://tracing / Perfetto.
std::string ToChromeTraceJson(const std::vector<Event>& events);

/// A hook contributing state to crash dumps (the ArchIS facade registers
/// one that renders its active-transaction table). Must be best-effort:
/// it runs on the crash path, so it may only TryLock, never block.
class CrashInfoSource {
 public:
  virtual ~CrashInfoSource() = default;
  /// Appends one JSON value (object or array) describing this source.
  virtual void AppendCrashJson(std::string* out) = 0;
};
void RegisterCrashInfoSource(CrashInfoSource* source);
void UnregisterCrashInfoSource(CrashInfoSource* source);

/// Writes `<dir>/archis-<unix_ms>-<pid>.crashdump` — a JSON object with
/// the crash reason, the drained flight-recorder history, a best-effort
/// metrics exposition and every registered CrashInfoSource — and returns
/// its path ("" if the dump could not be written or a dump is already in
/// progress). `dir` is ARCHIS_CRASHDUMP_DIR, else the working directory.
/// Also usable outside real crashes (recovery_fuzz snapshots one at
/// every injected crash point).
std::string WriteCrashDump(const char* reason);

/// Installs the fatal-signal handler (idempotent). The handler writes a
/// crash dump, restores the default disposition and re-raises, so exit
/// codes and core dumps are unchanged.
void InstallCrashHandler();

/// Test/tool hook: forgets every recorded event (rings stay claimed).
/// Callers must ensure no thread is concurrently recording.
void ResetForTest();

}  // namespace archis::fr

#endif  // ARCHIS_COMMON_FLIGHT_RECORDER_H_
