// A small fixed-size thread pool for read-path parallelism.
//
// Deliberately minimal: a bounded set of workers draining a FIFO task
// queue. No work stealing, no task priorities — segment scans are
// coarse-grained (one task per frozen segment) so a plain queue keeps the
// scheduling overhead negligible next to block decompression. Safe to
// Submit from multiple client threads concurrently; each caller joins on
// the futures of its own tasks.
#ifndef ARCHIS_COMMON_THREAD_POOL_H_
#define ARCHIS_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace archis {

/// A fixed pool of `num_threads` workers executing submitted tasks FIFO.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers. Tasks already queued still
  /// run to completion before destruction returns.
  ~ThreadPool();

  /// Enqueues `task`; the future resolves when it has run. Exceptions
  /// thrown by the task are captured into the future.
  std::future<void> Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  Mutex mu_{LockRank::kThreadPool};
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ ARCHIS_GUARDED_BY(mu_);
  bool shutting_down_ ARCHIS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace archis

#endif  // ARCHIS_COMMON_THREAD_POOL_H_
