// Capability-annotated synchronisation primitives.
//
// archis::Mutex / archis::MutexLock / archis::CondVar are thin wrappers
// over the std primitives that carry clang thread-safety capabilities, so
// every locking contract in the tree is compile-time checkable under
// ARCHIS_ANALYZE=ON. They add no overhead: the wrappers are fully inline
// and on GCC the annotations vanish entirely.
//
// Raw std::mutex / std::lock_guard / std::unique_lock / std::call_once are
// banned outside this header (archis-lint rule `raw-mutex`): an unannotated
// lock is invisible to the analysis, which silently un-checks every member
// it guards.
#ifndef ARCHIS_COMMON_MUTEX_H_
#define ARCHIS_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace archis {

class CondVar;

/// A standard mutex carrying the clang "mutex" capability and a lock
/// rank. Named mutexes in src/ must be constructed with a LockRank from
/// common/lock_rank.h (archis-lint rule `lock-rank`); debug builds then
/// assert that every thread acquires ranked locks in strictly increasing
/// order, turning any would-be deadlock into an immediate abort at the
/// first out-of-order acquisition.
class ARCHIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  constexpr explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ARCHIS_ACQUIRE() {
    // Check *before* blocking so the violation report fires instead of
    // the deadlock it predicts.
    lock_rank::CheckAcquire(rank_);
    mu_.lock();
    lock_rank::NoteAcquired(rank_);
  }
  void Unlock() ARCHIS_RELEASE() {
    lock_rank::NoteReleased(rank_);
    mu_.unlock();
  }
  bool TryLock() ARCHIS_TRY_ACQUIRE(true) {
    // TryLock cannot deadlock, so no order check — but a successful
    // acquisition still joins the held stack for later checks.
    if (!mu_.try_lock()) return false;
    lock_rank::NoteAcquired(rank_);
    return true;
  }

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
};

/// RAII lock for archis::Mutex (the only way code should take one).
class ARCHIS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ARCHIS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ARCHIS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with archis::Mutex. Wait() must be called
/// with the mutex held (typically under a MutexLock in the same scope);
/// the annotation makes clang verify exactly that.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` is true, releasing `mu` while waiting. The
  /// caller must hold `mu`; it is held again when Wait returns.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) ARCHIS_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release ownership back to the caller's MutexLock unharmed.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace archis

#endif  // ARCHIS_COMMON_MUTEX_H_
