// Structured, leveled logging for src/.
//
// Raw printf/std::cerr logging is banned in src/ (archis-lint rule
// `raw-logging`): ad-hoc prose lines cannot be filtered, parsed or
// attributed. This logger emits one structured line per event — key=value
// by default, JSON-line optionally — through a swappable sink:
//
//   logging::Info("wal.recovered")
//       .Kv("path", path).Kv("items", n).Kv("torn_tail", torn);
//   // => ts=2026-08-06T12:00:00.123Z level=info event=wal.recovered
//   //    path=/tmp/wal.log items=12 torn_tail=false
//
// The Event emits in its destructor (end of the full statement). Events
// below the minimum level cost one relaxed atomic load and build nothing.
// Default minimum level is warn so tests and benchmarks stay quiet; the
// ARCHIS_LOG environment variable (debug|info|warn|error|off) overrides it
// at process start, SetMinLevel() at runtime.
#ifndef ARCHIS_COMMON_LOG_H_
#define ARCHIS_COMMON_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace archis::logging {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

Level MinLevel();
void SetMinLevel(Level level);
inline bool LevelEnabled(Level level) { return level >= MinLevel(); }

enum class Format { kKeyValue, kJson };
void SetFormat(Format format);

/// Replaces the sink (default: one line to stderr). Pass nullptr to
/// restore the default. Used by tests to capture output.
void SetSink(std::function<void(const std::string&)> sink);

/// One structured log line, emitted on destruction. Move-only temporary:
/// always use via the Debug()/Info()/Warn()/Error() factories.
class Event {
 public:
  Event(Level level, std::string_view event);
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  Event& Kv(std::string_view key, std::string_view value);
  Event& Kv(std::string_view key, const char* value);
  Event& Kv(std::string_view key, const std::string& value);
  Event& Kv(std::string_view key, int64_t value);
  Event& Kv(std::string_view key, uint64_t value);
  Event& Kv(std::string_view key, int value);
  Event& Kv(std::string_view key, unsigned value);
  Event& Kv(std::string_view key, double value);
  Event& Kv(std::string_view key, bool value);

 private:
  bool enabled_;
  Level level_;
  std::string line_;
};

inline Event Debug(std::string_view event) {
  return Event(Level::kDebug, event);
}
inline Event Info(std::string_view event) {
  return Event(Level::kInfo, event);
}
inline Event Warn(std::string_view event) {
  return Event(Level::kWarn, event);
}
inline Event Error(std::string_view event) {
  return Event(Level::kError, event);
}

}  // namespace archis::logging

#endif  // ARCHIS_COMMON_LOG_H_
