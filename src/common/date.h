// Day-granularity date type used for transaction timestamps.
//
// The paper's time granularity is a day (Section 3, footnote 1); `now` /
// "until changed" is represented internally by the end-of-time sentinel
// 9999-12-31 (Section 4.3) so that ordinary index ordering and interval
// comparison work unchanged on current tuples.
#ifndef ARCHIS_COMMON_DATE_H_
#define ARCHIS_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace archis {

/// A calendar date stored as days since the proleptic-Gregorian epoch
/// 0000-03-01 (civil-day encoding, valid for all dates this system uses).
///
/// Dates are totally ordered, support day arithmetic, and have a distinct
/// `Forever()` value (9999-12-31) that denotes the transaction-time `now`.
class Date {
 public:
  /// Default-constructed date is the epoch day 0.
  constexpr Date() : days_(0) {}
  constexpr explicit Date(int64_t days) : days_(days) {}

  /// Builds a date from a civil year/month/day triple. No range checking of
  /// month/day beyond normalisation; use Parse for validated input.
  static Date FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD". Also accepts "MM/DD/YYYY" (the paper prints H-table
  /// samples in that format). The day is validated against the true month
  /// length (leap-year aware) and trailing garbage is rejected: "2005-02-30"
  /// and "2005-01-01x" are ParseError, never a silently normalised date.
  static Result<Date> Parse(const std::string& text);

  /// Whether `year` is a Gregorian leap year.
  static bool IsLeapYear(int year);

  /// Number of days in `month` (1..12) of `year`; 0 for an invalid month.
  static int DaysInMonth(int year, int month);

  /// The end-of-time sentinel 9999-12-31 that internally represents `now`.
  static Date Forever();

  /// Whether this date is the `now` sentinel.
  bool IsForever() const { return *this == Forever(); }

  int64_t days() const { return days_; }

  int year() const;
  int month() const;
  int day() const;

  /// "YYYY-MM-DD".
  std::string ToString() const;

  Date AddDays(int64_t n) const { return Date(days_ + n); }
  int64_t operator-(const Date& other) const { return days_ - other.days_; }

  auto operator<=>(const Date& other) const = default;

 private:
  int64_t days_;
};

/// Least of two dates.
inline Date MinDate(Date a, Date b) { return a < b ? a : b; }
/// Greatest of two dates.
inline Date MaxDate(Date a, Date b) { return a > b ? a : b; }

}  // namespace archis

#endif  // ARCHIS_COMMON_DATE_H_
