#include "common/interval.h"

namespace archis {

std::string TimeInterval::ToString() const {
  return "[" + tstart.ToString() + ", " + tend.ToString() + "]";
}

}  // namespace archis
