#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace archis::json {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double n) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.items_ = std::move(items);
  return v;
}

Value Value::Object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

const Value* Value::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Document() {
    ARCHIS_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > 128) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        ARCHIS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::String(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value::Bool(true);
        }
        return Error("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value::Bool(false);
        }
        return Error("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value::Null();
        }
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    SkipWs();
    if (Consume('}')) return Value::Object(std::move(members));
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      ARCHIS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      ARCHIS_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::Object(std::move(members));
      return Error("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipWs();
    if (Consume(']')) return Value::Array(std::move(items));
    while (true) {
      ARCHIS_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      items.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::Array(std::move(items));
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          ARCHIS_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              ARCHIS_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Error("bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return Error("unpaired surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(
        static_cast<unsigned char>(text_[pos_]))) {
      return Error("bad number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(
          static_cast<unsigned char>(text_[pos_]))) {
        return Error("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(
          static_cast<unsigned char>(text_[pos_]))) {
        return Error("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value::Number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).Document();
}

}  // namespace archis::json
