// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
//
// These wrap the capability-based annotations understood by clang's
// -Wthread-safety pass so locking contracts are stated in the type system
// and checked at compile time under ARCHIS_ANALYZE=ON. GCC defines none of
// the attributes, so every macro expands to nothing there and the
// annotated tree compiles identically.
//
// Conventions (see DESIGN.md "Static analysis & invariants"):
//  * every mutex-protected member is ARCHIS_GUARDED_BY(its mutex);
//  * private functions that assume a held lock are ARCHIS_REQUIRES(mu);
//  * use archis::Mutex / archis::MutexLock (common/mutex.h), never raw
//    std::mutex / std::lock_guard — archis-lint enforces this.
#ifndef ARCHIS_COMMON_THREAD_ANNOTATIONS_H_
#define ARCHIS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// A type that acts as a lock/capability (class-level attribute).
#define ARCHIS_CAPABILITY(x) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor.
#define ARCHIS_SCOPED_CAPABILITY \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Data member protected by the given capability.
#define ARCHIS_GUARDED_BY(x) ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer member whose pointee is protected by the given capability.
#define ARCHIS_PT_GUARDED_BY(x) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Function requires the capability (caller must hold it).
#define ARCHIS_REQUIRES(...) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// Function requires the capability in shared (reader) mode.
#define ARCHIS_REQUIRES_SHARED(...) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability and does not release it.
#define ARCHIS_ACQUIRE(...) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ARCHIS_ACQUIRE_SHARED(...) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability (which the caller must hold).
#define ARCHIS_RELEASE(...) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define ARCHIS_RELEASE_SHARED(...) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

// Function tries to acquire the capability; returns `b` on success.
#define ARCHIS_TRY_ACQUIRE(...) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// Function must be called with the capability NOT held.
#define ARCHIS_EXCLUDES(...) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Function returns a reference to the capability guarding its result.
#define ARCHIS_RETURN_CAPABILITY(x) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: disable analysis for one function (document why!).
#define ARCHIS_NO_THREAD_SAFETY_ANALYSIS \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// Compatibility aliases used by older attribute spellings (kept so the
// wrappers below work on clangs predating the capability rename).
#define ARCHIS_ASSERT_CAPABILITY(x) \
  ARCHIS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#endif  // ARCHIS_COMMON_THREAD_ANNOTATIONS_H_
