// Process-wide metrics registry (counters, gauges, fixed-bucket latency
// histograms) with Prometheus-style text exposition.
//
// The paper's claims are quantitative — query speed of the translated
// SQL/XML path, compression ratio, usefulness-based clustering behaviour —
// so every hot layer (WAL group commit, block cache, page IO, segment
// freezes, the plan executor) publishes into one registry that can be
// dumped on any run (ArchIS::DumpMetrics(), tools/archis-stats), not just
// inside unit tests.
//
// Cost model: an enabled Counter::Inc is one relaxed atomic load (the
// global enable flag) plus one relaxed fetch_add; a disabled one is just
// the load. Histogram::Observe adds a bucket search over a small fixed
// bound table. Instruments are created once (get-or-create by name, stable
// addresses) and cached in function-local statics at the call sites, so
// the registry lock is off every hot path.
//
// Thread safety: all instrument mutations are lock-free atomics; creation
// and TextFormat() take the registry mutex.
#ifndef ARCHIS_COMMON_METRICS_H_
#define ARCHIS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"

namespace archis::metrics {

/// Global kill switch, default on. Exists so BM_MetricsOverhead can ablate
/// the instrumentation cost; a disabled instrument still exists and still
/// renders (frozen) in TextFormat().
extern std::atomic<bool> g_enabled;

inline bool Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool on);

/// Monotonic event count. Wraps modulo 2^64 on overflow (no saturation, no
/// error): consumers must treat it as a modular counter, which is what
/// rate() computations over text exposition do anyway.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    if (Enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (e.g. live tuples in the hot segment).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (Enabled()) value_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: cumulative counts per upper bound plus an
/// implicit +Inf bucket, a running sum and a total count. Percentiles are
/// estimated by linear interpolation inside the covering bucket (the
/// standard Prometheus histogram_quantile estimate); observations above
/// the largest finite bound clamp to it.
class Histogram {
 public:
  /// `bounds` are strictly increasing finite upper bounds.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// p in [0, 1]; returns 0 on an empty histogram.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` (i == bounds().size() is the +Inf bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

  /// "count=12 sum=0.034 p50=1.2e-03 p95=4.1e-03 p99=8.0e-03" — the human
  /// summary archis-stats prints next to the exposition.
  std::string Summary() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Shared percentile estimate over a cumulative-bucket layout: linear
/// interpolation inside the covering bucket, clamped to the largest
/// finite bound (`buckets` has bounds.size() + 1 entries, the last being
/// +Inf). Histogram::Percentile and WindowedHistogram::Stats both defer
/// here so the interpolation semantics (and their boundary cases) have
/// exactly one implementation.
double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& buckets, double p);

/// Sliding-window histogram: per-second sub-histograms in a 64-slot ring
/// tagged by epoch second, merged on demand into rate + p50/p95/p99 for
/// the trailing 1s/10s/60s windows (DESIGN.md §14).
///
/// Observe is lock-free: find the slot for the current second, lazily
/// rotate it (zero + CAS the epoch tag) when it still holds an older
/// second, then two relaxed fetch_adds. Rotation is monitoring-grade by
/// design: an observation racing the zeroing of its slot can be lost,
/// which smears at most one second of data — never corrupts, never
/// blocks. The clock is injectable so tests drive window edges
/// deterministically.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(std::vector<double> bounds);
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Observe(double v);

  struct WindowStats {
    uint64_t count = 0;
    double rate_per_sec = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  /// Merged view of the trailing `window_secs` seconds (the current
  /// second plus the window_secs - 1 before it). `window_secs` is capped
  /// to the ring depth (64).
  WindowStats Stats(int window_secs) const;

  void Reset();
  /// Injects a seconds clock (steady, monotonic) for deterministic
  /// window-edge tests; nullptr restores the real clock.
  void SetClockForTest(uint64_t (*now_secs)());

 private:
  static constexpr int kSlots = 64;
  struct Slot {
    std::atomic<uint64_t> epoch{0};  // second this slot covers; 0 = empty
    std::atomic<uint64_t> count{0};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;  // bounds + Inf
  };

  uint64_t NowSecs() const;

  std::vector<double> bounds_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t (*)()> clock_override_{nullptr};
};

/// Exponential bucket bounds: start, start*factor, ... (n bounds).
std::vector<double> ExponentialBuckets(double start, double factor, int n);
/// Linear bucket bounds: start, start+step, ... (n bounds).
std::vector<double> LinearBuckets(double start, double step, int n);
/// 1us .. 10s latency bounds (seconds) for IO / query latencies.
std::vector<double> DefaultLatencyBuckets();
/// 64B .. 16MiB size bounds (bytes) for batch / payload sizes.
std::vector<double> DefaultSizeBuckets();

/// Name-keyed instrument registry. Get-or-create returns stable pointers;
/// call sites cache them in function-local statics. Asking for an existing
/// name with a different instrument type returns a detached dummy (never
/// rendered) instead of crashing — the lint/test layer catches the
/// conflict via TextFormat().
///
/// Names may carry a Prometheus label suffix (`x_total{reason="conflict"}`):
/// each labeled variant is its own instrument, and TextFormat emits the
/// HELP/TYPE header once per base name (the part before '{') so the
/// exposition stays well-formed.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every ArchIS layer publishes into.
  static Registry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);
  WindowedHistogram* GetWindowed(const std::string& name,
                                 const std::string& help,
                                 std::vector<double> bounds);

  /// Prometheus text exposition (# HELP / # TYPE, `_bucket{le="..."}` /
  /// `_sum` / `_count` for histograms), instruments sorted by name.
  /// Windowed histograms render as gauge families with window="1s|10s|60s"
  /// and stat="rate|p50|p95|p99" labels.
  std::string TextFormat() const;

  /// Crash-path exposition: never blocks. Returns "" when the registry
  /// mutex is held (e.g. the crashing thread died inside TextFormat).
  std::string TryTextFormat() const;

  /// Zeroes every instrument's value; registrations (and cached call-site
  /// pointers) stay valid. For tests and the bench ablation.
  void ResetValues();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kWindowed };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<WindowedHistogram> windowed;
  };

  std::string FormatLocked() const ARCHIS_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kMetricsRegistry};
  std::map<std::string, Entry> entries_ ARCHIS_GUARDED_BY(mu_);
};

}  // namespace archis::metrics

#endif  // ARCHIS_COMMON_METRICS_H_
