// Inclusive transaction-time intervals [tstart, tend] and Allen-style
// interval predicates used throughout the temporal function library
// (Section 4.2 of the paper).
#ifndef ARCHIS_COMMON_INTERVAL_H_
#define ARCHIS_COMMON_INTERVAL_H_

#include <cassert>
#include <optional>
#include <string>

#include "common/date.h"
#include "common/status.h"

namespace archis {

/// An inclusive interval of days, `[tstart, tend]`. A current (live)
/// interval has `tend == Date::Forever()`.
struct TimeInterval {
  Date tstart;
  Date tend;

  TimeInterval() = default;
  TimeInterval(Date s, Date e) : tstart(s), tend(e) {}

  /// Whether the interval is non-empty (tstart <= tend).
  bool valid() const { return tstart <= tend; }

  /// Whether the interval's end is the `now` sentinel.
  bool is_current() const { return tend.IsForever(); }

  /// Number of days covered (inclusive).
  int64_t duration_days() const { return tend - tstart + 1; }

  /// Whether `d` lies inside the interval.
  bool Contains(Date d) const { return tstart <= d && d <= tend; }

  /// Whether `other` lies entirely inside this interval
  /// (tcontains in the paper's UDF library).
  bool Contains(const TimeInterval& other) const {
    return tstart <= other.tstart && other.tend <= tend;
  }

  /// Whether the two intervals share at least one day (toverlaps).
  bool Overlaps(const TimeInterval& other) const {
    return tstart <= other.tend && other.tstart <= tend;
  }

  /// Whether this interval ends strictly before `other` starts (tprecedes).
  bool Precedes(const TimeInterval& other) const {
    return tend < other.tstart;
  }

  /// Whether this interval ends exactly one day before `other` starts
  /// (tmeets): adjacency under inclusive day-granularity intervals. A
  /// current interval never meets anything — its end is the `now` sentinel,
  /// which has no successor day, and computing tend + 1 would step past
  /// Date::Forever() into dates that cannot exist in any H-table.
  bool Meets(const TimeInterval& other) const {
    return !is_current() && tend.AddDays(1) == other.tstart;
  }

  /// Whether the two intervals are identical (tequals).
  bool Equals(const TimeInterval& other) const {
    return tstart == other.tstart && tend == other.tend;
  }

  /// Whether the two intervals overlap or are adjacent, i.e. their union is
  /// a single interval. This is the merge condition used by coalescing.
  bool OverlapsOrMeets(const TimeInterval& other) const {
    return Overlaps(other) || Meets(other) || other.Meets(*this);
  }

  /// The intersection, or nullopt when the intervals are disjoint
  /// (overlapinterval in the paper's UDF library).
  std::optional<TimeInterval> Intersect(const TimeInterval& other) const {
    TimeInterval r(MaxDate(tstart, other.tstart), MinDate(tend, other.tend));
    if (!r.valid()) return std::nullopt;
    return r;
  }

  /// The smallest interval covering both inputs.
  TimeInterval Span(const TimeInterval& other) const {
    return TimeInterval(MinDate(tstart, other.tstart),
                        MaxDate(tend, other.tend));
  }

  /// "[YYYY-MM-DD, YYYY-MM-DD]".
  std::string ToString() const;

  auto operator<=>(const TimeInterval& other) const = default;
};

/// Validating factory — the sanctioned way to build an interval from two
/// dates. Enforces the well-formedness invariant every temporal operator
/// (coalescing, zone maps, segment pruning) silently assumes: tstart <=
/// tend, i.e. the interval covers at least one day. Direct TimeInterval
/// construction outside this header is flagged by archis-lint
/// (`raw-interval`); use this when validity is structurally guaranteed and
/// MakeIntervalChecked for untrusted input.
inline TimeInterval MakeInterval(Date tstart, Date tend) {
  assert(tstart <= tend && "MakeInterval: interval must be well-formed");
  return TimeInterval(tstart, tend);
}

/// Checked factory for untrusted bounds (parsed documents, query text):
/// InvalidArgument instead of an assert when tstart > tend.
inline Result<TimeInterval> MakeIntervalChecked(Date tstart, Date tend) {
  if (tstart > tend) {
    return Status::InvalidArgument("invalid interval: tstart " +
                                   tstart.ToString() + " > tend " +
                                   tend.ToString());
  }
  return TimeInterval(tstart, tend);
}

}  // namespace archis

#endif  // ARCHIS_COMMON_INTERVAL_H_
