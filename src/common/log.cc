#include "common/log.h"

#include <chrono>
#include <cstdio>
#include <ctime>

#include "common/lock_rank.h"
#include "common/mutex.h"

namespace archis::logging {

namespace {

int LevelFromEnv() {
  const char* env = std::getenv("ARCHIS_LOG");
  if (env == nullptr) return static_cast<int>(Level::kWarn);
  const std::string_view v = env;
  if (v == "debug") return static_cast<int>(Level::kDebug);
  if (v == "info") return static_cast<int>(Level::kInfo);
  if (v == "warn") return static_cast<int>(Level::kWarn);
  if (v == "error") return static_cast<int>(Level::kError);
  if (v == "off") return static_cast<int>(Level::kOff);
  return static_cast<int>(Level::kWarn);
}

std::atomic<int>& MinLevelVar() {
  static std::atomic<int> level{LevelFromEnv()};
  return level;
}

std::atomic<int> g_format{static_cast<int>(Format::kKeyValue)};

struct SinkHolder {
  Mutex mu{LockRank::kLogSink};
  std::function<void(const std::string&)> sink ARCHIS_GUARDED_BY(mu);
};

SinkHolder& Sink() {
  static SinkHolder* holder = new SinkHolder();
  return *holder;
}

void Emit(const std::string& line) {
  SinkHolder& holder = Sink();
  MutexLock lock(holder.mu);
  if (holder.sink) {
    holder.sink(line);
    return;
  }
  // The one sanctioned raw-stderr write in src/ (this IS the logger).
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}

std::string Utc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int ms = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, ms);
  return buf;
}

bool NeedsQuoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') {
      return true;
    }
  }
  return false;
}

void AppendEscaped(std::string_view v, std::string* out) {
  for (char c : v) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default: out->push_back(c);
    }
  }
}

Format CurrentFormat() {
  return static_cast<Format>(g_format.load(std::memory_order_relaxed));
}

void AppendStringField(std::string_view key, std::string_view value,
                       std::string* line) {
  if (CurrentFormat() == Format::kJson) {
    line->append(",\"");
    AppendEscaped(key, line);
    line->append("\":\"");
    AppendEscaped(value, line);
    line->append("\"");
    return;
  }
  line->push_back(' ');
  line->append(key);
  line->push_back('=');
  if (NeedsQuoting(value)) {
    line->push_back('"');
    AppendEscaped(value, line);
    line->push_back('"');
  } else {
    line->append(value);
  }
}

void AppendRawField(std::string_view key, std::string_view value,
                    std::string* line) {
  if (CurrentFormat() == Format::kJson) {
    line->append(",\"");
    AppendEscaped(key, line);
    line->append("\":");
    line->append(value);
    return;
  }
  line->push_back(' ');
  line->append(key);
  line->push_back('=');
  line->append(value);
}

}  // namespace

Level MinLevel() {
  return static_cast<Level>(MinLevelVar().load(std::memory_order_relaxed));
}

void SetMinLevel(Level level) {
  MinLevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetFormat(Format format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

void SetSink(std::function<void(const std::string&)> sink) {
  SinkHolder& holder = Sink();
  MutexLock lock(holder.mu);
  holder.sink = std::move(sink);
}

Event::Event(Level level, std::string_view event)
    : enabled_(LevelEnabled(level)), level_(level) {
  if (!enabled_) return;
  if (CurrentFormat() == Format::kJson) {
    line_ = "{\"ts\":\"" + Utc() + "\",\"level\":\"" + LevelName(level_) +
            "\",\"event\":\"";
    AppendEscaped(event, &line_);
    line_.append("\"");
  } else {
    line_ = "ts=" + Utc() + " level=" + LevelName(level_) + " event=";
    line_.append(event);
  }
}

Event::~Event() {
  if (!enabled_) return;
  if (CurrentFormat() == Format::kJson) line_.append("}");
  Emit(line_);
}

Event& Event::Kv(std::string_view key, std::string_view value) {
  if (enabled_) AppendStringField(key, value, &line_);
  return *this;
}

Event& Event::Kv(std::string_view key, const char* value) {
  return Kv(key, std::string_view(value));
}

Event& Event::Kv(std::string_view key, const std::string& value) {
  return Kv(key, std::string_view(value));
}

Event& Event::Kv(std::string_view key, int64_t value) {
  if (enabled_) AppendRawField(key, std::to_string(value), &line_);
  return *this;
}

Event& Event::Kv(std::string_view key, uint64_t value) {
  if (enabled_) AppendRawField(key, std::to_string(value), &line_);
  return *this;
}

Event& Event::Kv(std::string_view key, int value) {
  return Kv(key, static_cast<int64_t>(value));
}

Event& Event::Kv(std::string_view key, unsigned value) {
  return Kv(key, static_cast<uint64_t>(value));
}

Event& Event::Kv(std::string_view key, double value) {
  if (enabled_) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    AppendRawField(key, buf, &line_);
  }
  return *this;
}

Event& Event::Kv(std::string_view key, bool value) {
  if (enabled_) AppendRawField(key, value ? "true" : "false", &line_);
  return *this;
}

}  // namespace archis::logging
