#include "common/str_util.h"

#include <cctype>

namespace archis {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string XmlUnescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '&') {
      out += text[i];
      continue;
    }
    auto rest = text.substr(i);
    if (StartsWith(rest, "&amp;")) { out += '&'; i += 4; }
    else if (StartsWith(rest, "&lt;")) { out += '<'; i += 3; }
    else if (StartsWith(rest, "&gt;")) { out += '>'; i += 3; }
    else if (StartsWith(rest, "&quot;")) { out += '"'; i += 5; }
    else if (StartsWith(rest, "&apos;")) { out += '\''; i += 5; }
    else out += text[i];
  }
  return out;
}

}  // namespace archis
