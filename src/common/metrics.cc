#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>

namespace archis::metrics {

std::atomic<bool> g_enabled{true};

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

// -- Histogram -----------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  if (!Enabled()) return;
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), v) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& buckets, double p) {
  uint64_t total = 0;
  for (const uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  const double rank = p * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t c = buckets[i];
    if (c > 0 && static_cast<double>(cum + c) >= rank) {
      // Interpolate inside the covering bucket; the +Inf bucket clamps to
      // the largest finite bound.
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(c);
      return lower + frac * (upper - lower);
    }
    cum += c;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double Histogram::Percentile(double p) const {
  std::vector<uint64_t> buckets(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return PercentileFromBuckets(bounds_, buckets, p);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu sum=%.6g p50=%.3g p95=%.3g p99=%.3g",
                static_cast<unsigned long long>(count()), sum(),
                Percentile(0.50), Percentile(0.95), Percentile(0.99));
  return buf;
}

// -- WindowedHistogram ---------------------------------------------------------

WindowedHistogram::WindowedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), slots_(new Slot[kSlots]) {
  for (int i = 0; i < kSlots; ++i) {
    slots_[i].buckets.reset(
        new std::atomic<uint64_t>[bounds_.size() + 1]());
  }
}

uint64_t WindowedHistogram::NowSecs() const {
  uint64_t (*fn)() = clock_override_.load(std::memory_order_relaxed);
  if (fn != nullptr) return fn();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WindowedHistogram::SetClockForTest(uint64_t (*now_secs)()) {
  clock_override_.store(now_secs, std::memory_order_relaxed);
}

void WindowedHistogram::Observe(double v) {
  if (!Enabled()) return;
  const uint64_t sec = NowSecs();
  Slot& slot = slots_[sec % kSlots];
  uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
  if (epoch != sec) {
    // Rotate: zero the stale sub-histogram, then claim the new second.
    // An observation racing this zeroing may be lost (at most one
    // second's smear, documented monitoring-grade semantics).
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      slot.buckets[i].store(0, std::memory_order_relaxed);
    }
    slot.count.store(0, std::memory_order_relaxed);
    slot.epoch.compare_exchange_strong(epoch, sec,
                                       std::memory_order_acq_rel);
    if (slot.epoch.load(std::memory_order_acquire) != sec) return;
  }
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  slot.buckets[i].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
}

WindowedHistogram::WindowStats WindowedHistogram::Stats(
    int window_secs) const {
  WindowStats stats;
  if (window_secs <= 0) return stats;
  if (window_secs > kSlots) window_secs = kSlots;
  const uint64_t now = NowSecs();
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (int i = 0; i < kSlots; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    // Window = the current second plus the window_secs - 1 before it.
    if (epoch == 0 || epoch > now ||
        epoch + static_cast<uint64_t>(window_secs) <= now) {
      continue;
    }
    for (size_t j = 0; j <= bounds_.size(); ++j) {
      merged[j] += slot.buckets[j].load(std::memory_order_relaxed);
    }
  }
  for (const uint64_t c : merged) stats.count += c;
  stats.rate_per_sec =
      static_cast<double>(stats.count) / static_cast<double>(window_secs);
  stats.p50 = PercentileFromBuckets(bounds_, merged, 0.50);
  stats.p95 = PercentileFromBuckets(bounds_, merged, 0.95);
  stats.p99 = PercentileFromBuckets(bounds_, merged, 0.99);
  return stats;
}

void WindowedHistogram::Reset() {
  for (int i = 0; i < kSlots; ++i) {
    Slot& slot = slots_[i];
    for (size_t j = 0; j <= bounds_.size(); ++j) {
      slot.buckets[j].store(0, std::memory_order_relaxed);
    }
    slot.count.store(0, std::memory_order_relaxed);
    slot.epoch.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> ExponentialBuckets(double start, double factor, int n) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  double v = start;
  for (int i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> LinearBuckets(double start, double step, int n) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(start + step * i);
  return out;
}

std::vector<double> DefaultLatencyBuckets() {
  // 1us .. 10s in a 1-2-5 decade ladder (seconds).
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
          5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.5,  5.0,  10.0};
}

std::vector<double> DefaultSizeBuckets() {
  return ExponentialBuckets(64.0, 4.0, 10);  // 64B .. ~16MiB
}

// -- Registry ------------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* g = new Registry();
  return *g;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kCounter) {
    static Counter* mismatch = new Counter();
    return mismatch;
  }
  return it->second.counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kGauge) {
    static Gauge* mismatch = new Gauge();
    return mismatch;
  }
  return it->second.gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kHistogram) {
    static Histogram* mismatch = new Histogram({1.0});
    return mismatch;
  }
  return it->second.histogram.get();
}

WindowedHistogram* Registry::GetWindowed(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kWindowed;
    e.help = help;
    e.windowed = std::make_unique<WindowedHistogram>(std::move(bounds));
    it = entries_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kWindowed) {
    static WindowedHistogram* mismatch = new WindowedHistogram({1.0});
    return mismatch;
  }
  return it->second.windowed.get();
}

namespace {

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string Registry::FormatLocked() const {
  std::ostringstream os;
  // A labeled family (`x_total{reason="..."}`) gets one HELP/TYPE header
  // for its base name, taken from the first variant encountered.
  std::set<std::string> headered;
  for (const auto& [name, e] : entries_) {
    const size_t brace = name.find('{');
    const std::string base =
        brace == std::string::npos ? name : name.substr(0, brace);
    if (headered.insert(base).second) {
      os << "# HELP " << base << " " << e.help << "\n";
      switch (e.kind) {
        case Kind::kCounter:
          os << "# TYPE " << base << " counter\n";
          break;
        case Kind::kGauge:
        case Kind::kWindowed:
          os << "# TYPE " << base << " gauge\n";
          break;
        case Kind::kHistogram:
          os << "# TYPE " << base << " histogram\n";
          break;
      }
    }
    switch (e.kind) {
      case Kind::kCounter:
        os << name << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << name << " " << e.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        // Sample suffixes attach to the base name, with the family's own
        // labels merged into each sample's label set —
        // `x_seconds_bucket{outcome="ok",le="0.1"}`, never
        // `x_seconds{outcome="ok"}_bucket{...}`.
        const std::string inner =
            brace == std::string::npos
                ? ""
                : name.substr(brace + 1, name.size() - brace - 2) + ",";
        const std::string tail =
            inner.empty() ? "" : "{" + name.substr(brace + 1);
        const Histogram& h = *e.histogram;
        uint64_t cum = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cum += h.bucket_count(i);
          os << base << "_bucket{" << inner << "le=\""
             << FormatDouble(h.bounds()[i]) << "\"} " << cum << "\n";
        }
        cum += h.bucket_count(h.bounds().size());
        os << base << "_bucket{" << inner << "le=\"+Inf\"} " << cum << "\n";
        os << base << "_sum" << tail << " " << FormatDouble(h.sum()) << "\n";
        os << base << "_count" << tail << " " << h.count() << "\n";
        break;
      }
      case Kind::kWindowed: {
        for (const int w : {1, 10, 60}) {
          const WindowedHistogram::WindowStats s = e.windowed->Stats(w);
          const std::string prefix =
              name + "{window=\"" + std::to_string(w) + "s\",stat=\"";
          os << prefix << "rate\"} " << FormatDouble(s.rate_per_sec) << "\n";
          os << prefix << "p50\"} " << FormatDouble(s.p50) << "\n";
          os << prefix << "p95\"} " << FormatDouble(s.p95) << "\n";
          os << prefix << "p99\"} " << FormatDouble(s.p99) << "\n";
        }
        break;
      }
    }
  }
  return os.str();
}

std::string Registry::TextFormat() const {
  MutexLock lock(mu_);
  return FormatLocked();
}

std::string Registry::TryTextFormat() const {
  if (!mu_.TryLock()) return "";
  std::string out = FormatLocked();
  mu_.Unlock();
  return out;
}

void Registry::ResetValues() {
  MutexLock lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->Reset(); break;
      case Kind::kGauge: e.gauge->Reset(); break;
      case Kind::kHistogram: e.histogram->Reset(); break;
      case Kind::kWindowed: e.windowed->Reset(); break;
    }
  }
}

}  // namespace archis::metrics
