#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace archis::metrics {

std::atomic<bool> g_enabled{true};

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

// -- Histogram -----------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  if (!Enabled()) return;
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), v) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  const double rank = p * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c > 0 && static_cast<double>(cum + c) >= rank) {
      // Interpolate inside the covering bucket; the +Inf bucket clamps to
      // the largest finite bound.
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(c);
      return lower + frac * (upper - lower);
    }
    cum += c;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu sum=%.6g p50=%.3g p95=%.3g p99=%.3g",
                static_cast<unsigned long long>(count()), sum(),
                Percentile(0.50), Percentile(0.95), Percentile(0.99));
  return buf;
}

std::vector<double> ExponentialBuckets(double start, double factor, int n) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  double v = start;
  for (int i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> LinearBuckets(double start, double step, int n) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(start + step * i);
  return out;
}

std::vector<double> DefaultLatencyBuckets() {
  // 1us .. 10s in a 1-2-5 decade ladder (seconds).
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
          5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.5,  5.0,  10.0};
}

std::vector<double> DefaultSizeBuckets() {
  return ExponentialBuckets(64.0, 4.0, 10);  // 64B .. ~16MiB
}

// -- Registry ------------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* g = new Registry();
  return *g;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kCounter) {
    static Counter* mismatch = new Counter();
    return mismatch;
  }
  return it->second.counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kGauge) {
    static Gauge* mismatch = new Gauge();
    return mismatch;
  }
  return it->second.gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kHistogram) {
    static Histogram* mismatch = new Histogram({1.0});
    return mismatch;
  }
  return it->second.histogram.get();
}

namespace {

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string Registry::TextFormat() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, e] : entries_) {
    os << "# HELP " << name << " " << e.help << "\n";
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << e.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        const Histogram& h = *e.histogram;
        uint64_t cum = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cum += h.bucket_count(i);
          os << name << "_bucket{le=\"" << FormatDouble(h.bounds()[i])
             << "\"} " << cum << "\n";
        }
        cum += h.bucket_count(h.bounds().size());
        os << name << "_bucket{le=\"+Inf\"} " << cum << "\n";
        os << name << "_sum " << FormatDouble(h.sum()) << "\n";
        os << name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

void Registry::ResetValues() {
  MutexLock lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->Reset(); break;
      case Kind::kGauge: e.gauge->Reset(); break;
      case Kind::kHistogram: e.histogram->Reset(); break;
    }
  }
}

}  // namespace archis::metrics
