// Compile-time lock-rank registry with debug-build runtime enforcement.
//
// Every named archis::Mutex in src/ is assigned an ordinal from the
// LockRank enum below (archis-lint rule `lock-rank` enforces that the
// declaration carries one). The rule of the hierarchy is simple: a thread
// may only acquire mutexes in strictly increasing rank order. That single
// invariant makes deadlock impossible among ranked locks — a wait cycle
// would need some thread to acquire a lower or equal rank while holding a
// higher one, which the debug assertion below turns into an immediate
// abort with both ranks named.
//
// The ordinals encode the whole-program acquisition order discovered by
// `archis-analyze` (tools/analyze/, DESIGN.md §12 has the generated
// table): facade plan cache on the outside, WAL and scan machinery in the
// middle, and the "called from anywhere" leaves — metrics registry and
// log sink — at the top. Gaps of 10 leave room for new locks without
// renumbering.
//
// Enforcement is active whenever NDEBUG is off (the default build here
// compiles with -O2 -g and live asserts), so every ctest run, TSan run,
// and fuzzer sweep doubles as a validation of the statically derived
// hierarchy. Release builds with NDEBUG pay nothing.
#ifndef ARCHIS_COMMON_LOCK_RANK_H_
#define ARCHIS_COMMON_LOCK_RANK_H_

#ifndef NDEBUG
#include <cstdio>
#include <cstdlib>
#endif

namespace archis {

/// Acquisition ordinal for each named mutex class. Strictly increasing
/// per thread; kUnranked opts a mutex out of checking (tests, scratch).
enum class LockRank : int {
  kUnranked = 0,
  /// server::ArchisServer::mu_ — listener/session/worker lifecycle state
  /// (connection table, stop flag). Outermost of all: request handling
  /// acquires the request queue and then facade locks inside it.
  kServerState = 1,
  /// server::RequestQueue::mu_ — the bounded admission queue. Held only
  /// for push/pop bookkeeping; never across a facade call.
  kServerQueue = 2,
  /// ArchIS::checkpoint_mu_ — serializes whole checkpoints (capture +
  /// manifest install + WAL truncation) against each other. Outermost
  /// facade lock: a checkpoint acquires the commit lock inside it.
  kFacadeCheckpoint = 3,
  /// ArchIS::commit_mu_ — the commit lock: write-set validation,
  /// current-table apply, H-table archive and WAL enqueue of one
  /// committing transaction, plus DML reads of the current tables.
  /// Everything the write path touches (plan cache, WAL, stores) ranks
  /// above it.
  kFacadeCommit = 5,
  /// ArchIS::plan_cache_mu_ — facade plan-cache lookup/insert/epoch bump.
  kFacadePlanCache = 10,
  /// Wal::mu_ — group-commit leader/follower handoff.
  kWal = 20,
  /// SegmentedStore::pool_mu_ — lazy scan-pool creation.
  kSegmentScanPool = 30,
  /// ThreadPool::mu_ — task queue and shutdown flag.
  kThreadPool = 40,
  /// DocumentStore::mu_ — stored-document map.
  kDocumentStore = 50,
  /// PageManager::mu_ — page directory.
  kPageManager = 60,
  /// BlobStore::CacheShard::mu — decompressed-block LRU shard.
  kBlobCacheShard = 70,
  /// metrics::Registry::mu_ — metric get-or-create (reached from under
  /// most other locks via first-call function-local-static caching).
  kMetricsRegistry = 80,
  /// logging SinkHolder::mu — the innermost lock; Emit() may be called
  /// while holding anything else, so nothing may be acquired under it.
  kLogSink = 90,
};

/// Human-readable name of a rank ("kWal", ...).
inline const char* LockRankName(LockRank r) {
  switch (r) {
    case LockRank::kUnranked:        return "kUnranked";
    case LockRank::kServerState:     return "kServerState";
    case LockRank::kServerQueue:     return "kServerQueue";
    case LockRank::kFacadeCheckpoint: return "kFacadeCheckpoint";
    case LockRank::kFacadeCommit:    return "kFacadeCommit";
    case LockRank::kFacadePlanCache: return "kFacadePlanCache";
    case LockRank::kWal:             return "kWal";
    case LockRank::kSegmentScanPool: return "kSegmentScanPool";
    case LockRank::kThreadPool:      return "kThreadPool";
    case LockRank::kDocumentStore:   return "kDocumentStore";
    case LockRank::kPageManager:     return "kPageManager";
    case LockRank::kBlobCacheShard:  return "kBlobCacheShard";
    case LockRank::kMetricsRegistry: return "kMetricsRegistry";
    case LockRank::kLogSink:         return "kLogSink";
  }
  return "kUnknown";
}

namespace lock_rank {

#ifndef NDEBUG

namespace internal {

/// Per-thread stack of held ranked locks. Fixed capacity: the hierarchy
/// is 9 levels deep, so 32 simultaneous ranked locks on one thread means
/// something is already very wrong.
struct ThreadLockStack {
  static constexpr int kCapacity = 32;
  LockRank held[kCapacity];
  int depth = 0;
};

inline ThreadLockStack& Tls() {
  thread_local ThreadLockStack stack;
  return stack;
}

}  // namespace internal

/// Aborts if acquiring `r` now would violate rank monotonicity. Called
/// *before* blocking on the native mutex so the report fires instead of
/// the deadlock it predicts.
inline void CheckAcquire(LockRank r) {
  if (r == LockRank::kUnranked) return;
  const internal::ThreadLockStack& t = internal::Tls();
  if (t.depth == 0) return;
  const LockRank top = t.held[t.depth - 1];
  if (static_cast<int>(r) > static_cast<int>(top)) return;
  // The logger itself holds the highest rank, so it may be the very lock
  // being violated here; report on raw stderr and die.
  // archis-lint: allow(raw-logging) -- crash-path diagnostic, logger unusable
  std::fprintf(stderr,
               "lock-rank violation: acquiring %s (rank %d) while holding "
               "%s (rank %d); acquisition order must be strictly "
               "increasing (see src/common/lock_rank.h / DESIGN.md §12)\n",
               LockRankName(r), static_cast<int>(r), LockRankName(top),
               static_cast<int>(top));
  std::abort();
}

/// Records a successful acquisition of `r` on this thread.
inline void NoteAcquired(LockRank r) {
  if (r == LockRank::kUnranked) return;
  internal::ThreadLockStack& t = internal::Tls();
  if (t.depth < internal::ThreadLockStack::kCapacity) {
    t.held[t.depth] = r;
  }
  ++t.depth;
}

/// Records release of `r`: pops the most recent matching entry (locks are
/// overwhelmingly LIFO via MutexLock, but the WAL leader handoff releases
/// manually, so tolerate out-of-order release).
inline void NoteReleased(LockRank r) {
  if (r == LockRank::kUnranked) return;
  internal::ThreadLockStack& t = internal::Tls();
  if (t.depth > internal::ThreadLockStack::kCapacity) {
    --t.depth;  // overflowed entries were not recorded
    return;
  }
  for (int i = t.depth - 1; i >= 0; --i) {
    if (t.held[i] == r) {
      for (int j = i; j + 1 < t.depth; ++j) t.held[j] = t.held[j + 1];
      --t.depth;
      return;
    }
  }
  // Releasing a rank we never saw acquired: ignore (can only happen if
  // the stack overflowed past capacity above).
}

/// Number of ranked locks currently held by this thread (test hook).
inline int HeldDepth() { return internal::Tls().depth; }

#else  // NDEBUG: enforcement compiles away entirely.

inline void CheckAcquire(LockRank) {}
inline void NoteAcquired(LockRank) {}
inline void NoteReleased(LockRank) {}
inline int HeldDepth() { return 0; }

#endif

}  // namespace lock_rank
}  // namespace archis

#endif  // ARCHIS_COMMON_LOCK_RANK_H_
