// Per-query RAII trace spans and the EXPLAIN-style profile renderer.
//
// A Trace owns a span tree built by properly nested ScopedSpan guards on
// the query thread: the facade opens parse / translate / execute spans,
// the plan executor opens one segment-scan span per plan variable, and
// every span can carry key=value notes (row counts, cache hits, the table
// scanned). When QueryOptions::collect_profile is set the tree is
// surfaced on QueryResult as a QueryProfile whose Render() is the
// human-readable EXPLAIN output.
//
// A null Trace* makes every ScopedSpan a no-op, so instrumented code paths
// pay nothing when no profile was requested. Spans are built on one thread
// (the query thread); work fanned out to scan-pool workers is reported as
// notes/counters on the enclosing span, not as child spans.
#ifndef ARCHIS_COMMON_TRACE_H_
#define ARCHIS_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace archis::trace {

/// One node of the profile tree.
struct Span {
  std::string name;
  uint64_t start_ns = 0;     ///< offset from the trace start
  uint64_t duration_ns = 0;  ///< >= 1 once closed (clamped, so a recorded
                             ///< span is always distinguishable from a
                             ///< never-run one)
  std::vector<std::pair<std::string, std::string>> notes;
  std::vector<Span> children;
};

/// Depth-first search by span name; nullptr when absent.
const Span* FindSpan(const Span& root, const std::string& name);

/// The completed profile of one query.
struct QueryProfile {
  Span root;
  /// EXPLAIN-style indented tree, one span per line:
  ///   query                       2.314 ms
  ///     execute                   2.201 ms
  ///       segment-scan            1.806 ms  table=employees_salary rows=42
  std::string Render() const;
};

class ScopedSpan;

/// Span-tree builder for one query. Not thread-safe: one Trace is driven
/// by one query thread.
class Trace {
 public:
  Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Closes the root span and hands the finished tree out.
  QueryProfile TakeProfile();

  /// Attaches a key=value annotation to the innermost open span. Lets a
  /// callee annotate its caller's span (e.g. the plan executor putting
  /// estimated-vs-actual rows on the facade's execute span) without
  /// owning a ScopedSpan of its own.
  void NoteCurrent(const std::string& key, std::string value);
  void NoteCurrent(const std::string& key, uint64_t value);

 private:
  friend class ScopedSpan;
  uint64_t ElapsedNs() const;

  std::chrono::steady_clock::time_point start_;
  Span root_;
  /// Open-span stack; back() is the innermost open span. Pointers stay
  /// valid because RAII nesting means a parent's children vector only
  /// grows while none of its existing children is open.
  std::vector<Span*> open_;
};

/// RAII guard for one span. Constructing on a null Trace is a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Trace* t, std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key=value annotation to this span.
  void Note(const std::string& key, std::string value);
  void Note(const std::string& key, uint64_t value);

 private:
  Trace* trace_;
  Span* span_ = nullptr;
};

}  // namespace archis::trace

#endif  // ARCHIS_COMMON_TRACE_H_
