// Strict numeric parsing for untrusted text.
//
// The strtoll/strtod idiom scattered through early call sites had two
// real bugs: the `end == begin + size` check holds trivially for the
// empty string (so "" parsed as 0), and errno was never inspected (so
// "99999999999999999999999" silently clamped to LLONG_MAX). These
// helpers are the one sanctioned entry point: they reject empty input,
// leading/trailing garbage and out-of-range values, and every ingest or
// configuration surface (XML import, env vars, the network protocol)
// parses through them.
#ifndef ARCHIS_COMMON_PARSE_H_
#define ARCHIS_COMMON_PARSE_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace archis {

/// Parses `text` as a base-10 signed 64-bit integer. The whole string
/// must be the number (optional leading '-'/'+', then digits); empty
/// input, surrounding whitespace, trailing garbage and values outside
/// [INT64_MIN, INT64_MAX] all fail with ParseError.
Result<int64_t> ParseInt64(std::string_view text);

/// Parses `text` as a finite double. The whole string must be the
/// number; empty input, surrounding whitespace, trailing garbage,
/// "inf"/"nan" spellings and values that overflow a double all fail
/// with ParseError.
Result<double> ParseDouble(std::string_view text);

}  // namespace archis

#endif  // ARCHIS_COMMON_PARSE_H_
