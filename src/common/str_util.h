// Small string helpers shared across modules.
#ifndef ARCHIS_COMMON_STR_UTIL_H_
#define ARCHIS_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace archis {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Whether `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Whether `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view text);

/// Escapes XML special characters (& < > " ') for text/attribute content.
std::string XmlEscape(std::string_view text);

/// Reverses XmlEscape for the five standard entities.
std::string XmlUnescape(std::string_view text);

}  // namespace archis

#endif  // ARCHIS_COMMON_STR_UTIL_H_
