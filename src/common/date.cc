#include "common/date.h"

#include <cstdio>

namespace archis {
namespace {

// Civil-date <-> day-count conversion (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe);
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

Date Date::FromYmd(int year, int month, int day) {
  return Date(DaysFromCivil(year, static_cast<unsigned>(month),
                            static_cast<unsigned>(day)));
}

Date Date::Forever() { return FromYmd(9999, 12, 31); }

Result<Date> Date::Parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) == 3) {
    // fall through to validation
  } else if (std::sscanf(text.c_str(), "%d/%d/%d", &m, &d, &y) == 3) {
    // MM/DD/YYYY
  } else {
    return Status::ParseError("unparsable date: '" + text + "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > 31 || y < 0 || y > 9999) {
    return Status::ParseError("date out of range: '" + text + "'");
  }
  return FromYmd(y, m, d);
}

int Date::year() const {
  int y; unsigned m, d;
  CivilFromDays(days_, &y, &m, &d);
  return y;
}

int Date::month() const {
  int y; unsigned m, d;
  CivilFromDays(days_, &y, &m, &d);
  return static_cast<int>(m);
}

int Date::day() const {
  int y; unsigned m, d;
  CivilFromDays(days_, &y, &m, &d);
  return static_cast<int>(d);
}

std::string Date::ToString() const {
  int y; unsigned m, d;
  CivilFromDays(days_, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
  return buf;
}

}  // namespace archis
