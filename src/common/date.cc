#include "common/date.h"

#include <cstdio>

namespace archis {
namespace {

// Civil-date <-> day-count conversion (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe);
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

Date Date::FromYmd(int year, int month, int day) {
  return Date(DaysFromCivil(year, static_cast<unsigned>(month),
                            static_cast<unsigned>(day)));
}

Date Date::Forever() { return FromYmd(9999, 12, 31); }

bool Date::IsLeapYear(int year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int Date::DaysInMonth(int year, int month) {
  static constexpr int kLengths[12] = {31, 28, 31, 30, 31, 30,
                                       31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kLengths[month - 1];
}

Result<Date> Date::Parse(const std::string& text) {
  // %n (bytes consumed) must equal the input length: "2005-01-01x" is not
  // a date, and DaysFromCivil would otherwise fold whatever sscanf matched
  // into a silently wrong day count.
  const int len = static_cast<int>(text.size());
  int y = 0, m = 0, d = 0;
  int consumed = -1;
  bool parsed =
      std::sscanf(text.c_str(), "%d-%d-%d%n", &y, &m, &d, &consumed) == 3 &&
      consumed == len;
  if (!parsed) {
    consumed = -1;
    // MM/DD/YYYY
    parsed =
        std::sscanf(text.c_str(), "%d/%d/%d%n", &m, &d, &y, &consumed) == 3 &&
        consumed == len;
  }
  if (!parsed) {
    return Status::ParseError("unparsable date: '" + text + "'");
  }
  if (m < 1 || m > 12 || y < 0 || y > 9999) {
    return Status::ParseError("date out of range: '" + text + "'");
  }
  if (d < 1 || d > DaysInMonth(y, m)) {
    // Calendar-invalid days (2005-02-30, 2005-04-31, Feb 29 off leap
    // years) must not normalise into the next month: a tstart/tend read
    // back from an H-document has to be the date that was written.
    return Status::ParseError("day out of range for month: '" + text + "'");
  }
  return FromYmd(y, m, d);
}

int Date::year() const {
  int y; unsigned m, d;
  CivilFromDays(days_, &y, &m, &d);
  return y;
}

int Date::month() const {
  int y; unsigned m, d;
  CivilFromDays(days_, &y, &m, &d);
  return static_cast<int>(m);
}

int Date::day() const {
  int y; unsigned m, d;
  CivilFromDays(days_, &y, &m, &d);
  return static_cast<int>(d);
}

std::string Date::ToString() const {
  int y; unsigned m, d;
  CivilFromDays(days_, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
  return buf;
}

}  // namespace archis
