#include "common/trace.h"

#include <algorithm>
#include <cstdio>

namespace archis::trace {

const Span* FindSpan(const Span& root, const std::string& name) {
  if (root.name == name) return &root;
  for (const Span& child : root.children) {
    if (const Span* found = FindSpan(child, name)) return found;
  }
  return nullptr;
}

Trace::Trace() : start_(std::chrono::steady_clock::now()) {
  root_.name = "query";
  open_.push_back(&root_);
}

uint64_t Trace::ElapsedNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

QueryProfile Trace::TakeProfile() {
  root_.duration_ns = std::max<uint64_t>(ElapsedNs(), 1);
  QueryProfile profile;
  profile.root = std::move(root_);
  root_ = Span{};
  open_.clear();
  return profile;
}

void Trace::NoteCurrent(const std::string& key, std::string value) {
  if (open_.empty()) return;
  open_.back()->notes.emplace_back(key, std::move(value));
}

void Trace::NoteCurrent(const std::string& key, uint64_t value) {
  NoteCurrent(key, std::to_string(value));
}

ScopedSpan::ScopedSpan(Trace* t, std::string name) : trace_(t) {
  if (trace_ == nullptr || trace_->open_.empty()) return;
  Span* parent = trace_->open_.back();
  parent->children.push_back(Span{});
  span_ = &parent->children.back();
  span_->name = std::move(name);
  span_->start_ns = trace_->ElapsedNs();
  trace_->open_.push_back(span_);
}

ScopedSpan::~ScopedSpan() {
  if (span_ == nullptr) return;
  // Clamp to 1ns so a closed span always reports a non-zero duration.
  span_->duration_ns =
      std::max<uint64_t>(trace_->ElapsedNs() - span_->start_ns, 1);
  trace_->open_.pop_back();
}

void ScopedSpan::Note(const std::string& key, std::string value) {
  if (span_ == nullptr) return;
  span_->notes.emplace_back(key, std::move(value));
}

void ScopedSpan::Note(const std::string& key, uint64_t value) {
  Note(key, std::to_string(value));
}

namespace {

void RenderSpan(const Span& span, int depth, size_t name_width,
                std::string* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += span.name;
  if (line.size() < name_width) line.resize(name_width, ' ');
  char buf[48];
  std::snprintf(buf, sizeof(buf), "  %10.3f ms",
                static_cast<double>(span.duration_ns) / 1e6);
  line += buf;
  for (const auto& [k, v] : span.notes) {
    line += "  ";
    line += k;
    line += "=";
    line += v;
  }
  out->append(line);
  out->push_back('\n');
  for (const Span& child : span.children) {
    RenderSpan(child, depth + 1, name_width, out);
  }
}

size_t MaxNameWidth(const Span& span, int depth) {
  size_t w = static_cast<size_t>(depth) * 2 + span.name.size();
  for (const Span& child : span.children) {
    w = std::max(w, MaxNameWidth(child, depth + 1));
  }
  return w;
}

}  // namespace

std::string QueryProfile::Render() const {
  std::string out;
  RenderSpan(root, 0, MaxNameWidth(root, 0), &out);
  return out;
}

}  // namespace archis::trace
