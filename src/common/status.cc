#include "common/status.h"

namespace archis {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kConflict: return "Conflict";
    case StatusCode::kOverloaded: return "Overloaded";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace archis
