#include "common/thread_pool.h"

#include <utility>

namespace archis {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> future = wrapped.get_future();
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.NotifyOne();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      cv_.Wait(mu_, [this]() ARCHIS_REQUIRES(mu_) {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace archis
