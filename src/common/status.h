// Status / Result error-handling primitives, following the Arrow/RocksDB
// idiom: no exceptions cross public API boundaries; fallible operations
// return Status (or Result<T> when they also produce a value).
#ifndef ARCHIS_COMMON_STATUS_H_
#define ARCHIS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace archis {

/// Error category for a failed operation.
enum class [[nodiscard]] StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kNotImplemented,
  kIOError,
  kParseError,
  kTypeError,
  kUnsupported,
  kInternal,
  kAborted,
  /// First-committer-wins write-write conflict: another transaction
  /// committed a change to a key in this transaction's write set after it
  /// began. Retryable — re-run the transaction against the new state.
  kConflict,
  /// Admission control shed this request: the server's bounded queue was
  /// full (or the connection limit was hit). Retryable after backoff; the
  /// work was never started.
  kOverloaded,
  /// The caller's deadline passed before the work completed. The query
  /// executor checks at scan boundaries, so a partial scan may have run;
  /// no state was mutated.
  kDeadlineExceeded,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation). Construct error values
/// through the named factories, e.g. `Status::InvalidArgument("bad key")`.
///
/// [[nodiscard]]: a dropped Status is a latent data-loss bug (a failed
/// flush that nobody noticed). Call sites that genuinely do not care must
/// say so with IgnoreStatus(...) — never a bare cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error union: holds either a T or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status must carry a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; undefined behaviour if !ok().
  T& value() & { assert(ok()); return *value_; }
  const T& value() const& { assert(ok()); return *value_; }
  T&& value() && { assert(ok()); return std::move(*value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// The value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Explicitly discards a Status (or Result) when failure is genuinely
/// acceptable — e.g. best-effort cleanup on an already-failing path. Shows
/// up in greps, unlike a cast to void; always pair with a comment saying
/// why ignoring is safe.
inline void IgnoreStatus(const Status&) {}
template <typename T>
inline void IgnoreStatus(const Result<T>&) {}

// Propagate a non-OK Status from an expression.
#define ARCHIS_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::archis::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

// Evaluate a Result expression; on error propagate the Status, otherwise
// bind the value to `lhs`.
#define ARCHIS_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define ARCHIS_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define ARCHIS_ASSIGN_OR_RETURN_NAME(x, y) ARCHIS_ASSIGN_OR_RETURN_CONCAT(x, y)
#define ARCHIS_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  ARCHIS_ASSIGN_OR_RETURN_IMPL(                                              \
      ARCHIS_ASSIGN_OR_RETURN_NAME(_result_, __COUNTER__), lhs, rexpr)

}  // namespace archis

#endif  // ARCHIS_COMMON_STATUS_H_
