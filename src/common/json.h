// Minimal JSON parser (small DOM, Status-returning) for the diagnostic
// surfaces that *consume* JSON: validating Chrome trace dumps
// (tools/trace_check), checking `.crashdump` well-formedness in
// recovery_fuzz and the flight-recorder tests. Writers build JSON by
// hand (flight_recorder.cc, log.cc); this is the matching reader, not a
// general-purpose serialization layer.
//
// Supported: RFC 8259 objects/arrays/strings/numbers/bools/null with
// \uXXXX escapes (decoded to UTF-8; surrogate pairs combined). Numbers
// are held as double — fine for diagnostics, not for exact 64-bit ids
// above 2^53 (ArchIS ids in dumps stay far below that).
#ifndef ARCHIS_COMMON_JSON_H_
#define ARCHIS_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace archis::json {

/// One parsed JSON value. Object member order is preserved.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& items() const { return items_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double n);
  static Value String(std::string s);
  static Value Array(std::vector<Value> items);
  static Value Object(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Errors carry a byte offset.
Result<Value> Parse(std::string_view text);

}  // namespace archis::json

#endif  // ARCHIS_COMMON_JSON_H_
