// XML serialization (compact and pretty-printed).
#ifndef ARCHIS_XML_SERIALIZER_H_
#define ARCHIS_XML_SERIALIZER_H_

#include <string>

#include "xml/node.h"

namespace archis::xml {

/// Serialization options.
struct SerializeOptions {
  bool pretty = false;       ///< Indent child elements on new lines.
  int indent_width = 2;      ///< Spaces per level when pretty.
  bool xml_declaration = false;  ///< Emit `<?xml version="1.0"?>` first.
};

/// Serializes `node` (and its subtree) to text.
std::string Serialize(const XmlNodePtr& node, SerializeOptions opts = {});

}  // namespace archis::xml

#endif  // ARCHIS_XML_SERIALIZER_H_
