#include "xml/node.h"

namespace archis::xml {

XmlNodePtr XmlNode::Element(std::string name) {
  auto node = XmlNodePtr(new XmlNode(NodeKind::kElement));
  node->name_ = std::move(name);
  return node;
}

XmlNodePtr XmlNode::Text(std::string content) {
  auto node = XmlNodePtr(new XmlNode(NodeKind::kText));
  node->text_ = std::move(content);
  return node;
}

std::string XmlNode::StringValue() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& child : children_) out += child->StringValue();
  return out;
}

std::optional<std::string> XmlNode::Attr(const std::string& name) const {
  for (const auto& a : attrs_) {
    if (a.name == name) return a.value;
  }
  return std::nullopt;
}

void XmlNode::SetAttr(const std::string& name, std::string value) {
  for (auto& a : attrs_) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  attrs_.push_back({name, std::move(value)});
}

Result<TimeInterval> XmlNode::Interval() const {
  auto s = Attr("tstart");
  auto e = Attr("tend");
  if (!s || !e) {
    return Status::NotFound("element <" + name_ + "> has no tstart/tend");
  }
  ARCHIS_ASSIGN_OR_RETURN(Date start, Date::Parse(*s));
  ARCHIS_ASSIGN_OR_RETURN(Date end, Date::Parse(*e));
  // Document attributes are untrusted input: reject tstart > tend here so
  // malformed H-documents cannot leak ill-formed intervals inward.
  return MakeIntervalChecked(start, end);
}

void XmlNode::SetInterval(const TimeInterval& iv) {
  SetAttr("tstart", iv.tstart.ToString());
  SetAttr("tend", iv.tend.ToString());
}

void XmlNode::AppendChild(XmlNodePtr child) {
  child->parent_ = weak_from_this();
  children_.push_back(std::move(child));
}

void XmlNode::AppendText(std::string text) {
  AppendChild(Text(std::move(text)));
}

std::vector<XmlNodePtr> XmlNode::ChildrenNamed(
    const std::string& name) const {
  std::vector<XmlNodePtr> out;
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) out.push_back(c);
  }
  return out;
}

XmlNodePtr XmlNode::FirstChildNamed(const std::string& name) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) return c;
  }
  return nullptr;
}

std::vector<XmlNodePtr> XmlNode::ChildElements() const {
  std::vector<XmlNodePtr> out;
  for (const auto& c : children_) {
    if (c->is_element()) out.push_back(c);
  }
  return out;
}

XmlNodePtr XmlNode::Clone() const {
  XmlNodePtr copy;
  if (is_text()) {
    copy = Text(text_);
  } else {
    copy = Element(name_);
    copy->attrs_ = attrs_;
    for (const auto& c : children_) copy->AppendChild(c->Clone());
  }
  return copy;
}

size_t XmlNode::CountElements() const {
  if (is_text()) return 0;
  size_t n = 1;
  for (const auto& c : children_) n += c->CountElements();
  return n;
}

}  // namespace archis::xml
