#include "xml/parser.h"

#include <cctype>

#include "common/str_util.h"

namespace archis::xml {
namespace {

/// Cursor over the input with the usual scanning helpers.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  std::string_view Remaining() const { return text_.substr(pos_); }
  size_t pos() const { return pos_; }

  std::string_view TakeUntil(std::string_view stop) {
    size_t end = text_.find(stop, pos_);
    if (end == std::string_view::npos) end = text_.size();
    std::string_view out = text_.substr(pos_, end - pos_);
    pos_ = end;
    return out;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

std::string ParseName(Cursor* cur) {
  std::string name;
  while (!cur->AtEnd() && IsNameChar(cur->Peek())) {
    name += cur->Peek();
    cur->Advance();
  }
  return name;
}

Status SkipProlog(Cursor* cur) {
  while (true) {
    cur->SkipWhitespace();
    if (cur->Consume("<?")) {
      cur->TakeUntil("?>");
      if (!cur->Consume("?>")) return Status::ParseError("unterminated <?");
    } else if (cur->Consume("<!--")) {
      cur->TakeUntil("-->");
      if (!cur->Consume("-->")) {
        return Status::ParseError("unterminated comment");
      }
    } else if (cur->Consume("<!DOCTYPE")) {
      cur->TakeUntil(">");
      cur->Consume(">");
    } else {
      return Status::OK();
    }
  }
}

Result<XmlNodePtr> ParseElement(Cursor* cur);

Status ParseContent(Cursor* cur, const XmlNodePtr& parent) {
  while (!cur->AtEnd()) {
    if (cur->Peek() == '<') {
      if (cur->PeekAt(1) == '/') return Status::OK();  // close tag
      if (cur->Consume("<!--")) {
        cur->TakeUntil("-->");
        if (!cur->Consume("-->")) {
          return Status::ParseError("unterminated comment");
        }
        continue;
      }
      if (cur->Consume("<![CDATA[")) {
        std::string_view data = cur->TakeUntil("]]>");
        if (!cur->Consume("]]>")) {
          return Status::ParseError("unterminated CDATA");
        }
        parent->AppendText(std::string(data));
        continue;
      }
      ARCHIS_ASSIGN_OR_RETURN(XmlNodePtr child, ParseElement(cur));
      parent->AppendChild(std::move(child));
    } else {
      std::string_view raw = cur->TakeUntil("<");
      std::string text = XmlUnescape(raw);
      // Keep only text with substance; whitespace-only runs between child
      // elements are formatting noise.
      if (!Trim(text).empty()) parent->AppendText(std::move(text));
    }
  }
  return Status::OK();
}

Result<XmlNodePtr> ParseElement(Cursor* cur) {
  if (!cur->Consume("<")) return Status::ParseError("expected '<'");
  std::string name = ParseName(cur);
  if (name.empty()) {
    return Status::ParseError("missing element name at offset " +
                              std::to_string(cur->pos()));
  }
  XmlNodePtr node = XmlNode::Element(name);

  // Attributes.
  while (true) {
    cur->SkipWhitespace();
    if (cur->AtEnd()) return Status::ParseError("unterminated tag");
    if (cur->Consume("/>")) return node;  // empty element
    if (cur->Consume(">")) break;
    std::string attr = ParseName(cur);
    if (attr.empty()) {
      return Status::ParseError("bad attribute in <" + name + ">");
    }
    cur->SkipWhitespace();
    if (!cur->Consume("=")) {
      return Status::ParseError("attribute '" + attr + "' missing '='");
    }
    cur->SkipWhitespace();
    char quote = cur->AtEnd() ? '\0' : cur->Peek();
    if (quote != '"' && quote != '\'') {
      return Status::ParseError("attribute '" + attr + "' missing quote");
    }
    cur->Advance();
    std::string_view raw = cur->TakeUntil(std::string_view(&quote, 1));
    if (!cur->Consume(std::string_view(&quote, 1))) {
      return Status::ParseError("unterminated attribute value");
    }
    node->SetAttr(attr, XmlUnescape(raw));
  }

  // Children.
  ARCHIS_RETURN_NOT_OK(ParseContent(cur, node));

  if (!cur->Consume("</")) {
    return Status::ParseError("missing close tag for <" + name + ">");
  }
  std::string close = ParseName(cur);
  if (close != name) {
    return Status::ParseError("mismatched close tag </" + close +
                              "> for <" + name + ">");
  }
  cur->SkipWhitespace();
  if (!cur->Consume(">")) {
    return Status::ParseError("malformed close tag </" + name + ">");
  }
  return node;
}

}  // namespace

Result<XmlNodePtr> ParseDocument(std::string_view text) {
  Cursor cur(text);
  ARCHIS_RETURN_NOT_OK(SkipProlog(&cur));
  cur.SkipWhitespace();
  if (cur.AtEnd()) return Status::ParseError("empty document");
  ARCHIS_ASSIGN_OR_RETURN(XmlNodePtr root, ParseElement(&cur));
  cur.SkipWhitespace();
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing content after root element");
  }
  return root;
}

}  // namespace archis::xml
