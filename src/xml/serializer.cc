#include "xml/serializer.h"

#include "common/str_util.h"

namespace archis::xml {
namespace {

void SerializeRec(const XmlNodePtr& node, const SerializeOptions& opts,
                  int depth, std::string* out) {
  const std::string pad =
      opts.pretty ? std::string(static_cast<size_t>(depth) *
                                static_cast<size_t>(opts.indent_width), ' ')
                  : std::string();
  if (node->is_text()) {
    if (opts.pretty) *out += pad;
    *out += XmlEscape(node->StringValue());
    if (opts.pretty) *out += '\n';
    return;
  }
  if (opts.pretty) *out += pad;
  *out += '<';
  *out += node->name();
  for (const XmlAttr& a : node->attrs()) {
    *out += ' ';
    *out += a.name;
    *out += "=\"";
    *out += XmlEscape(a.value);
    *out += '"';
  }
  if (node->children().empty()) {
    *out += "/>";
    if (opts.pretty) *out += '\n';
    return;
  }
  // Single text child renders inline even in pretty mode.
  if (node->children().size() == 1 && node->children()[0]->is_text()) {
    *out += '>';
    *out += XmlEscape(node->children()[0]->StringValue());
    *out += "</";
    *out += node->name();
    *out += '>';
    if (opts.pretty) *out += '\n';
    return;
  }
  *out += '>';
  if (opts.pretty) *out += '\n';
  for (const auto& child : node->children()) {
    SerializeRec(child, opts, depth + 1, out);
  }
  if (opts.pretty) *out += pad;
  *out += "</";
  *out += node->name();
  *out += '>';
  if (opts.pretty) *out += '\n';
}

}  // namespace

std::string Serialize(const XmlNodePtr& node, SerializeOptions opts) {
  std::string out;
  if (opts.xml_declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    out += opts.pretty ? "\n" : "";
  }
  SerializeRec(node, opts, 0, &out);
  return out;
}

}  // namespace archis::xml
