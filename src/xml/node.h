// XML document object model used for H-documents and query results.
//
// Nodes are reference-counted so XQuery sequences can hold references into
// documents cheaply; parents are back-linked weakly. Every element may
// carry the paper's tstart/tend attributes, exposed as typed accessors.
#ifndef ARCHIS_XML_NODE_H_
#define ARCHIS_XML_NODE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/status.h"

namespace archis::xml {

class XmlNode;
using XmlNodePtr = std::shared_ptr<XmlNode>;

/// Kind of node: element or text.
enum class NodeKind { kElement, kText };

/// An attribute on an element.
struct XmlAttr {
  std::string name;
  std::string value;
};

/// A DOM node.
class XmlNode : public std::enable_shared_from_this<XmlNode> {
 public:
  /// Creates an element node.
  static XmlNodePtr Element(std::string name);

  /// Creates a text node.
  static XmlNodePtr Text(std::string content);

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// Element tag name (empty for text nodes).
  const std::string& name() const { return name_; }

  /// Text content for text nodes; for elements, the concatenation of all
  /// descendant text (the XPath string value).
  std::string StringValue() const;

  // -- Attributes ---------------------------------------------------------

  const std::vector<XmlAttr>& attrs() const { return attrs_; }

  /// The attribute value, or nullopt.
  std::optional<std::string> Attr(const std::string& name) const;

  /// Sets (or replaces) an attribute.
  void SetAttr(const std::string& name, std::string value);

  // -- Temporal accessors (paper Section 3) --------------------------------

  /// The element's [tstart, tend] interval parsed from its attributes;
  /// NotFound when either attribute is missing.
  Result<TimeInterval> Interval() const;

  /// Sets tstart/tend attributes from an interval.
  void SetInterval(const TimeInterval& iv);

  // -- Tree structure ------------------------------------------------------

  const std::vector<XmlNodePtr>& children() const { return children_; }

  /// Appends a child (reparenting it to this node).
  void AppendChild(XmlNodePtr child);

  /// Appends a text child.
  void AppendText(std::string text);

  /// The parent element, or nullptr for roots.
  XmlNodePtr parent() const { return parent_.lock(); }

  /// Child elements with the given tag name, in document order.
  std::vector<XmlNodePtr> ChildrenNamed(const std::string& name) const;

  /// First child element with the given tag name, or nullptr.
  XmlNodePtr FirstChildNamed(const std::string& name) const;

  /// All element children (skipping text nodes).
  std::vector<XmlNodePtr> ChildElements() const;

  /// Deep copy (children included, parent cleared).
  XmlNodePtr Clone() const;

  /// Total count of element nodes in this subtree (including this one).
  size_t CountElements() const;

 private:
  explicit XmlNode(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  std::string name_;       // element tag
  std::string text_;       // text content (text nodes)
  std::vector<XmlAttr> attrs_;
  std::vector<XmlNodePtr> children_;
  std::weak_ptr<XmlNode> parent_;
};

}  // namespace archis::xml

#endif  // ARCHIS_XML_NODE_H_
