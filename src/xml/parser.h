// Recursive-descent parser for the XML subset used by H-documents:
// elements, attributes, text, comments, XML declarations, CDATA.
#ifndef ARCHIS_XML_PARSER_H_
#define ARCHIS_XML_PARSER_H_

#include <string>
#include <string_view>

#include "xml/node.h"

namespace archis::xml {

/// Parses an XML document; returns its root element.
Result<XmlNodePtr> ParseDocument(std::string_view text);

}  // namespace archis::xml

#endif  // ARCHIS_XML_PARSER_H_
