#include "workload/employee_workload.h"

namespace archis::workload {

using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;

Schema EmployeeWorkload::EmployeeSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"salary", DataType::kInt64},
                 {"title", DataType::kString},
                 {"deptno", DataType::kString}});
}

Schema EmployeeWorkload::DeptSchema() {
  return Schema({{"deptno_id", DataType::kInt64},
                 {"deptno", DataType::kString},
                 {"deptname", DataType::kString},
                 {"mgrno", DataType::kInt64}});
}

namespace {

const char* kFirstNames[] = {"Bob",   "Alice", "Carol", "David", "Erin",
                             "Frank", "Grace", "Heidi", "Ivan",  "Judy",
                             "Karl",  "Liu",   "Mary",  "Nikos", "Olga",
                             "Pavel", "Qing",  "Rosa",  "Sven",  "Tara"};
const char* kLastNames[] = {"Smith", "Jones", "Zhang", "Kumar", "Okafor",
                            "Silva", "Novak", "Haddad", "Moreau", "Tanaka",
                            "Muller", "Rossi", "Kim",   "Lopez", "Ivanov",
                            "Chen",  "Patel", "Weber", "Santos", "Nagy"};
const char* kTitles[] = {"Engineer", "Sr Engineer", "TechLeader",
                         "Staff Engineer", "Manager", "Analyst",
                         "Sr Analyst", "Architect"};
const char* kDeptNames[] = {"QA", "RD", "Sales", "Marketing", "Support",
                            "Ops", "Finance", "HR", "Legal"};

}  // namespace

std::string EmployeeWorkload::RandomName() {
  return std::string(kFirstNames[rng_() % std::size(kFirstNames)]) + " " +
         kLastNames[rng_() % std::size(kLastNames)];
}

std::string EmployeeWorkload::RandomTitle() {
  return kTitles[rng_() % std::size(kTitles)];
}

std::string EmployeeWorkload::RandomDept() {
  int d = static_cast<int>(rng_() % static_cast<uint64_t>(
                                        config_.num_depts)) + 1;
  char buf[8];
  std::snprintf(buf, sizeof(buf), "d%02d", d);
  return buf;
}

Tuple EmployeeWorkload::EmployeeRow(const EmpState& e) const {
  return Tuple{Value(e.id), Value(e.name), Value(e.salary), Value(e.title),
               Value(e.deptno)};
}

Status EmployeeWorkload::RegisterRelations(core::ArchIS* db) {
  core::RelationSpec employees;
  employees.name = "employees";
  employees.schema = EmployeeSchema();
  employees.key_columns = {"id"};
  employees.doc_name = "employees.xml";
  ARCHIS_RETURN_NOT_OK(db->CreateRelation(employees));
  core::RelationSpec depts;
  depts.name = "depts";
  depts.schema = DeptSchema();
  depts.key_columns = {"deptno_id"};
  depts.doc_name = "depts.xml";
  ARCHIS_RETURN_NOT_OK(db->CreateRelation(depts));
  // Seed departments.
  dept_mgrs_.assign(static_cast<size_t>(config_.num_depts), 0);
  for (int d = 1; d <= config_.num_depts; ++d) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "d%02d", d);
    int64_t mgr = 2000 + static_cast<int64_t>(rng_() % 3000);
    dept_mgrs_[static_cast<size_t>(d - 1)] = mgr;
    ARCHIS_RETURN_NOT_OK(db->Insert(
        "depts",
        Tuple{Value(static_cast<int64_t>(d)), Value(std::string(buf)),
              Value(std::string(kDeptNames[(d - 1) %
                                           static_cast<int>(
                                               std::size(kDeptNames))])),
              Value(mgr)}));
  }
  return Status::OK();
}

Status EmployeeWorkload::HireEmployee(core::ArchIS* db,
                                      WorkloadStats* stats) {
  EmpState e;
  e.id = next_id_++;
  e.name = RandomName();
  e.salary = 30000 + static_cast<int64_t>(rng_() % 50000);
  e.title = RandomTitle();
  e.deptno = RandomDept();
  ARCHIS_RETURN_NOT_OK(db->Insert("employees", EmployeeRow(e)));
  all_ids_.push_back(e.id);
  employees_.push_back(std::move(e));
  if (stats != nullptr) ++stats->inserts;
  return Status::OK();
}

Result<WorkloadStats> EmployeeWorkload::Generate(core::ArchIS* db) {
  rng_.seed(config_.seed);
  employees_.clear();
  all_ids_.clear();
  next_id_ = 100001;
  probe_id_ = 100001;

  WorkloadStats stats;
  ARCHIS_RETURN_NOT_OK(db->AdvanceClock(config_.start_date));
  ARCHIS_RETURN_NOT_OK(RegisterRelations(db));

  // Initial hires spread over the first 90 days.
  for (int i = 0; i < config_.initial_employees; ++i) {
    ARCHIS_RETURN_NOT_OK(
        db->AdvanceClock(config_.start_date.AddDays(
            static_cast<int64_t>(i) * 90 / config_.initial_employees)));
    ARCHIS_RETURN_NOT_OK(HireEmployee(db, &stats));
  }

  // Yearly passes: each employee draws its events on random days.
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int year = 0; year < config_.years; ++year) {
    Date year_start = config_.start_date.AddDays(365LL * year);
    // Year 0 events must not predate the 90-day initial hiring window.
    const int64_t day_lo = year == 0 ? 90 : 0;
    auto event_day = [&]() {
      return day_lo + static_cast<int64_t>(
                          rng_() % static_cast<uint64_t>(365 - day_lo));
    };
    // Collect (day offset, action) events, then replay in date order since
    // transaction time is monotone.
    struct Event {
      int64_t day;
      int kind;  // 0 raise, 1 title, 2 dept, 3 term, 4 hire, 5 mgr change
      size_t subject;
    };
    std::vector<Event> events;
    for (size_t i = 0; i < employees_.size(); ++i) {
      if (!employees_[i].active) continue;
      if (coin(rng_) < config_.raise_prob) {
        events.push_back({event_day(), 0, i});
      }
      if (coin(rng_) < config_.title_change_prob) {
        events.push_back({event_day(), 1, i});
      }
      if (coin(rng_) < config_.dept_change_prob) {
        events.push_back({event_day(), 2, i});
      }
      if (coin(rng_) < config_.termination_prob && employees_[i].id != probe_id_) {
        events.push_back({event_day(), 3, i});
      }
      if (coin(rng_) < config_.hire_rate) {
        events.push_back({event_day(), 4, 0});
      }
    }
    for (int d = 0; d < config_.num_depts; ++d) {
      if (coin(rng_) < config_.mgr_change_prob) {
        events.push_back({event_day(), 5, static_cast<size_t>(d)});
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.day < b.day; });

    for (const Event& ev : events) {
      ARCHIS_RETURN_NOT_OK(db->AdvanceClock(year_start.AddDays(ev.day)));
      switch (ev.kind) {
        case 0: {
          EmpState& e = employees_[ev.subject];
          if (!e.active) break;
          e.salary += 500 + static_cast<int64_t>(rng_() % 5000);
          ARCHIS_RETURN_NOT_OK(
              db->Update("employees", {Value(e.id)}, EmployeeRow(e)));
          ++stats.updates;
          break;
        }
        case 1: {
          EmpState& e = employees_[ev.subject];
          if (!e.active) break;
          std::string t = RandomTitle();
          if (t == e.title) break;
          e.title = t;
          ARCHIS_RETURN_NOT_OK(
              db->Update("employees", {Value(e.id)}, EmployeeRow(e)));
          ++stats.updates;
          break;
        }
        case 2: {
          EmpState& e = employees_[ev.subject];
          if (!e.active) break;
          std::string d = RandomDept();
          if (d == e.deptno) break;
          e.deptno = d;
          ARCHIS_RETURN_NOT_OK(
              db->Update("employees", {Value(e.id)}, EmployeeRow(e)));
          ++stats.updates;
          break;
        }
        case 3: {
          EmpState& e = employees_[ev.subject];
          if (!e.active) break;
          e.active = false;
          ARCHIS_RETURN_NOT_OK(db->Delete("employees", {Value(e.id)}));
          ++stats.deletes;
          break;
        }
        case 4:
          ARCHIS_RETURN_NOT_OK(HireEmployee(db, &stats));
          break;
        case 5: {
          size_t d = ev.subject;
          char buf[8];
          std::snprintf(buf, sizeof(buf), "d%02zu", d + 1);
          int64_t mgr = 2000 + static_cast<int64_t>(rng_() % 3000);
          dept_mgrs_[d] = mgr;
          ARCHIS_RETURN_NOT_OK(db->Update(
              "depts", {Value(static_cast<int64_t>(d + 1))},
              Tuple{Value(static_cast<int64_t>(d + 1)),
                    Value(std::string(buf)),
                    Value(std::string(
                        kDeptNames[d % std::size(kDeptNames)])),
                    Value(mgr)}));
          ++stats.updates;
          break;
        }
      }
    }
    stats.days_simulated += 365;
  }
  ARCHIS_RETURN_NOT_OK(db->AdvanceClock(
      config_.start_date.AddDays(365LL * config_.years)));
  ARCHIS_RETURN_NOT_OK(db->Commit());
  for (const EmpState& e : employees_) {
    if (e.active) ++stats.final_employee_count;
  }
  return stats;
}

Result<WorkloadStats> EmployeeWorkload::SimulateDay(core::ArchIS* db) {
  WorkloadStats stats;
  Date next = db->Now().AddDays(1);
  ARCHIS_RETURN_NOT_OK(db->AdvanceClock(next));
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  // A day's worth of the yearly rates.
  for (EmpState& e : employees_) {
    if (!e.active) continue;
    if (coin(rng_) < config_.raise_prob / 365.0) {
      e.salary += 500 + static_cast<int64_t>(rng_() % 5000);
      ARCHIS_RETURN_NOT_OK(
          db->Update("employees", {Value(e.id)}, EmployeeRow(e)));
      ++stats.updates;
    }
    if (coin(rng_) < config_.title_change_prob / 365.0) {
      std::string t = RandomTitle();
      if (t != e.title) {
        e.title = t;
        ARCHIS_RETURN_NOT_OK(
            db->Update("employees", {Value(e.id)}, EmployeeRow(e)));
        ++stats.updates;
      }
    }
  }
  ARCHIS_RETURN_NOT_OK(db->Commit());
  stats.days_simulated = 1;
  return stats;
}

}  // namespace archis::workload
