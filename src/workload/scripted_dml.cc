#include "workload/scripted_dml.h"

#include <map>
#include <random>

#include "xml/serializer.h"

namespace archis::workload {

using core::RelationSpec;
using core::Transaction;
using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;

namespace {

/// One buffered statement, so a unit can be replayed on the shadow.
struct Stmt {
  enum Kind { kInsert, kUpdate, kDelete } kind;
  std::string relation;
  int64_t id = 0;
  Tuple row;  // insert/update payload
};

Schema EmpSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"salary", DataType::kInt64}});
}

Schema ProjSchema() {
  return Schema({{"pid", DataType::kInt64}, {"budget", DataType::kInt64}});
}

RelationSpec EmpSpec() {
  RelationSpec spec;
  spec.name = "employees";
  spec.schema = EmpSchema();
  spec.key_columns = {"id"};
  spec.doc_name = "employees.xml";
  return spec;
}

RelationSpec ProjSpec() {
  RelationSpec spec;
  spec.name = "projects";
  spec.schema = ProjSchema();
  spec.key_columns = {"pid"};
  spec.doc_name = "projects.xml";
  return spec;
}

Status ApplyStmt(Transaction* txn, const Stmt& s) {
  switch (s.kind) {
    case Stmt::kInsert:
      return txn->Insert(s.relation, s.row);
    case Stmt::kUpdate:
      return txn->Update(s.relation, {Value(s.id)}, s.row);
    case Stmt::kDelete:
      return txn->Delete(s.relation, {Value(s.id)});
  }
  return Status::Internal("unreachable");
}

bool IsCrash(const Status& st) {
  return st.code() == StatusCode::kIOError;
}

}  // namespace

Result<ScriptedDmlResult> RunScriptedDml(core::ArchIS* db,
                                         core::ArchIS* shadow,
                                         const ScriptedDmlConfig& config) {
  std::mt19937 rng(config.seed);
  ScriptedDmlResult result;

  // One commit unit: run on the primary; if durable, mirror to the shadow.
  // Returns false when the run must stop (injected crash).
  auto commit_unit = [&](const std::vector<Stmt>& stmts) -> Result<bool> {
    ARCHIS_ASSIGN_OR_RETURN(Transaction txn, db->Begin());
    for (const Stmt& s : stmts) {
      Status st = ApplyStmt(&txn, s);
      if (IsCrash(st)) return false;
      ARCHIS_RETURN_NOT_OK(st);
    }
    Status st = txn.Commit();
    if (IsCrash(st)) return false;
    ARCHIS_RETURN_NOT_OK(st);
    ++result.committed_units;
    if (shadow != nullptr) {
      ARCHIS_ASSIGN_OR_RETURN(Transaction mirror, shadow->Begin());
      for (const Stmt& s : stmts) {
        ARCHIS_RETURN_NOT_OK(ApplyStmt(&mirror, s));
      }
      ARCHIS_RETURN_NOT_OK(mirror.Commit());
    }
    return true;
  };

  auto mirrored_ddl = [&](const Status& primary,
                          auto&& apply_shadow) -> Result<bool> {
    if (IsCrash(primary)) return false;
    ARCHIS_RETURN_NOT_OK(primary);
    ++result.committed_units;
    if (shadow != nullptr) ARCHIS_RETURN_NOT_OK(apply_shadow());
    return true;
  };

  ARCHIS_RETURN_NOT_OK(db->AdvanceClock(config.start_date));
  if (shadow != nullptr) {
    ARCHIS_RETURN_NOT_OK(shadow->AdvanceClock(config.start_date));
  }
  {
    ARCHIS_ASSIGN_OR_RETURN(
        bool alive, mirrored_ddl(db->CreateRelation(EmpSpec()), [&] {
          return shadow->CreateRelation(EmpSpec());
        }));
    if (!alive) {
      result.crashed = true;
      return result;
    }
  }

  // Model of the primary's current rows, to script valid statements.
  std::map<int64_t, Tuple> employees;
  std::map<int64_t, Tuple> projects;
  bool projects_exists = false;
  int64_t next_emp = 1001;
  int64_t next_proj = 1;
  Date clock = config.start_date;
  const int create_proj_at = config.transactions / 3;
  const int drop_proj_at = 2 * config.transactions / 3;

  auto pick = [&](const std::map<int64_t, Tuple>& rows) {
    auto it = rows.begin();
    std::advance(it, static_cast<int64_t>(rng() % rows.size()));
    return it->first;
  };

  for (int unit = 0; unit < config.transactions; ++unit) {
    clock = clock.AddDays(1 + static_cast<int64_t>(rng() % 20));
    ARCHIS_RETURN_NOT_OK(db->AdvanceClock(clock));
    if (shadow != nullptr) ARCHIS_RETURN_NOT_OK(shadow->AdvanceClock(clock));

    if (unit == create_proj_at) {
      ARCHIS_ASSIGN_OR_RETURN(
          bool alive, mirrored_ddl(db->CreateRelation(ProjSpec()), [&] {
            return shadow->CreateRelation(ProjSpec());
          }));
      if (!alive) {
        result.crashed = true;
        return result;
      }
      projects_exists = true;
    }
    if (unit == drop_proj_at && projects_exists) {
      ARCHIS_ASSIGN_OR_RETURN(
          bool alive, mirrored_ddl(db->DropRelation("projects"), [&] {
            return shadow->DropRelation("projects");
          }));
      if (!alive) {
        result.crashed = true;
        return result;
      }
      projects_exists = false;
      projects.clear();
    }

    const int batch =
        1 + static_cast<int>(rng() % static_cast<uint32_t>(
                                         std::max(1, config.max_batch)));
    std::vector<Stmt> stmts;
    for (int i = 0; i < batch; ++i) {
      const uint32_t dice = rng() % 10;
      if (projects_exists && dice == 9) {
        Stmt s;
        s.kind = Stmt::kInsert;
        s.relation = "projects";
        s.id = next_proj++;
        s.row = Tuple{Value(s.id), Value(int64_t{1000} * (s.id % 7 + 1))};
        projects[s.id] = s.row;
        stmts.push_back(std::move(s));
      } else if (dice < 4 || employees.empty()) {
        Stmt s;
        s.kind = Stmt::kInsert;
        s.relation = "employees";
        s.id = next_emp++;
        s.row = Tuple{Value(s.id), Value("emp" + std::to_string(s.id)),
                      Value(int64_t{30000} + int64_t(rng() % 50000))};
        employees[s.id] = s.row;
        stmts.push_back(std::move(s));
      } else if (dice < 8) {
        Stmt s;
        s.kind = Stmt::kUpdate;
        s.relation = "employees";
        s.id = pick(employees);
        Tuple row = employees[s.id];
        row.at(2) = Value(row.at(2).AsInt() + 500 + int64_t(rng() % 4000));
        s.row = row;
        employees[s.id] = row;
        stmts.push_back(std::move(s));
      } else {
        Stmt s;
        s.kind = Stmt::kDelete;
        s.relation = "employees";
        s.id = pick(employees);
        employees.erase(s.id);
        stmts.push_back(std::move(s));
      }
    }
    ARCHIS_ASSIGN_OR_RETURN(bool alive, commit_unit(stmts));
    if (!alive) {
      result.crashed = true;
      return result;
    }
  }
  return result;
}

std::string SerializeAllHistories(core::ArchIS* db) {
  std::string out;
  for (const auto& entry : db->archiver().relations()) {
    auto doc = db->PublishHistory(entry.name);
    if (!doc.ok()) {
      out += "<dropped name=\"" + entry.name + "\"/>";
      continue;
    }
    out += xml::Serialize(*doc);
    out += "\n";
  }
  return out;
}

}  // namespace archis::workload
