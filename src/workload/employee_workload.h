// Synthetic temporal employee workload (substitute for the TimeCenter
// employee data set the paper evaluates on [39]).
//
// Models the same process: a population of employees over ~17 years with
// salary increases, title changes, department transfers, hires and
// terminations, plus a `dept` relation with manager changes. Seedable and
// scalable (the paper's scalability experiment uses a 7x larger set).
#ifndef ARCHIS_WORKLOAD_EMPLOYEE_WORKLOAD_H_
#define ARCHIS_WORKLOAD_EMPLOYEE_WORKLOAD_H_

#include <random>
#include <string>
#include <vector>

#include "archis/archis.h"

namespace archis::workload {

/// Workload parameters.
struct WorkloadConfig {
  uint64_t seed = 20060401;
  int initial_employees = 300;   ///< hired in the first year
  int years = 17;                ///< paper: 17 years of history
  Date start_date = Date::FromYmd(1985, 1, 1);
  int num_depts = 9;
  // Per-employee-per-year event probabilities.
  double raise_prob = 0.9;       ///< annual salary raise
  double title_change_prob = 0.15;
  double dept_change_prob = 0.10;
  double termination_prob = 0.03;
  double hire_rate = 0.05;       ///< new hires per existing employee per year
  double mgr_change_prob = 0.25; ///< per dept per year
};

/// Workload statistics after generation.
struct WorkloadStats {
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t days_simulated = 0;
  int final_employee_count = 0;
};

/// Drives an ArchIS instance through the simulated history.
class EmployeeWorkload {
 public:
  explicit EmployeeWorkload(WorkloadConfig config) : config_(config) {}

  /// Schema of the `employees` relation:
  /// employee(id INT64, name STRING, salary INT64, title STRING,
  ///          deptno STRING).
  static minirel::Schema EmployeeSchema();

  /// Schema of the `depts` relation:
  /// dept(deptno_id INT64, deptno STRING, deptname STRING, mgrno INT64).
  static minirel::Schema DeptSchema();

  /// Registers both relations on `db` (doc names "employees.xml" and
  /// "depts.xml") and replays the full simulated history into it.
  Result<WorkloadStats> Generate(core::ArchIS* db);

  /// Replays one day of updates against an already-generated database
  /// (Section 8.4's "simulated daily update"). The clock advances by one
  /// day.
  Result<WorkloadStats> SimulateDay(core::ArchIS* db);

  /// Ids of employees ever hired (for query parameter sampling).
  const std::vector<int64_t>& employee_ids() const { return all_ids_; }

  /// An id that exists for the whole history (the "single object" of the
  /// paper's Q1/Q3).
  int64_t probe_id() const { return probe_id_; }

  const WorkloadConfig& config() const { return config_; }

 private:
  struct EmpState {
    int64_t id;
    std::string name;
    int64_t salary;
    std::string title;
    std::string deptno;
    bool active = true;
  };

  Status RegisterRelations(core::ArchIS* db);
  Status HireEmployee(core::ArchIS* db, WorkloadStats* stats);
  minirel::Tuple EmployeeRow(const EmpState& e) const;
  std::string RandomName();
  std::string RandomTitle();
  std::string RandomDept();

  WorkloadConfig config_;
  std::mt19937_64 rng_{0};
  std::vector<EmpState> employees_;
  std::vector<int64_t> all_ids_;
  std::vector<int64_t> dept_mgrs_;
  int64_t next_id_ = 100001;
  int64_t probe_id_ = 100001;
};

}  // namespace archis::workload

#endif  // ARCHIS_WORKLOAD_EMPLOYEE_WORKLOAD_H_
