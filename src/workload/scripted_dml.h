// A deterministic DML script shared by the crash-recovery matrix test and
// the recovery fuzz tool.
//
// The runner drives one ArchIS instance through a seeded sequence of
// commit units (explicit transactions plus occasional DDL) and mirrors
// each unit onto a shadow instance only after the primary reports it
// durable. When the primary's WAL has an injected crash point
// (WalOptions::fail_after_bytes), the shadow therefore holds exactly the
// durably-committed prefix — the state recovery must reproduce.
#ifndef ARCHIS_WORKLOAD_SCRIPTED_DML_H_
#define ARCHIS_WORKLOAD_SCRIPTED_DML_H_

#include "archis/archis.h"

namespace archis::workload {

/// Shape of the scripted run (fully determined by `seed`).
struct ScriptedDmlConfig {
  uint32_t seed = 42;
  /// Transaction commit units to attempt (DDL units are added on top: a
  /// second relation is created a third of the way in and dropped at two
  /// thirds, so the log also exercises schema records).
  int transactions = 40;
  /// Max DML statements per transaction (>= 1).
  int max_batch = 4;
  Date start_date = Date::FromYmd(1995, 1, 1);
};

/// Outcome of a scripted run.
struct ScriptedDmlResult {
  /// Commit units (transactions + DDL) the primary reported durable.
  int committed_units = 0;
  /// Whether the run stopped early on an injected I/O failure.
  bool crashed = false;
};

/// Runs the script against `db`, mirroring durably-committed units onto
/// `shadow` (may be null). An IOError from the primary ends the run with
/// `crashed = true`; any other failure propagates as an error.
Result<ScriptedDmlResult> RunScriptedDml(core::ArchIS* db,
                                         core::ArchIS* shadow,
                                         const ScriptedDmlConfig& config);

/// Serialized H-document of every relation ever registered on `db`, in
/// registration order — the comparison key for recovery equivalence.
/// Dropped relations (whose history remains archived but whose facade
/// entry is gone) are identified by name.
std::string SerializeAllHistories(core::ArchIS* db);

}  // namespace archis::workload

#endif  // ARCHIS_WORKLOAD_SCRIPTED_DML_H_
