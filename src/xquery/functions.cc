#include "xquery/functions.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "temporal/aggregate.h"
#include "temporal/coalesce.h"
#include "temporal/now.h"
#include "temporal/restructure.h"
#include "xquery/evaluator.h"

namespace archis::xquery {
namespace {

Status Arity(const std::string& name, const std::vector<Sequence>& args,
             size_t n) {
  if (args.size() != n) {
    return Status::InvalidArgument(name + "() expects " + std::to_string(n) +
                                   " argument(s), got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

/// Interval of an argument sequence, with `now`-aware end resolution left
/// to the caller (intervals keep the sentinel; tend() resolves it).
Result<TimeInterval> ArgInterval(const std::string& fn,
                                 const Sequence& seq) {
  auto iv = SequenceInterval(seq);
  if (!iv.ok()) {
    return Status::InvalidArgument(fn + "(): argument has no tstart/tend");
  }
  return iv;
}

std::vector<xml::XmlNodePtr> ArgNodes(const Sequence& seq) {
  std::vector<xml::XmlNodePtr> nodes;
  for (const Item& item : seq) {
    if (item.is_node()) nodes.push_back(item.node());
  }
  return nodes;
}

Result<double> ArgNumber(const std::string& fn, const Sequence& seq) {
  if (seq.empty()) return Status::InvalidArgument(fn + "(): empty argument");
  const Item& it = seq.front();
  if (it.is_number()) return it.number();
  char* end = nullptr;
  std::string s = it.StringValue();
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return Status::TypeError(fn + "(): '" + s + "' is not numeric");
  }
  return v;
}

/// Numeric sweep facts from timestamped numeric elements.
std::vector<temporal::TimedNumber> ArgFacts(const Sequence& seq) {
  std::vector<temporal::TimedNumber> facts;
  for (const Item& item : seq) {
    if (!item.is_node()) continue;
    auto iv = item.node()->Interval();
    if (!iv.ok()) continue;
    const std::string text = item.node()->StringValue();
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str()) continue;
    facts.push_back({v, *iv});
  }
  return facts;
}

Sequence StepsToNodes(const std::vector<temporal::AggregateStep>& steps,
                      const std::string& tag) {
  Sequence out;
  for (const auto& step : steps) {
    auto node = xml::XmlNode::Element(tag);
    node->SetInterval(step.interval);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", step.value);
    node->AppendText(buf);
    out.push_back(Item(std::move(node)));
  }
  return out;
}

}  // namespace

bool IsKnownFunction(const std::string& name) {
  static const std::set<std::string> kNames = {
      "tstart", "tend", "tinterval", "timespan", "telement", "toverlaps",
      "tprecedes", "tcontains", "tequals", "tmeets", "overlapinterval",
      "coalesce", "restructure", "tavg", "tsum", "tcount", "tmax", "tmin",
      "trising", "tmovavg",
      "rtend", "externalnow", "current-date", "xs:date", "empty", "exists",
      "count", "max", "min", "sum", "avg", "string", "number", "concat",
      "distinct-values", "name", "true", "false", "doc", "document",
      "op:add", "op:subtract", "op:multiply", "op:divide", "op:mod",
  };
  return kNames.count(name) != 0;
}

Result<Sequence> CallFunction(const std::string& name,
                              const std::vector<Sequence>& args,
                              const EvalContext& ctx) {
  // ---- Temporal accessors -------------------------------------------------
  if (name == "tstart") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].empty()) return Sequence{};
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval iv, ArgInterval(name, args[0]));
    return Sequence{Item(iv.tstart)};
  }
  if (name == "tend") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].empty()) return Sequence{};
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval iv, ArgInterval(name, args[0]));
    // Section 4.3: tend returns current-date for live intervals, hiding the
    // 9999-12-31 sentinel from queries.
    return Sequence{Item(temporal::EffectiveEnd(iv, ctx.current_date))};
  }
  if (name == "tinterval") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval iv, ArgInterval(name, args[0]));
    return Sequence{Item(MakeIntervalElement(iv))};
  }
  if (name == "timespan") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval iv, ArgInterval(name, args[0]));
    Date end = temporal::EffectiveEnd(iv, ctx.current_date);
    return Sequence{Item(static_cast<double>(end - iv.tstart + 1))};
  }
  if (name == "telement") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 2));
    auto get_date = [](const Sequence& seq) -> Result<Date> {
      if (seq.empty()) return Status::InvalidArgument("telement(): empty");
      if (seq[0].is_date()) return seq[0].date();
      return Date::Parse(seq[0].StringValue());
    };
    ARCHIS_ASSIGN_OR_RETURN(Date s, get_date(args[0]));
    ARCHIS_ASSIGN_OR_RETURN(Date e, get_date(args[1]));
    // telement arguments come from query text; a backwards interval is a
    // user error, reported rather than silently matching nothing.
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval iv, MakeIntervalChecked(s, e));
    return Sequence{Item(MakeIntervalElement(iv, "telement"))};
  }

  // ---- Interval predicates ------------------------------------------------
  if (name == "toverlaps" || name == "tprecedes" || name == "tcontains" ||
      name == "tequals" || name == "tmeets") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 2));
    // XQuery empty-sequence propagation: a predicate over a non-match is
    // empty (falsy), not an error — QUERY 7 relies on this for employees
    // whose let-bound title list is empty.
    if (args[0].empty() || args[1].empty()) return Sequence{};
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval a, ArgInterval(name, args[0]));
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval b, ArgInterval(name, args[1]));
    bool r = false;
    if (name == "toverlaps") r = a.Overlaps(b);
    else if (name == "tprecedes") r = a.Precedes(b);
    else if (name == "tcontains") r = a.Contains(b);
    else if (name == "tequals") r = a.Equals(b);
    else r = a.Meets(b);
    return Sequence{Item(r)};
  }
  if (name == "overlapinterval") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 2));
    if (args[0].empty() || args[1].empty()) return Sequence{};
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval a, ArgInterval(name, args[0]));
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval b, ArgInterval(name, args[1]));
    auto iv = a.Intersect(b);
    if (!iv) return Sequence{};  // empty() holds, as QUERY 4 relies on
    return Sequence{Item(MakeIntervalElement(*iv))};
  }

  // ---- Restructuring ------------------------------------------------------
  if (name == "coalesce") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    ARCHIS_ASSIGN_OR_RETURN(std::vector<xml::XmlNodePtr> coalesced,
                            temporal::CoalesceNodes(ArgNodes(args[0])));
    Sequence out;
    for (auto& node : coalesced) {
      out.push_back(Item(std::move(node)));
    }
    return out;
  }
  if (name == "restructure") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 2));
    Sequence out;
    for (const TimeInterval& iv :
         temporal::RestructureNodes(ArgNodes(args[0]), ArgNodes(args[1]))) {
      out.push_back(Item(MakeIntervalElement(iv)));
    }
    return out;
  }

  // ---- Temporal aggregates ------------------------------------------------
  if (name == "tavg" || name == "tsum" || name == "tcount" ||
      name == "tmax" || name == "tmin") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    temporal::TemporalAggFn fn =
        name == "tavg"   ? temporal::TemporalAggFn::kAvg
        : name == "tsum" ? temporal::TemporalAggFn::kSum
        : name == "tcount" ? temporal::TemporalAggFn::kCount
        : name == "tmax" ? temporal::TemporalAggFn::kMax
                         : temporal::TemporalAggFn::kMin;
    return StepsToNodes(temporal::TemporalAggregate(ArgFacts(args[0]), fn),
                        name);
  }

  // ---- Extension aggregates (Section 4.2: "Other temporal aggregates
  // such as RISING or moving window aggregate can also be supported") -----
  if (name == "trising") {
    // Maximal periods over which the sum of the facts strictly rises.
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    auto history = temporal::TemporalAggregate(ArgFacts(args[0]),
                                               temporal::TemporalAggFn::kSum);
    Sequence out;
    for (const TimeInterval& iv : temporal::RisingIntervals(history)) {
      out.push_back(Item(MakeIntervalElement(iv, "rising")));
    }
    return out;
  }
  if (name == "tmovavg") {
    // Moving-window smoothing of the average history; second argument is
    // the window in days.
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 2));
    ARCHIS_ASSIGN_OR_RETURN(double window, ArgNumber(name, args[1]));
    auto history = temporal::TemporalAggregate(ArgFacts(args[0]),
                                               temporal::TemporalAggFn::kAvg);
    return StepsToNodes(
        temporal::MovingWindowAvg(history, static_cast<int64_t>(window)),
        "tmovavg");
  }

  // ---- `now` handling -----------------------------------------------------
  if (name == "rtend") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    Sequence out;
    for (const Item& item : args[0]) {
      if (item.is_node()) {
        out.push_back(Item(temporal::Rtend(item.node(), ctx.current_date)));
      } else {
        out.push_back(item);
      }
    }
    return out;
  }
  if (name == "externalnow") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    Sequence out;
    for (const Item& item : args[0]) {
      if (item.is_node()) {
        out.push_back(Item(temporal::ExternalNow(item.node())));
      } else {
        out.push_back(item);
      }
    }
    return out;
  }
  if (name == "current-date") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 0));
    return Sequence{Item(ctx.current_date)};
  }
  if (name == "xs:date") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].empty()) {
      return Status::InvalidArgument("xs:date(): empty argument");
    }
    ARCHIS_ASSIGN_OR_RETURN(Date d, Date::Parse(args[0][0].StringValue()));
    return Sequence{Item(d)};
  }

  // ---- Standard built-ins -------------------------------------------------
  if (name == "empty") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    return Sequence{Item(args[0].empty())};
  }
  if (name == "exists") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    return Sequence{Item(!args[0].empty())};
  }
  if (name == "count") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    return Sequence{Item(static_cast<double>(args[0].size()))};
  }
  if (name == "max" || name == "min") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].empty()) return Sequence{};
    // Interval elements (no text content, only tstart/tend) compare by
    // duration (QUERY 6 takes the max of the restructured overlap
    // intervals, i.e. the longest period). Elements that carry a value —
    // like <salary tstart tend>60000</salary> — compare by that value.
    bool all_intervals = true;
    for (const Item& item : args[0]) {
      if (!item.is_node() || !item.node()->Interval().ok() ||
          !item.node()->StringValue().empty()) {
        all_intervals = false;
        break;
      }
    }
    if (all_intervals) {
      std::vector<TimeInterval> ivs;
      for (const Item& item : args[0]) ivs.push_back(*item.node()->Interval());
      int64_t best = temporal::MaxDurationDays(ivs, ctx.current_date);
      if (name == "min") {
        best = ivs.empty() ? 0 : INT64_MAX;
        for (const TimeInterval& iv : ivs) {
          Date end = temporal::EffectiveEnd(iv, ctx.current_date);
          best = std::min(best, end - iv.tstart + 1);
        }
      }
      return Sequence{Item(static_cast<double>(best))};
    }
    // Numeric when everything is numeric, else string max/min.
    std::vector<double> nums;
    bool numeric = true;
    for (const Item& item : args[0]) {
      auto n = ArgNumber(name, Sequence{item});
      if (!n.ok()) { numeric = false; break; }
      nums.push_back(*n);
    }
    if (numeric) {
      double best = nums[0];
      for (double n : nums) best = name == "max" ? std::max(best, n)
                                                 : std::min(best, n);
      return Sequence{Item(best)};
    }
    std::string best = args[0][0].StringValue();
    for (const Item& item : args[0]) {
      std::string s = item.StringValue();
      if ((name == "max" && s > best) || (name == "min" && s < best)) {
        best = s;
      }
    }
    return Sequence{Item(best)};
  }
  if (name == "sum" || name == "avg") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].empty()) {
      return name == "sum" ? Sequence{Item(0.0)} : Sequence{};
    }
    double total = 0;
    for (const Item& item : args[0]) {
      ARCHIS_ASSIGN_OR_RETURN(double n, ArgNumber(name, Sequence{item}));
      total += n;
    }
    if (name == "avg") total /= static_cast<double>(args[0].size());
    return Sequence{Item(total)};
  }
  if (name == "string") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].empty()) return Sequence{Item(std::string())};
    return Sequence{Item(args[0][0].StringValue())};
  }
  if (name == "number") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    ARCHIS_ASSIGN_OR_RETURN(double n, ArgNumber(name, args[0]));
    return Sequence{Item(n)};
  }
  if (name == "concat") {
    std::string out;
    for (const Sequence& arg : args) {
      for (const Item& item : arg) out += item.StringValue();
    }
    return Sequence{Item(out)};
  }
  if (name == "distinct-values") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    std::set<std::string> seen;
    Sequence out;
    for (const Item& item : args[0]) {
      std::string s = item.StringValue();
      if (seen.insert(s).second) out.push_back(Item(s));
    }
    return out;
  }
  if (name == "name") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 1));
    if (args[0].empty() || !args[0][0].is_node()) {
      return Sequence{Item(std::string())};
    }
    return Sequence{Item(args[0][0].node()->name())};
  }
  if (name == "true") return Sequence{Item(true)};
  if (name == "false") return Sequence{Item(false)};

  // ---- Arithmetic ----------------------------------------------------------
  if (name == "op:add" || name == "op:subtract" || name == "op:multiply" ||
      name == "op:divide" || name == "op:mod") {
    ARCHIS_RETURN_NOT_OK(Arity(name, args, 2));
    if (args[0].empty() || args[1].empty()) return Sequence{};
    // Date +/- days.
    if (args[0][0].is_date() &&
        (name == "op:add" || name == "op:subtract")) {
      ARCHIS_ASSIGN_OR_RETURN(double days, ArgNumber(name, args[1]));
      int64_t delta = static_cast<int64_t>(days);
      if (name == "op:subtract") delta = -delta;
      return Sequence{Item(args[0][0].date().AddDays(delta))};
    }
    ARCHIS_ASSIGN_OR_RETURN(double a, ArgNumber(name, args[0]));
    ARCHIS_ASSIGN_OR_RETURN(double b, ArgNumber(name, args[1]));
    double r = 0;
    if (name == "op:add") r = a + b;
    else if (name == "op:subtract") r = a - b;
    else if (name == "op:multiply") r = a * b;
    else if (name == "op:divide") {
      if (b == 0) return Status::InvalidArgument("division by zero");
      r = a / b;
    } else {
      if (b == 0) return Status::InvalidArgument("mod by zero");
      r = static_cast<double>(static_cast<int64_t>(a) %
                              static_cast<int64_t>(b));
    }
    return Sequence{Item(r)};
  }

  return Status::NotImplemented("unknown function '" + name + "'");
}

}  // namespace archis::xquery
