#include "xquery/evaluator.h"

#include <cstdlib>

#include "xquery/functions.h"
#include "xquery/parser.h"

namespace archis::xquery {

// ---------------------------------------------------------------------------
// Item helpers (declared in item.h)
// ---------------------------------------------------------------------------

std::string Item::StringValue() const {
  if (is_node()) return node()->StringValue();
  if (is_string()) return str();
  if (is_number()) {
    double n = number();
    if (n == static_cast<double>(static_cast<int64_t>(n))) {
      return std::to_string(static_cast<int64_t>(n));
    }
    return std::to_string(n);
  }
  if (is_boolean()) return boolean() ? "true" : "false";
  return date().ToString();
}

bool EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  const Item& first = seq.front();
  if (first.is_node()) return true;
  if (seq.size() > 1) return true;  // non-node multi-item: treat as truthy
  if (first.is_boolean()) return first.boolean();
  if (first.is_number()) return first.number() != 0;
  if (first.is_date()) return true;
  return !first.str().empty();
}

xml::XmlNodePtr MakeIntervalElement(const TimeInterval& iv,
                                    const std::string& tag) {
  auto node = xml::XmlNode::Element(tag);
  node->SetInterval(iv);
  return node;
}

Result<TimeInterval> ItemInterval(const Item& item) {
  if (!item.is_node()) {
    return Status::TypeError("interval requested from a non-node item");
  }
  return item.node()->Interval();
}

Result<TimeInterval> SequenceInterval(const Sequence& seq) {
  for (const Item& item : seq) {
    if (item.is_node()) {
      auto iv = item.node()->Interval();
      if (iv.ok()) return iv;
    }
  }
  return Status::NotFound("no item in sequence carries tstart/tend");
}

// ---------------------------------------------------------------------------
// Comparison semantics
// ---------------------------------------------------------------------------

namespace {

bool LooksNumeric(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Result<bool> ApplyOp(const std::string& op, int cmp) {
  if (op == "=") return cmp == 0;
  if (op == "!=") return cmp != 0;
  if (op == "<") return cmp < 0;
  if (op == "<=") return cmp <= 0;
  if (op == ">") return cmp > 0;
  if (op == ">=") return cmp >= 0;
  return Status::InvalidArgument("bad comparison op '" + op + "'");
}

}  // namespace

Result<bool> CompareItems(const Item& lhs, const std::string& op,
                          const Item& rhs) {
  // Date comparison when either side is (or parses as) a date.
  auto as_date = [](const Item& it) -> std::optional<Date> {
    if (it.is_date()) return it.date();
    if (it.is_number() || it.is_boolean()) return std::nullopt;
    auto d = Date::Parse(it.StringValue());
    if (d.ok()) return *d;
    return std::nullopt;
  };
  if (lhs.is_date() || rhs.is_date()) {
    auto ld = as_date(lhs);
    auto rd = as_date(rhs);
    if (ld && rd) {
      int cmp = *ld < *rd ? -1 : (*rd < *ld ? 1 : 0);
      return ApplyOp(op, cmp);
    }
    return Status::TypeError("cannot compare date with non-date");
  }
  // Numeric comparison when either side is numeric.
  double ln = 0, rn = 0;
  bool l_num = lhs.is_number() ? (ln = lhs.number(), true)
                               : LooksNumeric(lhs.StringValue(), &ln);
  bool r_num = rhs.is_number() ? (rn = rhs.number(), true)
                               : LooksNumeric(rhs.StringValue(), &rn);
  if ((lhs.is_number() || rhs.is_number()) && l_num && r_num) {
    int cmp = ln < rn ? -1 : (rn < ln ? 1 : 0);
    return ApplyOp(op, cmp);
  }
  // Boolean comparison.
  if (lhs.is_boolean() || rhs.is_boolean()) {
    bool lb = EffectiveBooleanValue({lhs});
    bool rb = EffectiveBooleanValue({rhs});
    return ApplyOp(op, lb == rb ? 0 : (lb ? 1 : -1));
  }
  // Fall back to string comparison.
  int cmp = lhs.StringValue().compare(rhs.StringValue());
  return ApplyOp(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0));
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

Evaluator::Evaluator(EvalContext ctx) : ctx_(std::move(ctx)) {
  scopes_.emplace_back();
}

void Evaluator::BindVariable(const std::string& name, Sequence value) {
  scopes_.front().vars[name] = std::move(value);
}

Result<Sequence> Evaluator::Evaluate(const ExprPtr& expr) {
  return Eval(expr);
}

Result<Sequence> Evaluator::EvaluateQuery(const std::string& query) {
  ARCHIS_ASSIGN_OR_RETURN(ExprPtr ast, ParseXQuery(query));
  return Eval(ast);
}

Result<Sequence> Evaluator::LookupVar(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->vars.find(name);
    if (found != it->vars.end()) return found->second;
  }
  return Status::NotFound("unbound variable $" + name);
}

Result<Sequence> Evaluator::Eval(const ExprPtr& expr) {
  if (expr == nullptr) return Status::Internal("null expression");
  switch (expr->kind) {
    case ExprKind::kStringLit:
      return Sequence{Item(expr->str)};
    case ExprKind::kTextLit:
      return Sequence{Item(expr->str)};
    case ExprKind::kNumberLit:
      return Sequence{Item(expr->num)};
    case ExprKind::kVarRef:
      return LookupVar(expr->str);
    case ExprKind::kContextItem: {
      if (context_items_.empty()) {
        return Status::InvalidArgument("'.' used outside a predicate");
      }
      return Sequence{context_items_.back()};
    }
    case ExprKind::kEmptySeq:
      return Sequence{};
    case ExprKind::kSequence: {
      Sequence out;
      for (const ExprPtr& child : expr->children) {
        ARCHIS_ASSIGN_OR_RETURN(Sequence part, Eval(child));
        out.insert(out.end(), part.begin(), part.end());
      }
      return out;
    }
    case ExprKind::kPath:
      return EvalPath(expr);
    case ExprKind::kFlwor:
      return EvalFlwor(expr);
    case ExprKind::kComparison:
      return EvalComparison(expr);
    case ExprKind::kAnd: {
      for (const ExprPtr& child : expr->children) {
        ARCHIS_ASSIGN_OR_RETURN(Sequence v, Eval(child));
        if (!EffectiveBooleanValue(v)) return Sequence{Item(false)};
      }
      return Sequence{Item(true)};
    }
    case ExprKind::kOr: {
      for (const ExprPtr& child : expr->children) {
        ARCHIS_ASSIGN_OR_RETURN(Sequence v, Eval(child));
        if (EffectiveBooleanValue(v)) return Sequence{Item(true)};
      }
      return Sequence{Item(false)};
    }
    case ExprKind::kNot: {
      ARCHIS_ASSIGN_OR_RETURN(Sequence v, Eval(expr->children[0]));
      return Sequence{Item(!EffectiveBooleanValue(v))};
    }
    case ExprKind::kFunctionCall: {
      if (expr->str == "doc" || expr->str == "document") {
        if (expr->children.size() != 1) {
          return Status::InvalidArgument("doc() takes one argument");
        }
        ARCHIS_ASSIGN_OR_RETURN(Sequence name_seq, Eval(expr->children[0]));
        if (name_seq.empty()) {
          return Status::InvalidArgument("doc() of empty sequence");
        }
        if (!ctx_.resolve_doc) {
          return Status::InvalidArgument("no document resolver configured");
        }
        ARCHIS_ASSIGN_OR_RETURN(xml::XmlNodePtr root,
                                ctx_.resolve_doc(name_seq[0].StringValue()));
        // Wrap in a document node so the leading /root-element step of a
        // path matches the root, as in XPath.
        auto doc_node = xml::XmlNode::Element("#document");
        doc_node->AppendChild(std::move(root));
        return Sequence{Item(std::move(doc_node))};
      }
      std::vector<Sequence> args;
      args.reserve(expr->children.size());
      for (const ExprPtr& child : expr->children) {
        ARCHIS_ASSIGN_OR_RETURN(Sequence arg, Eval(child));
        args.push_back(std::move(arg));
      }
      return CallFunction(expr->str, args, ctx_);
    }
    case ExprKind::kElementCtor:
      return EvalElementCtor(expr);
    case ExprKind::kQuantified:
      return EvalQuantified(expr);
    case ExprKind::kIf: {
      ARCHIS_ASSIGN_OR_RETURN(Sequence cond, Eval(expr->children[0]));
      return Eval(expr->children[EffectiveBooleanValue(cond) ? 1 : 2]);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Sequence> Evaluator::EvalFlwor(const ExprPtr& expr) {
  scopes_.emplace_back();
  auto result = EvalFlworClauses(expr, 0);
  scopes_.pop_back();
  return result;
}

Result<Sequence> Evaluator::EvalFlworClauses(const ExprPtr& expr,
                                             size_t clause_idx) {
  if (clause_idx == expr->clauses.size()) {
    if (expr->where != nullptr) {
      ARCHIS_ASSIGN_OR_RETURN(Sequence cond, Eval(expr->where));
      if (!EffectiveBooleanValue(cond)) return Sequence{};
    }
    return Eval(expr->ret);
  }
  const ForLetClause& clause = expr->clauses[clause_idx];
  ARCHIS_ASSIGN_OR_RETURN(Sequence binding, Eval(clause.expr));
  if (clause.is_let) {
    scopes_.back().vars[clause.var] = std::move(binding);
    return EvalFlworClauses(expr, clause_idx + 1);
  }
  Sequence out;
  for (const Item& item : binding) {
    scopes_.back().vars[clause.var] = Sequence{item};
    ARCHIS_ASSIGN_OR_RETURN(Sequence part,
                            EvalFlworClauses(expr, clause_idx + 1));
    out.insert(out.end(), part.begin(), part.end());
  }
  scopes_.back().vars.erase(clause.var);
  return out;
}

Result<Sequence> Evaluator::EvalPath(const ExprPtr& expr) {
  ARCHIS_ASSIGN_OR_RETURN(Sequence current, Eval(expr->children[0]));
  for (const PathStep& step : expr->steps) {
    ARCHIS_ASSIGN_OR_RETURN(current, EvalStep(current, step));
  }
  return current;
}

Result<Sequence> Evaluator::EvalStep(const Sequence& input,
                                     const PathStep& step) {
  Sequence selected;
  if (step.name == ".") {
    selected = input;  // self step: predicates filter the input directly
  } else {
    for (const Item& item : input) {
      if (!item.is_node()) continue;
      const xml::XmlNodePtr& node = item.node();
      switch (step.axis) {
        case PathStep::Axis::kChild: {
          for (const auto& child : node->children()) {
            if (!child->is_element()) continue;
            if (step.name == "*" || child->name() == step.name) {
              selected.push_back(Item(child));
            }
          }
          break;
        }
        case PathStep::Axis::kAttribute: {
          if (auto v = node->Attr(step.name)) selected.push_back(Item(*v));
          break;
        }
        case PathStep::Axis::kDescendantOrSelf: {
          // Collect self + all element descendants, then name-filter.
          std::vector<xml::XmlNodePtr> stack{node};
          while (!stack.empty()) {
            xml::XmlNodePtr n = stack.back();
            stack.pop_back();
            if (n->is_element() &&
                (step.name == "*" || n->name() == step.name)) {
              selected.push_back(Item(n));
            }
            auto kids = n->ChildElements();
            for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
              stack.push_back(*it);
            }
          }
          break;
        }
      }
    }
  }
  // Apply predicates in order.
  for (const ExprPtr& pred : step.predicates) {
    Sequence kept;
    for (size_t pos = 0; pos < selected.size(); ++pos) {
      context_items_.push_back(selected[pos]);
      auto value = Eval(pred);
      context_items_.pop_back();
      if (!value.ok()) return value.status();
      // Numeric predicate: positional (1-based).
      if (value->size() == 1 && (*value)[0].is_number()) {
        if (static_cast<size_t>((*value)[0].number()) == pos + 1) {
          kept.push_back(selected[pos]);
        }
      } else if (EffectiveBooleanValue(*value)) {
        kept.push_back(selected[pos]);
      }
    }
    selected = std::move(kept);
  }
  return selected;
}

Result<Sequence> Evaluator::EvalComparison(const ExprPtr& expr) {
  ARCHIS_ASSIGN_OR_RETURN(Sequence lhs, Eval(expr->children[0]));
  ARCHIS_ASSIGN_OR_RETURN(Sequence rhs, Eval(expr->children[1]));
  // General comparison: existential over both sequences.
  for (const Item& l : lhs) {
    for (const Item& r : rhs) {
      ARCHIS_ASSIGN_OR_RETURN(bool match, CompareItems(l, expr->str, r));
      if (match) return Sequence{Item(true)};
    }
  }
  return Sequence{Item(false)};
}

Result<Sequence> Evaluator::EvalElementCtor(const ExprPtr& expr) {
  auto elem = xml::XmlNode::Element(expr->str);
  for (const StaticAttr& attr : expr->attrs) {
    elem->SetAttr(attr.name, attr.value);
  }
  bool last_was_atomic = false;
  for (const ExprPtr& child : expr->children) {
    ARCHIS_ASSIGN_OR_RETURN(Sequence content, Eval(child));
    for (const Item& item : content) {
      if (item.is_node()) {
        elem->AppendChild(item.node()->Clone());
        last_was_atomic = false;
      } else {
        // Adjacent atomic items join with a single space (XQuery rule).
        std::string text = item.StringValue();
        if (last_was_atomic && !elem->children().empty() &&
            elem->children().back()->is_text()) {
          elem->AppendText(" " + text);
        } else {
          elem->AppendText(text);
        }
        last_was_atomic = true;
      }
    }
  }
  return Sequence{Item(std::move(elem))};
}

Result<Sequence> Evaluator::EvalQuantified(const ExprPtr& expr) {
  ARCHIS_ASSIGN_OR_RETURN(Sequence domain, Eval(expr->children[0]));
  scopes_.emplace_back();
  bool every = expr->every_quant;
  bool result = every;  // every over empty domain is true; some is false
  for (const Item& item : domain) {
    scopes_.back().vars[expr->str] = Sequence{item};
    auto sat = Eval(expr->children[1]);
    if (!sat.ok()) {
      scopes_.pop_back();
      return sat.status();
    }
    bool holds = EffectiveBooleanValue(*sat);
    if (every && !holds) {
      result = false;
      break;
    }
    if (!every && holds) {
      result = true;
      break;
    }
  }
  scopes_.pop_back();
  return Sequence{Item(result)};
}

}  // namespace archis::xquery
