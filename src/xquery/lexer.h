// Tokenizer for the XQuery subset ArchIS supports.
//
// Direct element constructors (`<employee>{$e/id}</employee>`) switch the
// parser into raw-scanning mode; the lexer therefore exposes its cursor so
// the parser can re-synchronise after consuming raw XML content.
#ifndef ARCHIS_XQUERY_LEXER_H_
#define ARCHIS_XQUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace archis::xquery {

/// Token categories.
enum class TokenKind {
  kName,       // identifiers and keywords (for, let, where, ...), incl. ns:name
  kVariable,   // $name
  kString,     // "..." or '...'
  kNumber,     // integer or decimal literal
  kSymbol,     // punctuation: / [ ] ( ) { } , = != < <= > >= := . @ * + - |
  kEnd,
};

/// One token with its source offset (for error messages and raw re-sync).
struct Token {
  TokenKind kind;
  std::string text;
  double number = 0;
  size_t offset = 0;

  bool Is(TokenKind k, const std::string& t) const {
    return kind == k && text == t;
  }
  bool IsName(const std::string& t) const { return Is(TokenKind::kName, t); }
  bool IsSymbol(const std::string& t) const {
    return Is(TokenKind::kSymbol, t);
  }
};

/// Lexer with arbitrary lookahead and raw-mode support.
class Lexer {
 public:
  explicit Lexer(std::string input);

  /// Tokenizes the whole input up front; ParseError on bad characters.
  Status Tokenize();

  const Token& Peek(size_t lookahead = 0) const;
  Token Next();

  /// Index of the next token (for save/restore backtracking).
  size_t position() const { return pos_; }
  void set_position(size_t pos) { pos_ = pos; }

  /// The raw source text and the source offset of the next token — used by
  /// the parser's direct-element-constructor scanner.
  const std::string& source() const { return input_; }
  size_t SourceOffsetOfNextToken() const;

  /// Re-synchronises the token stream to the first token at or after source
  /// offset `offset`.
  void ResyncToSourceOffset(size_t offset);

 private:
  std::string input_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace archis::xquery

#endif  // ARCHIS_XQUERY_LEXER_H_
