// Native XQuery evaluator over XML documents.
//
// This engine plays two roles in the reproduction: it executes queries
// directly against H-documents (the native-XML-database baseline, Tamino in
// the paper), and its AST feeds the XQuery -> SQL/XML translator for the
// RDBMS path.
#ifndef ARCHIS_XQUERY_EVALUATOR_H_
#define ARCHIS_XQUERY_EVALUATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "xquery/ast.h"
#include "xquery/item.h"

namespace archis::xquery {

/// Resolves doc("name") references to document roots.
using DocResolver =
    std::function<Result<xml::XmlNodePtr>(const std::string&)>;

/// Evaluation context shared by the evaluator and the function library.
struct EvalContext {
  DocResolver resolve_doc;
  Date current_date;  ///< value of current-date() and of `now` instantiation
};

/// Evaluates parsed XQuery expressions.
///
/// Variable bindings may be seeded with BindVariable (useful for running
/// query fragments); documents resolve through the context's DocResolver.
class Evaluator {
 public:
  explicit Evaluator(EvalContext ctx);

  /// Pre-binds $name to a sequence for subsequent Evaluate calls.
  void BindVariable(const std::string& name, Sequence value);

  /// Evaluates `expr` and returns its result sequence.
  Result<Sequence> Evaluate(const ExprPtr& expr);

  /// Parses and evaluates `query` in one call.
  Result<Sequence> EvaluateQuery(const std::string& query);

  const EvalContext& context() const { return ctx_; }

 private:
  struct Scope {
    std::map<std::string, Sequence> vars;
  };

  Result<Sequence> Eval(const ExprPtr& expr);
  Result<Sequence> EvalFlwor(const ExprPtr& expr);
  Result<Sequence> EvalFlworClauses(const ExprPtr& expr, size_t clause_idx);
  Result<Sequence> EvalPath(const ExprPtr& expr);
  Result<Sequence> EvalStep(const Sequence& input, const PathStep& step);
  Result<Sequence> EvalComparison(const ExprPtr& expr);
  Result<Sequence> EvalElementCtor(const ExprPtr& expr);
  Result<Sequence> EvalQuantified(const ExprPtr& expr);
  Result<Sequence> LookupVar(const std::string& name) const;

  EvalContext ctx_;
  std::vector<Scope> scopes_;
  std::vector<Item> context_items_;  // innermost predicate context
  friend class FunctionLibrary;
};

/// Compares two items under XQuery general-comparison semantics: numeric
/// when either side is numeric, date when either side is a date, string
/// otherwise. `op` is one of = != < <= > >=.
Result<bool> CompareItems(const Item& lhs, const std::string& op,
                          const Item& rhs);

}  // namespace archis::xquery

#endif  // ARCHIS_XQUERY_EVALUATOR_H_
