#include "xquery/lexer.h"

#include <cctype>
#include <cstdlib>

namespace archis::xquery {
namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.';
}

}  // namespace

Lexer::Lexer(std::string input) : input_(std::move(input)) {}

Status Lexer::Tokenize() {
  tokens_.clear();
  size_t i = 0;
  const std::string& s = input_;
  while (i < s.size()) {
    char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: (: ... :)
    if (c == '(' && i + 1 < s.size() && s[i + 1] == ':') {
      size_t depth = 1;
      i += 2;
      while (i + 1 < s.size() && depth > 0) {
        if (s[i] == '(' && s[i + 1] == ':') { ++depth; i += 2; }
        else if (s[i] == ':' && s[i + 1] == ')') { --depth; i += 2; }
        else ++i;
      }
      if (depth > 0) return Status::ParseError("unterminated (: comment");
      continue;
    }
    Token tok;
    tok.offset = i;
    if (c == '$') {
      ++i;
      std::string name;
      while (i < s.size() && IsNameChar(s[i])) name += s[i++];
      if (name.empty()) return Status::ParseError("bare '$'");
      tok.kind = TokenKind::kVariable;
      tok.text = std::move(name);
    } else if (c == '"' || c == '\'') {
      ++i;
      std::string text;
      while (i < s.size() && s[i] != c) text += s[i++];
      if (i >= s.size()) return Status::ParseError("unterminated string");
      ++i;
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[i])) ||
              s[i] == '.')) {
        ++i;
      }
      tok.kind = TokenKind::kNumber;
      tok.text = s.substr(start, i - start);
      tok.number = std::strtod(tok.text.c_str(), nullptr);
    } else if (IsNameStart(c)) {
      std::string name;
      while (i < s.size() && IsNameChar(s[i])) name += s[i++];
      // Namespace-qualified names (xs:date) lex as one token; a ':' is part
      // of the name only when followed by a name start (so `let $x := ...`
      // still lexes `:=` separately).
      if (i + 1 < s.size() && s[i] == ':' && IsNameStart(s[i + 1])) {
        name += s[i++];
        while (i < s.size() && IsNameChar(s[i])) name += s[i++];
      }
      tok.kind = TokenKind::kName;
      tok.text = std::move(name);
    } else {
      // Multi-character symbols first.
      auto two = s.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == ":=" ||
          two == "//" || two == "<<" || two == ">>") {
        tok.kind = TokenKind::kSymbol;
        tok.text = two;
        i += 2;
      } else {
        static const std::string kSingles = "/[](){},=<>.@*+-|";
        if (kSingles.find(c) == std::string::npos) {
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' at offset " + std::to_string(i));
        }
        tok.kind = TokenKind::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens_.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = s.size();
  tokens_.push_back(std::move(end));
  pos_ = 0;
  return Status::OK();
}

const Token& Lexer::Peek(size_t lookahead) const {
  size_t idx = pos_ + lookahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

Token Lexer::Next() {
  const Token& tok = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

size_t Lexer::SourceOffsetOfNextToken() const { return Peek().offset; }

void Lexer::ResyncToSourceOffset(size_t offset) {
  pos_ = 0;
  while (pos_ + 1 < tokens_.size() && tokens_[pos_].offset < offset) ++pos_;
}

}  // namespace archis::xquery
