// The temporal user-defined-function library (paper Section 4.2) plus the
// standard XQuery built-ins the paper queries rely on.
#ifndef ARCHIS_XQUERY_FUNCTIONS_H_
#define ARCHIS_XQUERY_FUNCTIONS_H_

#include <string>
#include <vector>

#include "xquery/item.h"

namespace archis::xquery {

struct EvalContext;

/// Whether `name` is a registered function.
bool IsKnownFunction(const std::string& name);

/// Invokes function `name` on evaluated argument sequences.
///
/// Temporal UDFs: tstart, tend, tinterval, timespan, telement, toverlaps,
/// tprecedes, tcontains, tequals, tmeets, overlapinterval, coalesce,
/// restructure, tavg, rtend, externalnow.
/// Standard built-ins: empty, exists, count, max, min, sum, avg, string,
/// number, concat, distinct-values, name, current-date, xs:date, true,
/// false, op:add/subtract/multiply/divide/mod.
Result<Sequence> CallFunction(const std::string& name,
                              const std::vector<Sequence>& args,
                              const EvalContext& ctx);

}  // namespace archis::xquery

#endif  // ARCHIS_XQUERY_FUNCTIONS_H_
