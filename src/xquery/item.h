// XDM-lite: the value space of the XQuery evaluator.
//
// An item is a node reference or an atomic value (string, number, boolean,
// date). Intervals are represented as `<interval tstart=.. tend=../>`
// elements, exactly the form the paper's overlapinterval UDF returns.
#ifndef ARCHIS_XQUERY_ITEM_H_
#define ARCHIS_XQUERY_ITEM_H_

#include <string>
#include <variant>
#include <vector>

#include "common/date.h"
#include "common/interval.h"
#include "xml/node.h"

namespace archis::xquery {

/// A single XQuery item.
class Item {
 public:
  Item() : v_(std::string()) {}
  explicit Item(xml::XmlNodePtr node) : v_(std::move(node)) {}
  explicit Item(std::string s) : v_(std::move(s)) {}
  explicit Item(const char* s) : v_(std::string(s)) {}
  explicit Item(double n) : v_(n) {}
  explicit Item(bool b) : v_(b) {}
  explicit Item(Date d) : v_(d) {}

  bool is_node() const {
    return std::holds_alternative<xml::XmlNodePtr>(v_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_boolean() const { return std::holds_alternative<bool>(v_); }
  bool is_date() const { return std::holds_alternative<Date>(v_); }

  const xml::XmlNodePtr& node() const {
    return std::get<xml::XmlNodePtr>(v_);
  }
  const std::string& str() const { return std::get<std::string>(v_); }
  double number() const { return std::get<double>(v_); }
  bool boolean() const { return std::get<bool>(v_); }
  Date date() const { return std::get<Date>(v_); }

  /// The atomized string form (nodes yield their string value).
  std::string StringValue() const;

 private:
  std::variant<xml::XmlNodePtr, std::string, double, bool, Date> v_;
};

/// An ordered sequence of items — the result of every expression.
using Sequence = std::vector<Item>;

/// XQuery effective boolean value: empty -> false; a leading node -> true;
/// singleton atomic by its own truth (number != 0, non-empty string, bool).
bool EffectiveBooleanValue(const Sequence& seq);

/// Builds an `<interval tstart=".." tend=".."/>` element.
xml::XmlNodePtr MakeIntervalElement(const TimeInterval& iv,
                                    const std::string& tag = "interval");

/// Extracts a temporal interval from an item: for nodes, their
/// tstart/tend attributes; NotFound otherwise.
Result<TimeInterval> ItemInterval(const Item& item);

/// Extracts the interval of the first node in `seq` that has one.
Result<TimeInterval> SequenceInterval(const Sequence& seq);

}  // namespace archis::xquery

#endif  // ARCHIS_XQUERY_ITEM_H_
