// Abstract syntax for the supported XQuery subset.
//
// A single tagged Expr node keeps the tree easy to pattern-match in the
// XQuery -> SQL/XML translator (Algorithm 1 walks for/let clauses, path
// steps, where conjuncts, function calls and the return constructor).
#ifndef ARCHIS_XQUERY_AST_H_
#define ARCHIS_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace archis::xquery {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
  kStringLit,    // str
  kNumberLit,    // num
  kVarRef,       // str = variable name (without '$')
  kContextItem,  // '.'
  kSequence,     // children = items of (e1, e2, ...)
  kEmptySeq,     // ()
  kPath,         // children[0] = source (VarRef/Doc/ContextItem), steps
  kFlwor,        // clauses, where?, ret
  kComparison,   // str = op, children = {lhs, rhs}
  kAnd,          // children
  kOr,           // children
  kNot,          // children[0]
  kFunctionCall, // str = name, children = args
  kElementCtor,  // str = tag name, attrs (static), children = content exprs
  kTextLit,      // str: literal text inside a direct constructor
  kQuantified,   // every_quant, str = var, children = {in, satisfies}
  kIf,           // children = {cond, then, else}
};

/// One step of a path expression.
struct PathStep {
  enum class Axis { kChild, kAttribute, kDescendantOrSelf };
  Axis axis = Axis::kChild;
  std::string name;                 // element/attribute name, or "*"
  std::vector<ExprPtr> predicates;  // [e] filters, applied in order
};

/// A for/let binding in a FLWOR expression.
struct ForLetClause {
  bool is_let = false;
  std::string var;  // without '$'
  ExprPtr expr;
};

/// A static attribute on a direct element constructor.
struct StaticAttr {
  std::string name;
  std::string value;
};

/// An expression tree node.
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}

  ExprKind kind;
  std::string str;
  double num = 0;
  std::vector<ExprPtr> children;

  // kPath
  std::vector<PathStep> steps;

  // kFlwor
  std::vector<ForLetClause> clauses;
  ExprPtr where;
  ExprPtr ret;

  // kQuantified
  bool every_quant = false;

  // kElementCtor
  std::vector<StaticAttr> attrs;
};

/// Convenience constructors.
ExprPtr MakeExpr(ExprKind kind);
ExprPtr MakeString(std::string s);
ExprPtr MakeNumber(double n);
ExprPtr MakeVarRef(std::string name);

/// Renders an expression tree as an S-expression-ish debug string.
std::string ExprToString(const ExprPtr& e);

}  // namespace archis::xquery

#endif  // ARCHIS_XQUERY_AST_H_
