// Recursive-descent parser for the XQuery subset used by all paper queries:
// FLWOR, path expressions with predicates, general comparisons, and/or/not,
// quantified expressions (some/every ... satisfies), computed and direct
// element constructors, function calls and literals.
#ifndef ARCHIS_XQUERY_PARSER_H_
#define ARCHIS_XQUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "xquery/ast.h"

namespace archis::xquery {

/// Parses a full XQuery expression; ParseError on malformed input.
Result<ExprPtr> ParseXQuery(const std::string& query);

}  // namespace archis::xquery

#endif  // ARCHIS_XQUERY_PARSER_H_
