#include "xquery/parser.h"

#include <cctype>

#include "common/str_util.h"
#include "xquery/lexer.h"

namespace archis::xquery {
namespace {

/// Recursive-descent parser over a Lexer.
class Parser {
 public:
  explicit Parser(std::string query) : lexer_(std::move(query)) {}

  Result<ExprPtr> Parse() {
    ARCHIS_RETURN_NOT_OK(lexer_.Tokenize());
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSequence());
    if (lexer_.Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing tokens after expression: '" +
                                lexer_.Peek().text + "'");
    }
    return e;
  }

 private:
  // ExprSequence := Expr (',' Expr)*
  Result<ExprPtr> ParseExprSequence() {
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
    if (!lexer_.Peek().IsSymbol(",")) return first;
    auto seq = MakeExpr(ExprKind::kSequence);
    seq->children.push_back(std::move(first));
    while (lexer_.Peek().IsSymbol(",")) {
      lexer_.Next();
      ARCHIS_ASSIGN_OR_RETURN(ExprPtr next, ParseExpr());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  // Expr := Flwor | Quantified | If | OrExpr
  Result<ExprPtr> ParseExpr() {
    const Token& tok = lexer_.Peek();
    if (tok.IsName("for") || tok.IsName("let")) return ParseFlwor();
    if (tok.IsName("every") || tok.IsName("some")) return ParseQuantified();
    if (tok.IsName("if") && lexer_.Peek(1).IsSymbol("(")) return ParseIf();
    return ParseOr();
  }

  Result<ExprPtr> ParseFlwor() {
    auto flwor = MakeExpr(ExprKind::kFlwor);
    while (true) {
      const Token& tok = lexer_.Peek();
      bool is_let;
      if (tok.IsName("for")) {
        is_let = false;
      } else if (tok.IsName("let")) {
        is_let = true;
      } else {
        break;
      }
      lexer_.Next();
      // One keyword may introduce several comma-separated bindings.
      while (true) {
        ForLetClause clause;
        clause.is_let = is_let;
        if (lexer_.Peek().kind != TokenKind::kVariable) {
          return Status::ParseError("expected $var after for/let");
        }
        clause.var = lexer_.Next().text;
        if (is_let) {
          if (!lexer_.Peek().IsSymbol(":=")) {
            return Status::ParseError("expected ':=' in let clause");
          }
        } else {
          if (!lexer_.Peek().IsName("in")) {
            return Status::ParseError("expected 'in' in for clause");
          }
        }
        lexer_.Next();
        ARCHIS_ASSIGN_OR_RETURN(clause.expr, ParseExpr());
        flwor->clauses.push_back(std::move(clause));
        if (lexer_.Peek().IsSymbol(",") &&
            lexer_.Peek(1).kind == TokenKind::kVariable) {
          lexer_.Next();
          continue;
        }
        break;
      }
    }
    if (flwor->clauses.empty()) {
      return Status::ParseError("FLWOR without for/let clause");
    }
    if (lexer_.Peek().IsName("where")) {
      lexer_.Next();
      ARCHIS_ASSIGN_OR_RETURN(flwor->where, ParseExpr());
    }
    if (!lexer_.Peek().IsName("return")) {
      return Status::ParseError("FLWOR missing 'return'");
    }
    lexer_.Next();
    ARCHIS_ASSIGN_OR_RETURN(flwor->ret, ParseExpr());
    return flwor;
  }

  Result<ExprPtr> ParseQuantified() {
    auto quant = MakeExpr(ExprKind::kQuantified);
    quant->every_quant = lexer_.Next().IsName("every");
    if (lexer_.Peek().kind != TokenKind::kVariable) {
      return Status::ParseError("expected $var after every/some");
    }
    quant->str = lexer_.Next().text;
    if (!lexer_.Peek().IsName("in")) {
      return Status::ParseError("expected 'in' in quantified expression");
    }
    lexer_.Next();
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr in_expr, ParseOr());
    if (!lexer_.Peek().IsName("satisfies")) {
      return Status::ParseError("expected 'satisfies'");
    }
    lexer_.Next();
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr sat, ParseExpr());
    quant->children = {std::move(in_expr), std::move(sat)};
    return quant;
  }

  Result<ExprPtr> ParseIf() {
    lexer_.Next();  // if
    if (!lexer_.Peek().IsSymbol("(")) {
      return Status::ParseError("expected '(' after if");
    }
    lexer_.Next();
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr cond, ParseExprSequence());
    if (!lexer_.Peek().IsSymbol(")")) {
      return Status::ParseError("expected ')' after if condition");
    }
    lexer_.Next();
    if (!lexer_.Peek().IsName("then")) {
      return Status::ParseError("expected 'then'");
    }
    lexer_.Next();
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExpr());
    if (!lexer_.Peek().IsName("else")) {
      return Status::ParseError("expected 'else'");
    }
    lexer_.Next();
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExpr());
    auto e = MakeExpr(ExprKind::kIf);
    e->children = {std::move(cond), std::move(then_e), std::move(else_e)};
    return e;
  }

  Result<ExprPtr> ParseOr() {
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    if (!lexer_.Peek().IsName("or")) return lhs;
    auto e = MakeExpr(ExprKind::kOr);
    e->children.push_back(std::move(lhs));
    while (lexer_.Peek().IsName("or")) {
      lexer_.Next();
      ARCHIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      e->children.push_back(std::move(rhs));
    }
    return e;
  }

  Result<ExprPtr> ParseAnd() {
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    if (!lexer_.Peek().IsName("and")) return lhs;
    auto e = MakeExpr(ExprKind::kAnd);
    e->children.push_back(std::move(lhs));
    while (lexer_.Peek().IsName("and")) {
      lexer_.Next();
      ARCHIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      e->children.push_back(std::move(rhs));
    }
    return e;
  }

  Result<ExprPtr> ParseComparison() {
    // A quantified expression can be an operand of and/or (the paper's
    // QUERY 8 conjoins two `every ... satisfies` clauses).
    if ((lexer_.Peek().IsName("every") || lexer_.Peek().IsName("some")) &&
        lexer_.Peek(1).kind == TokenKind::kVariable) {
      return ParseQuantified();
    }
    // Unary keyword 'not' (the paper writes both `not empty($d)` and
    // `not(empty(...))`; the function form is handled in ParsePrimary).
    if (lexer_.Peek().IsName("not") && !lexer_.Peek(1).IsSymbol("(")) {
      lexer_.Next();
      ARCHIS_ASSIGN_OR_RETURN(ExprPtr inner, ParseComparison());
      auto e = MakeExpr(ExprKind::kNot);
      e->children.push_back(std::move(inner));
      return e;
    }
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    const Token& tok = lexer_.Peek();
    static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
    for (const char* op : kOps) {
      if (tok.IsSymbol(op)) {
        lexer_.Next();
        ARCHIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        auto e = MakeExpr(ExprKind::kComparison);
        e->str = op;
        e->children = {std::move(lhs), std::move(rhs)};
        return e;
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (lexer_.Peek().IsSymbol("+") || lexer_.Peek().IsSymbol("-")) {
      std::string op = lexer_.Next().text;
      ARCHIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      auto e = MakeExpr(ExprKind::kFunctionCall);
      e->str = op == "+" ? "op:add" : "op:subtract";
      e->children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePath());
    while (lexer_.Peek().IsSymbol("*") || lexer_.Peek().IsName("div") ||
           lexer_.Peek().IsName("mod")) {
      std::string op = lexer_.Next().text;
      ARCHIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePath());
      auto e = MakeExpr(ExprKind::kFunctionCall);
      e->str = op == "*" ? "op:multiply"
               : op == "div" ? "op:divide" : "op:mod";
      e->children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  // Path := Primary ('/' Step | '//' Step | Predicate)*
  Result<ExprPtr> ParsePath() {
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr source, ParsePrimary());
    // Predicates directly on the primary (e.g. `$e/title[...]` handles the
    // steps below; `(...)[1]` style is rare — treated as a path with zero
    // steps whose source gets the predicate attached via a self step).
    if (!lexer_.Peek().IsSymbol("/") && !lexer_.Peek().IsSymbol("//") &&
        !lexer_.Peek().IsSymbol("[")) {
      return source;
    }
    auto path = MakeExpr(ExprKind::kPath);
    path->children.push_back(std::move(source));
    // A leading predicate on the source itself: model as a wildcard-free
    // self filter by hoisting into a step with name "." — the evaluator
    // special-cases it.
    if (lexer_.Peek().IsSymbol("[")) {
      PathStep self;
      self.name = ".";
      ARCHIS_RETURN_NOT_OK(ParsePredicates(&self));
      path->steps.push_back(std::move(self));
    }
    while (lexer_.Peek().IsSymbol("/") || lexer_.Peek().IsSymbol("//")) {
      bool descendant = lexer_.Next().text == "//";
      PathStep step;
      if (descendant) step.axis = PathStep::Axis::kDescendantOrSelf;
      if (lexer_.Peek().IsSymbol("@")) {
        lexer_.Next();
        step.axis = PathStep::Axis::kAttribute;
      }
      const Token& tok = lexer_.Peek();
      if (tok.kind == TokenKind::kName || tok.IsSymbol("*")) {
        step.name = lexer_.Next().text;
      } else {
        return Status::ParseError("expected step name after '/'");
      }
      ARCHIS_RETURN_NOT_OK(ParsePredicates(&step));
      path->steps.push_back(std::move(step));
    }
    return path;
  }

  Status ParsePredicates(PathStep* step) {
    while (lexer_.Peek().IsSymbol("[")) {
      lexer_.Next();
      ARCHIS_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      if (!lexer_.Peek().IsSymbol("]")) {
        return Status::ParseError("expected ']' closing predicate");
      }
      lexer_.Next();
      step->predicates.push_back(std::move(pred));
    }
    return Status::OK();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = lexer_.Peek();
    switch (tok.kind) {
      case TokenKind::kVariable:
        return MakeVarRef(lexer_.Next().text);
      case TokenKind::kString:
        return MakeString(lexer_.Next().text);
      case TokenKind::kNumber:
        return MakeNumber(lexer_.Next().number);
      case TokenKind::kName: {
        if (tok.text == "element") return ParseComputedElement();
        if (lexer_.Peek(1).IsSymbol("(")) return ParseFunctionCall();
        // Bare name: a child step relative to the context item.
        auto path = MakeExpr(ExprKind::kPath);
        path->children.push_back(MakeExpr(ExprKind::kContextItem));
        PathStep step;
        step.name = lexer_.Next().text;
        ARCHIS_RETURN_NOT_OK(ParsePredicates(&step));
        path->steps.push_back(std::move(step));
        return path;
      }
      case TokenKind::kSymbol: {
        if (tok.text == "(") {
          lexer_.Next();
          if (lexer_.Peek().IsSymbol(")")) {
            lexer_.Next();
            return MakeExpr(ExprKind::kEmptySeq);
          }
          ARCHIS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExprSequence());
          if (!lexer_.Peek().IsSymbol(")")) {
            return Status::ParseError("expected ')'");
          }
          lexer_.Next();
          return inner;
        }
        if (tok.text == ".") {
          lexer_.Next();
          return MakeExpr(ExprKind::kContextItem);
        }
        if (tok.text == "<") return ParseDirectElement();
        if (tok.text == "@") {
          lexer_.Next();
          auto path = MakeExpr(ExprKind::kPath);
          path->children.push_back(MakeExpr(ExprKind::kContextItem));
          PathStep step;
          step.axis = PathStep::Axis::kAttribute;
          if (lexer_.Peek().kind != TokenKind::kName) {
            return Status::ParseError("expected attribute name after '@'");
          }
          step.name = lexer_.Next().text;
          path->steps.push_back(std::move(step));
          return path;
        }
        break;
      }
      case TokenKind::kEnd:
        break;
    }
    return Status::ParseError("unexpected token '" + tok.text +
                              "' at offset " + std::to_string(tok.offset));
  }

  // element NAME { content? }
  Result<ExprPtr> ParseComputedElement() {
    lexer_.Next();  // element
    if (lexer_.Peek().kind != TokenKind::kName) {
      return Status::ParseError("expected element name after 'element'");
    }
    auto ctor = MakeExpr(ExprKind::kElementCtor);
    ctor->str = lexer_.Next().text;
    if (!lexer_.Peek().IsSymbol("{")) {
      return Status::ParseError("expected '{' in element constructor");
    }
    lexer_.Next();
    if (!lexer_.Peek().IsSymbol("}")) {
      ARCHIS_ASSIGN_OR_RETURN(ExprPtr content, ParseExprSequence());
      ctor->children.push_back(std::move(content));
    }
    if (!lexer_.Peek().IsSymbol("}")) {
      return Status::ParseError("expected '}' closing element constructor");
    }
    lexer_.Next();
    return ctor;
  }

  Result<ExprPtr> ParseFunctionCall() {
    auto call = MakeExpr(ExprKind::kFunctionCall);
    call->str = lexer_.Next().text;
    lexer_.Next();  // (
    if (!lexer_.Peek().IsSymbol(")")) {
      while (true) {
        ARCHIS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        call->children.push_back(std::move(arg));
        if (lexer_.Peek().IsSymbol(",")) {
          lexer_.Next();
          continue;
        }
        break;
      }
    }
    if (!lexer_.Peek().IsSymbol(")")) {
      return Status::ParseError("expected ')' closing call to " + call->str);
    }
    lexer_.Next();
    // Normalise: not(...) becomes kNot.
    if (call->str == "not" && call->children.size() == 1) {
      auto e = MakeExpr(ExprKind::kNot);
      e->children = std::move(call->children);
      return e;
    }
    return call;
  }

  // Direct element constructor: scanned straight off the source text, since
  // XML content does not tokenize as XQuery. Embedded `{Expr}` blocks are
  // parsed recursively.
  Result<ExprPtr> ParseDirectElement() {
    const std::string& src = lexer_.source();
    size_t i = lexer_.SourceOffsetOfNextToken();  // at '<'
    ARCHIS_ASSIGN_OR_RETURN(ExprPtr elem, ScanElement(src, &i));
    lexer_.ResyncToSourceOffset(i);
    return elem;
  }

  Result<ExprPtr> ScanElement(const std::string& src, size_t* i) {
    if (src[*i] != '<') return Status::ParseError("expected '<'");
    ++*i;
    std::string name;
    while (*i < src.size() &&
           (std::isalnum(static_cast<unsigned char>(src[*i])) ||
            src[*i] == '_' || src[*i] == '-' || src[*i] == ':')) {
      name += src[(*i)++];
    }
    if (name.empty()) return Status::ParseError("direct ctor missing name");
    auto ctor = MakeExpr(ExprKind::kElementCtor);
    ctor->str = name;

    // Attributes.
    while (*i < src.size()) {
      while (*i < src.size() &&
             std::isspace(static_cast<unsigned char>(src[*i]))) {
        ++*i;
      }
      if (*i >= src.size()) return Status::ParseError("unterminated tag");
      if (src[*i] == '/') {
        if (*i + 1 < src.size() && src[*i + 1] == '>') {
          *i += 2;
          return ctor;  // empty element
        }
        return Status::ParseError("stray '/' in tag");
      }
      if (src[*i] == '>') {
        ++*i;
        break;
      }
      std::string attr;
      while (*i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[*i])) ||
              src[*i] == '_' || src[*i] == '-' || src[*i] == ':')) {
        attr += src[(*i)++];
      }
      while (*i < src.size() &&
             std::isspace(static_cast<unsigned char>(src[*i]))) {
        ++*i;
      }
      if (*i >= src.size() || src[*i] != '=') {
        return Status::ParseError("attribute '" + attr + "' missing '='");
      }
      ++*i;
      while (*i < src.size() &&
             std::isspace(static_cast<unsigned char>(src[*i]))) {
        ++*i;
      }
      if (*i >= src.size() || (src[*i] != '"' && src[*i] != '\'')) {
        return Status::ParseError("attribute '" + attr + "' missing quote");
      }
      char quote = src[(*i)++];
      std::string value;
      while (*i < src.size() && src[*i] != quote) value += src[(*i)++];
      if (*i >= src.size()) {
        return Status::ParseError("unterminated attribute value");
      }
      ++*i;
      ctor->attrs.push_back({attr, XmlUnescape(value)});
    }

    // Content: text, {expr}, nested elements, until matching close tag.
    std::string text;
    auto flush_text = [&]() {
      std::string trimmed(Trim(text));
      if (!trimmed.empty()) {
        auto t = MakeExpr(ExprKind::kTextLit);
        t->str = XmlUnescape(trimmed);
        ctor->children.push_back(std::move(t));
      }
      text.clear();
    };
    while (*i < src.size()) {
      char c = src[*i];
      if (c == '<') {
        if (*i + 1 < src.size() && src[*i + 1] == '/') {
          flush_text();
          *i += 2;
          std::string close;
          while (*i < src.size() && src[*i] != '>') close += src[(*i)++];
          if (*i >= src.size()) {
            return Status::ParseError("unterminated close tag");
          }
          ++*i;
          if (std::string(Trim(close)) != name) {
            return Status::ParseError("mismatched close tag </" + close +
                                      "> for <" + name + ">");
          }
          return ctor;
        }
        flush_text();
        ARCHIS_ASSIGN_OR_RETURN(ExprPtr child, ScanElement(src, i));
        ctor->children.push_back(std::move(child));
      } else if (c == '{') {
        flush_text();
        size_t start = *i + 1;
        ARCHIS_ASSIGN_OR_RETURN(size_t end, FindMatchingBrace(src, *i));
        std::string inner = src.substr(start, end - start);
        Parser sub(inner);
        ARCHIS_ASSIGN_OR_RETURN(ExprPtr child, sub.Parse());
        ctor->children.push_back(std::move(child));
        *i = end + 1;
      } else {
        text += c;
        ++*i;
      }
    }
    return Status::ParseError("unterminated element <" + name + ">");
  }

  /// Index of the '}' matching the '{' at `open`, skipping string literals.
  static Result<size_t> FindMatchingBrace(const std::string& src,
                                          size_t open) {
    int depth = 0;
    for (size_t i = open; i < src.size(); ++i) {
      char c = src[i];
      if (c == '"' || c == '\'') {
        char quote = c;
        ++i;
        while (i < src.size() && src[i] != quote) ++i;
        continue;
      }
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (depth == 0) return i;
      }
    }
    return Status::ParseError("unbalanced '{' in direct constructor");
  }

  Lexer lexer_;
};

}  // namespace

Result<ExprPtr> ParseXQuery(const std::string& query) {
  Parser parser(query);
  return parser.Parse();
}

}  // namespace archis::xquery
