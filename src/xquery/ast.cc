#include "xquery/ast.h"

namespace archis::xquery {

ExprPtr MakeExpr(ExprKind kind) { return std::make_shared<Expr>(kind); }

ExprPtr MakeString(std::string s) {
  auto e = MakeExpr(ExprKind::kStringLit);
  e->str = std::move(s);
  return e;
}

ExprPtr MakeNumber(double n) {
  auto e = MakeExpr(ExprKind::kNumberLit);
  e->num = n;
  return e;
}

ExprPtr MakeVarRef(std::string name) {
  auto e = MakeExpr(ExprKind::kVarRef);
  e->str = std::move(name);
  return e;
}

namespace {

const char* KindName(ExprKind k) {
  switch (k) {
    case ExprKind::kStringLit: return "str";
    case ExprKind::kNumberLit: return "num";
    case ExprKind::kVarRef: return "var";
    case ExprKind::kContextItem: return "ctx";
    case ExprKind::kSequence: return "seq";
    case ExprKind::kEmptySeq: return "empty-seq";
    case ExprKind::kPath: return "path";
    case ExprKind::kFlwor: return "flwor";
    case ExprKind::kComparison: return "cmp";
    case ExprKind::kAnd: return "and";
    case ExprKind::kOr: return "or";
    case ExprKind::kNot: return "not";
    case ExprKind::kFunctionCall: return "call";
    case ExprKind::kElementCtor: return "elem";
    case ExprKind::kTextLit: return "text";
    case ExprKind::kQuantified: return "quant";
    case ExprKind::kIf: return "if";
  }
  return "?";
}

}  // namespace

std::string ExprToString(const ExprPtr& e) {
  if (e == nullptr) return "<null>";
  std::string out = "(";
  out += KindName(e->kind);
  if (!e->str.empty()) out += " " + e->str;
  if (e->kind == ExprKind::kNumberLit) out += " " + std::to_string(e->num);
  if (e->kind == ExprKind::kQuantified) {
    out += e->every_quant ? " every" : " some";
  }
  for (const ForLetClause& c : e->clauses) {
    out += std::string(" [") + (c.is_let ? "let $" : "for $") + c.var +
           " := " + ExprToString(c.expr) + "]";
  }
  for (const PathStep& s : e->steps) {
    out += "/";
    if (s.axis == PathStep::Axis::kAttribute) out += "@";
    if (s.axis == PathStep::Axis::kDescendantOrSelf) out += "/";
    out += s.name;
    for (const ExprPtr& p : s.predicates) {
      out += "[" + ExprToString(p) + "]";
    }
  }
  for (const ExprPtr& c : e->children) out += " " + ExprToString(c);
  if (e->where != nullptr) out += " where " + ExprToString(e->where);
  if (e->ret != nullptr) out += " return " + ExprToString(e->ret);
  out += ")";
  return out;
}

}  // namespace archis::xquery
