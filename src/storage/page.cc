#include "storage/page.h"

namespace archis::storage {

Page::Page() : data_(kPageSize, 0) {
  header()->slot_count = 0;
  header()->free_offset = kPageSize;
}

uint32_t Page::free_space() const {
  const uint32_t used_front =
      sizeof(Header) + header()->slot_count * sizeof(Slot);
  return header()->free_offset - used_front;
}

bool Page::CanFit(uint32_t size) const {
  return free_space() >= size + sizeof(Slot);
}

Result<uint16_t> Page::Insert(std::string_view record) {
  if (record.size() > 0xFFFF) {
    return Status::InvalidArgument("record larger than 64KiB");
  }
  if (!CanFit(static_cast<uint32_t>(record.size()))) {
    return Status::OutOfRange("page full");
  }
  Header* h = header();
  const uint16_t slot = h->slot_count++;
  h->free_offset -= static_cast<uint16_t>(record.size());
  Slot* s = slot_at(slot);
  s->offset = h->free_offset;
  s->length = static_cast<uint16_t>(record.size());
  std::memcpy(data_.data() + s->offset, record.data(), record.size());
  return slot;
}

Result<std::string_view> Page::Read(uint16_t slot) const {
  if (slot >= header()->slot_count) {
    return Status::NotFound("slot out of range");
  }
  const Slot* s = slot_at(slot);
  if (s->offset == 0) return Status::NotFound("tombstoned slot");
  return std::string_view(data_.data() + s->offset, s->length);
}

Status Page::Delete(uint16_t slot) {
  if (slot >= header()->slot_count) {
    return Status::NotFound("slot out of range");
  }
  Slot* s = slot_at(slot);
  if (s->offset == 0) return Status::NotFound("already deleted");
  s->offset = 0;
  return Status::OK();
}

Status Page::UpdateInPlace(uint16_t slot, std::string_view record) {
  if (slot >= header()->slot_count) {
    return Status::NotFound("slot out of range");
  }
  Slot* s = slot_at(slot);
  if (s->offset == 0) return Status::NotFound("tombstoned slot");
  if (record.size() > s->length) {
    return Status::OutOfRange("record grew; relocate");
  }
  std::memcpy(data_.data() + s->offset, record.data(), record.size());
  s->length = static_cast<uint16_t>(record.size());
  return Status::OK();
}

uint16_t Page::live_records() const {
  uint16_t n = 0;
  for (uint16_t i = 0; i < header()->slot_count; ++i) {
    if (slot_at(i)->offset != 0) ++n;
  }
  return n;
}

}  // namespace archis::storage
