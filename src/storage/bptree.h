// In-memory B+-tree with duplicate keys, leaf chaining and range scans.
//
// This is the index structure behind minirel secondary indexes: point
// lookups on ids (paper Section 5.1: "indexes on such ids can efficiently
// join these relations") and range scans on timestamps / (segno, id)
// composites (Section 6.3: "all indexes are now augmented with a segno
// information").
#ifndef ARCHIS_STORAGE_BPTREE_H_
#define ARCHIS_STORAGE_BPTREE_H_

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <vector>

namespace archis::storage {

/// A B+-tree multimap from Key to Value.
///
/// Keys must be totally ordered by `operator<`. Duplicate keys are allowed;
/// a range scan yields duplicates in insertion order. Nodes hold up to
/// `kFanout` entries and split at overflow.
template <typename Key, typename Value>
class BPlusTree {
 public:
  static constexpr size_t kFanout = 64;

  BPlusTree() : root_(NewLeaf()) {}

  /// Inserts a (key, value) pair. Infallible: purely in-memory, duplicate
  /// keys are allowed, and node splits cannot fail.
  // archis-lint: allow(void-mutator) -- no error path exists by design
  void Insert(const Key& key, const Value& value) {
    InsertResult r = InsertRec(root_.get(), key, value);
    if (r.split) {
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->keys.push_back(r.split_key);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(r.right));
      root_ = std::move(new_root);
      ++height_;
    }
    ++size_;
  }

  /// Calls `fn(key, value)` for every entry with key == `key`; stops early
  /// when `fn` returns false.
  void Lookup(const Key& key,
              const std::function<bool(const Key&, const Value&)>& fn) const {
    ScanRange(key, key, fn);
  }

  /// Calls `fn` for every entry with lo <= key <= hi in key order; stops
  /// early when `fn` returns false.
  void ScanRange(const Key& lo, const Key& hi,
                 const std::function<bool(const Key&,
                                          const Value&)>& fn) const {
    const Node* leaf = FindLeaf(root_.get(), lo);
    while (leaf != nullptr) {
      auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo);
      size_t i = static_cast<size_t>(it - leaf->keys.begin());
      for (; i < leaf->keys.size(); ++i) {
        if (hi < leaf->keys[i]) return;
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next_leaf;
    }
  }

  /// Calls `fn` for every entry in key order.
  void ScanAll(const std::function<bool(const Key&,
                                        const Value&)>& fn) const {
    const Node* leaf = LeftmostLeaf();
    while (leaf != nullptr) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next_leaf;
    }
  }

  /// Removes all entries matching (key, value); returns how many.
  size_t Erase(const Key& key, const Value& value) {
    size_t removed = 0;
    Node* leaf = FindLeafMutable(root_.get(), key);
    while (leaf != nullptr) {
      bool past = false;
      for (size_t i = 0; i < leaf->keys.size();) {
        if (key < leaf->keys[i]) { past = true; break; }
        if (!(leaf->keys[i] < key) && leaf->values[i] == value) {
          leaf->keys.erase(leaf->keys.begin() + static_cast<long>(i));
          leaf->values.erase(leaf->values.begin() + static_cast<long>(i));
          ++removed;
        } else {
          ++i;
        }
      }
      if (past) break;
      leaf = leaf->next_leaf;
    }
    size_ -= removed;
    return removed;
  }

  size_t size() const { return size_; }
  size_t height() const { return height_; }

  /// Approximate memory footprint of index structure in bytes, counted as
  /// storage overhead for Figure 7/11 (clustering-index overhead).
  uint64_t ApproxBytes() const {
    return size_ * (sizeof(Key) + sizeof(Value)) * 5 / 4;  // ~25% slack
  }

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<Key> keys;
    // Leaves:
    std::vector<Value> values;
    Node* next_leaf = nullptr;
    // Internal: children[i] covers keys < keys[i]; children.back() the rest.
    std::vector<std::unique_ptr<Node>> children;
  };

  struct InsertResult {
    bool split = false;
    Key split_key{};
    std::unique_ptr<Node> right;
  };

  static std::unique_ptr<Node> NewLeaf() {
    auto n = std::make_unique<Node>();
    n->is_leaf = true;
    return n;
  }

  InsertResult InsertRec(Node* node, const Key& key, const Value& value) {
    if (node->is_leaf) {
      auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
      size_t pos = static_cast<size_t>(it - node->keys.begin());
      node->keys.insert(it, key);
      node->values.insert(node->values.begin() + static_cast<long>(pos),
                          value);
      if (node->keys.size() <= kFanout) return {};
      return SplitLeaf(node);
    }
    size_t child = ChildIndex(node, key);
    InsertResult r = InsertRec(node->children[child].get(), key, value);
    if (!r.split) return {};
    node->keys.insert(node->keys.begin() + static_cast<long>(child),
                      r.split_key);
    node->children.insert(
        node->children.begin() + static_cast<long>(child) + 1,
        std::move(r.right));
    if (node->keys.size() <= kFanout) return {};
    return SplitInternal(node);
  }

  InsertResult SplitLeaf(Node* node) {
    auto right = NewLeaf();
    size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + static_cast<long>(mid),
                       node->keys.end());
    right->values.assign(node->values.begin() + static_cast<long>(mid),
                         node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next_leaf = node->next_leaf;
    node->next_leaf = right.get();
    return {true, right->keys.front(), std::move(right)};
  }

  InsertResult SplitInternal(Node* node) {
    auto right = std::make_unique<Node>();
    right->is_leaf = false;
    size_t mid = node->keys.size() / 2;
    Key up_key = node->keys[mid];
    right->keys.assign(node->keys.begin() + static_cast<long>(mid) + 1,
                       node->keys.end());
    for (size_t i = mid + 1; i < node->children.size(); ++i) {
      right->children.push_back(std::move(node->children[i]));
    }
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    return {true, up_key, std::move(right)};
  }

  static size_t ChildIndex(const Node* node, const Key& key) {
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    return static_cast<size_t>(it - node->keys.begin());
  }

  const Node* FindLeaf(const Node* node, const Key& key) const {
    while (!node->is_leaf) {
      // Descend via lower_bound so duplicate runs that straddle a split key
      // are entered from their leftmost leaf.
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
      node = node->children[static_cast<size_t>(
          it - node->keys.begin())].get();
    }
    return node;
  }

  Node* FindLeafMutable(Node* node, const Key& key) {
    return const_cast<Node*>(FindLeaf(node, key));
  }

  const Node* LeftmostLeaf() const {
    const Node* n = root_.get();
    while (!n->is_leaf) n = n->children.front().get();
    return n;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace archis::storage

#endif  // ARCHIS_STORAGE_BPTREE_H_
