// PageManager: owns all pages of a database instance and accounts for
// logical I/O.
//
// The engine is memory-resident (the reproduction runs laptop-scale data)
// but every page access is counted, so benchmarks can report both wall time
// and pages touched — the quantity that actually drove the paper's
// disk-bound numbers. Pages can be persisted to / restored from a file to
// measure on-disk storage footprints (Figures 7, 11, 13).
#ifndef ARCHIS_STORAGE_PAGE_MANAGER_H_
#define ARCHIS_STORAGE_PAGE_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace archis::storage {

/// A snapshot of the logical I/O performed through a PageManager.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
};

/// Allocates, pins and persists pages.
class PageManager {
 public:
  PageManager() = default;
  PageManager(const PageManager&) = delete;
  PageManager& operator=(const PageManager&) = delete;

  /// Allocates a fresh empty page and returns its id. Thread-safe: the
  /// page directory is mutex-protected, so allocation may race with
  /// concurrent ReadPage/WritePage on other pages.
  PageId Allocate() ARCHIS_EXCLUDES(mu_);

  /// Read access; bumps the page-read counter. Concurrent ReadPage calls
  /// are safe (page pointers are stable and the directory lookup is
  /// locked), which is what allows parallel segment scans to share one
  /// PageManager. Byte-level access to one page from multiple threads is
  /// the caller's problem.
  const Page& ReadPage(PageId id) const ARCHIS_EXCLUDES(mu_);

  /// Write access; bumps the page-write counter.
  Page& WritePage(PageId id) ARCHIS_EXCLUDES(mu_);

  /// Number of pages allocated so far.
  size_t page_count() const ARCHIS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return pages_.size();
  }

  /// Total bytes occupied by all pages (page_count * kPageSize).
  uint64_t total_bytes() const ARCHIS_EXCLUDES(mu_) {
    return page_count() * uint64_t{kPageSize};
  }

  IoStats stats() const {
    IoStats s;
    s.page_reads = page_reads_.load(std::memory_order_relaxed);
    s.page_writes = page_writes_.load(std::memory_order_relaxed);
    s.pages_allocated = pages_allocated_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    page_reads_.store(0, std::memory_order_relaxed);
    page_writes_.store(0, std::memory_order_relaxed);
    pages_allocated_.store(0, std::memory_order_relaxed);
  }

  /// Writes all pages to `path` (simple length-prefixed dump).
  Status PersistToFile(const std::string& path) const ARCHIS_EXCLUDES(mu_);

  /// Replaces the current pages with the contents of `path`. Must not run
  /// concurrently with reads (it swaps the whole directory).
  Status LoadFromFile(const std::string& path) ARCHIS_EXCLUDES(mu_);

 private:
  /// Protects the page directory (the vector itself, not page contents;
  /// pages are heap-allocated so references stay valid across Allocate).
  mutable Mutex mu_{LockRank::kPageManager};
  std::vector<std::unique_ptr<Page>> pages_ ARCHIS_GUARDED_BY(mu_);
  mutable std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_writes_{0};
  std::atomic<uint64_t> pages_allocated_{0};
};

}  // namespace archis::storage

#endif  // ARCHIS_STORAGE_PAGE_MANAGER_H_
