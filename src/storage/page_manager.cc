#include "storage/page_manager.h"

#include <cassert>
#include <cstdio>

#include "common/metrics.h"

namespace archis::storage {

namespace {

// Process-wide mirrors of the per-instance IoStats (metric catalog:
// DESIGN.md §9). Pointers are cached so the registry lock stays off the
// page path.
metrics::Counter* PageReadsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_page_reads_total", "Pages read through PageManager::ReadPage");
  return c;
}

metrics::Counter* PageWritesMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_page_writes_total",
      "Pages pinned for write through PageManager::WritePage");
  return c;
}

metrics::Counter* PagesAllocatedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_pages_allocated_total", "Pages allocated across all stores");
  return c;
}

}  // namespace

PageId PageManager::Allocate() {
  PagesAllocatedMetric()->Inc();
  MutexLock lock(mu_);
  pages_.push_back(std::make_unique<Page>());
  pages_allocated_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<PageId>(pages_.size() - 1);
}

const Page& PageManager::ReadPage(PageId id) const {
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  PageReadsMetric()->Inc();
  MutexLock lock(mu_);
  assert(id < pages_.size());
  // The unique_ptr pointee is stable, so the reference stays valid after
  // the directory lock drops even if Allocate grows the vector.
  return *pages_[id];
}

Page& PageManager::WritePage(PageId id) {
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  PageWritesMetric()->Inc();
  MutexLock lock(mu_);
  assert(id < pages_.size());
  return *pages_[id];
}

Status PageManager::PersistToFile(const std::string& path) const {
  MutexLock lock(mu_);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const uint64_t n = pages_.size();
  if (std::fwrite(&n, sizeof(n), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("short write on " + path);
  }
  for (const auto& p : pages_) {
    if (std::fwrite(p->data(), kPageSize, 1, f) != 1) {
      std::fclose(f);
      return Status::IOError("short write on " + path);
    }
  }
  std::fclose(f);
  return Status::OK();
}

Status PageManager::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  uint64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1) {
    std::fclose(f);
    return Status::Corruption("truncated page file " + path);
  }
  std::vector<std::unique_ptr<Page>> pages;
  pages.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    auto p = std::make_unique<Page>();
    if (std::fread(p->mutable_data(), kPageSize, 1, f) != 1) {
      std::fclose(f);
      return Status::Corruption("truncated page file " + path);
    }
    pages.push_back(std::move(p));
  }
  std::fclose(f);
  MutexLock lock(mu_);
  pages_ = std::move(pages);
  return Status::OK();
}

}  // namespace archis::storage
