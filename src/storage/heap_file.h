// HeapFile: an append-oriented sequence of pages holding variable-length
// records, addressed by RecordId. Tables and segments are heap files.
#ifndef ARCHIS_STORAGE_HEAP_FILE_H_
#define ARCHIS_STORAGE_HEAP_FILE_H_

#include <functional>
#include <string>
#include <vector>

#include "storage/page_manager.h"

namespace archis::storage {

/// A heap file over a PageManager.
///
/// Records append to the last page, spilling to a new page when full.
/// Deletion tombstones; record ids are stable. Iteration visits live
/// records in (page, slot) order — for sorted bulk loads this preserves
/// the load order, which the archiver relies on for id-ordered merge joins.
class HeapFile {
 public:
  explicit HeapFile(PageManager* pm) : pm_(pm) {}

  /// Appends `record`; returns its RecordId.
  Result<RecordId> Append(std::string_view record);

  /// Reads the record at `rid` (copy, so callers may outlive page churn).
  Result<std::string> Read(const RecordId& rid) const;

  /// Tombstones the record at `rid`.
  Status Delete(const RecordId& rid);

  /// In-place update when it fits, else delete + re-append; the (possibly
  /// new) RecordId is stored back into `rid`.
  Status Update(RecordId* rid, std::string_view record);

  /// Calls `fn(rid, bytes)` for every live record; stops early if `fn`
  /// returns false.
  void Scan(const std::function<bool(const RecordId&,
                                     std::string_view)>& fn) const;

  /// Scans only the given pages (used for segment-pruned access paths).
  void ScanPages(const std::vector<PageId>& pages,
                 const std::function<bool(const RecordId&,
                                          std::string_view)>& fn) const;

  /// Number of live records (full scan).
  uint64_t CountLive() const;

  /// Pages owned by this heap file, in append order.
  const std::vector<PageId>& pages() const { return pages_; }

  /// Storage footprint in bytes (pages * page size).
  uint64_t SizeBytes() const { return pages_.size() * uint64_t{kPageSize}; }

  /// Drops all pages from this file's view (page ids remain allocated in
  /// the PageManager; the archive store never reuses them, mirroring the
  /// paper's "old live segment is dropped" step).
  void Clear() { pages_.clear(); }

 private:
  PageManager* pm_;
  std::vector<PageId> pages_;
};

}  // namespace archis::storage

#endif  // ARCHIS_STORAGE_HEAP_FILE_H_
