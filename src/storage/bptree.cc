#include "storage/bptree.h"

#include <cstdint>
#include <string>
#include <utility>

#include "storage/page.h"

namespace archis::storage {

// Anchor the common instantiations in one translation unit so that every
// user of the header doesn't re-instantiate them.
template class BPlusTree<int64_t, RecordId>;
template class BPlusTree<std::string, RecordId>;
template class BPlusTree<std::pair<int64_t, int64_t>, RecordId>;

}  // namespace archis::storage
