// Append-only record log file: the durable substrate under the ArchIS
// write-ahead change log (archis/wal.*).
//
// The file is a sequence of CRC-framed records:
//
//   frame := length:u32le | crc32(payload):u32le | payload[length]
//
// Appends are buffered in the OS; Sync() makes everything appended so far
// durable (fsync). The reader is torn-tail tolerant: it stops at the first
// frame that is truncated or fails its CRC and reports the byte length of
// the valid prefix, which the opener then truncates to — a torn tail is a
// crash artifact, never an error.
//
// Crash testing: LogFileOptions::fail_after_bytes makes the writer fail
// (and write only a prefix of the crossing record) once the byte budget is
// exhausted, deterministically simulating a crash at any point in the
// file, including mid-record.
#ifndef ARCHIS_STORAGE_LOG_FILE_H_
#define ARCHIS_STORAGE_LOG_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace archis::storage {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
uint32_t Crc32(std::string_view data);

/// Appends one framed record (header + payload) to `out`.
// archis-lint: allow(void-mutator) pure in-memory string building, infallible
void AppendFrame(std::string_view payload, std::string* out);

/// Configuration of an AppendLogFile.
struct LogFileOptions {
  std::string path;
  /// fsync on Sync(). Off trades durability for test speed.
  bool sync = true;
  /// Fault injection: after this many bytes have been written through this
  /// handle, every write fails with IOError; the write that crosses the
  /// budget persists only the bytes up to it (a torn record). 0 disables.
  uint64_t fail_after_bytes = 0;
};

/// One record recovered from a log file.
struct LogRecord {
  std::string payload;
  uint64_t offset = 0;  ///< byte offset of the frame start
};

/// Result of scanning a log file.
struct LogScan {
  std::vector<LogRecord> records;
  /// Bytes of the valid prefix; anything beyond is a torn tail.
  uint64_t valid_bytes = 0;
  /// Whether bytes past valid_bytes existed (a tail was torn off).
  bool torn_tail = false;
};

/// Reads every intact record of `path`. A missing file scans as empty.
Result<LogScan> ScanLogFile(const std::string& path);

/// Truncates `path` to `bytes` (drops a torn tail before appending).
Status TruncateLogFile(const std::string& path, uint64_t bytes);

/// The append handle. Not thread-safe: the WAL layer serializes writers
/// (group commit makes one leader write per sync batch).
class AppendLogFile {
 public:
  /// Opens `options.path` for appending, creating it if missing.
  static Result<std::unique_ptr<AppendLogFile>> Open(
      const LogFileOptions& options);

  ~AppendLogFile();
  AppendLogFile(const AppendLogFile&) = delete;
  AppendLogFile& operator=(const AppendLogFile&) = delete;

  /// Appends pre-framed bytes (one or more frames built with AppendFrame).
  /// Not durable until Sync(). After the first failure the handle is dead:
  /// every subsequent Append/Sync returns the same IOError (a crashed
  /// process does not come back).
  Status Append(std::string_view framed);

  /// Makes all appended bytes durable.
  Status Sync();

  /// Truncates the file to empty in place (the WAL checkpoint reset path).
  /// The handle stays open; subsequent appends start at offset zero. The
  /// bytes-written counter — and with it the fault-injection budget —
  /// carries over, so a handle near its injected crash stays near it.
  Status Reset();

  /// Bytes written through this handle (not counting pre-existing ones).
  uint64_t bytes_written() const { return bytes_written_; }

  /// Current end-of-file offset: file size at open time plus bytes written
  /// since, dropped back to zero by Reset().
  uint64_t end_offset() const { return end_offset_; }

 private:
  AppendLogFile(int fd, uint64_t base_offset, LogFileOptions options)
      : fd_(fd), end_offset_(base_offset), options_(std::move(options)) {}

  int fd_ = -1;
  uint64_t end_offset_ = 0;
  uint64_t bytes_written_ = 0;
  LogFileOptions options_;
  Status dead_;  ///< sticky first failure
};

}  // namespace archis::storage

#endif  // ARCHIS_STORAGE_LOG_FILE_H_
