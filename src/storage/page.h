// Fixed-size slotted pages: the unit of storage and of I/O accounting.
//
// Records live in pages laid out RocksDB/textbook-style: a header, a slot
// directory growing from the front, and record bytes growing from the back.
// Deleted slots are tombstoned so record ids stay stable.
#ifndef ARCHIS_STORAGE_PAGE_H_
#define ARCHIS_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace archis::storage {

/// Size of every page in bytes. 4 KiB matches the BLOB block size the paper
/// uses for BlockZIP (4000 bytes of payload, Section 8.2).
inline constexpr uint32_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Identifies a record by its page and slot.
struct RecordId {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }
  auto operator<=>(const RecordId&) const = default;
};

/// A slotted data page.
///
/// Layout: [header | slot directory ...free space... record data]. Slots
/// store (offset, length); a zero offset with nonzero marker denotes a
/// tombstone.
class Page {
 public:
  Page();

  /// Number of slots ever allocated (including tombstones).
  uint16_t slot_count() const { return header()->slot_count; }

  /// Bytes still available for a new record (including its slot entry).
  uint32_t free_space() const;

  /// Whether a record of `size` bytes fits.
  bool CanFit(uint32_t size) const;

  /// Appends a record; returns its slot index, or OutOfRange if full.
  Result<uint16_t> Insert(std::string_view record);

  /// Reads the record in `slot`; NotFound for tombstoned/invalid slots.
  Result<std::string_view> Read(uint16_t slot) const;

  /// Tombstones `slot`. Space is not reclaimed (append-only archive store).
  Status Delete(uint16_t slot);

  /// Overwrites the record in `slot` in place when the new value is no
  /// larger; otherwise returns OutOfRange (caller re-inserts elsewhere).
  Status UpdateInPlace(uint16_t slot, std::string_view record);

  /// Raw page bytes, e.g. for persistence.
  const char* data() const { return data_.data(); }
  char* mutable_data() { return data_.data(); }

  /// Count of live (non-tombstoned) records.
  uint16_t live_records() const;

 private:
  struct Header {
    uint16_t slot_count;
    uint16_t free_offset;  // start of record data region (grows downward)
  };
  struct Slot {
    uint16_t offset;  // 0 => tombstone
    uint16_t length;
  };

  const Header* header() const {
    return reinterpret_cast<const Header*>(data_.data());
  }
  Header* header() { return reinterpret_cast<Header*>(data_.data()); }
  const Slot* slot_at(uint16_t i) const {
    return reinterpret_cast<const Slot*>(data_.data() + sizeof(Header)) + i;
  }
  Slot* slot_at(uint16_t i) {
    return reinterpret_cast<Slot*>(data_.data() + sizeof(Header)) + i;
  }

  std::vector<char> data_;
};

}  // namespace archis::storage

#endif  // ARCHIS_STORAGE_PAGE_H_
