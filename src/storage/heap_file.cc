#include "storage/heap_file.h"

namespace archis::storage {

Result<RecordId> HeapFile::Append(std::string_view record) {
  if (pages_.empty() ||
      !pm_->ReadPage(pages_.back()).CanFit(
          static_cast<uint32_t>(record.size()))) {
    pages_.push_back(pm_->Allocate());
  }
  Page& page = pm_->WritePage(pages_.back());
  ARCHIS_ASSIGN_OR_RETURN(uint16_t slot, page.Insert(record));
  return RecordId{pages_.back(), slot};
}

Result<std::string> HeapFile::Read(const RecordId& rid) const {
  const Page& page = pm_->ReadPage(rid.page_id);
  ARCHIS_ASSIGN_OR_RETURN(std::string_view bytes, page.Read(rid.slot));
  return std::string(bytes);
}

Status HeapFile::Delete(const RecordId& rid) {
  return pm_->WritePage(rid.page_id).Delete(rid.slot);
}

Status HeapFile::Update(RecordId* rid, std::string_view record) {
  Page& page = pm_->WritePage(rid->page_id);
  Status st = page.UpdateInPlace(rid->slot, record);
  if (st.ok()) return st;
  if (st.code() != StatusCode::kOutOfRange) return st;
  ARCHIS_RETURN_NOT_OK(page.Delete(rid->slot));
  ARCHIS_ASSIGN_OR_RETURN(RecordId fresh, Append(record));
  *rid = fresh;
  return Status::OK();
}

void HeapFile::Scan(const std::function<bool(const RecordId&,
                                             std::string_view)>& fn) const {
  ScanPages(pages_, fn);
}

void HeapFile::ScanPages(
    const std::vector<PageId>& pages,
    const std::function<bool(const RecordId&, std::string_view)>& fn) const {
  for (PageId pid : pages) {
    const Page& page = pm_->ReadPage(pid);
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      auto bytes = page.Read(s);
      if (!bytes.ok()) continue;  // tombstone
      if (!fn(RecordId{pid, s}, *bytes)) return;
    }
  }
}

uint64_t HeapFile::CountLive() const {
  uint64_t n = 0;
  Scan([&n](const RecordId&, std::string_view) {
    ++n;
    return true;
  });
  return n;
}

}  // namespace archis::storage
