#include "storage/log_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>

namespace archis::storage {

namespace {

constexpr size_t kFrameHeader = 8;  // u32 length + u32 crc

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU32(uint32_t v, std::string* out) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendFrame(std::string_view payload, std::string* out) {
  AppendU32(static_cast<uint32_t>(payload.size()), out);
  AppendU32(Crc32(payload), out);
  out->append(payload);
}

Result<LogScan> ScanLogFile(const std::string& path) {
  LogScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;  // no file yet: empty log
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  size_t pos = 0;
  while (pos + kFrameHeader <= data.size()) {
    uint32_t len = LoadU32(data.data() + pos);
    uint32_t crc = LoadU32(data.data() + pos + 4);
    if (pos + kFrameHeader + len > data.size()) break;  // torn payload
    std::string_view payload(data.data() + pos + kFrameHeader, len);
    if (Crc32(payload) != crc) break;  // torn / corrupt frame
    scan.records.push_back({std::string(payload), pos});
    pos += kFrameHeader + len;
  }
  scan.valid_bytes = pos;
  scan.torn_tail = pos < data.size();
  return scan;
}

Status TruncateLogFile(const std::string& path, uint64_t bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(bytes)) != 0) {
    // A log that was never created has nothing to truncate.
    if (errno == ENOENT && bytes == 0) return Status::OK();
    return Status::IOError(Errno("truncate", path));
  }
  return Status::OK();
}

Result<std::unique_ptr<AppendLogFile>> AppendLogFile::Open(
    const LogFileOptions& options) {
  int fd = ::open(options.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("open", options.path));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("fstat", options.path));
  }
  return std::unique_ptr<AppendLogFile>(new AppendLogFile(
      fd, static_cast<uint64_t>(st.st_size), options));
}

AppendLogFile::~AppendLogFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendLogFile::Append(std::string_view framed) {
  ARCHIS_RETURN_NOT_OK(dead_);
  size_t allowed = framed.size();
  const uint64_t budget = options_.fail_after_bytes;
  if (budget != 0) {
    if (bytes_written_ >= budget) {
      allowed = 0;
    } else if (bytes_written_ + framed.size() > budget) {
      allowed = static_cast<size_t>(budget - bytes_written_);
    }
  }
  size_t done = 0;
  while (done < allowed) {
    ssize_t n = ::write(fd_, framed.data() + done, allowed - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      dead_ = Status::IOError(Errno("write", options_.path));
      return dead_;
    }
    done += static_cast<size_t>(n);
    bytes_written_ += static_cast<uint64_t>(n);
    end_offset_ += static_cast<uint64_t>(n);
  }
  if (allowed < framed.size()) {
    dead_ = Status::IOError("injected crash after " +
                            std::to_string(bytes_written_) + " bytes in '" +
                            options_.path + "'");
    return dead_;
  }
  return Status::OK();
}

Status AppendLogFile::Sync() {
  ARCHIS_RETURN_NOT_OK(dead_);
  if (!options_.sync) return Status::OK();
  if (::fsync(fd_) != 0) {
    dead_ = Status::IOError(Errno("fsync", options_.path));
    return dead_;
  }
  return Status::OK();
}

Status AppendLogFile::Reset() {
  ARCHIS_RETURN_NOT_OK(dead_);
  if (::ftruncate(fd_, 0) != 0) {
    dead_ = Status::IOError(Errno("ftruncate", options_.path));
    return dead_;
  }
  end_offset_ = 0;
  return Status::OK();
}

}  // namespace archis::storage
