// Checkpoint manifests: bounded-time crash recovery for ArchIS (DESIGN.md
// §10, §13, after the ARIES-style fuzzy checkpoints of Stasis).
//
// A checkpoint persists durable state — relation catalog, H-table store
// rows, surrogate-id assignments, current-table rows, clock and txn-id
// counter — into CRC-framed manifests next to the WAL. Since v3 the
// manifest file is a *chain*: a full base manifest followed by incremental
// deltas, each carrying only the state dirtied since the previous
// manifest plus the commit-sequence low-water mark and the table of
// transactions still open at capture time. Recovery loads the chain
// (falling back to the previous generation on a torn base), applies the
// base then each delta, and replays only the WAL suffix past the last
// absorbed commit sequence — so both checkpoint cost and recovery time
// are bounded by write traffic, not database size.
//
// Chain layout (frames as in storage/log_file.*):
//
//   chain    := manifest+
//   manifest := HEADER relation* FOOTER
//   HEADER   := magic, version, seq, clock, next_txn_id, wal_offset,
//               base?, prev_seq, absorbed_commit_seq, active_txn_ids
//   relation := spec, interval, dropped?, surrogates, store rows,
//               current rows, stats, full?, current deletes
//   FOOTER   := seq          (absence of the footer = torn manifest)
//
// A base manifest is installed atomically (write-temp + fsync + rename,
// previous chain kept as `.ckpt.prev`); a delta is appended to the live
// chain file and fsynced. A torn delta append only ever damages the tail,
// which the chain parser drops.
#ifndef ARCHIS_ARCHIS_CHECKPOINT_H_
#define ARCHIS_ARCHIS_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "archis/relation_spec.h"
#include "common/status.h"
#include "minirel/tuple.h"

namespace archis::core {

/// Deterministic crash injection for the checkpoint protocol: the
/// checkpoint stops with an IOError just *before* the named step, leaving
/// exactly the on-disk state a power loss at that instant would.
enum class CheckpointCrashPoint {
  kNone,
  /// Base: temp manifest written but not fsynced (nothing installed).
  /// Delta: bytes appended to the chain but not fsynced (torn tail).
  kBeforeManifestSync,
  /// Base: temp manifest durable; the rename pair has not run.
  /// Delta: nothing appended at all.
  kBeforeInstall,
  /// Manifest installed; the WAL has not been truncated.
  kBeforeWalReset,
};

/// One relation's durable state inside a manifest. Store rows are the raw
/// deduplicated H-table history (full row tuples in store-schema order),
/// not the published H-document: re-insertions of one key must survive a
/// round trip without their intervals merging.
struct CheckpointRelation {
  RelationSpec spec;
  int64_t open_days = 0;
  /// Interval close (drop date); Forever while the relation is live.
  int64_t close_days = 0;
  bool dropped = false;
  /// Surrogate-id assignments (composite-key relations), sorted by key.
  /// In a delta: only assignments made since the previous manifest.
  std::vector<std::pair<std::string, int64_t>> surrogates;
  int64_t next_surrogate = 1;
  /// store_rows[0] = key table; store_rows[1 + i] = attribute i's table,
  /// in HTableSet::attribute_names() order. In a delta: only the versions
  /// dirtied since the previous manifest (upserted by identity (id,
  /// tstart) at restore).
  std::vector<std::vector<minirel::Tuple>> store_rows;
  /// Current-table rows (empty for dropped relations). In a delta: only
  /// rows whose key was written since the previous manifest (upserts).
  std::vector<minirel::Tuple> current_rows;
  /// Encoded StoreStatistics per store (parallel to store_rows), so
  /// recovery installs the checkpointed planner estimates byte-for-byte.
  /// Empty when decoded from a version-1 manifest — the restore rebuild
  /// (LoadCheckpointRows -> LoadVersion) covers that case.
  std::vector<std::string> store_stats;
  /// Whether this entry carries the relation's complete state (base
  /// manifests) or only the dirty subset (deltas). Pre-v3 decodes as true.
  bool full = true;
  /// Delta only: current-table keys deleted since the previous manifest,
  /// as schema-free EncodeTuple blobs of the key values.
  std::vector<std::string> current_deletes;
};

/// Everything one checkpoint persists (one link of the chain).
struct CheckpointManifest {
  /// Format version this manifest was decoded from (writers always emit
  /// the current version). Pre-v3 manifests replay the WAL by byte
  /// offset; v3+ replays by commit sequence.
  uint32_t version = 3;
  /// Monotonic checkpoint sequence number (matches the WAL marker).
  uint64_t seq = 0;
  int64_t clock_days = 0;
  uint64_t next_txn_id = 1;
  /// WAL end offset at checkpoint time (legacy replay filter; v3 keeps
  /// writing it for diagnostics but recovery filters by commit_seq).
  uint64_t wal_offset = 0;
  /// Chain linkage: a base starts a chain; a delta extends the manifest
  /// whose seq equals prev_seq.
  bool base = true;
  uint64_t prev_seq = 0;
  /// Commit-sequence low-water mark: every commit with seq <= this is
  /// fully reflected in the chain up to and including this manifest;
  /// recovery replays only WAL items above it.
  uint64_t absorbed_commit_seq = 0;
  /// Transactions open at capture time (fuzzy checkpoint): their
  /// BEGIN/CHANGE frames may precede the capture in the WAL, but their
  /// effects are not in the manifest — replay picks them up from their
  /// COMMIT records (seq > absorbed_commit_seq) or drops them.
  std::vector<uint64_t> active_txn_ids;
  std::vector<CheckpointRelation> relations;
};

/// Manifest file names, derived from the WAL path.
std::string CheckpointPath(const std::string& wal_path);
std::string CheckpointPrevPath(const std::string& wal_path);
std::string CheckpointTmpPath(const std::string& wal_path);

/// Row schemas of one relation's H-table stores ([0] = key table, then one
/// per non-key column in schema order), mirroring HTableSet::Create.
Result<std::vector<minirel::Schema>> StoreSchemasFor(const RelationSpec& spec);

/// Serializes one manifest (base or delta) into CRC-framed bytes.
Result<std::string> EncodeCheckpointManifest(
    const CheckpointManifest& manifest);

/// A parsed manifest chain: the base plus zero or more deltas, in order.
struct CheckpointChain {
  std::vector<CheckpointManifest> manifests;
  /// Byte length of the complete-manifest prefix of the chain file. An
  /// incomplete tail manifest (torn delta append) is dropped and excluded;
  /// the next delta append truncates to this before writing.
  uint64_t valid_bytes = 0;
  /// Whether the newest chain was unusable and `.ckpt.prev` was loaded.
  bool fell_back = false;
};

/// Reads and validates the chain at `path`: the first manifest must be a
/// base, every later one a delta linked by prev_seq with increasing seq.
/// An incomplete tail manifest is dropped silently (torn append); missing
/// header/footer structure anywhere else, or a broken link, is Corruption.
Result<CheckpointChain> ReadCheckpointChain(const std::string& path);

/// Loads `<wal>.ckpt`, falling back to `<wal>.ckpt.prev` when the newest
/// chain is missing or unusable. Never fails: an unusable pair is just an
/// empty chain (the caller decides whether that is tolerable).
CheckpointChain LoadCheckpointChain(const std::string& wal_path);

/// Atomically installs `bytes` as a fresh base chain: write the temp
/// file, fsync it, rotate ckpt -> ckpt.prev, rename tmp -> ckpt, fsync the
/// directory. `crash` injects a stop just before the named step
/// (kBeforeWalReset completes the install; the caller owns that step).
Status InstallCheckpointManifest(const std::string& wal_path,
                                 const std::string& bytes,
                                 CheckpointCrashPoint crash);

/// Appends `bytes` (one encoded delta manifest) to the live chain file,
/// truncating any torn tail past `valid_bytes` first, and fsyncs. The
/// previous generation (`.ckpt.prev`) is untouched. `crash` as above.
Status AppendCheckpointDelta(const std::string& wal_path,
                             const std::string& bytes, uint64_t valid_bytes,
                             CheckpointCrashPoint crash);

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_CHECKPOINT_H_
