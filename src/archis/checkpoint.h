// Checkpoint manifests: bounded-time crash recovery for ArchIS (DESIGN.md
// §10, after the ARIES-style fuzzy checkpoints of Stasis).
//
// A checkpoint persists the instance's full durable state — relation
// catalog, H-table store rows, surrogate-id assignments, current-table
// rows, clock and txn-id counter — into a CRC-framed manifest file next to
// the WAL, installs it atomically (write-temp + fsync + rename, previous
// manifest kept as a fallback), then truncates the WAL down to a single
// checkpoint marker. Recovery loads the newest usable manifest and replays
// only the WAL suffix past it, so recovery time is bounded by the write
// traffic since the last checkpoint instead of the database's lifetime.
//
// Manifest layout (frames as in storage/log_file.*):
//
//   manifest := HEADER relation* FOOTER
//   HEADER   := magic, version, seq, clock, next_txn_id, wal_offset
//   relation := spec, interval, dropped?, surrogates, store rows, current rows
//   FOOTER   := seq          (absence of the footer = torn manifest)
#ifndef ARCHIS_ARCHIS_CHECKPOINT_H_
#define ARCHIS_ARCHIS_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "archis/relation_spec.h"
#include "common/status.h"
#include "minirel/tuple.h"

namespace archis::core {

/// Deterministic crash injection for the checkpoint protocol: the
/// checkpoint stops with an IOError just *before* the named step, leaving
/// exactly the on-disk state a power loss at that instant would.
enum class CheckpointCrashPoint {
  kNone,
  /// Temp manifest written but not fsynced (nothing installed).
  kBeforeManifestSync,
  /// Temp manifest durable; the rename pair has not run.
  kBeforeInstall,
  /// Manifest installed; the WAL has not been truncated.
  kBeforeWalReset,
};

/// One relation's durable state inside a manifest. Store rows are the raw
/// deduplicated H-table history (full row tuples in store-schema order),
/// not the published H-document: re-insertions of one key must survive a
/// round trip without their intervals merging.
struct CheckpointRelation {
  RelationSpec spec;
  int64_t open_days = 0;
  /// Interval close (drop date); Forever while the relation is live.
  int64_t close_days = 0;
  bool dropped = false;
  /// Surrogate-id assignments (composite-key relations), sorted by key.
  std::vector<std::pair<std::string, int64_t>> surrogates;
  int64_t next_surrogate = 1;
  /// store_rows[0] = key table; store_rows[1 + i] = attribute i's table,
  /// in HTableSet::attribute_names() order.
  std::vector<std::vector<minirel::Tuple>> store_rows;
  /// Current-table rows (empty for dropped relations).
  std::vector<minirel::Tuple> current_rows;
  /// Encoded StoreStatistics per store (parallel to store_rows), so
  /// recovery installs the checkpointed planner estimates byte-for-byte.
  /// Empty when decoded from a version-1 manifest — the restore rebuild
  /// (LoadCheckpointRows -> LoadVersion) covers that case.
  std::vector<std::string> store_stats;
};

/// Everything a checkpoint persists.
struct CheckpointManifest {
  /// Monotonic checkpoint sequence number (matches the WAL marker).
  uint64_t seq = 0;
  int64_t clock_days = 0;
  uint64_t next_txn_id = 1;
  /// WAL end offset at checkpoint time: recovery replays only items at or
  /// past this offset (in the log layout of that instant — a log that was
  /// since truncated announces it with a marker of this seq).
  uint64_t wal_offset = 0;
  std::vector<CheckpointRelation> relations;
};

/// Manifest file names, derived from the WAL path.
std::string CheckpointPath(const std::string& wal_path);
std::string CheckpointPrevPath(const std::string& wal_path);
std::string CheckpointTmpPath(const std::string& wal_path);

/// Row schemas of one relation's H-table stores ([0] = key table, then one
/// per non-key column in schema order), mirroring HTableSet::Create.
Result<std::vector<minirel::Schema>> StoreSchemasFor(const RelationSpec& spec);

/// Serializes a manifest into CRC-framed bytes.
Result<std::string> EncodeCheckpointManifest(
    const CheckpointManifest& manifest);

/// Reads and validates the manifest at `path`: Corruption when the header
/// or footer is missing or any frame is torn.
Result<CheckpointManifest> ReadCheckpointManifest(const std::string& path);

/// Outcome of looking for a manifest next to the WAL.
struct LoadedCheckpoint {
  /// The newest usable manifest; nullopt when none exists.
  std::optional<CheckpointManifest> manifest;
  /// Whether the newest manifest was unusable (torn / mid-install crash)
  /// and the previous one was used instead.
  bool fell_back = false;
};

/// Loads `<wal>.ckpt`, falling back to `<wal>.ckpt.prev` when the newest
/// is missing or torn. Never fails: an unusable pair is just "no
/// checkpoint" (the caller decides whether that is tolerable).
LoadedCheckpoint LoadCheckpoint(const std::string& wal_path);

/// Atomically installs `bytes` as the newest manifest: write the temp
/// file, fsync it, rotate ckpt -> ckpt.prev, rename tmp -> ckpt, fsync the
/// directory. `crash` injects a stop just before the named step
/// (kBeforeWalReset completes the install; the caller owns that step).
Status InstallCheckpointManifest(const std::string& wal_path,
                                 const std::string& bytes,
                                 CheckpointCrashPoint crash);

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_CHECKPOINT_H_
