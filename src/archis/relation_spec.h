// RelationSpec: everything ArchIS needs to register one archived relation.
//
// Replaces the old five-parameter CreateRelation(name, schema, keys,
// DocBinding, doc_name) signature, whose DocBinding::relation and doc_name
// parameters duplicated information the facade already had. One struct,
// each fact stated once; the DocBinding handed to the translator is
// derived from it.
#ifndef ARCHIS_ARCHIS_RELATION_SPEC_H_
#define ARCHIS_ARCHIS_RELATION_SPEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "minirel/schema.h"

namespace archis::core {

/// Declares one relation: its current-table schema, key, and the XML view
/// under which its history is published and queried.
struct RelationSpec {
  /// Current-table (and H-table family) name, e.g. "employees".
  std::string name;
  minirel::Schema schema;
  /// Key columns (invariant over history, paper Section 3).
  std::vector<std::string> key_columns;
  /// doc("...") reference naming the H-document, e.g. "employees.xml".
  std::string doc_name;
  /// Root element tag of the H-document; defaults to `name`.
  std::string root_tag;
  /// Per-key element tag; defaults to `root_tag` with a trailing 's'
  /// stripped (employees -> employee).
  std::string entity_tag;
};

/// Appends the wire encoding of `spec` to `out`. One codec shared by the
/// WAL CreateRelation record and the checkpoint manifest, so a relation
/// recovered from either source is bit-identical.
void EncodeRelationSpec(const RelationSpec& spec, std::string* out);

/// Decodes a RelationSpec from `data` at `*pos`, advancing `*pos`.
Result<RelationSpec> DecodeRelationSpec(std::string_view data, size_t* pos);

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_RELATION_SPEC_H_
