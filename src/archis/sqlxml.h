// SQL/XML plans over H-tables (paper Sections 5.3, 6.3).
//
// The XQuery translator produces an SqlXmlPlan: tuple variables ranging
// over key/attribute H-tables, id-equijoin conditions (implicit between all
// variables, as Algorithm 1 generates), pushed-down value and temporal
// conditions, and an output spec built from the SQL/XML constructs
// XMLElement / XMLAttributes / XMLAgg. The executor runs the plan against
// the SegmentedStores: snapshot and slicing conditions prune to covering
// segments first (Section 6.3), id-sorted merge joins combine variables,
// and tag binding happens directly over the tuple stream (the "inside the
// relational engine" property of [34]).
#ifndef ARCHIS_ARCHIS_SQLXML_H_
#define ARCHIS_ARCHIS_SQLXML_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "archis/archiver.h"
#include "common/trace.h"
#include "xml/node.h"

namespace archis::core {

/// Column of an H-table variable.
enum class HCol { kId, kValue, kTstart, kTend };

/// A reference to a column of one plan variable.
struct HColRef {
  size_t var = 0;
  HCol col = HCol::kValue;
};

/// Comparison against a constant, pushed into a variable's scan.
struct ValueCond {
  minirel::CompareOp op;
  minirel::Value constant;
};

/// One tuple variable of the plan (a key table or attribute table range,
/// Algorithm 1 step "identification of variable range").
struct PlanVar {
  std::string xq_name;    ///< originating XQuery variable (debugging)
  std::string relation;   ///< archived relation
  std::string attribute;  ///< attribute history table; empty = key table
  std::vector<ValueCond> value_conds;        ///< value op const
  std::vector<ValueCond> tstart_conds;       ///< tstart op const(Date)
  std::vector<ValueCond> tend_conds;         ///< tend op const(Date)
  std::optional<Date> snapshot;              ///< tstart<=p<=tend point
  std::optional<TimeInterval> overlap;       ///< interval overlap pushdown
  std::optional<int64_t> id_eq;              ///< single-object restriction
  bool current_only = false;                 ///< tend must be `now`
  size_t join_group = 0;  ///< vars in the same group id-equijoin (Algorithm
                          ///< 1 only joins variables rooted in the same
                          ///< document variable)
};

/// Cross-variable condition evaluated after the id join.
struct CrossCond {
  enum class Kind {
    kCompare,        ///< lhs.col op rhs.col
    kOverlaps,       ///< intervals of two vars overlap (toverlaps /
                     ///< non-empty overlapinterval)
    kContains,       ///< lhs interval contains rhs interval
    kEquals,         ///< intervals equal
    kMeets,          ///< lhs meets rhs
    kPrecedes,       ///< lhs precedes rhs
  };
  Kind kind = Kind::kCompare;
  HColRef lhs;
  minirel::CompareOp op = minirel::CompareOp::kEq;
  HColRef rhs;
};

/// XML output construction (the SQL/XML select list).
struct OutputSpec {
  enum class Kind {
    kElement,   ///< XMLElement(name, [XMLAttributes(tstart,tend of var)],
                ///<            children...)
    kColumn,    ///< column text content
    kAgg,       ///< XMLAgg(child) over rows of the group (group by id)
    kInterval,  ///< overlapinterval(lhs,rhs) rendered as <interval .../>
    kText,      ///< literal text
  };
  Kind kind = Kind::kElement;
  std::string name;                   ///< element tag / literal text
  std::optional<size_t> attr_var;     ///< emit tstart/tend of this variable
  std::optional<HColRef> column;      ///< kColumn source
  std::optional<size_t> ivl_lhs, ivl_rhs;  ///< kInterval operand variables
  std::vector<OutputSpec> children;
};

/// Scalar aggregates the paper maps to SQL OLAP functions (Section 5.4).
enum class PlanAggregate {
  kNone,
  kAvgValue,          ///< AVG(value) over matching rows
  kCount,             ///< COUNT(*)
  kCountDistinctIds,  ///< COUNT(DISTINCT id)
  kMaxValue,          ///< MAX(value)
  kMaxIncrease,       ///< max value delta between versions of the same id
                      ///< within `agg_window_days` (the temporal self-join
                      ///< of bench query Q6)
  kTAvg,              ///< temporal average: the step history of AVG(value)
                      ///< computed with the single-scan sweep (QUERY 5)
};

/// A complete translated query.
struct SqlXmlPlan {
  std::vector<PlanVar> vars;
  std::vector<CrossCond> cross_conds;
  bool join_on_id = true;  ///< id-equijoin across all vars (Algorithm 1)
  /// Deduplicate joined rows on the variables the output references
  /// (SELECT DISTINCT). The translator enables this to match XQuery's
  /// node-identity semantics when a predicate variable with several
  /// matching versions would otherwise fan out the output.
  bool distinct_output = false;
  OutputSpec output;
  PlanAggregate aggregate = PlanAggregate::kNone;
  int64_t agg_window_days = 0;

  /// Renders the plan as SQL/XML text (what ArchIS would send to the
  /// RDBMS), e.g. for logging or the paper's worked examples.
  std::string ToSql() const;
};

/// Physical access path for one plan variable. The translator's logical
/// plan (PlanVar) says *what* to fetch; the planner (archis/planner.h)
/// decides *how* — the paper's §6 pruning model finally gets a chooser.
enum class AccessPath {
  /// ScanId: per-segment B+-tree / block-sid probes for one object, with
  /// temporal conditions applied as a row post-filter.
  kIdIndex,
  /// Temporal merge-scan: segment-interval pruning (snapshot / overlap /
  /// history), with any id restriction applied as a row post-filter.
  kSegmentMerge,
};

/// The planner's decision for one plan variable.
struct VarPlan {
  AccessPath path = AccessPath::kSegmentMerge;
  double est_rows = 0;      ///< rows surviving the pushed-down conditions
  double est_cost = 0;      ///< cost units for this access (DESIGN.md §11)
  uint64_t est_segments = 0;  ///< segments the chosen path touches
};

/// A complete physical plan for one SqlXmlPlan. Constructed ONLY by
/// archis/planner.* (PlanQuery / DefaultPhysicalPlan — the archis-lint
/// `plan-ownership` rule pins this); the executor consumes it read-only.
struct PhysicalPlan {
  std::vector<VarPlan> vars;        ///< parallel to SqlXmlPlan::vars
  /// Variable fetch order, cheapest (fewest estimated rows) first; a
  /// variable that fetches empty short-circuits the rest (any empty input
  /// empties the join's cross product).
  std::vector<size_t> fetch_order;
  /// Compute the scalar/temporal aggregate while scanning, skipping the
  /// join/buffer pipeline (single-variable plans only).
  bool stream_aggregate = false;
  /// False for the fixed legacy shape (planner off).
  bool cost_based = false;
  double est_total_cost = 0;
  double est_result_rows = 0;

  /// One-line rendering for EXPLAIN / logging, e.g.
  /// "cost-based v0=id-index v1=segment-merge agg-pushdown".
  std::string Describe() const;
};

/// Executor statistics for one plan run.
struct PlanStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_joined = 0;
  uint64_t segments_scanned = 0;
  uint64_t blocks_decompressed = 0;
  uint64_t blocks_pruned_by_time = 0;  ///< zone-map block skips
  uint64_t block_cache_hits = 0;       ///< decompressed-block cache hits
  uint64_t block_cache_misses = 0;
  // Planner surface: estimate vs outcome for the run (DESIGN.md §11).
  bool cost_based_plan = false;  ///< whether a cost-based physical plan ran
  double est_cost = 0;           ///< planner cost estimate (cost units)
  double est_rows = 0;           ///< planner output-row estimate
  uint64_t result_rows = 0;      ///< actual joined output rows
};

/// Executes `plan` against the archiver's H-tables, returning the
/// constructed XML (for aggregate plans, a single element with the value).
///
/// `stats` receives the executor counters; on a non-OK return it still
/// holds the partial work done up to the failure, so failed queries stay
/// attributable. A non-null `trace` gets one segment-scan span per plan
/// variable plus a join span, nested under the caller's execute span.
///
/// `physical` is the planner's decision (archis/planner.h); nullptr runs
/// the fixed legacy shape (DefaultPhysicalPlan), which reproduces the
/// pre-planner executor exactly.
///
/// `deadline` (absolute, steady clock) cancels the run with
/// StatusCode::kDeadlineExceeded: checked before each variable's scan,
/// every few hundred rows inside a scan (the scan stops early), and
/// periodically through the join's cross product — so even a plan that
/// would scan millions of rows observes the deadline promptly.
Result<xml::XmlNodePtr> ExecutePlan(
    const Archiver& archiver, const SqlXmlPlan& plan, Date current_date,
    PlanStats* stats = nullptr, trace::Trace* trace = nullptr,
    const PhysicalPlan* physical = nullptr,
    std::optional<std::chrono::steady_clock::time_point> deadline =
        std::nullopt);

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_SQLXML_H_
