#include "archis/htable.h"

#include <algorithm>
#include <unordered_map>

namespace archis::core {

using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;

Result<std::unique_ptr<HTableSet>> HTableSet::Create(
    minirel::Database* hdb, const std::string& name,
    const Schema& current_schema,
    const std::vector<std::string>& key_columns,
    const SegmentOptions& seg_options, Date open_date) {
  if (key_columns.empty()) {
    return Status::InvalidArgument("relation needs at least one key column");
  }
  auto set = std::unique_ptr<HTableSet>(new HTableSet());
  set->name_ = name;
  set->current_schema_ = current_schema;
  set->key_columns_ = key_columns;
  for (const std::string& k : key_columns) {
    ARCHIS_ASSIGN_OR_RETURN(size_t pos, current_schema.ColumnIndex(k));
    set->key_positions_.push_back(pos);
  }
  set->natural_int_key_ =
      key_columns.size() == 1 &&
      current_schema.column(set->key_positions_[0]).type == DataType::kInt64;

  // Key table: R_key(id, tstart, tend).
  Schema key_schema({{"id", DataType::kInt64},
                     {"tstart", DataType::kDate},
                     {"tend", DataType::kDate}});
  ARCHIS_ASSIGN_OR_RETURN(
      set->key_store_,
      SegmentedStore::Create(hdb, name + "_key", key_schema, seg_options,
                             open_date));

  // One attribute history table per non-key column.
  for (size_t i = 0; i < current_schema.num_columns(); ++i) {
    bool is_key = false;
    for (size_t kp : set->key_positions_) is_key |= (kp == i);
    if (is_key) continue;
    const auto& col = current_schema.column(i);
    set->attr_names_.push_back(col.name);
    set->attr_positions_.push_back(i);
    Schema attr_schema({{"id", DataType::kInt64},
                        {col.name, col.type},
                        {"tstart", DataType::kDate},
                        {"tend", DataType::kDate}});
    ARCHIS_ASSIGN_OR_RETURN(
        std::unique_ptr<SegmentedStore> store,
        SegmentedStore::Create(hdb, name + "_" + col.name, attr_schema,
                               seg_options, open_date));
    set->attr_stores_.push_back(std::move(store));
  }
  return set;
}

void HTableSet::RestoreSurrogates(
    const std::vector<std::pair<std::string, int64_t>>& entries,
    int64_t next_surrogate) {
  surrogate_ids_.clear();
  dirty_surrogates_.clear();
  for (const auto& [key, id] : entries) surrogate_ids_[key] = id;
  next_surrogate_ = next_surrogate;
}

void HTableSet::AddSurrogates(
    const std::vector<std::pair<std::string, int64_t>>& entries,
    int64_t next_surrogate) {
  for (const auto& [key, id] : entries) surrogate_ids_[key] = id;
  next_surrogate_ = std::max(next_surrogate_, next_surrogate);
}

std::vector<std::pair<std::string, int64_t>>
HTableSet::TakeDirtySurrogates() {
  std::vector<std::pair<std::string, int64_t>> out;
  out.swap(dirty_surrogates_);
  return out;
}

void HTableSet::MergeDirtySurrogates(
    const std::vector<std::pair<std::string, int64_t>>& entries) {
  dirty_surrogates_.insert(dirty_surrogates_.begin(), entries.begin(),
                           entries.end());
}

Result<int64_t> HTableSet::IdFor(const Tuple& current_row) {
  if (natural_int_key_) {
    return current_row.at(key_positions_[0]).AsInt();
  }
  std::string encoded;
  for (size_t kp : key_positions_) {
    current_row.at(kp).EncodeTo(&encoded);
  }
  auto [it, inserted] = surrogate_ids_.try_emplace(encoded, next_surrogate_);
  if (inserted) {
    ++next_surrogate_;
    dirty_surrogates_.emplace_back(it->first, it->second);
  }
  return it->second;
}

Status HTableSet::ArchiveInsert(const Tuple& row, Date now) {
  ARCHIS_ASSIGN_OR_RETURN(int64_t id, IdFor(row));
  ARCHIS_RETURN_NOT_OK(key_store_->InsertVersion(id, {}, now));
  for (size_t a = 0; a < attr_stores_.size(); ++a) {
    ARCHIS_RETURN_NOT_OK(attr_stores_[a]->InsertVersion(
        id, {row.at(attr_positions_[a])}, now));
  }
  return Status::OK();
}

Status HTableSet::ArchiveUpdate(const Tuple& old_row, const Tuple& new_row,
                                Date now) {
  ARCHIS_ASSIGN_OR_RETURN(int64_t id, IdFor(old_row));
  for (size_t a = 0; a < attr_stores_.size(); ++a) {
    const Value& old_v = old_row.at(attr_positions_[a]);
    const Value& new_v = new_row.at(attr_positions_[a]);
    if (old_v == new_v) continue;  // grouped: running interval continues
    ARCHIS_RETURN_NOT_OK(attr_stores_[a]->ReplaceVersion(id, {new_v}, now));
  }
  return Status::OK();
}

Status HTableSet::ArchiveDelete(const Tuple& row, Date now) {
  ARCHIS_ASSIGN_OR_RETURN(int64_t id, IdFor(row));
  ARCHIS_RETURN_NOT_OK(key_store_->CloseVersion(id, now));
  for (const auto& store : attr_stores_) {
    ARCHIS_RETURN_NOT_OK(store->CloseVersion(id, now));
  }
  return Status::OK();
}

Result<SegmentedStore*> HTableSet::attribute_store(
    const std::string& attr) const {
  for (size_t a = 0; a < attr_names_.size(); ++a) {
    if (attr_names_[a] == attr) return attr_stores_[a].get();
  }
  return Status::NotFound("relation " + name_ + " has no attribute history '" +
                          attr + "'");
}

Status HTableSet::FreezeAll(Date now) {
  ARCHIS_RETURN_NOT_OK(key_store_->Freeze(now));
  for (const auto& store : attr_stores_) {
    ARCHIS_RETURN_NOT_OK(store->Freeze(now));
  }
  return Status::OK();
}

Result<std::vector<Tuple>> HTableSet::Snapshot(Date t) const {
  // Live ids at t.
  std::vector<int64_t> ids;
  ARCHIS_RETURN_NOT_OK(key_store_->ScanSnapshot(t, [&](const Tuple& row) {
    ids.push_back(row.at(0).AsInt());
    return true;
  }));
  // Attribute values at t, per store. Hash maps: the reassembly loop below
  // probes per (id, attribute), and output order comes from `ids`, not the
  // map, so ordered containers only cost here.
  std::vector<std::unordered_map<int64_t, Value>> attr_values(
      attr_stores_.size());
  for (size_t a = 0; a < attr_stores_.size(); ++a) {
    attr_values[a].reserve(ids.size());
    ARCHIS_RETURN_NOT_OK(
        attr_stores_[a]->ScanSnapshot(t, [&](const Tuple& row) {
          attr_values[a][row.at(0).AsInt()] = row.at(1);
          return true;
        }));
  }
  // Reassemble rows in current-schema order.
  std::vector<Tuple> out;
  for (int64_t id : ids) {
    Tuple row;
    size_t attr_idx = 0;
    bool complete = true;
    for (size_t i = 0; i < current_schema_.num_columns(); ++i) {
      bool is_key = false;
      for (size_t kp : key_positions_) is_key |= (kp == i);
      if (is_key) {
        // Only natural single int keys can be reconstructed; surrogate keys
        // reproduce the surrogate id.
        row.Append(natural_int_key_
                       ? Value(id)
                       : current_schema_.column(i).type == DataType::kInt64
                             ? Value(id)
                             : Value(std::to_string(id)));
      } else {
        auto it = attr_values[attr_idx].find(id);
        if (it == attr_values[attr_idx].end()) {
          complete = false;
          break;
        }
        row.Append(it->second);
        ++attr_idx;
      }
    }
    if (complete) out.push_back(std::move(row));
  }
  return out;
}

uint64_t HTableSet::StorageBytes() const {
  uint64_t total = key_store_->StorageBytes();
  for (const auto& store : attr_stores_) total += store->StorageBytes();
  return total;
}

uint64_t HTableSet::TotalTuples() const {
  uint64_t total = key_store_->TotalTuples();
  for (const auto& store : attr_stores_) total += store->TotalTuples();
  return total;
}

}  // namespace archis::core
