// H-tables (paper Section 5.1): the relational decomposition of one
// relation's history.
//
// For a current relation R(key, a1, ..., an) ArchIS maintains
//   R_key(id, tstart, tend)            -- the key table
//   R_ai(id, ai, tstart, tend)         -- one attribute history table per ai
// each of which is a SegmentedStore. Composite keys map to a generated
// surrogate id (Section 5.1's lineitem example).
#ifndef ARCHIS_ARCHIS_HTABLE_H_
#define ARCHIS_ARCHIS_HTABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "archis/segment_manager.h"

namespace archis::core {

/// The H-table family for one archived relation.
class HTableSet {
 public:
  /// Creates key + attribute stores inside `hdb` for relation `name` with
  /// the given current-table schema. `key_columns` name the relation key
  /// (one INT64 column uses its value as id; anything else gets a
  /// surrogate).
  static Result<std::unique_ptr<HTableSet>> Create(
      minirel::Database* hdb, const std::string& name,
      const minirel::Schema& current_schema,
      const std::vector<std::string>& key_columns,
      const SegmentOptions& seg_options, Date open_date);

  const std::string& relation() const { return name_; }
  const minirel::Schema& current_schema() const { return current_schema_; }

  /// Key column names (as passed to Create).
  const std::vector<std::string>& key_columns() const { return key_columns_; }

  /// Names of the archived attribute columns (non-key columns).
  const std::vector<std::string>& attribute_names() const {
    return attr_names_;
  }

  /// Surrogate-id assignments (empty for natural single-int keys). Each
  /// entry maps the encoded key bytes to the id archived under it; the
  /// checkpoint manifest persists them so ids stay stable across recovery.
  const std::unordered_map<std::string, int64_t>& surrogate_ids() const {
    return surrogate_ids_;
  }
  int64_t next_surrogate() const { return next_surrogate_; }

  /// Restores surrogate assignments captured by a checkpoint. Must run
  /// before any archival touches this set (fresh instance during
  /// recovery); a stale mapping would hand out ids already in history.
  /// Clears dirty tracking — restored assignments are already durable.
  void RestoreSurrogates(
      const std::vector<std::pair<std::string, int64_t>>& entries,
      int64_t next_surrogate);

  /// Merges delta-manifest surrogate assignments on top of a restored
  /// base (recovery only); `next_surrogate` advances the counter.
  void AddSurrogates(
      const std::vector<std::pair<std::string, int64_t>>& entries,
      int64_t next_surrogate);

  /// Surrogate assignments minted since the last checkpoint capture
  /// (fuzzy incremental checkpoints persist only these in a delta).
  /// TakeDirtySurrogates drains; MergeDirtySurrogates undoes a failed
  /// capture.
  size_t dirty_surrogate_count() const { return dirty_surrogates_.size(); }
  std::vector<std::pair<std::string, int64_t>> TakeDirtySurrogates();
  void MergeDirtySurrogates(
      const std::vector<std::pair<std::string, int64_t>>& entries);

  /// The surrogate/natural id for a current tuple; assigns a fresh
  /// surrogate for unseen composite keys.
  Result<int64_t> IdFor(const minirel::Tuple& current_row);

  // -- Archival operations (invoked by the Archiver) -------------------------

  /// Archives a freshly inserted current tuple at `now`.
  Status ArchiveInsert(const minirel::Tuple& row, Date now);

  /// Archives an update: closes changed attribute versions and opens new
  /// ones. Unchanged attributes keep their running interval (temporal
  /// grouping — this is where the ungrouped model would duplicate).
  Status ArchiveUpdate(const minirel::Tuple& old_row,
                       const minirel::Tuple& new_row, Date now);

  /// Archives a deletion: closes the key interval and every attribute.
  Status ArchiveDelete(const minirel::Tuple& row, Date now);

  // -- Access -----------------------------------------------------------------

  /// The key table store.
  SegmentedStore* key_store() { return key_store_.get(); }
  const SegmentedStore* key_store() const { return key_store_.get(); }

  /// The history store of `attr`; NotFound for unknown attributes.
  Result<SegmentedStore*> attribute_store(const std::string& attr) const;

  /// Freezes every store (explicit archival, e.g. before compressing).
  Status FreezeAll(Date now);

  /// Snapshot of the relation at `t`, reconstructed by joining the key
  /// table with every attribute table (rows in current_schema order).
  Result<std::vector<minirel::Tuple>> Snapshot(Date t) const;

  /// Total storage across all stores.
  uint64_t StorageBytes() const;

  /// Aggregate scan stats are exposed per-store; this sums tuple counts.
  uint64_t TotalTuples() const;

 private:
  HTableSet() = default;

  std::string name_;
  minirel::Schema current_schema_;
  std::vector<std::string> key_columns_;
  std::vector<size_t> key_positions_;
  bool natural_int_key_ = false;
  std::vector<std::string> attr_names_;
  std::vector<size_t> attr_positions_;
  std::unique_ptr<SegmentedStore> key_store_;
  std::vector<std::unique_ptr<SegmentedStore>> attr_stores_;
  std::unordered_map<std::string, int64_t> surrogate_ids_;
  /// Assignments minted since the last checkpoint capture, in mint order.
  std::vector<std::pair<std::string, int64_t>> dirty_surrogates_;
  int64_t next_surrogate_ = 1;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_HTABLE_H_
