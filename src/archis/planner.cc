#include "archis/planner.h"

#include <algorithm>
#include <cstdio>

#include "common/metrics.h"
#include "minirel/executor.h"

namespace archis::core {

namespace {

// Cost units (DESIGN.md §11): one unit = decode + filter of one stored
// row. Blocks, pages and probes are charged in the same currency.
constexpr double kTupleCost = 1.0;
/// BlockZIP inflation of one ~4000-byte block.
constexpr double kBlockCost = 24.0;
/// One B+-tree / block-sid-range probe into a segment.
constexpr double kProbeCost = 6.0;
/// One heap-page fetch of the live segment's table.
constexpr double kPageCost = 4.0;
/// Default selectivity of one pushed-down value predicate.
constexpr double kValueCondSelectivity = 0.33;

metrics::Counter* PlansMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_planner_plans_total", "Physical plans produced by PlanQuery");
  return c;
}

metrics::Counter* IdIndexMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_planner_id_index_paths_total",
      "Plan variables routed to the id-index access path");
  return c;
}

metrics::Counter* MergeScanMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_planner_segment_merge_paths_total",
      "Plan variables routed to the temporal segment merge-scan path");
  return c;
}

metrics::Counter* MergeOverIndexMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_planner_merge_beats_index_total",
      "Id-restricted variables where the merge-scan was estimated cheaper "
      "than the id index (the data-shape-driven plan flip)");
  return c;
}

metrics::Counter* AggPushdownMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_planner_agg_pushdowns_total",
      "Plans whose aggregate was pushed below the join/buffer pipeline");
  return c;
}

Result<const SegmentedStore*> ResolveStore(const Archiver& archiver,
                                           const PlanVar& var) {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver.htables(var.relation));
  if (var.attribute.empty()) return set->key_store();
  ARCHIS_ASSIGN_OR_RETURN(SegmentedStore * store,
                          set->attribute_store(var.attribute));
  return store;
}

std::optional<TimeInterval> VarWindow(const PlanVar& var) {
  if (var.snapshot.has_value()) {
    return MakeInterval(*var.snapshot, *var.snapshot);
  }
  return var.overlap;
}

/// Estimated rows the variable's fetch yields after every pushed-down
/// condition — path-independent (both paths post-filter to the same set).
double EstimateVarRows(const SegmentedStore& store, const PlanVar& var) {
  const StoreStatistics& stats = store.statistics();
  if (stats.versions_total == 0) return 0.0;
  const auto total = static_cast<double>(stats.versions_total);
  std::optional<TimeInterval> window = VarWindow(var);
  double rows = window ? stats.EstimateOverlapping(*window) : total;
  if (var.id_eq.has_value()) {
    // One object's share: versions-per-id scaled by the temporal fraction
    // the window keeps.
    rows = stats.VersionsPerId() * (rows / total);
  }
  if (var.current_only) rows *= stats.LiveRatio();
  for (size_t i = 0; i < var.value_conds.size(); ++i) {
    rows *= kValueCondSelectivity;
  }
  return std::max(rows, 0.0);
}

/// Cost of the temporal merge-scan path: covering segments contribute
/// their tuple count (Eq. 3/4 — the segment interval table prunes the
/// rest) plus a BlockZIP inflation charge for every block that survives
/// the temporal zone maps; the live segment is charged per heap page.
double MergeScanCost(const SegmentedStore& store, const PlanVar& var,
                     uint64_t* segments_touched) {
  std::optional<TimeInterval> window = VarWindow(var);
  double cost = 0;
  uint64_t nseg = 0;
  const std::vector<SegmentInfo>& segs = store.segments();
  auto charge = [&](size_t idx) {
    const SegmentInfo& seg = segs[idx];
    const double blocks =
        seg.compressed
            ? static_cast<double>(store.BlocksOverlapping(idx, window))
            : 0.0;
    cost += static_cast<double>(seg.tuple_count) * kTupleCost +
            blocks * kBlockCost;
    ++nseg;
  };
  auto charge_live = [&] {
    cost += static_cast<double>(store.live_total()) * kTupleCost +
            static_cast<double>(store.LiveTableStats().pages) * kPageCost;
    ++nseg;
  };
  if (var.snapshot.has_value() && *var.snapshot < store.live_start()) {
    // ScanSnapshot picks the newest covering segment only.
    std::optional<size_t> covering;
    for (size_t i = 0; i < segs.size(); ++i) {
      if (segs[i].interval.Overlaps(
              MakeInterval(*var.snapshot, *var.snapshot))) {
        covering = i;
      }
    }
    if (covering.has_value()) charge(*covering);
  } else if (var.snapshot.has_value()) {
    charge_live();
  } else if (window.has_value()) {
    for (size_t i = 0; i < segs.size(); ++i) {
      if (segs[i].interval.Overlaps(*window)) charge(i);
    }
    if (window->tend >= store.live_start()) charge_live();
  } else {
    for (size_t i = 0; i < segs.size(); ++i) charge(i);
    charge_live();
  }
  if (segments_touched != nullptr) *segments_touched = nseg;
  return cost;
}

/// Cost of the id-index path: every segment is probed (ScanId has no
/// temporal pruning), but each probe reads only the object's versions —
/// roughly tuple_count / distinct_ids rows and one block inflation for
/// compressed segments.
double IdIndexCost(const SegmentedStore& store, uint64_t* segments_touched) {
  double cost = 0;
  for (const SegmentInfo& seg : store.segments()) {
    const double rows_per_id =
        static_cast<double>(seg.tuple_count) /
        static_cast<double>(std::max<uint64_t>(seg.distinct_ids, 1));
    cost += kProbeCost + rows_per_id * kTupleCost +
            (seg.blocks > 0 ? kBlockCost : 0.0);
  }
  // Live segment: index probe plus the object's live versions.
  const uint64_t live_ids =
      std::max<uint64_t>(store.statistics().distinct_ids.Estimate(), 1);
  cost += kProbeCost + static_cast<double>(store.live_total()) /
                           static_cast<double>(live_ids) * kTupleCost;
  if (segments_touched != nullptr) {
    *segments_touched = store.segments().size() + 1;
  }
  return cost;
}

}  // namespace

PhysicalPlan DefaultPhysicalPlan(const SqlXmlPlan& plan) {
  PhysicalPlan physical;
  physical.vars.resize(plan.vars.size());
  for (size_t v = 0; v < plan.vars.size(); ++v) {
    physical.vars[v].path = plan.vars[v].id_eq.has_value()
                                ? AccessPath::kIdIndex
                                : AccessPath::kSegmentMerge;
    physical.fetch_order.push_back(v);
  }
  return physical;
}

Result<PhysicalPlan> PlanQuery(const Archiver& archiver,
                               const SqlXmlPlan& plan) {
  PhysicalPlan physical = DefaultPhysicalPlan(plan);
  physical.cost_based = true;
  for (size_t v = 0; v < plan.vars.size(); ++v) {
    const PlanVar& var = plan.vars[v];
    ARCHIS_ASSIGN_OR_RETURN(const SegmentedStore* store,
                            ResolveStore(archiver, var));
    VarPlan& vp = physical.vars[v];
    vp.est_rows = EstimateVarRows(*store, var);
    uint64_t merge_segs = 0;
    const double merge_cost = MergeScanCost(*store, var, &merge_segs);
    if (var.id_eq.has_value()) {
      uint64_t index_segs = 0;
      const double index_cost = IdIndexCost(*store, &index_segs);
      if (index_cost <= merge_cost) {
        vp.path = AccessPath::kIdIndex;
        vp.est_cost = index_cost;
        vp.est_segments = index_segs;
      } else {
        vp.path = AccessPath::kSegmentMerge;
        vp.est_cost = merge_cost;
        vp.est_segments = merge_segs;
        MergeOverIndexMetric()->Inc();
      }
    } else {
      vp.path = AccessPath::kSegmentMerge;
      vp.est_cost = merge_cost;
      vp.est_segments = merge_segs;
    }
    (vp.path == AccessPath::kIdIndex ? IdIndexMetric() : MergeScanMetric())
        ->Inc();
    physical.est_total_cost += vp.est_cost;
  }

  // Temporal-join order: fetch the cheapest (fewest estimated rows)
  // variable first — an empty fetch short-circuits everything after it.
  std::stable_sort(physical.fetch_order.begin(), physical.fetch_order.end(),
                   [&](size_t a, size_t b) {
                     return physical.vars[a].est_rows <
                            physical.vars[b].est_rows;
                   });

  // Output-cardinality estimate: textbook equi-join on id, joined
  // pairwise with |R >< S| = |R| * |S| / max(d_R, d_S).
  if (!physical.vars.empty()) {
    double est = physical.vars[0].est_rows;
    double max_d = 1;
    // archis-analyze: allow(dropped-error-arm) -- best-effort estimate; unresolvable store keeps default distinct-count
    if (const Result<const SegmentedStore*> s0 =
            ResolveStore(archiver, plan.vars[0]);
        s0.ok()) {
      max_d = std::max<double>(
          1, static_cast<double>((*s0)->statistics().distinct_ids.Estimate()));
    }
    for (size_t v = 1; v < physical.vars.size(); ++v) {
      double d = 1;
      // archis-analyze: allow(dropped-error-arm) -- best-effort estimate; unresolvable store keeps default distinct-count
      if (const Result<const SegmentedStore*> sv =
              ResolveStore(archiver, plan.vars[v]);
          sv.ok()) {
        d = std::max<double>(
            1,
            static_cast<double>((*sv)->statistics().distinct_ids.Estimate()));
      }
      if (plan.join_on_id) {
        est = minirel::EstimateEquiJoinRows(est, physical.vars[v].est_rows,
                                            max_d, d);
      } else {
        est = est * physical.vars[v].est_rows;
      }
      max_d = std::max(max_d, d);
    }
    physical.est_result_rows =
        plan.aggregate != PlanAggregate::kNone ? 1.0 : est;
  }

  // Aggregate pushdown: a single-variable scalar/temporal aggregate with
  // no cross conditions needs neither the join nor the row buffers.
  if (plan.vars.size() == 1 && plan.aggregate != PlanAggregate::kNone &&
      plan.cross_conds.empty()) {
    physical.stream_aggregate = true;
    AggPushdownMetric()->Inc();
  }

  PlansMetric()->Inc();
  return physical;
}

std::string PhysicalPlan::Describe() const {
  std::string out = cost_based ? "cost-based" : "fixed";
  char buf[96];
  if (cost_based) {
    std::snprintf(buf, sizeof(buf), " cost=%.1f est_rows=%.1f",
                  est_total_cost, est_result_rows);
    out += buf;
  }
  for (size_t i = 0; i < fetch_order.size(); ++i) {
    const size_t v = fetch_order[i];
    std::snprintf(buf, sizeof(buf), " v%zu=%s", v,
                  vars[v].path == AccessPath::kIdIndex ? "id-index"
                                                      : "segment-merge");
    out += buf;
  }
  if (stream_aggregate) out += " agg-pushdown";
  return out;
}

void AppendPlanCacheKey(const SqlXmlPlan& plan, std::string* out) {
  std::string& key = *out;
  auto put_u64 = [&key](uint64_t v) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto put_i64 = [&put_u64](int64_t v) { put_u64(static_cast<uint64_t>(v)); };
  auto put_str = [&key, &put_u64](const std::string& s) {
    put_u64(s.size());
    key += s;
  };
  auto put_conds = [&key, &put_u64](const std::vector<ValueCond>& conds) {
    put_u64(conds.size());
    for (const ValueCond& c : conds) {
      key.push_back(static_cast<char>(c.op));
      // EncodeTo emits no type tag (int64 and double are both 8 raw
      // bytes), so tag the constant ourselves.
      key.push_back(static_cast<char>(c.constant.type()));
      c.constant.EncodeTo(&key);
    }
  };
  put_u64(plan.vars.size());
  for (const PlanVar& v : plan.vars) {
    // xq_name is debugging-only; everything else changes what the planner
    // (or the executor's pushed-down scan) does, so everything else is
    // part of the key.
    put_str(v.relation);
    put_str(v.attribute);
    put_conds(v.value_conds);
    put_conds(v.tstart_conds);
    put_conds(v.tend_conds);
    key.push_back(v.snapshot.has_value() ? 1 : 0);
    if (v.snapshot.has_value()) put_i64(v.snapshot->days());
    key.push_back(v.overlap.has_value() ? 1 : 0);
    if (v.overlap.has_value()) {
      put_i64(v.overlap->tstart.days());
      put_i64(v.overlap->tend.days());
    }
    key.push_back(v.id_eq.has_value() ? 1 : 0);
    if (v.id_eq.has_value()) put_i64(*v.id_eq);
    key.push_back(v.current_only ? 1 : 0);
    put_u64(v.join_group);
  }
  put_u64(plan.cross_conds.size());
  for (const CrossCond& c : plan.cross_conds) {
    key.push_back(static_cast<char>(c.kind));
    put_u64(c.lhs.var);
    key.push_back(static_cast<char>(c.lhs.col));
    key.push_back(static_cast<char>(c.op));
    put_u64(c.rhs.var);
    key.push_back(static_cast<char>(c.rhs.col));
  }
  key.push_back(plan.join_on_id ? 1 : 0);
  key.push_back(plan.distinct_output ? 1 : 0);
  key.push_back(static_cast<char>(plan.aggregate));
  put_i64(plan.agg_window_days);
}

}  // namespace archis::core
