#include "archis/stats.h"

#include <algorithm>
#include <cmath>

#include "common/coding.h"

namespace archis::core {

using coding::AppendI64;
using coding::AppendU32;
using coding::AppendU64;
using coding::ReadI64;
using coding::ReadU32;
using coding::ReadU64;

namespace {

int64_t AlignDown(int64_t day, int64_t width) {
  int64_t q = day / width;
  if (day % width != 0 && day < 0) --q;
  return q * width;
}

}  // namespace

// -- TemporalHistogram --------------------------------------------------------

void TemporalHistogram::CoverDay(int64_t day) {
  if (total_ == 0) {
    base_ = AlignDown(day, width_);
    return;
  }
  const auto buckets = static_cast<int64_t>(kBuckets);
  const int64_t lo = std::min(base_, day);
  const int64_t hi = std::max(base_ + width_ * buckets - 1, day);
  int64_t new_width = width_;
  int64_t new_base = AlignDown(lo, new_width);
  while (hi >= new_base + new_width * buckets) {
    new_width *= 2;
    new_base = AlignDown(lo, new_width);
  }
  if (new_width == width_) return;
  // Remap: the final range covers both the old range and `day`, widths are
  // grid-aligned powers of two, so every old bucket lands wholly inside
  // one new bucket.
  std::array<uint64_t, kBuckets> merged{};
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const int64_t start = base_ + static_cast<int64_t>(i) * width_;
    merged[static_cast<size_t>((start - new_base) / new_width)] += counts_[i];
  }
  counts_ = merged;
  base_ = new_base;
  width_ = new_width;
}

void TemporalHistogram::Add(int64_t day) {
  CoverDay(day);
  counts_[static_cast<size_t>((day - base_) / width_)] += 1;
  ++total_;
}

double TemporalHistogram::FractionIn(int64_t lo, int64_t hi) const {
  if (total_ == 0 || hi < lo) return 0.0;
  double in = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const int64_t b_lo = base_ + static_cast<int64_t>(i) * width_;
    const int64_t b_hi = b_lo + width_ - 1;
    const int64_t o_lo = std::max(lo, b_lo);
    const int64_t o_hi = std::min(hi, b_hi);
    if (o_hi < o_lo) continue;
    in += static_cast<double>(counts_[i]) *
          (static_cast<double>(o_hi - o_lo + 1) /
           static_cast<double>(width_));
  }
  return in / static_cast<double>(total_);
}

void TemporalHistogram::AppendTo(std::string* out) const {
  AppendI64(base_, out);
  AppendI64(width_, out);
  AppendU64(total_, out);
  for (uint64_t c : counts_) AppendU64(c, out);
}

Result<TemporalHistogram> TemporalHistogram::Parse(std::string_view data,
                                                   size_t* pos) {
  TemporalHistogram h;
  ARCHIS_ASSIGN_OR_RETURN(h.base_, ReadI64(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(h.width_, ReadI64(data, pos));
  if (h.width_ < 1) return Status::Corruption("histogram width < 1");
  ARCHIS_ASSIGN_OR_RETURN(h.total_, ReadU64(data, pos));
  for (uint64_t& c : h.counts_) {
    ARCHIS_ASSIGN_OR_RETURN(c, ReadU64(data, pos));
  }
  return h;
}

// -- DistinctEstimator --------------------------------------------------------

void DistinctEstimator::Add(int64_t id) {
  // splitmix64 finalizer: deterministic, well-mixed for sequential ids.
  auto x = static_cast<uint64_t>(id) + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  const size_t bit = static_cast<size_t>(x % kBits);
  const uint64_t mask = 1ull << (bit % 64);
  if ((words_[bit / 64] & mask) == 0) {
    words_[bit / 64] |= mask;
    ++set_bits_;
  }
}

uint64_t DistinctEstimator::Estimate() const {
  if (set_bits_ == 0) return 0;
  if (set_bits_ >= kBits) return kBits * 8;  // saturated: a coarse floor
  const double m = kBits;
  const double unset = m - static_cast<double>(set_bits_);
  return static_cast<uint64_t>(std::llround(-m * std::log(unset / m)));
}

void DistinctEstimator::AppendTo(std::string* out) const {
  AppendU32(set_bits_, out);
  for (uint64_t w : words_) AppendU64(w, out);
}

Result<DistinctEstimator> DistinctEstimator::Parse(std::string_view data,
                                                   size_t* pos) {
  DistinctEstimator e;
  ARCHIS_ASSIGN_OR_RETURN(e.set_bits_, ReadU32(data, pos));
  for (uint64_t& w : e.words_) {
    ARCHIS_ASSIGN_OR_RETURN(w, ReadU64(data, pos));
  }
  return e;
}

// -- StoreStatistics ----------------------------------------------------------

double StoreStatistics::EstimateOverlapping(const TimeInterval& window) const {
  if (versions_total == 0) return 0.0;
  const auto total = static_cast<double>(versions_total);
  // Versions whose tstart is past the window end cannot overlap it.
  const double started =
      total * tstart_hist.FractionAtMost(window.tend.days());
  // Closed versions whose tend precedes the window start ended too early;
  // open versions always reach the window.
  const double ended_before =
      static_cast<double>(tend_hist.total()) *
      tend_hist.FractionIn(INT64_MIN, window.tstart.days() - 1);
  return std::clamp(started - ended_before, 0.0, total);
}

double StoreStatistics::VersionsPerId() const {
  const uint64_t ids = distinct_ids.Estimate();
  if (ids == 0) return 0.0;
  return std::max(1.0, static_cast<double>(versions_total) /
                           static_cast<double>(ids));
}

void StoreStatistics::AppendTo(std::string* out) const {
  AppendU64(versions_total, out);
  AppendU64(versions_open, out);
  tstart_hist.AppendTo(out);
  tend_hist.AppendTo(out);
  distinct_ids.AppendTo(out);
}

Result<StoreStatistics> StoreStatistics::Parse(std::string_view data,
                                               size_t* pos) {
  StoreStatistics s;
  ARCHIS_ASSIGN_OR_RETURN(s.versions_total, ReadU64(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(s.versions_open, ReadU64(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(s.tstart_hist, TemporalHistogram::Parse(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(s.tend_hist, TemporalHistogram::Parse(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(s.distinct_ids,
                          DistinctEstimator::Parse(data, pos));
  return s;
}

std::string StoreStatistics::Encode() const {
  std::string out;
  AppendTo(&out);
  return out;
}

Result<StoreStatistics> StoreStatistics::Decode(std::string_view data) {
  size_t pos = 0;
  ARCHIS_ASSIGN_OR_RETURN(StoreStatistics s, Parse(data, &pos));
  if (pos != data.size()) {
    return Status::Corruption("store statistics snapshot has trailing bytes");
  }
  return s;
}

}  // namespace archis::core
