// The Archiver routes captured changes into the per-relation H-tables and
// maintains the global `relations(relationname, tstart, tend)` table.
#ifndef ARCHIS_ARCHIS_ARCHIVER_H_
#define ARCHIS_ARCHIS_ARCHIVER_H_

#include <map>
#include <memory>
#include <string>

#include "archis/change_capture.h"
#include "archis/htable.h"

namespace archis::core {

/// Owns every relation's HTableSet plus the relations history table.
class Archiver {
 public:
  explicit Archiver(minirel::Database* hdb) : hdb_(hdb) {}

  /// Registers a relation for archival (creates its H-tables) and records
  /// it in the global relations table.
  Status RegisterRelation(const std::string& name,
                          const minirel::Schema& schema,
                          const std::vector<std::string>& key_columns,
                          const SegmentOptions& options, Date open_date);

  /// Closes a relation's interval in the relations table (table dropped).
  Status UnregisterRelation(const std::string& name, Date when);

  /// Applies one captured change to the owning H-tables.
  Status Apply(const ChangeRecord& change);

  /// The H-tables of `name`; NotFound when unregistered.
  Result<HTableSet*> htables(const std::string& name) const;

  /// Relation history entries (the root elements of H-documents).
  struct RelationEntry {
    std::string name;
    TimeInterval interval;
  };
  const std::vector<RelationEntry>& relations() const { return relations_; }

  /// Freezes every store of every relation.
  Status FreezeAll(Date now);

  /// Total H-table storage bytes.
  uint64_t StorageBytes() const;

 private:
  minirel::Database* hdb_;
  std::map<std::string, std::unique_ptr<HTableSet>> sets_;
  std::vector<RelationEntry> relations_;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_ARCHIVER_H_
