#include "archis/segment_manager.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/flight_recorder.h"
#include "common/log.h"
#include "common/metrics.h"
#include "minirel/executor.h"

namespace archis::core {

using minirel::Schema;
using minirel::Table;
using minirel::Tuple;
using minirel::Value;

namespace {

// Clustering observability (DESIGN.md §9): every freeze decision records
// the usefulness ratio U = N_live / N_all it was taken at, so the paper's
// usefulness-based clustering behaviour (TR-81 §6) is measurable on any
// workload, not just in the umin benchmark.
metrics::Counter* FreezesMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_segment_freezes_total",
      "Live segments frozen (usefulness-based clustering events)");
  return c;
}

metrics::Histogram* FreezeUsefulnessMetric() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "archis_segment_freeze_usefulness",
      "Usefulness ratio U = N_live/N_all observed at freeze time",
      metrics::LinearBuckets(0.05, 0.05, 20));
  return h;
}

metrics::Gauge* FrozenSegmentsMetric() {
  static metrics::Gauge* g = metrics::Registry::Global().GetGauge(
      "archis_frozen_segments",
      "Frozen segments currently held across all stores in this process");
  return g;
}

metrics::Counter* FrozenTuplesMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_segment_frozen_tuples_total",
      "Tuples moved from live to frozen segments");
  return c;
}

metrics::Counter* SegmentScansMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_segment_scans_total",
      "Segments (live or frozen) visited by store scans");
  return c;
}

/// Identity of one version across segment copies: (id, tstart days).
using VersionKey = std::pair<int64_t, int64_t>;

struct VersionKeyHash {
  size_t operator()(const VersionKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.first) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(k.second) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

void AccumulateBlobStats(const compress::BlobReadStats& b,
                         StoreScanStats* stats) {
  if (stats == nullptr) return;
  stats->blocks_decompressed += b.blocks_decompressed;
  stats->blocks_pruned_by_time += b.blocks_pruned_by_time;
  stats->block_cache_hits += b.block_cache_hits;
  stats->block_cache_misses += b.block_cache_misses;
}

}  // namespace

Result<std::unique_ptr<SegmentedStore>> SegmentedStore::Create(
    minirel::Database* db, const std::string& name,
    const Schema& row_schema, SegmentOptions options, Date open_date) {
  if (row_schema.num_columns() < 3) {
    return Status::InvalidArgument(
        "row schema needs at least (id, tstart, tend)");
  }
  if (row_schema.column(0).type != minirel::DataType::kInt64) {
    return Status::InvalidArgument("column 0 must be the INT64 id");
  }
  auto store = std::unique_ptr<SegmentedStore>(new SegmentedStore());
  store->name_ = name;
  store->row_schema_ = row_schema;
  store->options_ = options;
  store->db_ = db;
  store->live_start_ = open_date;
  store->tstart_col_ = row_schema.num_columns() - 2;
  store->tend_col_ = row_schema.num_columns() - 1;

  ARCHIS_ASSIGN_OR_RETURN(store->live_,
                          db->catalog().CreateTable(name + "__live",
                                                    row_schema));
  ARCHIS_RETURN_NOT_OK(store->live_->CreateIndex(
      "id", {row_schema.column(0).name}));

  if (options.enabled) {
    std::vector<minirel::Column> arch_cols;
    arch_cols.push_back({"segno", minirel::DataType::kInt64});
    for (const auto& c : row_schema.columns()) arch_cols.push_back(c);
    store->arch_schema_ = Schema(arch_cols);
    ARCHIS_ASSIGN_OR_RETURN(store->arch_,
                            db->catalog().CreateTable(name + "__arch",
                                                      store->arch_schema_));
    ARCHIS_RETURN_NOT_OK(store->arch_->CreateIndex(
        "segno_id", {"segno", row_schema.column(0).name}));
  }
  return store;
}

SegmentedStore::~SegmentedStore() {
  FrozenSegmentsMetric()->Add(-static_cast<int64_t>(segments_.size()));
}

Status SegmentedStore::InsertVersion(int64_t id,
                                     const std::vector<Value>& values,
                                     Date now) {
  if (values.size() + 3 != row_schema_.num_columns()) {
    return Status::InvalidArgument("value arity mismatch for " + name_);
  }
  Tuple row;
  row.Append(Value(id));
  for (const Value& v : values) row.Append(v);
  row.Append(Value(now));
  row.Append(Value(Date::Forever()));
  ARCHIS_RETURN_NOT_OK(live_->Insert(row).status());
  ++live_total_;
  ++live_current_;
  ++stats_.versions_total;
  ++stats_.versions_open;
  stats_.tstart_hist.Add(now.days());
  stats_.distinct_ids.Add(id);
  dirty_.emplace(id, now.days());
  return Status::OK();
}

Status SegmentedStore::LoadVersion(int64_t id,
                                   const std::vector<Value>& values,
                                   const TimeInterval& interval) {
  if (values.size() + 3 != row_schema_.num_columns()) {
    return Status::InvalidArgument("value arity mismatch for " + name_);
  }
  if (!interval.valid()) {
    return Status::InvalidArgument("invalid interval for " + name_);
  }
  Tuple row;
  row.Append(Value(id));
  for (const Value& v : values) row.Append(v);
  row.Append(Value(interval.tstart));
  row.Append(Value(interval.tend));
  ARCHIS_RETURN_NOT_OK(live_->Insert(row).status());
  ++live_total_;
  if (interval.is_current()) ++live_current_;
  ++stats_.versions_total;
  stats_.tstart_hist.Add(interval.tstart.days());
  stats_.distinct_ids.Add(id);
  if (interval.is_current()) {
    ++stats_.versions_open;
  } else {
    stats_.tend_hist.Add(interval.tend.days());
  }
  dirty_.emplace(id, interval.tstart.days());
  return Status::OK();
}

Status SegmentedStore::LoadCheckpointRows(
    const std::vector<minirel::Tuple>& rows) {
  if (TotalTuples() != 0) {
    return Status::InvalidArgument("checkpoint restore into non-empty store " +
                                   name_);
  }
  for (const Tuple& row : rows) {
    if (row.size() != row_schema_.num_columns()) {
      return Status::Corruption("checkpoint row arity mismatch for " + name_);
    }
    std::vector<Value> values;
    for (size_t i = 1; i + 2 < row.size(); ++i) values.push_back(row.at(i));
    ARCHIS_ASSIGN_OR_RETURN(
        TimeInterval interval,
        MakeIntervalChecked(row.at(row.size() - 2).AsDate(),
                            row.at(row.size() - 1).AsDate()));
    ARCHIS_RETURN_NOT_OK(LoadVersion(row.at(0).AsInt(), values, interval));
  }
  return Status::OK();
}

Status SegmentedStore::UpsertCheckpointRow(const Tuple& row) {
  if (row.size() != row_schema_.num_columns()) {
    return Status::Corruption("checkpoint row arity mismatch for " + name_);
  }
  const int64_t id = row.at(0).AsInt();
  const Date tstart = row.at(tstart_col_).AsDate();
  ARCHIS_ASSIGN_OR_RETURN(
      TimeInterval interval,
      MakeIntervalChecked(tstart, row.at(tend_col_).AsDate()));
  // Restored rows all sit in the live segment (restore never freezes), so
  // the live id index sees every version of this id.
  std::optional<storage::RecordId> found_rid;
  std::optional<Tuple> found_row;
  const minirel::TableIndex* idx = live_->GetIndex("id");
  minirel::IndexKey key{Value(id)};
  ARCHIS_RETURN_NOT_OK(live_->IndexScan(
      *idx, key, key, [&](const storage::RecordId& r, const Tuple& t) {
        if (t.at(tstart_col_).AsDate() == tstart) {
          found_rid = r;
          found_row = t;
          return false;
        }
        return true;
      }));
  if (!found_rid.has_value()) {
    std::vector<Value> values;
    for (size_t i = 1; i + 2 < row.size(); ++i) values.push_back(row.at(i));
    return LoadVersion(id, values, interval);
  }
  const bool was_open = found_row->at(tend_col_).AsDate().IsForever();
  storage::RecordId rid = *found_rid;
  ARCHIS_RETURN_NOT_OK(live_->Update(&rid, row));
  // Keep the open/closed counters coherent; the full statistics snapshot
  // is installed from the delta's stats blob afterwards.
  if (was_open && !interval.is_current()) {
    if (live_current_ > 0) --live_current_;
    if (stats_.versions_open > 0) --stats_.versions_open;
  } else if (!was_open && interval.is_current()) {
    ++live_current_;
    ++stats_.versions_open;
  }
  dirty_.emplace(id, tstart.days());
  return Status::OK();
}

std::set<std::pair<int64_t, int64_t>> SegmentedStore::TakeDirty() {
  std::set<std::pair<int64_t, int64_t>> out;
  out.swap(dirty_);
  return out;
}

void SegmentedStore::MergeDirty(
    const std::set<std::pair<int64_t, int64_t>>& dirty) {
  dirty_.insert(dirty.begin(), dirty.end());
}

Status SegmentedStore::FindOpenVersion(int64_t id,
                                       std::optional<storage::RecordId>* rid,
                                       std::optional<Tuple>* row) {
  const minirel::TableIndex* idx = live_->GetIndex("id");
  minirel::IndexKey key{Value(id)};
  ARCHIS_RETURN_NOT_OK(live_->IndexScan(
      *idx, key, key, [&](const storage::RecordId& r, const Tuple& t) {
        if (t.at(tend_col_).AsDate().IsForever()) {
          *rid = r;
          *row = t;
          return false;
        }
        return true;
      }));
  if (!rid->has_value()) {
    return Status::NotFound("no live version of id " + std::to_string(id) +
                            " in " + name_);
  }
  return Status::OK();
}

Status SegmentedStore::CloseVersion(int64_t id, Date now) {
  std::optional<storage::RecordId> found_rid;
  std::optional<Tuple> found_row;
  ARCHIS_RETURN_NOT_OK(FindOpenVersion(id, &found_rid, &found_row));
  Tuple row = *found_row;
  // Close the interval the day before the change takes effect, matching the
  // paper's adjacent-interval samples (…02/19/1989][02/20/1989…).
  Date end = now.AddDays(-1);
  if (end < row.at(tstart_col_).AsDate()) end = row.at(tstart_col_).AsDate();
  row.at(tend_col_) = Value(end);
  storage::RecordId rid = *found_rid;
  ARCHIS_RETURN_NOT_OK(live_->Update(&rid, row));
  if (live_current_ > 0) --live_current_;
  if (stats_.versions_open > 0) --stats_.versions_open;
  stats_.tend_hist.Add(end.days());
  dirty_.emplace(id, row.at(tstart_col_).AsDate().days());
  return FreezeIfNeeded(now);
}

Status SegmentedStore::ReplaceVersion(int64_t id,
                                      const std::vector<Value>& values,
                                      Date now) {
  if (values.size() + 3 != row_schema_.num_columns()) {
    return Status::InvalidArgument("value arity mismatch for " + name_);
  }
  std::optional<storage::RecordId> found_rid;
  std::optional<Tuple> found_row;
  ARCHIS_RETURN_NOT_OK(FindOpenVersion(id, &found_rid, &found_row));
  if (found_row->at(tstart_col_).AsDate() == now) {
    // The open version was born today; overwrite its value columns so the
    // store never holds two versions sharing (id, tstart). A frozen copy of
    // the old value may exist, but the live row is the newer source and
    // shadows it in every scan.
    Tuple row = *found_row;
    for (size_t i = 0; i < values.size(); ++i) row.at(1 + i) = values[i];
    storage::RecordId rid = *found_rid;
    ARCHIS_RETURN_NOT_OK(live_->Update(&rid, row));
    dirty_.emplace(id, now.days());
    return Status::OK();
  }
  Tuple row = *found_row;
  Date closed_at = now.AddDays(-1);
  if (closed_at < row.at(tstart_col_).AsDate()) {
    closed_at = row.at(tstart_col_).AsDate();
  }
  row.at(tend_col_) = Value(closed_at);
  storage::RecordId rid = *found_rid;
  ARCHIS_RETURN_NOT_OK(live_->Update(&rid, row));
  if (live_current_ > 0) --live_current_;
  if (stats_.versions_open > 0) --stats_.versions_open;
  stats_.tend_hist.Add(closed_at.days());
  dirty_.emplace(id, row.at(tstart_col_).AsDate().days());
  ARCHIS_RETURN_NOT_OK(FreezeIfNeeded(now));
  return InsertVersion(id, values, now);
}

double SegmentedStore::Usefulness() const {
  if (live_total_ == 0) return 1.0;
  return static_cast<double>(live_current_) /
         static_cast<double>(live_total_);
}

Status SegmentedStore::FreezeIfNeeded(Date now) {
  if (!options_.enabled) return Status::OK();
  if (live_total_ == 0 || Usefulness() >= options_.umin) return Status::OK();
  return Freeze(now);
}

Status SegmentedStore::Freeze(Date now) {
  if (!options_.enabled || live_total_ == 0) return Status::OK();
  // The clustering decision this freeze embodies: U at freeze time.
  const double usefulness_at_freeze = Usefulness();

  // 1. Collect every tuple of the live segment, sorted by (id, tstart).
  std::vector<Tuple> rows;
  rows.reserve(live_total_);
  ARCHIS_RETURN_NOT_OK(
      live_->Scan([&](const storage::RecordId&, const Tuple& row) {
        rows.push_back(row);
        return true;
      }));
  std::sort(rows.begin(), rows.end(), [&](const Tuple& a, const Tuple& b) {
    if (a.at(0).AsInt() != b.at(0).AsInt()) {
      return a.at(0).AsInt() < b.at(0).AsInt();
    }
    return a.at(tstart_col_).AsDate() < b.at(tstart_col_).AsDate();
  });

  // 2. Allocate the segment and record its interval.
  SegmentInfo info;
  info.segno = next_segno_++;
  info.interval = MakeInterval(live_start_, now);
  info.tuple_count = rows.size();
  info.compressed = options_.compress;
  // Rows are (id, tstart)-sorted, so the exact distinct-id count of the
  // segment is one transition scan (planner input, DESIGN.md §11).
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i == 0 || rows[i].at(0).AsInt() != rows[i - 1].at(0).AsInt()) {
      ++info.distinct_ids;
    }
  }

  // 3. Materialise the frozen segment: BlockZIP blob or id-clustered rows.
  if (options_.compress) {
    ARCHIS_ASSIGN_OR_RETURN(
        std::unique_ptr<CompressedSegment> seg,
        CompressedSegment::Build(row_schema_, rows, options_.block_size,
                                 options_.block_cache_bytes));
    info.blocks = seg->block_count();
    compressed_.push_back(std::move(seg));
  } else {
    compressed_.push_back(nullptr);
    for (const Tuple& row : rows) {
      Tuple arch_row;
      arch_row.Append(Value(info.segno));
      for (const Value& v : row.values()) arch_row.Append(v);
      ARCHIS_RETURN_NOT_OK(arch_->Insert(arch_row).status());
    }
  }
  segments_.push_back(info);

  // 4. New live segment with only the live tuples; drop the old one.
  std::vector<Tuple> carried;
  for (const Tuple& row : rows) {
    if (row.at(tend_col_).AsDate().IsForever()) carried.push_back(row);
  }
  ARCHIS_RETURN_NOT_OK(db_->catalog().DropTable(name_ + "__live"));
  ARCHIS_ASSIGN_OR_RETURN(live_, db_->catalog().CreateTable(name_ + "__live",
                                                            row_schema_));
  ARCHIS_RETURN_NOT_OK(live_->CreateIndex("id",
                                          {row_schema_.column(0).name}));
  for (const Tuple& row : carried) {
    ARCHIS_RETURN_NOT_OK(live_->Insert(row).status());
  }
  live_total_ = carried.size();
  live_current_ = carried.size();
  live_start_ = now;
  FreezesMetric()->Inc();
  FreezeUsefulnessMetric()->Observe(usefulness_at_freeze);
  FrozenSegmentsMetric()->Add(1);
  FrozenTuplesMetric()->Inc(info.tuple_count);
  fr::Record(fr::EventType::kSegmentFreeze, info.segno, info.tuple_count, 0,
             name_);
  logging::Debug("segment.freeze")
      .Kv("store", name_)
      .Kv("segno", info.segno)
      .Kv("usefulness", usefulness_at_freeze)
      .Kv("tuples", info.tuple_count)
      .Kv("carried_live", carried.size())
      .Kv("compressed", options_.compress);
  return Status::OK();
}

std::vector<int64_t> SegmentedStore::CoveringSegments(
    const TimeInterval& iv) const {
  std::vector<int64_t> out;
  for (const SegmentInfo& seg : segments_) {
    if (seg.interval.Overlaps(iv)) out.push_back(seg.segno);
  }
  return out;
}

ThreadPool* SegmentedStore::ScanPool() const {
  if (options_.scan_threads <= 1) return nullptr;
  MutexLock lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.scan_threads));
  }
  // The pool pointer is stable once created, so callers may use it after
  // the lock drops.
  return pool_.get();
}

Status SegmentedStore::ScanFrozenSegment(
    int64_t segno, const std::optional<TimeInterval>& window,
    std::optional<int64_t> id_filter,
    const std::function<bool(const Tuple&)>& fn,
    StoreScanStats* stats) const {
  if (stats != nullptr) ++stats->segments_scanned;
  SegmentScansMetric()->Inc();
  size_t idx = static_cast<size_t>(segno - 1);
  if (idx < compressed_.size() && compressed_[idx] != nullptr) {
    compress::BlobReadStats bstats;
    Status st = compressed_[idx]->Scan(id_filter, window, fn, &bstats);
    AccumulateBlobStats(bstats, stats);
    return st;
  }
  if (arch_ != nullptr) {
    const minirel::TableIndex* idx_si = arch_->GetIndex("segno_id");
    minirel::IndexKey lo{Value(segno)};
    minirel::IndexKey hi{Value(segno)};
    if (id_filter) {
      lo.push_back(Value(*id_filter));
      hi.push_back(Value(*id_filter));
    } else {
      lo.push_back(Value(INT64_MIN));
      hi.push_back(Value(INT64_MAX));
    }
    ARCHIS_RETURN_NOT_OK(arch_->IndexScan(
        *idx_si, lo, hi,
        [&](const storage::RecordId&, const Tuple& arch_row) {
          // Strip the segno column.
          Tuple row(std::vector<Value>(arch_row.values().begin() + 1,
                                       arch_row.values().end()));
          return fn(row);
        }));
  }
  return Status::OK();
}

Status SegmentedStore::ScanSegments(
    const std::vector<int64_t>& segnos, bool include_live,
    const std::optional<TimeInterval>& filter,
    std::optional<int64_t> id_filter,
    const std::function<bool(const Tuple&)>& fn,
    StoreScanStats* stats) const {
  // Deduplicate across sources: the newest copy of (id, tstart) wins, so
  // sources are visited newest first (live, then frozen segments in
  // reverse) and older duplicates are skipped via the seen-set. Rows
  // stream straight to `fn` — no buffering or copying. With a single
  // source (the snapshot fast path — exactly one covering segment,
  // Section 6.1) the seen-set stays empty-cold and costs nothing extra.
  const bool single_source =
      segnos.size() + (include_live ? 1 : 0) <= 1;
  if (ThreadPool* pool = ScanPool();
      pool != nullptr && segnos.size() > 1) {
    return ScanSegmentsParallel(pool, segnos, include_live, filter,
                                id_filter, fn, stats);
  }
  bool stopped = false;
  std::unordered_set<VersionKey, VersionKeyHash> seen;
  std::vector<Tuple> buffered;  // multi-source: deduped rows, sorted later
  auto admit = [&](const Tuple& row) {
    if (stats != nullptr) ++stats->tuples_scanned;
    if (id_filter && row.at(0).AsInt() != *id_filter) return !stopped;
    if (!single_source &&
        !seen.insert({row.at(0).AsInt(),
                      row.at(tstart_col_).AsDate().days()})
             .second) {
      return !stopped;  // an older copy of a version already emitted
    }
    if (filter) {
      TimeInterval iv(row.at(tstart_col_).AsDate(),
                      row.at(tend_col_).AsDate());
      if (!iv.Overlaps(*filter)) return !stopped;
    }
    if (single_source) {
      // Fast path: exactly one source (snapshots, unsegmented scans)
      // streams straight through in storage order.
      if (!fn(row)) stopped = true;
    } else {
      buffered.push_back(row);
    }
    return !stopped;
  };

  // Newest sources first: the live segment, then frozen segments in
  // reverse segno order.
  auto scan_live = [&]() -> Status {
    if (stats != nullptr) ++stats->segments_scanned;
    SegmentScansMetric()->Inc();
    if (id_filter) {
      const minirel::TableIndex* idx = live_->GetIndex("id");
      minirel::IndexKey key{Value(*id_filter)};
      return live_->IndexScan(
          *idx, key, key, [&](const storage::RecordId&, const Tuple& row) {
            return admit(row);
          });
    }
    return live_->Scan([&](const storage::RecordId&, const Tuple& row) {
      return admit(row);
    });
  };
  if (include_live) ARCHIS_RETURN_NOT_OK(scan_live());

  for (auto it = segnos.rbegin(); it != segnos.rend(); ++it) {
    if (stopped) break;
    ARCHIS_RETURN_NOT_OK(
        ScanFrozenSegment(*it, filter, id_filter, admit, stats));
  }

  // Multi-source scans emit in chronological (id, tstart) order — the
  // contract the publisher and XMLAgg outputs rely on.
  std::sort(buffered.begin(), buffered.end(),
            [&](const Tuple& a, const Tuple& b) {
    if (a.at(0).AsInt() != b.at(0).AsInt()) {
      return a.at(0).AsInt() < b.at(0).AsInt();
    }
    return a.at(tstart_col_).AsDate() < b.at(tstart_col_).AsDate();
  });
  for (const Tuple& row : buffered) {
    if (!fn(row)) break;
  }
  return Status::OK();
}

Status SegmentedStore::ScanSegmentsParallel(
    ThreadPool* pool, const std::vector<int64_t>& segnos, bool include_live,
    const std::optional<TimeInterval>& filter,
    std::optional<int64_t> id_filter,
    const std::function<bool(const Tuple&)>& fn,
    StoreScanStats* stats) const {
  // Each frozen segment is one pool task producing an id-sorted run
  // (frozen segments are materialised in (id, tstart) order at freeze
  // time, and both the compressed store and the (segno, id) index scan
  // preserve it). The live segment is scanned on the calling thread while
  // the workers run, then sorted. The runs are k-way merged by
  // (id, tstart) with ties won by the newest source, which reproduces the
  // sequential seen-set semantics: per version the newest copy is the one
  // row-filtered and emitted, older copies are dropped.
  struct SegRun {
    int64_t segno = 0;
    std::vector<Tuple> rows;
    StoreScanStats stats;
    Status status;
  };
  std::vector<SegRun> runs(segnos.size());
  for (size_t i = 0; i < segnos.size(); ++i) {
    runs[i].segno = segnos[segnos.size() - 1 - i];  // newest first
  }
  std::vector<std::future<void>> futures;
  futures.reserve(runs.size());
  for (SegRun& run : runs) {
    futures.push_back(pool->Submit([this, &run, &filter, id_filter] {
      run.status = ScanFrozenSegment(
          run.segno, filter, id_filter,
          [&](const Tuple& row) {
            ++run.stats.tuples_scanned;
            if (id_filter && row.at(0).AsInt() != *id_filter) return true;
            run.rows.push_back(row);
            return true;
          },
          &run.stats);
    }));
  }

  std::vector<Tuple> live_rows;
  // The worker futures must be drained before any early return, so the
  // live-scan status is only checked after the join below.
  Status live_status = Status::OK();
  if (include_live) {
    if (stats != nullptr) ++stats->segments_scanned;
    SegmentScansMetric()->Inc();
    auto collect = [&](const storage::RecordId&, const Tuple& row) {
      if (stats != nullptr) ++stats->tuples_scanned;
      if (id_filter && row.at(0).AsInt() != *id_filter) return true;
      live_rows.push_back(row);
      return true;
    };
    if (id_filter) {
      const minirel::TableIndex* idx = live_->GetIndex("id");
      minirel::IndexKey key{Value(*id_filter)};
      live_status = live_->IndexScan(*idx, key, key, collect);
    } else {
      live_status = live_->Scan(collect);
    }
    std::sort(live_rows.begin(), live_rows.end(),
              [&](const Tuple& a, const Tuple& b) {
      if (a.at(0).AsInt() != b.at(0).AsInt()) {
        return a.at(0).AsInt() < b.at(0).AsInt();
      }
      return a.at(tstart_col_).AsDate() < b.at(tstart_col_).AsDate();
    });
  }

  for (std::future<void>& f : futures) f.get();
  // Accumulate every run's stats BEFORE any status check: a failing run
  // must not drop the work the other runs (and the live scan) already did,
  // or failed scans become invisible in metrics.
  for (const SegRun& run : runs) {
    if (stats != nullptr) {
      stats->segments_scanned += run.stats.segments_scanned;
      stats->tuples_scanned += run.stats.tuples_scanned;
      stats->blocks_decompressed += run.stats.blocks_decompressed;
      stats->blocks_pruned_by_time += run.stats.blocks_pruned_by_time;
      stats->block_cache_hits += run.stats.block_cache_hits;
      stats->block_cache_misses += run.stats.block_cache_misses;
    }
  }
  ARCHIS_RETURN_NOT_OK(live_status);
  for (const SegRun& run : runs) {
    ARCHIS_RETURN_NOT_OK(run.status);
  }

  // Merge: rank 0 is the live run (newest), rank r the r-th newest frozen
  // segment. Smaller rank wins ties on (id, tstart).
  std::vector<const std::vector<Tuple>*> sources;
  sources.reserve(runs.size() + 1);
  sources.push_back(&live_rows);
  for (const SegRun& run : runs) sources.push_back(&run.rows);

  struct Cursor {
    size_t rank;
    size_t pos;
  };
  auto row_at = [&](const Cursor& c) -> const Tuple& {
    return (*sources[c.rank])[c.pos];
  };
  auto after = [&](const Cursor& a, const Cursor& b) {
    const Tuple& ra = row_at(a);
    const Tuple& rb = row_at(b);
    if (ra.at(0).AsInt() != rb.at(0).AsInt()) {
      return ra.at(0).AsInt() > rb.at(0).AsInt();
    }
    Date ta = ra.at(tstart_col_).AsDate();
    Date tb = rb.at(tstart_col_).AsDate();
    if (ta != tb) return ta > tb;
    return a.rank > b.rank;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(after)> heads(
      after);
  for (size_t r = 0; r < sources.size(); ++r) {
    if (!sources[r]->empty()) heads.push({r, 0});
  }
  bool have_last = false;
  VersionKey last_key{0, 0};
  while (!heads.empty()) {
    Cursor c = heads.top();
    heads.pop();
    const Tuple& row = row_at(c);
    VersionKey key{row.at(0).AsInt(), row.at(tstart_col_).AsDate().days()};
    if (!have_last || key != last_key) {
      have_last = true;
      last_key = key;
      bool pass = true;
      if (filter) {
        TimeInterval iv(row.at(tstart_col_).AsDate(),
                        row.at(tend_col_).AsDate());
        pass = iv.Overlaps(*filter);
      }
      if (pass && !fn(row)) return Status::OK();
    }
    if (++c.pos < sources[c.rank]->size()) heads.push(c);
  }
  return Status::OK();
}

Status SegmentedStore::ScanInterval(
    const TimeInterval& query, const std::function<bool(const Tuple&)>& fn,
    StoreScanStats* stats) const {
  if (!options_.enabled) {
    return ScanSegments({}, /*include_live=*/true, query, std::nullopt, fn,
                        stats);
  }
  std::vector<int64_t> segnos = CoveringSegments(query);
  if (stats != nullptr) stats->segments_considered = segments_.size() + 1;
  bool live_overlaps = query.tend >= live_start_;
  return ScanSegments(segnos, live_overlaps, query, std::nullopt, fn, stats);
}

Status SegmentedStore::ScanSnapshot(
    Date t, const std::function<bool(const Tuple&)>& fn,
    StoreScanStats* stats) const {
  TimeInterval point(t, t);
  if (!options_.enabled) {
    return ScanSegments({}, true, point, std::nullopt, fn, stats);
  }
  if (stats != nullptr) stats->segments_considered = segments_.size() + 1;
  if (t >= live_start_) {
    // Served entirely by the live segment.
    return ScanSegments({}, true, point, std::nullopt, fn, stats);
  }
  // One frozen segment covers the timestamp; the newest covering segment
  // holds the freshest copies.
  std::vector<int64_t> covering = CoveringSegments(point);
  if (covering.empty()) return Status::OK();
  return ScanSegments({covering.back()}, false, point, std::nullopt, fn,
                      stats);
}

Status SegmentedStore::ScanHistory(
    const std::function<bool(const Tuple&)>& fn,
    StoreScanStats* stats) const {
  std::vector<int64_t> all;
  for (const SegmentInfo& seg : segments_) all.push_back(seg.segno);
  if (stats != nullptr) stats->segments_considered = segments_.size() + 1;
  return ScanSegments(all, true, std::nullopt, std::nullopt, fn, stats);
}

Status SegmentedStore::ScanId(int64_t id,
                              const std::function<bool(const Tuple&)>& fn,
                              StoreScanStats* stats) const {
  std::vector<int64_t> all;
  for (const SegmentInfo& seg : segments_) all.push_back(seg.segno);
  if (stats != nullptr) stats->segments_considered = segments_.size() + 1;
  return ScanSegments(all, true, std::nullopt, id, fn, stats);
}

uint64_t SegmentedStore::StorageBytes() const {
  uint64_t total = live_->DataBytes() + live_->IndexBytes();
  if (arch_ != nullptr) {
    total += arch_->DataBytes() + arch_->IndexBytes();
  }
  for (const auto& seg : compressed_) {
    if (seg != nullptr) total += seg->CompressedBytes();
  }
  return total;
}

uint64_t SegmentedStore::BlocksOverlapping(
    size_t index, const std::optional<TimeInterval>& window) const {
  if (index >= compressed_.size() || compressed_[index] == nullptr) return 0;
  return compressed_[index]->BlocksOverlapping(window);
}

minirel::TableStats SegmentedStore::LiveTableStats() const {
  return live_->Stats();
}

uint64_t SegmentedStore::TotalTuples() const {
  uint64_t total = live_total_;
  for (const SegmentInfo& seg : segments_) total += seg.tuple_count;
  return total;
}

uint64_t SegmentedStore::LogicalTuples() const {
  uint64_t n = 0;
  // Best-effort introspection counter: a failed scan just reports the
  // tuples seen so far, which is the most this size probe can promise.
  IgnoreStatus(ScanHistory([&](const Tuple&) {
    ++n;
    return true;
  }));
  return n;
}

}  // namespace archis::core
