#include "archis/change_capture.h"

#include "common/coding.h"

namespace archis::core {

namespace {

using coding::AppendI64;
using coding::AppendLengthPrefixed;
using coding::AppendU32;
using coding::ReadI64;
using coding::ReadLengthPrefixed;
using coding::ReadU32;
using minirel::DataType;
using minirel::Tuple;
using minirel::Value;

}  // namespace

void EncodeTuple(const Tuple& row, std::string* out) {
  AppendU32(static_cast<uint32_t>(row.size()), out);
  for (const Value& v : row.values()) {
    out->push_back(static_cast<char>(v.type()));
    v.EncodeTo(out);
  }
}

Result<Tuple> DecodeTuple(std::string_view data, size_t* pos) {
  ARCHIS_ASSIGN_OR_RETURN(uint32_t n, ReadU32(data, pos));
  Tuple row;
  for (uint32_t i = 0; i < n; ++i) {
    if (*pos >= data.size()) {
      return Status::Corruption("change record truncated (value tag)");
    }
    auto type = static_cast<DataType>(data[*pos]);
    if (type != DataType::kInt64 && type != DataType::kDouble &&
        type != DataType::kString && type != DataType::kDate) {
      return Status::Corruption("change record has unknown value type tag");
    }
    ++*pos;
    ARCHIS_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(type, data, pos));
    row.Append(std::move(v));
  }
  return row;
}

void EncodeChangeRecord(const ChangeRecord& change, std::string* out) {
  out->push_back(static_cast<char>(change.kind));
  AppendLengthPrefixed(change.relation, out);
  AppendI64(change.when.days(), out);
  EncodeTuple(change.old_row, out);
  EncodeTuple(change.new_row, out);
}

Result<ChangeRecord> DecodeChangeRecord(std::string_view data, size_t* pos) {
  ChangeRecord change;
  if (*pos >= data.size()) {
    return Status::Corruption("change record truncated (kind)");
  }
  auto kind = static_cast<ChangeKind>(data[*pos]);
  if (kind != ChangeKind::kInsert && kind != ChangeKind::kUpdate &&
      kind != ChangeKind::kDelete) {
    return Status::Corruption("change record has unknown kind");
  }
  change.kind = kind;
  ++*pos;
  ARCHIS_ASSIGN_OR_RETURN(change.relation, ReadLengthPrefixed(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(int64_t days, ReadI64(data, pos));
  change.when = Date(days);
  ARCHIS_ASSIGN_OR_RETURN(change.old_row, DecodeTuple(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(change.new_row, DecodeTuple(data, pos));
  return change;
}

}  // namespace archis::core
