#include "archis/change_capture.h"

namespace archis::core {

Status ChangeCapture::Record(ChangeRecord change) {
  if (mode_ == CaptureMode::kTrigger) {
    return sink_(change);
  }
  log_.push_back(std::move(change));
  return Status::OK();
}

Status ChangeCapture::Flush() {
  for (const ChangeRecord& change : log_) {
    ARCHIS_RETURN_NOT_OK(sink_(change));
  }
  log_.clear();
  return Status::OK();
}

}  // namespace archis::core
