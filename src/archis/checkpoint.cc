#include "archis/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "common/log.h"
#include "storage/log_file.h"

namespace archis::core {

namespace {

using coding::AppendI64;
using coding::AppendLengthPrefixed;
using coding::AppendU32;
using coding::AppendU64;
using coding::ReadI64;
using coding::ReadLengthPrefixed;
using coding::ReadU32;
using coding::ReadU64;
using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using storage::AppendFrame;

// "CKP1", little-endian.
constexpr uint32_t kMagic = 0x31504B43;
// Version 2 added per-store statistics blobs after the current rows;
// version 3 added the incremental chain (base/delta kind, prev_seq,
// absorbed commit sequence, active-transaction table, per-relation full
// flag and current-key deletes). Older manifests still decode, with the
// pre-incremental defaults (full base, offset-based replay).
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 1;

enum class RecordType : uint8_t { kHeader = 1, kRelation = 2, kFooter = 3 };

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

Result<std::string> EncodeRows(const std::vector<Tuple>& rows,
                               const Schema& schema) {
  std::string out;
  AppendU32(static_cast<uint32_t>(rows.size()), &out);
  for (const Tuple& row : rows) {
    ARCHIS_ASSIGN_OR_RETURN(std::string encoded, row.Encode(schema));
    AppendLengthPrefixed(encoded, &out);
  }
  return out;
}

Result<std::vector<Tuple>> DecodeRows(const Schema& schema,
                                      std::string_view data, size_t* pos) {
  ARCHIS_ASSIGN_OR_RETURN(uint32_t count, ReadU32(data, pos));
  std::vector<Tuple> rows;
  rows.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ARCHIS_ASSIGN_OR_RETURN(std::string encoded,
                            ReadLengthPrefixed(data, pos));
    ARCHIS_ASSIGN_OR_RETURN(Tuple row, Tuple::Decode(schema, encoded));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::string> EncodeRelation(const CheckpointRelation& rel) {
  std::string payload;
  payload.push_back(static_cast<char>(RecordType::kRelation));
  EncodeRelationSpec(rel.spec, &payload);
  AppendI64(rel.open_days, &payload);
  AppendI64(rel.close_days, &payload);
  payload.push_back(rel.dropped ? 1 : 0);
  AppendU32(static_cast<uint32_t>(rel.surrogates.size()), &payload);
  for (const auto& [key, id] : rel.surrogates) {
    AppendLengthPrefixed(key, &payload);
    AppendI64(id, &payload);
  }
  AppendI64(rel.next_surrogate, &payload);
  ARCHIS_ASSIGN_OR_RETURN(std::vector<Schema> schemas,
                          StoreSchemasFor(rel.spec));
  if (rel.store_rows.size() != schemas.size()) {
    return Status::Internal("checkpoint: store count mismatch for '" +
                            rel.spec.name + "'");
  }
  AppendU32(static_cast<uint32_t>(rel.store_rows.size()), &payload);
  for (size_t s = 0; s < rel.store_rows.size(); ++s) {
    ARCHIS_ASSIGN_OR_RETURN(std::string rows,
                            EncodeRows(rel.store_rows[s], schemas[s]));
    payload.append(rows);
  }
  ARCHIS_ASSIGN_OR_RETURN(std::string current,
                          EncodeRows(rel.current_rows, rel.spec.schema));
  payload.append(current);
  // v2: per-store statistics snapshots (may be absent when a caller built
  // the relation by hand; recovery then rebuilds from the rows).
  if (!rel.store_stats.empty() &&
      rel.store_stats.size() != rel.store_rows.size()) {
    return Status::Internal("checkpoint: stats count mismatch for '" +
                            rel.spec.name + "'");
  }
  AppendU32(static_cast<uint32_t>(rel.store_stats.size()), &payload);
  for (const std::string& stats : rel.store_stats) {
    AppendLengthPrefixed(stats, &payload);
  }
  // v3: delta support — full flag and deleted current keys.
  payload.push_back(rel.full ? 1 : 0);
  AppendU32(static_cast<uint32_t>(rel.current_deletes.size()), &payload);
  for (const std::string& key : rel.current_deletes) {
    AppendLengthPrefixed(key, &payload);
  }
  return payload;
}

Result<CheckpointRelation> DecodeRelation(uint32_t version,
                                          std::string_view payload,
                                          size_t* pos) {
  CheckpointRelation rel;
  ARCHIS_ASSIGN_OR_RETURN(rel.spec, DecodeRelationSpec(payload, pos));
  ARCHIS_ASSIGN_OR_RETURN(rel.open_days, ReadI64(payload, pos));
  ARCHIS_ASSIGN_OR_RETURN(rel.close_days, ReadI64(payload, pos));
  if (*pos >= payload.size()) {
    return Status::Corruption("checkpoint relation truncated (dropped flag)");
  }
  rel.dropped = payload[*pos] != 0;
  ++*pos;
  ARCHIS_ASSIGN_OR_RETURN(uint32_t nsurrogates, ReadU32(payload, pos));
  for (uint32_t i = 0; i < nsurrogates; ++i) {
    ARCHIS_ASSIGN_OR_RETURN(std::string key, ReadLengthPrefixed(payload, pos));
    ARCHIS_ASSIGN_OR_RETURN(int64_t id, ReadI64(payload, pos));
    rel.surrogates.emplace_back(std::move(key), id);
  }
  ARCHIS_ASSIGN_OR_RETURN(rel.next_surrogate, ReadI64(payload, pos));
  ARCHIS_ASSIGN_OR_RETURN(std::vector<Schema> schemas,
                          StoreSchemasFor(rel.spec));
  ARCHIS_ASSIGN_OR_RETURN(uint32_t nstores, ReadU32(payload, pos));
  if (nstores != schemas.size()) {
    return Status::Corruption(
        "checkpoint relation '" + rel.spec.name + "' has " +
        std::to_string(nstores) + " stores, schema implies " +
        std::to_string(schemas.size()));
  }
  for (uint32_t s = 0; s < nstores; ++s) {
    ARCHIS_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                            DecodeRows(schemas[s], payload, pos));
    rel.store_rows.push_back(std::move(rows));
  }
  ARCHIS_ASSIGN_OR_RETURN(rel.current_rows,
                          DecodeRows(rel.spec.schema, payload, pos));
  if (version >= 2) {
    ARCHIS_ASSIGN_OR_RETURN(uint32_t nstats, ReadU32(payload, pos));
    if (nstats != 0 && nstats != nstores) {
      return Status::Corruption(
          "checkpoint relation '" + rel.spec.name + "' has " +
          std::to_string(nstats) + " stats blobs for " +
          std::to_string(nstores) + " stores");
    }
    for (uint32_t s = 0; s < nstats; ++s) {
      ARCHIS_ASSIGN_OR_RETURN(std::string stats,
                              ReadLengthPrefixed(payload, pos));
      rel.store_stats.push_back(std::move(stats));
    }
  }
  if (version >= 3) {
    if (*pos >= payload.size()) {
      return Status::Corruption("checkpoint relation truncated (full flag)");
    }
    rel.full = payload[*pos] != 0;
    ++*pos;
    ARCHIS_ASSIGN_OR_RETURN(uint32_t ndeletes, ReadU32(payload, pos));
    for (uint32_t i = 0; i < ndeletes; ++i) {
      ARCHIS_ASSIGN_OR_RETURN(std::string key,
                              ReadLengthPrefixed(payload, pos));
      rel.current_deletes.push_back(std::move(key));
    }
  }
  return rel;
}

Result<CheckpointManifest> DecodeHeader(std::string_view payload,
                                        size_t* pos) {
  CheckpointManifest manifest;
  ARCHIS_ASSIGN_OR_RETURN(uint32_t magic, ReadU32(payload, pos));
  ARCHIS_ASSIGN_OR_RETURN(uint32_t version, ReadU32(payload, pos));
  if (magic != kMagic) {
    return Status::Corruption("checkpoint manifest bad magic");
  }
  if (version < kMinVersion || version > kVersion) {
    return Status::Corruption("checkpoint manifest version " +
                              std::to_string(version) + " unsupported");
  }
  manifest.version = version;
  ARCHIS_ASSIGN_OR_RETURN(manifest.seq, ReadU64(payload, pos));
  ARCHIS_ASSIGN_OR_RETURN(manifest.clock_days, ReadI64(payload, pos));
  ARCHIS_ASSIGN_OR_RETURN(manifest.next_txn_id, ReadU64(payload, pos));
  ARCHIS_ASSIGN_OR_RETURN(manifest.wal_offset, ReadU64(payload, pos));
  if (version >= 3) {
    if (*pos >= payload.size()) {
      return Status::Corruption("checkpoint header truncated (kind)");
    }
    manifest.base = payload[*pos] != 0;
    ++*pos;
    ARCHIS_ASSIGN_OR_RETURN(manifest.prev_seq, ReadU64(payload, pos));
    ARCHIS_ASSIGN_OR_RETURN(manifest.absorbed_commit_seq,
                            ReadU64(payload, pos));
    ARCHIS_ASSIGN_OR_RETURN(uint32_t nactive, ReadU32(payload, pos));
    for (uint32_t i = 0; i < nactive; ++i) {
      ARCHIS_ASSIGN_OR_RETURN(uint64_t id, ReadU64(payload, pos));
      manifest.active_txn_ids.push_back(id);
    }
  }
  return manifest;
}

Status WriteFileDurably(const std::string& path, const std::string& bytes,
                        bool sync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(Errno("open", path));
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::IOError(Errno("write", path));
      ::close(fd);
      return st;
    }
    done += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    Status st = Status::IOError(Errno("fsync", path));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

Status SyncDirectoryOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError(Errno("open dir", dir));
  Status st;
  if (::fsync(fd) != 0) st = Status::IOError(Errno("fsync dir", dir));
  ::close(fd);
  return st;
}

}  // namespace

std::string CheckpointPath(const std::string& wal_path) {
  return wal_path + ".ckpt";
}

std::string CheckpointPrevPath(const std::string& wal_path) {
  return wal_path + ".ckpt.prev";
}

std::string CheckpointTmpPath(const std::string& wal_path) {
  return wal_path + ".ckpt.tmp";
}

Result<std::vector<Schema>> StoreSchemasFor(const RelationSpec& spec) {
  std::vector<size_t> key_positions;
  for (const std::string& k : spec.key_columns) {
    ARCHIS_ASSIGN_OR_RETURN(size_t pos, spec.schema.ColumnIndex(k));
    key_positions.push_back(pos);
  }
  std::vector<Schema> schemas;
  schemas.push_back(Schema({{"id", DataType::kInt64},
                            {"tstart", DataType::kDate},
                            {"tend", DataType::kDate}}));
  for (size_t i = 0; i < spec.schema.num_columns(); ++i) {
    bool is_key = false;
    for (size_t kp : key_positions) is_key |= (kp == i);
    if (is_key) continue;
    const auto& col = spec.schema.column(i);
    schemas.push_back(Schema({{"id", DataType::kInt64},
                              {col.name, col.type},
                              {"tstart", DataType::kDate},
                              {"tend", DataType::kDate}}));
  }
  return schemas;
}

Result<std::string> EncodeCheckpointManifest(
    const CheckpointManifest& manifest) {
  std::string out;
  std::string header;
  header.push_back(static_cast<char>(RecordType::kHeader));
  AppendU32(kMagic, &header);
  AppendU32(kVersion, &header);
  AppendU64(manifest.seq, &header);
  AppendI64(manifest.clock_days, &header);
  AppendU64(manifest.next_txn_id, &header);
  AppendU64(manifest.wal_offset, &header);
  header.push_back(manifest.base ? 1 : 0);
  AppendU64(manifest.prev_seq, &header);
  AppendU64(manifest.absorbed_commit_seq, &header);
  AppendU32(static_cast<uint32_t>(manifest.active_txn_ids.size()), &header);
  for (uint64_t id : manifest.active_txn_ids) {
    AppendU64(id, &header);
  }
  AppendFrame(header, &out);
  for (const CheckpointRelation& rel : manifest.relations) {
    ARCHIS_ASSIGN_OR_RETURN(std::string payload, EncodeRelation(rel));
    AppendFrame(payload, &out);
  }
  std::string footer;
  footer.push_back(static_cast<char>(RecordType::kFooter));
  AppendU64(manifest.seq, &footer);
  AppendFrame(footer, &out);
  return out;
}

Result<CheckpointChain> ReadCheckpointChain(const std::string& path) {
  ARCHIS_ASSIGN_OR_RETURN(storage::LogScan scan, storage::ScanLogFile(path));
  if (scan.records.empty()) {
    return Status::Corruption("checkpoint chain '" + path +
                              "' missing or empty");
  }
  CheckpointChain chain;
  CheckpointManifest current;
  bool in_progress = false;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    std::string_view payload = scan.records[i].payload;
    if (payload.empty()) {
      return Status::Corruption("checkpoint record with empty payload");
    }
    auto type = static_cast<RecordType>(payload[0]);
    size_t pos = 1;
    switch (type) {
      case RecordType::kHeader: {
        if (in_progress) {
          // A footer-less manifest can only be the torn *tail* of the
          // chain (appends truncate to the valid prefix first); a header
          // on top of one mid-file means the chain was stitched wrongly.
          return Status::Corruption(
              "checkpoint header inside an unfinished manifest");
        }
        ARCHIS_ASSIGN_OR_RETURN(current, DecodeHeader(payload, &pos));
        in_progress = true;
        break;
      }
      case RecordType::kRelation: {
        if (!in_progress) {
          return Status::Corruption("checkpoint relation outside a manifest");
        }
        ARCHIS_ASSIGN_OR_RETURN(
            CheckpointRelation rel,
            DecodeRelation(current.version, payload, &pos));
        current.relations.push_back(std::move(rel));
        break;
      }
      case RecordType::kFooter: {
        if (!in_progress) {
          return Status::Corruption("checkpoint footer outside a manifest");
        }
        ARCHIS_ASSIGN_OR_RETURN(uint64_t seq, ReadU64(payload, &pos));
        if (seq != current.seq) {
          return Status::Corruption("checkpoint footer seq mismatch");
        }
        chain.manifests.push_back(std::move(current));
        current = CheckpointManifest{};
        in_progress = false;
        chain.valid_bytes = i + 1 < scan.records.size()
                                ? scan.records[i + 1].offset
                                : scan.valid_bytes;
        break;
      }
      default:
        return Status::Corruption("checkpoint record with unknown type " +
                                  std::to_string(payload[0]));
    }
  }
  // A manifest still open at end-of-scan is a torn append: drop it (its
  // bytes sit past valid_bytes and will be truncated by the next delta).
  if (chain.manifests.empty()) {
    return Status::Corruption("checkpoint chain '" + path +
                              "' has no complete manifest (torn write)");
  }
  // Validate the chain links: one base, then deltas in sequence order.
  for (size_t i = 0; i < chain.manifests.size(); ++i) {
    const CheckpointManifest& m = chain.manifests[i];
    if (i == 0) {
      if (!m.base) {
        return Status::Corruption("checkpoint chain starts with a delta");
      }
      continue;
    }
    const CheckpointManifest& prior = chain.manifests[i - 1];
    if (m.base) {
      return Status::Corruption("checkpoint base manifest mid-chain");
    }
    if (m.prev_seq != prior.seq || m.seq <= prior.seq) {
      return Status::Corruption(
          "checkpoint delta seq " + std::to_string(m.seq) +
          " does not extend manifest seq " + std::to_string(prior.seq));
    }
  }
  return chain;
}

CheckpointChain LoadCheckpointChain(const std::string& wal_path) {
  Result<CheckpointChain> newest =
      ReadCheckpointChain(CheckpointPath(wal_path));
  if (newest.ok()) {
    return std::move(*newest);
  }
  Result<CheckpointChain> prev =
      ReadCheckpointChain(CheckpointPrevPath(wal_path));
  if (prev.ok()) {
    // The current chain was unreadable (torn install or corruption) but
    // the previous generation is intact — recovery proceeds from it,
    // replaying more WAL. Worth a warning: a torn install is expected
    // after a crash mid-checkpoint, repeated ones are not.
    logging::Warn("checkpoint.fallback")
        .Kv("error", newest.status().ToString());
    prev->fell_back = true;
    return std::move(*prev);
  }
  // Neither generation is readable: normal for a store that has never
  // checkpointed, so keep it off the warning channel.
  logging::Debug("checkpoint.none")
      .Kv("newest", newest.status().ToString())
      .Kv("prev", prev.status().ToString());
  return CheckpointChain{};
}

Status InstallCheckpointManifest(const std::string& wal_path,
                                 const std::string& bytes,
                                 CheckpointCrashPoint crash) {
  const std::string tmp = CheckpointTmpPath(wal_path);
  const std::string ckpt = CheckpointPath(wal_path);
  const std::string prev = CheckpointPrevPath(wal_path);
  if (crash == CheckpointCrashPoint::kBeforeManifestSync) {
    // Write without fsync, then stop: the temp file exists but nothing
    // guarantees its bytes survived — exactly a pre-fsync power loss.
    ARCHIS_RETURN_NOT_OK(WriteFileDurably(tmp, bytes, /*sync=*/false));
    return Status::IOError("injected crash before checkpoint manifest fsync");
  }
  ARCHIS_RETURN_NOT_OK(WriteFileDurably(tmp, bytes, /*sync=*/true));
  if (crash == CheckpointCrashPoint::kBeforeInstall) {
    return Status::IOError("injected crash before checkpoint install");
  }
  // Rotate: the previous manifest stays readable until the new one is in
  // place, so a crash between the renames still leaves one usable
  // manifest (the fallback path bumps a counter when it is taken).
  if (::rename(ckpt.c_str(), prev.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(Errno("rename", ckpt));
  }
  if (::rename(tmp.c_str(), ckpt.c_str()) != 0) {
    return Status::IOError(Errno("rename", tmp));
  }
  return SyncDirectoryOf(ckpt);
}

Status AppendCheckpointDelta(const std::string& wal_path,
                             const std::string& bytes, uint64_t valid_bytes,
                             CheckpointCrashPoint crash) {
  if (crash == CheckpointCrashPoint::kBeforeInstall) {
    // For a delta, "install" is the append itself: stop before touching
    // the chain so the file stays exactly as the previous checkpoint
    // left it.
    return Status::IOError("injected crash before checkpoint delta append");
  }
  const std::string ckpt = CheckpointPath(wal_path);
  int fd = ::open(ckpt.c_str(), O_WRONLY);
  if (fd < 0) return Status::IOError(Errno("open", ckpt));
  // Chop any torn tail from a previously failed append, then extend.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    Status st = Status::IOError(Errno("ftruncate", ckpt));
    ::close(fd);
    return st;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status st = Status::IOError(Errno("lseek", ckpt));
    ::close(fd);
    return st;
  }
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::IOError(Errno("write", ckpt));
      ::close(fd);
      return st;
    }
    done += static_cast<size_t>(n);
  }
  if (crash == CheckpointCrashPoint::kBeforeManifestSync) {
    // Appended but not fsynced: after a "crash" the tail may be torn,
    // which the chain parser tolerates by dropping it.
    ::close(fd);
    return Status::IOError("injected crash before checkpoint delta fsync");
  }
  if (::fsync(fd) != 0) {
    Status st = Status::IOError(Errno("fsync", ckpt));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace archis::core
