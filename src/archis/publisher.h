// Publishes H-tables as H-documents (paper Section 3, Figures 3-4): the
// temporally grouped XML view of a relation's history. Used to feed the
// native-XML-database baseline and as the denominator of the paper's
// compression ratios (storage size / H-document size).
#ifndef ARCHIS_ARCHIS_PUBLISHER_H_
#define ARCHIS_ARCHIS_PUBLISHER_H_

#include <string>

#include "archis/htable.h"
#include "xml/node.h"

namespace archis::core {

/// Naming for the published document.
struct PublishOptions {
  /// Tag of the root element; defaults to the relation name.
  std::string root_name;
  /// Tag of each per-key element; defaults to the singular of the root
  /// (trailing 's' stripped) or "<relation>_row".
  std::string entity_name;
};

/// Builds the H-document for `set`: one `entity` element per key, carrying
/// the key interval, with an `<id>` child and one child per attribute
/// version, all stamped with inclusive tstart/tend attributes. The root
/// carries `relation_interval` (from the global relations table).
Result<xml::XmlNodePtr> PublishHistory(const HTableSet& set,
                                       const TimeInterval& relation_interval,
                                       PublishOptions options = {});

/// The inverse: loads an H-document (as produced by PublishHistory) into
/// `set`'s H-tables. Entity elements become key versions; their attribute
/// children become attribute versions with their recorded intervals. The
/// target stores must be empty. Attribute elements whose tag is not an
/// archived attribute of the relation are rejected, and `<id>` children
/// must match the entity's id.
Status ImportHistory(HTableSet* set, const xml::XmlNodePtr& doc);

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_PUBLISHER_H_
