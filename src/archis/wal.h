// Write-ahead change log: the durability backbone of the archiving
// pipeline (DESIGN.md §8).
//
// Every schema change and every committed transaction is encoded into
// CRC-framed records (storage/log_file.*) and fsynced before the commit
// returns, so the change history that feeds the H-tables can always be
// rebuilt after a crash. Record stream grammar:
//
//   log    := item*
//   item   := CREATE_RELATION | DROP_RELATION | txn
//   txn    := BEGIN CHANGE* COMMIT          (contiguous, one commit unit)
//
// A transaction is committed iff its COMMIT record is in the valid prefix
// of the log; recovery drops torn tails and BEGIN/CHANGE runs without a
// COMMIT. Group commit: concurrent LogTransaction callers coalesce — one
// leader writes and fsyncs the accumulated batch while followers wait, so
// N commits can cost far fewer than N syncs under load.
#ifndef ARCHIS_ARCHIS_WAL_H_
#define ARCHIS_ARCHIS_WAL_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "archis/change_capture.h"
#include "archis/relation_spec.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/log_file.h"

namespace archis::core {

/// WAL configuration (a member of ArchISOptions).
struct WalOptions {
  /// Log file path; empty disables the WAL (pure in-memory instance).
  std::string path;
  /// fsync on commit. Off trades the durability guarantee for speed.
  bool sync = true;
  /// Deterministic crash injection, forwarded to the log file: writes fail
  /// once this many bytes were written through the handle (0 = never).
  uint64_t fail_after_bytes = 0;
  /// Auto-checkpoint policy: once this many bytes have been committed to
  /// the WAL since the last checkpoint, ArchIS checkpoints after the
  /// commit that crossed the threshold, bounding both the log size and
  /// recovery time (DESIGN.md §10). 0 disables (manual Checkpoint only).
  uint64_t checkpoint_after_bytes = 0;
};

/// Record tags on the wire.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kChange = 2,
  kCommit = 3,
  kCreateRelation = 4,
  kDropRelation = 5,
  /// Written as the first (and only first) record right after a checkpoint
  /// truncates the log; carries the checkpoint sequence number so recovery
  /// can tell a truncated log from one the manifest has not yet absorbed.
  kCheckpoint = 6,
};

/// A committed transaction recovered from the log.
struct WalCommittedTxn {
  uint64_t txn_id = 0;
  Date commit_date;
  std::vector<ChangeRecord> changes;
};

/// A durably logged CreateRelation.
struct WalCreateRelation {
  RelationSpec spec;
  Date open_date;
};

/// A durably logged DropRelation.
struct WalDropRelation {
  std::string name;
  Date when;
};

/// One replayable unit, in log order.
using WalReplayItem =
    std::variant<WalCreateRelation, WalDropRelation, WalCommittedTxn>;

/// Everything recovery learns from reading a log.
struct WalRecovery {
  std::vector<WalReplayItem> items;
  /// Byte offset where each item begins (a transaction starts at its BEGIN
  /// frame), parallel to `items`. Checkpointed recovery replays only items
  /// at or past the manifest's recorded WAL offset.
  std::vector<uint64_t> item_offsets;
  /// Byte length of the valid prefix (the opener truncates to this).
  uint64_t valid_bytes = 0;
  /// Whether a torn tail (truncated / CRC-failing bytes) was dropped.
  bool torn_tail = false;
  /// Transactions begun but never committed in the valid prefix.
  size_t uncommitted_txns = 0;
  /// Highest transaction id seen (the writer resumes above it).
  uint64_t max_txn_id = 0;
  /// Whether the log opens with a checkpoint marker (it was truncated by
  /// that checkpoint), and the marker's sequence number.
  bool has_checkpoint_marker = false;
  uint64_t checkpoint_seq = 0;
};

/// The durable change log. Thread-safe: LogTransaction and the Log* DDL
/// calls may race; they serialize on the group-commit queue.
class Wal {
 public:
  /// Parses the log at `path`, returning replayable items in order. A
  /// missing file recovers as empty. Only structural corruption *inside*
  /// the valid prefix is an error; a torn tail is normal crash fallout.
  static Result<WalRecovery> Recover(const std::string& path);

  /// Opens the log for appending (creating it if missing), after the
  /// caller has replayed Recover()'s items and truncated the torn tail.
  /// `next_txn_id` seeds the id counter (recovery's max_txn_id + 1).
  static Result<std::unique_ptr<Wal>> Open(const WalOptions& options,
                                           uint64_t next_txn_id);

  /// Allocates a fresh transaction id.
  uint64_t NextTxnId();

  /// The id the next NextTxnId() call would return (checkpoint manifests
  /// persist it so truncating the log does not reset the counter).
  uint64_t PeekNextTxnId() const;

  /// Truncates the log in place and restarts it with a durable checkpoint
  /// marker carrying `checkpoint_seq`. Called by ArchIS::Checkpoint after
  /// the manifest is atomically installed; must not race commits (the
  /// facade only checkpoints at quiesce). On I/O failure the WAL is dead,
  /// exactly as for a failed commit.
  Status ResetAfterCheckpoint(uint64_t checkpoint_seq);

  /// Durably logs one committed transaction: BEGIN, the changes, COMMIT,
  /// framed contiguously and fsynced (group commit) before returning OK.
  /// After any I/O failure the WAL is dead and every call returns that
  /// first error — the instance must be reopened (crash semantics).
  Status LogTransaction(uint64_t txn_id,
                        const std::vector<ChangeRecord>& changes,
                        Date commit_date);

  /// Durably logs a CreateRelation (auto-committed schema change).
  Status LogCreateRelation(const RelationSpec& spec, Date open_date);

  /// Durably logs a DropRelation.
  Status LogDropRelation(const std::string& name, Date when);

  /// Commit units durably logged (transactions + DDL records).
  uint64_t commit_count() const;
  /// fsync batches performed; under concurrent commit load this is the
  /// group-commit win: sync_count() <= commit_count().
  uint64_t sync_count() const;
  /// Bytes appended through this handle.
  uint64_t bytes_written() const;
  /// Current end-of-file offset (drops to just past the checkpoint marker
  /// after ResetAfterCheckpoint). The checkpoint manifest records this as
  /// the boundary between absorbed and still-replayable log bytes.
  uint64_t end_offset() const;

 private:
  explicit Wal(std::unique_ptr<storage::AppendLogFile> file)
      : file_(std::move(file)) {}

  /// Appends `framed` and waits until it is durable (leader/follower
  /// group commit).
  Status SubmitDurable(std::string_view framed) ARCHIS_EXCLUDES(mu_);

  mutable Mutex mu_{LockRank::kWal};
  CondVar cv_;
  /// Accumulated frames not yet handed to a leader.
  std::string pending_ ARCHIS_GUARDED_BY(mu_);
  uint64_t submitted_seq_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t pending_seq_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t durable_seq_ ARCHIS_GUARDED_BY(mu_) = 0;
  bool sync_in_progress_ ARCHIS_GUARDED_BY(mu_) = false;
  /// Sticky first I/O failure (the "crashed" state).
  Status dead_ ARCHIS_GUARDED_BY(mu_);
  uint64_t commits_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t syncs_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t bytes_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t next_txn_id_ ARCHIS_GUARDED_BY(mu_) = 1;
  /// Written only by the leader (guarded by sync_in_progress_, which is
  /// itself mutex-protected, so accesses are ordered).
  std::unique_ptr<storage::AppendLogFile> file_;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_WAL_H_
