// Write-ahead change log: the durability backbone of the archiving
// pipeline (DESIGN.md §8, §13).
//
// Every schema change and every committed transaction is encoded into
// CRC-framed records (storage/log_file.*) and fsynced before the commit
// returns, so the change history that feeds the H-tables can always be
// rebuilt after a crash. Record stream grammar:
//
//   log    := item*
//   item   := CREATE_RELATION | DROP_RELATION | BEGIN | CHANGE | COMMIT
//             | ABORT
//
// With concurrent writers the frames of different transactions interleave
// freely; a transaction's own frames stay in program order (BEGIN before
// its CHANGEs before its COMMIT/ABORT). A transaction is committed iff its
// COMMIT record is in the valid prefix of the log; recovery drops torn
// tails, ABORTed runs, and BEGIN/CHANGE runs without a COMMIT.
//
// The facade enqueues BEGIN/CHANGE frames as DML happens (buffered, not
// yet written) and enqueues the COMMIT frame under its commit lock, which
// pins the log order of COMMIT records to the commit order; it then waits
// for durability outside the lock. Group commit: concurrent waiters
// coalesce — one leader writes and fsyncs the accumulated batch while
// followers wait, so N commits can cost far fewer than N syncs under load.
#ifndef ARCHIS_ARCHIS_WAL_H_
#define ARCHIS_ARCHIS_WAL_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "archis/change_capture.h"
#include "archis/relation_spec.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/log_file.h"

namespace archis::core {

/// WAL configuration (a member of ArchISOptions).
struct WalOptions {
  /// Log file path; empty disables the WAL (pure in-memory instance).
  std::string path;
  /// fsync on commit. Off trades the durability guarantee for speed.
  bool sync = true;
  /// Deterministic crash injection, forwarded to the log file: writes fail
  /// once this many bytes were written through the handle (0 = never).
  uint64_t fail_after_bytes = 0;
  /// Auto-checkpoint policy: once this many bytes have been committed to
  /// the WAL since the last checkpoint, ArchIS checkpoints after the
  /// commit that crossed the threshold, bounding both the log size and
  /// recovery time (DESIGN.md §10). 0 disables (manual Checkpoint only).
  uint64_t checkpoint_after_bytes = 0;
  /// Incremental-checkpoint chain length that forces a full base manifest:
  /// once the chain file holds this many manifests (base + deltas), the
  /// next checkpoint writes a fresh base and rotates the old chain to
  /// `.ckpt.prev`. 1 makes every checkpoint a base (the pre-incremental
  /// behaviour); DDL since the last checkpoint also forces a base.
  uint64_t checkpoint_base_every = 8;
};

/// Record tags on the wire.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kChange = 2,
  kCommit = 3,
  kCreateRelation = 4,
  kDropRelation = 5,
  /// Written as the first (and only first) record right after a checkpoint
  /// truncates the log; carries the checkpoint sequence number so recovery
  /// can tell a truncated log from one the manifest has not yet absorbed.
  kCheckpoint = 6,
  /// Explicit rollback of an open transaction whose BEGIN/CHANGE frames
  /// were already enqueued; recovery drops the run (same as a missing
  /// COMMIT, but the marker keeps the log self-describing).
  kAbort = 7,
};

/// A committed transaction recovered from the log.
struct WalCommittedTxn {
  uint64_t txn_id = 0;
  Date commit_date;
  /// Monotonic commit sequence number stamped by the facade's commit lock
  /// (log order of COMMIT records). Checkpoint manifests record the last
  /// absorbed sequence; recovery skips items at or below it. 0 in logs
  /// written without sequence tracking (tests).
  uint64_t commit_seq = 0;
  std::vector<ChangeRecord> changes;
};

/// A durably logged CreateRelation.
struct WalCreateRelation {
  RelationSpec spec;
  Date open_date;
  uint64_t commit_seq = 0;
};

/// A durably logged DropRelation.
struct WalDropRelation {
  std::string name;
  Date when;
  uint64_t commit_seq = 0;
};

/// One replayable unit, in commit order (a transaction is ordered by its
/// COMMIT record, not its BEGIN — frames interleave across transactions).
using WalReplayItem =
    std::variant<WalCreateRelation, WalDropRelation, WalCommittedTxn>;

/// Everything recovery learns from reading a log.
struct WalRecovery {
  std::vector<WalReplayItem> items;
  /// Byte offset where each item begins (a transaction starts at its BEGIN
  /// frame), parallel to `items`. Pre-v3 manifests replay by offset; v3
  /// chains replay by commit_seq.
  std::vector<uint64_t> item_offsets;
  /// Byte length of the valid prefix (the opener truncates to this).
  uint64_t valid_bytes = 0;
  /// Whether a torn tail (truncated / CRC-failing bytes) was dropped.
  bool torn_tail = false;
  /// Transactions begun but never committed in the valid prefix
  /// (crash fallout; aborted runs are not counted).
  size_t uncommitted_txns = 0;
  /// Highest transaction id seen (the writer resumes above it).
  uint64_t max_txn_id = 0;
  /// Highest commit sequence seen on any COMMIT or DDL record.
  uint64_t max_commit_seq = 0;
  /// Whether the log opens with a checkpoint marker (it was truncated by
  /// that checkpoint), and the marker's sequence number.
  bool has_checkpoint_marker = false;
  uint64_t checkpoint_seq = 0;
};

/// The durable change log. Thread-safe: enqueues and waits may race from
/// any number of committers; they serialize on the group-commit queue.
class Wal {
 public:
  /// Parses the log at `path`, returning replayable items in order. A
  /// missing file recovers as empty. Only structural corruption *inside*
  /// the valid prefix is an error; a torn tail is normal crash fallout.
  /// COMMIT records carry a stamp flag: when set, every change of the
  /// transaction is re-stamped to the commit date (explicit transactions
  /// commit at one instant even though their CHANGE frames were logged at
  /// DML time, possibly before a clock advance).
  static Result<WalRecovery> Recover(const std::string& path);

  /// Opens the log for appending (creating it if missing), after the
  /// caller has replayed Recover()'s items and truncated the torn tail.
  /// `next_txn_id` seeds the id counter (recovery's max_txn_id + 1).
  static Result<std::unique_ptr<Wal>> Open(const WalOptions& options,
                                           uint64_t next_txn_id);

  /// Allocates a fresh transaction id.
  uint64_t NextTxnId();

  /// The id the next NextTxnId() call would return (checkpoint manifests
  /// persist it so truncating the log does not reset the counter).
  uint64_t PeekNextTxnId() const;

  /// Truncates the log in place and restarts it with a durable checkpoint
  /// marker carrying `checkpoint_seq`. Called by ArchIS::Checkpoint under
  /// its commit lock when no transaction is open and nothing is buffered
  /// (otherwise open transactions' BEGIN/CHANGE frames would be lost).
  /// On I/O failure the WAL is dead, exactly as for a failed commit.
  Status ResetAfterCheckpoint(uint64_t checkpoint_seq);

  // -- Incremental per-transaction logging (the facade's write path) -------

  /// Buffers a BEGIN frame (not yet written; a later durable wait or group
  /// leader flushes it). Fails only when the WAL is already dead.
  Status EnqueueBegin(uint64_t txn_id);

  /// Buffers one CHANGE frame for an open transaction.
  Status EnqueueChange(uint64_t txn_id, const ChangeRecord& change);

  /// Buffers an ABORT frame (rollback of an already-begun transaction).
  /// Best-effort: the bytes become durable with the next synced batch.
  Status EnqueueAbort(uint64_t txn_id);

  /// Buffers the COMMIT frame and returns a wait ticket. Called under the
  /// facade commit lock so COMMIT order equals commit order; the caller
  /// then releases the lock and calls WaitDurable(ticket). `stamped` marks
  /// explicit transactions whose changes recovery must re-stamp to
  /// `commit_date`.
  Result<uint64_t> EnqueueCommit(uint64_t txn_id, Date commit_date,
                                 bool stamped, uint64_t commit_seq);

  /// Blocks until everything enqueued at or before `ticket` is durable
  /// (leader/follower group commit). Counts one durable commit unit.
  Status WaitDurable(uint64_t ticket);

  /// Flushes everything currently buffered and waits for durability
  /// (checkpoint capture barrier). No commit unit is counted.
  Status FlushDurable();

  // -- One-shot convenience (tests, replication streams) -------------------

  /// Durably logs one committed transaction: BEGIN, the changes, COMMIT,
  /// framed contiguously and fsynced (group commit) before returning OK.
  /// After any I/O failure the WAL is dead and every call returns that
  /// first error — the instance must be reopened (crash semantics).
  Status LogTransaction(uint64_t txn_id,
                        const std::vector<ChangeRecord>& changes,
                        Date commit_date, bool stamped = false,
                        uint64_t commit_seq = 0);

  /// Durably logs a CreateRelation (auto-committed schema change).
  Status LogCreateRelation(const RelationSpec& spec, Date open_date,
                           uint64_t commit_seq = 0);

  /// Durably logs a DropRelation.
  Status LogDropRelation(const std::string& name, Date when,
                         uint64_t commit_seq = 0);

  /// Commit units durably logged (transactions + DDL records).
  uint64_t commit_count() const;
  /// fsync batches performed; under concurrent commit load this is the
  /// group-commit win: sync_count() <= commit_count().
  uint64_t sync_count() const;
  /// Bytes appended through this handle.
  uint64_t bytes_written() const;
  /// Current end-of-file offset (drops to just past the checkpoint marker
  /// after ResetAfterCheckpoint). Does not include buffered frames that no
  /// leader has flushed yet.
  uint64_t end_offset() const;

 private:
  explicit Wal(std::unique_ptr<storage::AppendLogFile> file)
      : file_(std::move(file)) {}

  /// Appends `framed` to the buffer; returns the wait ticket.
  Result<uint64_t> Enqueue(std::string_view framed) ARCHIS_EXCLUDES(mu_);

  /// The leader/follower wait loop; `count_commit` bumps commit_count.
  Status WaitDurableInternal(uint64_t ticket, bool count_commit)
      ARCHIS_EXCLUDES(mu_);

  /// Appends `framed` and waits until it is durable.
  Status SubmitDurable(std::string_view framed) ARCHIS_EXCLUDES(mu_);

  mutable Mutex mu_{LockRank::kWal};
  CondVar cv_;
  /// Accumulated frames not yet handed to a leader.
  std::string pending_ ARCHIS_GUARDED_BY(mu_);
  uint64_t submitted_seq_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t pending_seq_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t durable_seq_ ARCHIS_GUARDED_BY(mu_) = 0;
  bool sync_in_progress_ ARCHIS_GUARDED_BY(mu_) = false;
  /// Sticky first I/O failure (the "crashed" state).
  Status dead_ ARCHIS_GUARDED_BY(mu_);
  uint64_t commits_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t syncs_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t bytes_ ARCHIS_GUARDED_BY(mu_) = 0;
  uint64_t next_txn_id_ ARCHIS_GUARDED_BY(mu_) = 1;
  /// Written only by the leader (guarded by sync_in_progress_, which is
  /// itself mutex-protected, so accesses are ordered).
  std::unique_ptr<storage::AppendLogFile> file_;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_WAL_H_
