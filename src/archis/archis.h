// ArchIS: the Archival Information System facade (paper Figure 5).
//
// Owns the current database and the H-tables, captures every change to the
// current tables through a transactional write path (ArchIS::Transaction,
// durably logged by the write-ahead change log in archis/wal.*), and
// answers temporal XQuery either by translation to SQL/XML plans executed
// on the H-tables (the efficient path) or natively over published
// H-documents (the fallback / cross-validation path).
//
// Typical use:
//
//   RelationSpec spec;
//   spec.name = "employees";
//   spec.schema = schema;
//   spec.key_columns = {"id"};
//   spec.doc_name = "employees.xml";
//   archis::core::ArchIS db(options, Date::FromYmd(1995, 1, 1));
//   db.CreateRelation(spec);
//   db.Insert("employees", row);               // auto-commits (kTrigger)
//   db.AdvanceClock(Date::FromYmd(1995, 6, 1));
//   auto txn = db.Begin();                     // explicit write batch
//   txn->Update("employees", key, new_row);    //   ... more DML ...
//   txn->Commit();                             // one timestamp, durable
//   auto xml = db.Query("for $e in doc(\"employees.xml\")/...");
//
// Concurrency: any number of transactions (up to
// ArchISOptions::max_open_transactions) may be open at once, each owned by
// one thread. DML buffers in the transaction (deferred apply); Commit
// validates the write set against every transaction that committed since
// Begin (first committer wins) and applies + archives + logs the batch
// atomically under the commit lock. A conflicting commit fails with
// StatusCode::kConflict and aborts the transaction.
//
// Durability: configure ArchISOptions::wal.path and construct through
// ArchIS::Open, which replays the log (crash recovery) before accepting
// new work. A default-constructed WalOptions (empty path) keeps the
// instance purely in-memory, as before.
#ifndef ARCHIS_ARCHIS_ARCHIS_H_
#define ARCHIS_ARCHIS_ARCHIS_H_

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "archis/archiver.h"
#include "archis/checkpoint.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "archis/publisher.h"
#include "archis/relation_spec.h"
#include "archis/translator.h"
#include "archis/wal.h"
#include "xquery/evaluator.h"

namespace archis::core {

/// Top-level configuration.
struct ArchISOptions {
  SegmentOptions segment;  ///< clustering / compression knobs
  CaptureMode capture_mode = CaptureMode::kTrigger;
  /// Durable change log; empty path = in-memory only. A WAL-configured
  /// instance must be constructed with ArchIS::Open (which runs recovery).
  WalOptions wal;
  /// Admission limit for concurrently open transactions (Begin fails with
  /// InvalidArgument beyond it). The ambient update-log batch counts too.
  size_t max_open_transactions = 64;
};

/// Which execution path answered a query.
enum class QueryPath { kTranslated, kNativeFallback };

/// Pins ArchIS::Query to one execution path. kTranslated fails with
/// Unsupported instead of falling back; kNative skips translation.
enum class QueryForce { kAuto, kTranslated, kNative };

/// Pins the physical planner for translated queries. kAuto runs the
/// cost-based planner and falls back to the fixed shape if planning
/// fails; kCostBased fails instead of falling back; kFixed bypasses the
/// planner (the pre-planner executor shape — the ablation baseline).
enum class PlanForce { kAuto, kCostBased, kFixed };

/// Per-query options.
struct QueryOptions {
  QueryForce force_path = QueryForce::kAuto;
  PlanForce force_plan = PlanForce::kAuto;
  /// Collect a span-tree profile (parse -> translate -> execute ->
  /// segment scans) on QueryResult::profile. Off by default: profiling
  /// allocates per span, so it is opt-in per query.
  bool collect_profile = false;
  /// Slow-query log threshold in milliseconds. A successful query slower
  /// than this emits a `query.slow` warning carrying the rendered profile
  /// (collection is forced internally while a threshold is active).
  /// 0 disables; negative (the default) defers to ARCHIS_SLOW_QUERY_MS
  /// in the environment (unset/0 = disabled).
  double slow_query_ms = -1.0;
  /// Absolute deadline for this query. The executor checks it at every
  /// scan boundary and every few hundred rows inside a scan, so a long
  /// merge-scan cancels mid-flight with StatusCode::kDeadlineExceeded
  /// (partial PlanStats are still attributed). Unset = no deadline.
  /// Native-path evaluation only checks before starting — cancellation
  /// granularity is a translated-path guarantee.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Result of ArchIS::Query.
struct QueryResult {
  xml::XmlNodePtr xml;   ///< result wrapped in a <results> element
  QueryPath path;        ///< translated SQL/XML or native fallback
  std::string sql;       ///< rendered SQL/XML (translated path only)
  PlanStats stats;       ///< executor statistics (translated path only)
  /// Span tree of this query (QueryOptions::collect_profile); its
  /// Render() is the EXPLAIN-style breakdown.
  std::optional<trace::QueryProfile> profile;
};

class ArchIS;

/// A write batch on one ArchIS instance. DML buffers in the transaction
/// (reads through the handle see its own writes; nothing touches the
/// current tables until Commit), Commit validates the write set against
/// concurrently committed transactions (first committer wins), stamps
/// every change with the commit-instant transaction time, makes the batch
/// durable in the WAL (group commit, fsync) and archives it into the
/// H-tables. A conflicting Commit fails with StatusCode::kConflict and
/// the transaction is aborted.
///
/// A Transaction is movable but single-thread-affine: the first thread to
/// use a handle (fresh from Begin, or freshly moved) claims it, and from
/// then on only that thread may call its methods. A move releases the
/// claim, so the natural handoff idiom works — move the handle into a
/// lambda or thread closure and use it over there; the receiving thread
/// claims it on first use.
///
/// A Transaction must not outlive its ArchIS. Destroying an uncommitted
/// Transaction aborts it.
class Transaction {
 public:
  Transaction(Transaction&& other) noexcept;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction& operator=(Transaction&&) = delete;
  ~Transaction();

  Status Insert(const std::string& relation, const minirel::Tuple& row);

  /// Updates the current row whose key columns equal `key`; the row moves
  /// to `new_row` (key must be unchanged — keys are invariant, Section 3).
  Status Update(const std::string& relation,
                const std::vector<minirel::Value>& key,
                const minirel::Tuple& new_row);

  Status Delete(const std::string& relation,
                const std::vector<minirel::Value>& key);

  /// Durably commits the batch. All changes carry one transaction-time
  /// instant (the clock at commit). Fails with StatusCode::kConflict
  /// (naming the contested key) when another transaction committed a row
  /// in this write set after Begin; the transaction is then aborted.
  /// After Commit the handle is finished; further DML returns Aborted.
  [[nodiscard]] Status Commit();

  /// Discards the batch; nothing is applied, logged or archived.
  Status Abort();

  /// Whether the transaction can still accept DML.
  bool active() const { return !finished_; }

  /// Buffered, not-yet-committed changes.
  size_t pending() const { return changes_.size(); }

  /// Transaction id (WAL frame correlation; diagnostics).
  uint64_t id() const { return txn_id_; }

 private:
  friend class ArchIS;

  /// Write-set overlay entry: the transaction's view of one key.
  /// `row` is the pending current-table tuple (nullopt = deleted);
  /// `display` renders the key for conflict messages.
  struct OverlayEntry {
    std::optional<minirel::Tuple> row;
    std::string display;
  };

  Transaction(ArchIS* db, uint64_t txn_id, uint64_t begin_seq,
              bool stamp_at_commit);

  /// Rejects calls from any thread but the owner (see class comment);
  /// claims the calling thread when the handle is freshly moved.
  Status CheckThread();

  ArchIS* db_;
  uint64_t txn_id_;
  /// Commit sequence number at Begin; commits with a later sequence on an
  /// overlapping key are conflicts.
  uint64_t begin_seq_;
  std::vector<ChangeRecord> changes_;
  /// Write set keyed by relation + encoded key values.
  std::map<std::string, OverlayEntry> overlay_;
  /// Owning thread. A move resets it to the null id ("unclaimed"); the
  /// first use after a move claims the calling thread.
  std::thread::id owner_;
  /// Explicit transactions stamp all changes at commit (one instant);
  /// the ambient update-log batch keeps per-statement dates.
  bool stamp_at_commit_;
  bool finished_ = false;
  /// Whether a BEGIN frame has been written for this txn (lazily, on the
  /// first DML statement).
  bool wal_begun_ = false;
};

/// A transaction-time temporal database on a relational engine.
class ArchIS {
 public:
  /// In-memory instance (no WAL). If `options.wal.path` is set, every DML
  /// call fails — durable instances must be built with Open so recovery
  /// runs first.
  ArchIS(ArchISOptions options, Date start_date);
  ~ArchIS();

  /// Builds an instance with a durable change log: restores the newest
  /// checkpoint chain (base manifest + incremental deltas), replays the
  /// WAL suffix of commits past the chain (truncating a torn tail), then
  /// opens the log for appending. With an empty WAL path this is just the
  /// in-memory constructor.
  static Result<std::unique_ptr<ArchIS>> Open(ArchISOptions options,
                                              Date start_date);

  // -- Schema -----------------------------------------------------------------

  /// Creates a current table plus its H-tables, registers the H-document
  /// name for doc() references, and durably logs the schema change.
  /// Empty `spec.root_tag` defaults to the relation name; empty
  /// `spec.entity_tag` to the root tag with a trailing 's' stripped.
  Status CreateRelation(const RelationSpec& spec);

  /// Drops the current table; history stays queryable, and the relation's
  /// interval closes in the global relations table.
  Status DropRelation(const std::string& name);

  // -- Transaction clock -------------------------------------------------------

  /// Advances the transaction-time clock (must not go backwards). Open
  /// transactions are unaffected: their changes are stamped at the clock
  /// value of their commit instant, not of their Begin.
  Status AdvanceClock(Date now);
  Date Now() const { return clock_; }

  // -- Transactional DML on the current database --------------------------------

  /// Starts an explicit write batch. All its changes commit atomically at
  /// one transaction-time instant. Fails (InvalidArgument) when
  /// max_open_transactions handles are already open, or on a
  /// WAL-configured instance that skipped recovery.
  [[nodiscard]] Result<Transaction> Begin();

  /// Statement-level DML. In kTrigger capture mode each call is its own
  /// auto-committed transaction (durably logged before returning); in
  /// kUpdateLog mode calls accumulate in the ambient batch until Commit.
  Status Insert(const std::string& relation, const minirel::Tuple& row);
  Status Update(const std::string& relation,
                const std::vector<minirel::Value>& key,
                const minirel::Tuple& new_row);
  Status Delete(const std::string& relation,
                const std::vector<minirel::Value>& key);

  /// Commits the ambient batch (kUpdateLog capture mode). No-op when
  /// nothing is buffered; OK in kTrigger mode (statements already
  /// committed themselves).
  Status Commit();

  /// Buffered statement-level changes awaiting Commit.
  size_t pending_changes() const;

  // -- Queries ------------------------------------------------------------------

  /// Answers an XQuery: translated to SQL/XML when the translator covers
  /// it, otherwise evaluated natively over published H-documents.
  /// `options.force_path` pins one path (for equivalence testing).
  Result<QueryResult> Query(const std::string& xquery,
                            const QueryOptions& options = {});

  /// Translation only (the paper reports sub-0.1ms translation costs).
  Result<SqlXmlPlan> Translate(const std::string& xquery) const;

  /// Executes a (possibly hand-built) plan against the H-tables. The
  /// physical shape comes from the cost-based planner unless `force_plan`
  /// says otherwise (see PlanForce).
  /// `deadline` (absolute) cancels the execution at the next scan
  /// boundary once passed (StatusCode::kDeadlineExceeded).
  Result<xml::XmlNodePtr> Execute(
      const SqlXmlPlan& plan, PlanStats* stats = nullptr,
      trace::Trace* trace = nullptr, PlanForce force_plan = PlanForce::kAuto,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt) const;

  /// Native evaluation over published H-documents.
  Result<xquery::Sequence> QueryNative(const std::string& xquery);

  /// The H-document (temporally grouped XML view) of a relation.
  Result<xml::XmlNodePtr> PublishHistory(const std::string& relation) const;

  /// Restores a relation's history from an H-document previously produced
  /// by PublishHistory (archive interchange). The relation must be
  /// registered and its H-tables empty; the current table is not rebuilt —
  /// this is a history-only restore, queryable immediately.
  Status ImportHistory(const std::string& relation,
                       const xml::XmlNodePtr& doc);

  /// Snapshot of a relation reconstructed from its H-tables.
  Result<std::vector<minirel::Tuple>> Snapshot(const std::string& relation,
                                               Date t) const;

  // -- Recovery ----------------------------------------------------------------

  /// Applies one committed transaction recovered from a WAL (or streamed
  /// from a replica). Idempotent: a change whose effect is already present
  /// in the current table is skipped entirely, so replaying a log twice
  /// yields the same state as replaying it once.
  Status ApplyRecovered(const WalCommittedTxn& txn);

  /// Fuzzy incremental checkpoint (DESIGN.md §13): captures durable state
  /// under the commit lock — no quiesce; open transactions keep running —
  /// and installs it next to the WAL. The first checkpoint (and every
  /// WalOptions::checkpoint_base_every-th, and the one after any DDL)
  /// writes a full base manifest via atomic rename; the others append a
  /// delta holding only rows dirtied since the previous capture, so the
  /// manifest cost tracks the write rate, not the database size. The WAL
  /// is truncated to a marker only when the instance happens to be fully
  /// quiesced; otherwise recovery bounds replay by commit sequence.
  /// `crash_point` injects a deterministic stop for crash-recovery tests;
  /// every injected stop leaves a state recovery handles exactly.
  Status Checkpoint(
      CheckpointCrashPoint crash_point = CheckpointCrashPoint::kNone);

  /// Bytes of WAL suffix the last Open replayed (0 when the manifest
  /// covered everything). After a quiesced checkpoint + clean reopen this
  /// is exactly the traffic since that checkpoint — the bounded-recovery
  /// guarantee, asserted by tests via archis_wal_recovered_bytes too.
  uint64_t last_recovery_replayed_bytes() const {
    return last_recovery_replayed_bytes_;
  }

  /// Sequence number of the checkpoint this instance recovered from or
  /// last wrote (0 = none yet).
  uint64_t checkpoint_seq() const { return checkpoint_seq_; }

  /// The WAL handle (nullptr for in-memory instances). Exposes group
  /// commit counters for tests and benchmarks.
  const Wal* wal() const { return wal_.get(); }

  /// Prometheus-style text exposition of the process-wide metrics
  /// registry (WAL group commit, block cache, page IO, segment
  /// clustering, query/executor counters). Static because the registry is
  /// process-wide; see DESIGN.md §9 for the catalog.
  static std::string DumpMetrics();

  /// Chrome trace_event JSON of the process-wide flight recorder (every
  /// thread's recent txn/WAL/checkpoint/query/cache events, timestamp
  /// sorted). Load in chrome://tracing or Perfetto; see DESIGN.md §14.
  static std::string DumpTrace();

  // -- Maintenance / introspection -----------------------------------------------

  /// Freezes every live segment (e.g. before measuring compression).
  Status FreezeAll();

  /// Storage held by the H-tables (archived history).
  uint64_t HistoryStorageBytes() const { return archiver_.StorageBytes(); }

  /// Key-column names of a registered relation (NotFound when unknown).
  /// The network front end uses this to parse typed key values in update
  /// scripts without reaching into the private relation registry.
  Result<std::vector<std::string>> KeyColumns(
      const std::string& relation) const;

  minirel::Database& current_db() { return current_db_; }
  const minirel::Database& current_db() const { return current_db_; }
  Archiver& archiver() { return archiver_; }
  const Archiver& archiver() const { return archiver_; }
  const ArchISOptions& options() const { return options_; }

  /// Translator context (docs registered via CreateRelation).
  TranslatorContext translator_context() const;

 private:
  friend class Transaction;

  struct RelationInfo {
    std::vector<std::string> key_columns;
    std::vector<size_t> key_positions;
    DocBinding doc;
    std::string doc_name;
  };

  /// Dirty state drained from one relation by a checkpoint capture, kept
  /// until the install succeeds so a failed install can merge it back.
  struct RelationDirty {
    std::string name;
    /// Per store (key store first, then attributes): version identities.
    std::vector<std::set<std::pair<int64_t, int64_t>>> store_dirty;
    std::vector<std::pair<std::string, int64_t>> surrogates;
    std::set<std::string> current_keys;
  };

  /// Fails DML on a WAL-configured instance that skipped recovery.
  Status CheckWritable() const;

  Status CreateRelationInternal(RelationSpec spec, Date open_date,
                                bool log_to_wal) ARCHIS_EXCLUDES(commit_mu_);
  Status DropRelationInternal(const std::string& name, Date when,
                              bool log_to_wal) ARCHIS_EXCLUDES(commit_mu_);

  // Transaction plumbing: validate against the transaction's view (its
  // overlay, then the committed table), buffer the change and its WAL
  // frame. Nothing is applied until Commit.
  Status TxnInsert(Transaction* txn, const std::string& relation,
                   const minirel::Tuple& row);
  Status TxnUpdate(Transaction* txn, const std::string& relation,
                   const std::vector<minirel::Value>& key,
                   const minirel::Tuple& new_row);
  Status TxnDelete(Transaction* txn, const std::string& relation,
                   const std::vector<minirel::Value>& key);

  /// Commit protocol: conflict-validate the write set, stamp, apply to
  /// the current tables, archive, log; wait for durability outside the
  /// commit lock (group commit).
  Status CommitTxn(Transaction* txn);

  /// Abort protocol: deregister and best-effort log an ABORT frame.
  Status AbortTxn(Transaction* txn);

  /// Applies one committed change to the current table + H-tables and
  /// marks the row dirty for the next incremental checkpoint.
  Status ApplyCommitted(const ChangeRecord& change)
      ARCHIS_REQUIRES(commit_mu_);

  /// Deregisters `txn_id`; the last one out clears the committed-writer
  /// index (nothing left to conflict with).
  void UnregisterTxnLocked(uint64_t txn_id) ARCHIS_REQUIRES(commit_mu_);

  /// Replays one recovered change; skips changes already applied.
  Status ReplayChange(const ChangeRecord& change)
      ARCHIS_REQUIRES(commit_mu_);

  /// Rebuilds catalog, H-tables, surrogates, current tables and clock from
  /// a base manifest (recovery, before deltas and the WAL suffix).
  Status RestoreFromCheckpoint(const CheckpointManifest& manifest);

  /// Applies one incremental delta manifest on top of the restored base:
  /// upserts store rows by version identity, merges surrogates, installs
  /// the statistics snapshots and patches the current tables.
  Status ApplyCheckpointDelta(const CheckpointManifest& manifest);

  /// Clears every dirty marker (stores, surrogates, current keys) after a
  /// chain restore; WAL-suffix replay re-marks what it touches.
  void ClearAllDirty();

  /// Full snapshot of one registered relation for a base manifest.
  Result<CheckpointRelation> CaptureRelation(const std::string& name,
                                             const TimeInterval& interval)
      ARCHIS_REQUIRES(commit_mu_);

  /// Dirty-rows-only snapshot for a delta manifest; drains dirty state
  /// into `drained` for merge-back on install failure.
  Result<CheckpointRelation> CaptureRelationDelta(const std::string& name,
                                                  const TimeInterval& interval,
                                                  RelationDirty* drained)
      ARCHIS_REQUIRES(commit_mu_);

  /// Drains dirty state of `name` without capturing (base captures are
  /// full, but must still reset the delta baseline).
  void DrainDirty(const std::string& name, RelationDirty* drained)
      ARCHIS_REQUIRES(commit_mu_);

  /// Re-marks dirty state drained by a capture whose install failed.
  void MergeDirtyBack(const std::vector<RelationDirty>& drained)
      ARCHIS_REQUIRES(commit_mu_);

  /// A cost-based physical plan cached by ArchIS::Execute, keyed by
  /// AppendPlanCacheKey (planner.h). `epoch` is the plan_epoch_ value at
  /// planning time; entries from older epochs replan. A stale plan could
  /// only change the access strategy, never the answer (both shapes are
  /// answer-equivalent — the forced-plan equivalence suite is the proof),
  /// so the epoch guards freshness of the cost model, not correctness.
  /// Shared ownership keeps a cache hit at pointer-copy cost; the plan
  /// itself was produced by PlanQuery and is immutable once cached.
  struct CachedPlan {
    uint64_t epoch = 0;
    std::shared_ptr<const PhysicalPlan> physical;
  };

  /// Drops cached plan validity after any mutation that changes segment
  /// statistics or the set of relations (commit, freeze, DDL, recovery).
  void InvalidatePlanCache();

  /// Runs Checkpoint() when the auto-checkpoint byte threshold is crossed.
  /// Failures are logged, not returned: the committed batch that triggered
  /// us is already durable, and a dead WAL surfaces on the next commit.
  void MaybeAutoCheckpoint();

  /// Starts a transaction; explicit batches stamp at commit, the ambient
  /// update-log batch keeps per-statement dates.
  Result<Transaction> BeginInternal(bool stamp_at_commit);

  /// The ambient statement-level batch (kUpdateLog mode), lazily begun.
  Result<Transaction*> AmbientTxn();

  Result<storage::RecordId> FindByKey(minirel::Table* table,
                                      const RelationInfo& info,
                                      const std::vector<minirel::Value>& key,
                                      minirel::Tuple* row) const;

  /// Key column values of `row` under `info` (for replay/apply lookups).
  static std::vector<minirel::Value> KeyOf(const RelationInfo& info,
                                           const minirel::Tuple& row);

  /// Write-set key: relation + '\0' + encoded key values.
  static std::string WriteSetKey(const std::string& relation,
                                 const std::vector<minirel::Value>& key);

  /// Self-describing encoding of the key values (decodable without a
  /// schema — delta manifests persist these for current-table deletes).
  static std::string EncodeKeyValues(const std::vector<minirel::Value>& key);

  /// "relation(v1, v2)" — the conflict-message rendering of a key.
  static std::string DisplayKey(const std::string& relation,
                                const std::vector<minirel::Value>& key);

  /// Contributes the active-transaction table to flight-recorder crash
  /// dumps; registered for this instance's lifetime (defined in the .cc).
  class CrashSource;
  std::unique_ptr<CrashSource> crash_source_;

  ArchISOptions options_;
  Date clock_;
  minirel::Database current_db_;
  minirel::Database history_db_;
  Archiver archiver_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<Transaction> ambient_;
  std::map<std::string, RelationInfo> relations_;

  /// Commit lock: serializes DML validation, commit apply, clock moves
  /// and DDL. Held briefly; commit durability waits happen outside it.
  Mutex commit_mu_{LockRank::kFacadeCommit};
  /// Monotone commit sequence (order of committed transactions).
  uint64_t commit_seq_ ARCHIS_GUARDED_BY(commit_mu_) = 0;
  /// Txn-id source for in-memory instances (WAL instances use the log's).
  uint64_t next_txn_id_ ARCHIS_GUARDED_BY(commit_mu_) = 1;
  /// Ids of open transactions (admission + checkpoint active table).
  std::set<uint64_t> open_txns_ ARCHIS_GUARDED_BY(commit_mu_);
  /// Last commit sequence that wrote each write-set key. Cleared when the
  /// last open transaction finishes (no one left to conflict).
  std::unordered_map<std::string, uint64_t> key_last_writer_
      ARCHIS_GUARDED_BY(commit_mu_);
  /// Current-table rows (encoded key values per relation) written since
  /// the last checkpoint capture.
  std::map<std::string, std::set<std::string>> dirty_current_keys_
      ARCHIS_GUARDED_BY(commit_mu_);
  /// Forces the next checkpoint to write a full base manifest. Starts
  /// true (fresh or recovered instances have no in-process chain) and is
  /// re-set by DDL, whose effects deltas cannot express.
  bool ddl_since_checkpoint_ ARCHIS_GUARDED_BY(commit_mu_) = true;

  /// Serializes checkpoint captures/installs against each other (ranked
  /// outside the commit lock: capture acquires commit_mu_ inside it).
  Mutex checkpoint_mu_{LockRank::kFacadeCheckpoint};
  /// Manifests in the current chain file (base + deltas appended since).
  size_t checkpoint_chain_len_ ARCHIS_GUARDED_BY(checkpoint_mu_) = 0;
  /// Bytes of complete manifests in the chain file (append offset for the
  /// next delta; stale bytes past it are truncated away).
  uint64_t checkpoint_file_valid_bytes_ ARCHIS_GUARDED_BY(checkpoint_mu_) = 0;

  /// Plan cache for Execute (mutable: queries are const). The mutex makes
  /// the cache safe under concurrent read-only queries; mutations happen
  /// single-threaded but still bump the epoch under the lock.
  mutable Mutex plan_cache_mu_{LockRank::kFacadePlanCache};
  mutable std::unordered_map<std::string, CachedPlan> plan_cache_
      ARCHIS_GUARDED_BY(plan_cache_mu_);
  /// Bumped by InvalidatePlanCache on every statistics-changing mutation.
  mutable uint64_t plan_epoch_ ARCHIS_GUARDED_BY(plan_cache_mu_) = 0;
  /// Wal::bytes_written() at the last checkpoint (auto-checkpoint delta).
  uint64_t wal_bytes_at_last_checkpoint_ ARCHIS_GUARDED_BY(checkpoint_mu_) =
      0;
  /// Last checkpoint written or recovered from (0 = none).
  uint64_t checkpoint_seq_ = 0;
  uint64_t last_recovery_replayed_bytes_ = 0;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_ARCHIS_H_
