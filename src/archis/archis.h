// ArchIS: the Archival Information System facade (paper Figure 5).
//
// Owns the current database and the H-tables, captures every change to the
// current tables (triggers or update log), and answers temporal XQuery
// either by translation to SQL/XML plans executed on the H-tables (the
// efficient path) or natively over published H-documents (the fallback /
// cross-validation path).
//
// Typical use:
//
//   archis::core::ArchIS db(options, Date::FromYmd(1995, 1, 1));
//   db.CreateRelation("employees", schema, {"id"},
//                     {"employees.xml", "employees", "employee"});
//   db.Insert("employees", row);
//   db.AdvanceClock(Date::FromYmd(1995, 6, 1));
//   db.Update("employees", key, new_row);
//   auto xml = db.Query("for $e in doc(\"employees.xml\")/...");
#ifndef ARCHIS_ARCHIS_ARCHIS_H_
#define ARCHIS_ARCHIS_ARCHIS_H_

#include <memory>
#include <string>

#include "archis/archiver.h"
#include "archis/publisher.h"
#include "archis/translator.h"
#include "xquery/evaluator.h"

namespace archis::core {

/// Top-level configuration.
struct ArchISOptions {
  SegmentOptions segment;  ///< clustering / compression knobs
  CaptureMode capture_mode = CaptureMode::kTrigger;
};

/// Which execution path answered a query.
enum class QueryPath { kTranslated, kNativeFallback };

/// Result of ArchIS::Query.
struct QueryResult {
  xml::XmlNodePtr xml;   ///< result wrapped in a <results> element
  QueryPath path;        ///< translated SQL/XML or native fallback
  std::string sql;       ///< rendered SQL/XML (translated path only)
  PlanStats stats;       ///< executor statistics (translated path only)
};

/// A transaction-time temporal database on a relational engine.
class ArchIS {
 public:
  ArchIS(ArchISOptions options, Date start_date);

  // -- Schema -----------------------------------------------------------------

  /// Creates a current table plus its H-tables, and registers the
  /// H-document name for doc() references in queries.
  Status CreateRelation(const std::string& name,
                        const minirel::Schema& schema,
                        const std::vector<std::string>& key_columns,
                        const DocBinding& doc,
                        const std::string& doc_name);

  /// Drops the current table; history stays queryable, and the relation's
  /// interval closes in the global relations table.
  Status DropRelation(const std::string& name);

  // -- Transaction clock -------------------------------------------------------

  /// Advances the transaction-time clock (must not go backwards).
  Status AdvanceClock(Date now);
  Date Now() const { return clock_; }

  // -- DML on the current database (change-captured) ----------------------------

  Status Insert(const std::string& relation, const minirel::Tuple& row);

  /// Updates the current row whose key columns equal `key`; the row moves
  /// to `new_row` (key must be unchanged — keys are invariant, Section 3).
  Status Update(const std::string& relation,
                const std::vector<minirel::Value>& key,
                const minirel::Tuple& new_row);

  Status Delete(const std::string& relation,
                const std::vector<minirel::Value>& key);

  /// Applies buffered changes (update-log capture mode).
  Status FlushLog();

  // -- Queries ------------------------------------------------------------------

  /// Answers an XQuery: translated to SQL/XML when the translator covers
  /// it, otherwise evaluated natively over published H-documents.
  Result<QueryResult> Query(const std::string& xquery);

  /// Translation only (the paper reports sub-0.1ms translation costs).
  Result<SqlXmlPlan> Translate(const std::string& xquery) const;

  /// Executes a (possibly hand-built) plan against the H-tables.
  Result<xml::XmlNodePtr> Execute(const SqlXmlPlan& plan,
                                  PlanStats* stats = nullptr) const;

  /// Native evaluation over published H-documents.
  Result<xquery::Sequence> QueryNative(const std::string& xquery);

  /// The H-document (temporally grouped XML view) of a relation.
  Result<xml::XmlNodePtr> PublishHistory(const std::string& relation) const;

  /// Restores a relation's history from an H-document previously produced
  /// by PublishHistory (archive interchange). The relation must be
  /// registered and its H-tables empty; the current table is not rebuilt —
  /// this is a history-only restore, queryable immediately.
  Status ImportHistory(const std::string& relation,
                       const xml::XmlNodePtr& doc);

  /// Snapshot of a relation reconstructed from its H-tables.
  Result<std::vector<minirel::Tuple>> Snapshot(const std::string& relation,
                                               Date t) const;

  // -- Maintenance / introspection -----------------------------------------------

  /// Freezes every live segment (e.g. before measuring compression).
  Status FreezeAll();

  /// Storage held by the H-tables (archived history).
  uint64_t HistoryStorageBytes() const { return archiver_.StorageBytes(); }

  minirel::Database& current_db() { return current_db_; }
  const minirel::Database& current_db() const { return current_db_; }
  Archiver& archiver() { return archiver_; }
  const Archiver& archiver() const { return archiver_; }
  const ArchISOptions& options() const { return options_; }

  /// Translator context (docs registered via CreateRelation).
  TranslatorContext translator_context() const;

 private:
  struct RelationInfo {
    std::vector<std::string> key_columns;
    std::vector<size_t> key_positions;
    DocBinding doc;
    std::string doc_name;
  };

  Result<storage::RecordId> FindByKey(minirel::Table* table,
                                      const RelationInfo& info,
                                      const std::vector<minirel::Value>& key,
                                      minirel::Tuple* row) const;

  ArchISOptions options_;
  Date clock_;
  minirel::Database current_db_;
  minirel::Database history_db_;
  Archiver archiver_;
  std::unique_ptr<ChangeCapture> capture_;
  std::map<std::string, RelationInfo> relations_;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_ARCHIS_H_
