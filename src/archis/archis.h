// ArchIS: the Archival Information System facade (paper Figure 5).
//
// Owns the current database and the H-tables, captures every change to the
// current tables through a transactional write path (ArchIS::Transaction,
// durably logged by the write-ahead change log in archis/wal.*), and
// answers temporal XQuery either by translation to SQL/XML plans executed
// on the H-tables (the efficient path) or natively over published
// H-documents (the fallback / cross-validation path).
//
// Typical use:
//
//   RelationSpec spec;
//   spec.name = "employees";
//   spec.schema = schema;
//   spec.key_columns = {"id"};
//   spec.doc_name = "employees.xml";
//   archis::core::ArchIS db(options, Date::FromYmd(1995, 1, 1));
//   db.CreateRelation(spec);
//   db.Insert("employees", row);               // auto-commits (kTrigger)
//   db.AdvanceClock(Date::FromYmd(1995, 6, 1));
//   auto txn = db.Begin();                     // explicit write batch
//   txn.Update("employees", key, new_row);     //   ... more DML ...
//   txn.Commit();                              // one timestamp, durable
//   auto xml = db.Query("for $e in doc(\"employees.xml\")/...");
//
// Durability: configure ArchISOptions::wal.path and construct through
// ArchIS::Open, which replays the log (crash recovery) before accepting
// new work. A default-constructed WalOptions (empty path) keeps the
// instance purely in-memory, as before.
#ifndef ARCHIS_ARCHIS_ARCHIS_H_
#define ARCHIS_ARCHIS_ARCHIS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "archis/archiver.h"
#include "archis/checkpoint.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/trace.h"
#include "archis/publisher.h"
#include "archis/relation_spec.h"
#include "archis/translator.h"
#include "archis/wal.h"
#include "xquery/evaluator.h"

namespace archis::core {

/// Top-level configuration.
struct ArchISOptions {
  SegmentOptions segment;  ///< clustering / compression knobs
  CaptureMode capture_mode = CaptureMode::kTrigger;
  /// Durable change log; empty path = in-memory only. A WAL-configured
  /// instance must be constructed with ArchIS::Open (which runs recovery).
  WalOptions wal;
};

/// Which execution path answered a query.
enum class QueryPath { kTranslated, kNativeFallback };

/// Pins ArchIS::Query to one execution path. kTranslated fails with
/// Unsupported instead of falling back; kNative skips translation.
enum class QueryForce { kAuto, kTranslated, kNative };

/// Pins the physical planner for translated queries. kAuto runs the
/// cost-based planner and falls back to the fixed shape if planning
/// fails; kCostBased fails instead of falling back; kFixed bypasses the
/// planner (the pre-planner executor shape — the ablation baseline).
enum class PlanForce { kAuto, kCostBased, kFixed };

/// Per-query options.
struct QueryOptions {
  QueryForce force_path = QueryForce::kAuto;
  PlanForce force_plan = PlanForce::kAuto;
  /// Collect a span-tree profile (parse -> translate -> execute ->
  /// segment scans) on QueryResult::profile. Off by default: profiling
  /// allocates per span, so it is opt-in per query.
  bool collect_profile = false;
};

/// Result of ArchIS::Query.
struct QueryResult {
  xml::XmlNodePtr xml;   ///< result wrapped in a <results> element
  QueryPath path;        ///< translated SQL/XML or native fallback
  std::string sql;       ///< rendered SQL/XML (translated path only)
  PlanStats stats;       ///< executor statistics (translated path only)
  /// Span tree of this query (QueryOptions::collect_profile); its
  /// Render() is the EXPLAIN-style breakdown.
  std::optional<trace::QueryProfile> profile;
};

class ArchIS;

/// A write batch on one ArchIS instance: DML applies to the current tables
/// immediately (so reads within the batch see it) while the captured
/// changes buffer until Commit, which (1) stamps every change with the
/// commit-instant transaction time, (2) makes the whole batch durable in
/// the WAL (group commit, fsync), and (3) archives it into the H-tables.
/// Abort rolls the current tables back and archives nothing.
///
/// A Transaction must not outlive its ArchIS. Destroying an uncommitted
/// Transaction aborts it.
class Transaction {
 public:
  Transaction(Transaction&& other) noexcept;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction& operator=(Transaction&&) = delete;
  ~Transaction();

  Status Insert(const std::string& relation, const minirel::Tuple& row);

  /// Updates the current row whose key columns equal `key`; the row moves
  /// to `new_row` (key must be unchanged — keys are invariant, Section 3).
  Status Update(const std::string& relation,
                const std::vector<minirel::Value>& key,
                const minirel::Tuple& new_row);

  Status Delete(const std::string& relation,
                const std::vector<minirel::Value>& key);

  /// Durably commits the batch. All changes carry one transaction-time
  /// instant (the clock at commit). After Commit the handle is finished;
  /// further DML returns Aborted.
  Status Commit();

  /// Rolls back the current tables to their pre-batch state; nothing is
  /// logged or archived.
  Status Abort();

  /// Whether the transaction can still accept DML.
  bool active() const { return !finished_; }

  /// Buffered, not-yet-committed changes.
  size_t pending() const { return changes_.size(); }

 private:
  friend class ArchIS;
  Transaction(ArchIS* db, bool stamp_at_commit);

  /// Marks the handle finished and releases its open-transaction count.
  void Finish();

  ArchIS* db_;
  std::vector<ChangeRecord> changes_;
  /// Explicit transactions stamp all changes at commit (one instant);
  /// the ambient update-log batch keeps per-statement dates.
  bool stamp_at_commit_;
  bool finished_ = false;
};

/// A transaction-time temporal database on a relational engine.
class ArchIS {
 public:
  /// In-memory instance (no WAL). If `options.wal.path` is set, every DML
  /// call fails — durable instances must be built with Open so recovery
  /// runs first.
  ArchIS(ArchISOptions options, Date start_date);

  /// Builds an instance with a durable change log: replays any committed
  /// work found at `options.wal.path` (crash recovery — truncating a torn
  /// tail), then opens the log for appending. With an empty WAL path this
  /// is just the in-memory constructor.
  static Result<std::unique_ptr<ArchIS>> Open(ArchISOptions options,
                                              Date start_date);

  // -- Schema -----------------------------------------------------------------

  /// Creates a current table plus its H-tables, registers the H-document
  /// name for doc() references, and durably logs the schema change.
  /// Empty `spec.root_tag` defaults to the relation name; empty
  /// `spec.entity_tag` to the root tag with a trailing 's' stripped.
  Status CreateRelation(const RelationSpec& spec);

  [[deprecated(
      "pass a RelationSpec: the DocBinding/doc_name parameters duplicate "
      "it")]]
  Status CreateRelation(const std::string& name,
                        const minirel::Schema& schema,
                        const std::vector<std::string>& key_columns,
                        const DocBinding& doc,
                        const std::string& doc_name);

  /// Drops the current table; history stays queryable, and the relation's
  /// interval closes in the global relations table.
  Status DropRelation(const std::string& name);

  // -- Transaction clock -------------------------------------------------------

  /// Advances the transaction-time clock (must not go backwards, and must
  /// not move while an explicit transaction is open — a transaction
  /// commits at one instant).
  Status AdvanceClock(Date now);
  Date Now() const { return clock_; }

  // -- Transactional DML on the current database --------------------------------

  /// Starts an explicit write batch. All its changes commit atomically at
  /// one transaction-time instant.
  Transaction Begin();

  /// Statement-level DML. In kTrigger capture mode each call is its own
  /// auto-committed transaction (durably logged before returning); in
  /// kUpdateLog mode calls accumulate in the ambient batch until Commit.
  Status Insert(const std::string& relation, const minirel::Tuple& row);
  Status Update(const std::string& relation,
                const std::vector<minirel::Value>& key,
                const minirel::Tuple& new_row);
  Status Delete(const std::string& relation,
                const std::vector<minirel::Value>& key);

  /// Commits the ambient batch (kUpdateLog capture mode). No-op when
  /// nothing is buffered; OK in kTrigger mode (statements already
  /// committed themselves).
  Status Commit();

  /// Buffered statement-level changes awaiting Commit.
  size_t pending_changes() const;

  [[deprecated("use Transaction::Commit (explicit batches) or "
               "ArchIS::Commit (ambient update-log batch)")]]
  Status FlushLog();

  // -- Queries ------------------------------------------------------------------

  /// Answers an XQuery: translated to SQL/XML when the translator covers
  /// it, otherwise evaluated natively over published H-documents.
  /// `options.force_path` pins one path (for equivalence testing).
  Result<QueryResult> Query(const std::string& xquery,
                            const QueryOptions& options = {});

  /// Translation only (the paper reports sub-0.1ms translation costs).
  Result<SqlXmlPlan> Translate(const std::string& xquery) const;

  /// Executes a (possibly hand-built) plan against the H-tables. The
  /// physical shape comes from the cost-based planner unless `force_plan`
  /// says otherwise (see PlanForce).
  Result<xml::XmlNodePtr> Execute(const SqlXmlPlan& plan,
                                  PlanStats* stats = nullptr,
                                  trace::Trace* trace = nullptr,
                                  PlanForce force_plan = PlanForce::kAuto)
      const;

  /// Native evaluation over published H-documents.
  Result<xquery::Sequence> QueryNative(const std::string& xquery);

  /// The H-document (temporally grouped XML view) of a relation.
  Result<xml::XmlNodePtr> PublishHistory(const std::string& relation) const;

  /// Restores a relation's history from an H-document previously produced
  /// by PublishHistory (archive interchange). The relation must be
  /// registered and its H-tables empty; the current table is not rebuilt —
  /// this is a history-only restore, queryable immediately.
  Status ImportHistory(const std::string& relation,
                       const xml::XmlNodePtr& doc);

  /// Snapshot of a relation reconstructed from its H-tables.
  Result<std::vector<minirel::Tuple>> Snapshot(const std::string& relation,
                                               Date t) const;

  // -- Recovery ----------------------------------------------------------------

  /// Applies one committed transaction recovered from a WAL (or streamed
  /// from a replica). Idempotent: a change whose effect is already present
  /// in the current table is skipped entirely, so replaying a log twice
  /// yields the same state as replaying it once.
  Status ApplyRecovered(const WalCommittedTxn& txn);

  /// Checkpoints the instance (DESIGN.md §10): snapshots all durable state
  /// into a manifest next to the WAL, installs it atomically, then
  /// truncates the WAL to a single marker — after which recovery replays
  /// only post-checkpoint commits. Requires a WAL-backed instance at
  /// quiesce (no open transaction, no buffered ambient changes).
  /// `crash_point` injects a deterministic stop for crash-recovery tests;
  /// every injected stop leaves a state recovery handles exactly.
  Status Checkpoint(
      CheckpointCrashPoint crash_point = CheckpointCrashPoint::kNone);

  /// Bytes of WAL suffix the last Open replayed (0 when the manifest
  /// covered everything). After a quiesced checkpoint + clean reopen this
  /// is exactly the traffic since that checkpoint — the bounded-recovery
  /// guarantee, asserted by tests via archis_wal_recovered_bytes too.
  uint64_t last_recovery_replayed_bytes() const {
    return last_recovery_replayed_bytes_;
  }

  /// Sequence number of the checkpoint this instance recovered from or
  /// last wrote (0 = none yet).
  uint64_t checkpoint_seq() const { return checkpoint_seq_; }

  /// The WAL handle (nullptr for in-memory instances). Exposes group
  /// commit counters for tests and benchmarks.
  const Wal* wal() const { return wal_.get(); }

  /// Prometheus-style text exposition of the process-wide metrics
  /// registry (WAL group commit, block cache, page IO, segment
  /// clustering, query/executor counters). Static because the registry is
  /// process-wide; see DESIGN.md §9 for the catalog.
  static std::string DumpMetrics();

  // -- Maintenance / introspection -----------------------------------------------

  /// Freezes every live segment (e.g. before measuring compression).
  Status FreezeAll();

  /// Storage held by the H-tables (archived history).
  uint64_t HistoryStorageBytes() const { return archiver_.StorageBytes(); }

  minirel::Database& current_db() { return current_db_; }
  const minirel::Database& current_db() const { return current_db_; }
  Archiver& archiver() { return archiver_; }
  const Archiver& archiver() const { return archiver_; }
  const ArchISOptions& options() const { return options_; }

  /// Translator context (docs registered via CreateRelation).
  TranslatorContext translator_context() const;

 private:
  friend class Transaction;

  struct RelationInfo {
    std::vector<std::string> key_columns;
    std::vector<size_t> key_positions;
    DocBinding doc;
    std::string doc_name;
  };

  /// Fails DML on a WAL-configured instance that skipped recovery.
  Status CheckWritable() const;

  Status CreateRelationInternal(RelationSpec spec, Date open_date,
                                bool log_to_wal);
  Status DropRelationInternal(const std::string& name, Date when,
                              bool log_to_wal);

  // Transaction plumbing: validate + apply to the current table, then
  // buffer the captured change in `txn`.
  Status TxnInsert(Transaction* txn, const std::string& relation,
                   const minirel::Tuple& row);
  Status TxnUpdate(Transaction* txn, const std::string& relation,
                   const std::vector<minirel::Value>& key,
                   const minirel::Tuple& new_row);
  Status TxnDelete(Transaction* txn, const std::string& relation,
                   const std::vector<minirel::Value>& key);

  /// Commit tail shared by every path: stamp (explicit batches), WAL
  /// (durability), archive (H-tables).
  Status CommitChanges(std::vector<ChangeRecord> changes,
                       bool stamp_at_commit);

  /// Reverses a batch's current-table effects (Transaction::Abort).
  Status UndoCurrent(const std::vector<ChangeRecord>& changes);

  /// Replays one recovered change; skips changes already applied.
  Status ReplayChange(const ChangeRecord& change);

  /// Rebuilds catalog, H-tables, surrogates, current tables and clock from
  /// a manifest (recovery, before the WAL suffix is replayed).
  Status RestoreFromCheckpoint(const CheckpointManifest& manifest);

  /// Snapshot of one registered relation for a manifest.
  Result<CheckpointRelation> CaptureRelation(
      const std::string& name, const TimeInterval& interval) const;

  /// A cost-based physical plan cached by ArchIS::Execute, keyed by
  /// AppendPlanCacheKey (planner.h). `epoch` is the plan_epoch_ value at
  /// planning time; entries from older epochs replan. A stale plan could
  /// only change the access strategy, never the answer (both shapes are
  /// answer-equivalent — the forced-plan equivalence suite is the proof),
  /// so the epoch guards freshness of the cost model, not correctness.
  /// Shared ownership keeps a cache hit at pointer-copy cost; the plan
  /// itself was produced by PlanQuery and is immutable once cached.
  struct CachedPlan {
    uint64_t epoch = 0;
    std::shared_ptr<const PhysicalPlan> physical;
  };

  /// Drops cached plan validity after any mutation that changes segment
  /// statistics or the set of relations (commit, freeze, DDL, recovery).
  void InvalidatePlanCache();

  /// Runs Checkpoint() when the auto-checkpoint byte threshold is crossed.
  /// Failures are logged, not returned: the committed batch that triggered
  /// us is already durable, and a dead WAL surfaces on the next commit.
  void MaybeAutoCheckpoint();

  /// The ambient statement-level batch (kUpdateLog mode), lazily begun.
  Transaction* AmbientTxn();

  Result<storage::RecordId> FindByKey(minirel::Table* table,
                                      const RelationInfo& info,
                                      const std::vector<minirel::Value>& key,
                                      minirel::Tuple* row) const;

  /// Key column values of `row` under `info` (for replay/undo lookups).
  static std::vector<minirel::Value> KeyOf(const RelationInfo& info,
                                           const minirel::Tuple& row);

  ArchISOptions options_;
  Date clock_;
  minirel::Database current_db_;
  minirel::Database history_db_;
  Archiver archiver_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<Transaction> ambient_;
  /// Open explicit (stamp-at-commit) transactions; blocks AdvanceClock.
  int open_stamped_txns_ = 0;
  std::map<std::string, RelationInfo> relations_;
  /// Plan cache for Execute (mutable: queries are const). The mutex makes
  /// the cache safe under concurrent read-only queries; mutations happen
  /// single-threaded but still bump the epoch under the lock.
  mutable Mutex plan_cache_mu_{LockRank::kFacadePlanCache};
  mutable std::unordered_map<std::string, CachedPlan> plan_cache_
      ARCHIS_GUARDED_BY(plan_cache_mu_);
  /// Bumped by InvalidatePlanCache on every statistics-changing mutation.
  mutable uint64_t plan_epoch_ ARCHIS_GUARDED_BY(plan_cache_mu_) = 0;
  /// Last checkpoint written or recovered from (0 = none).
  uint64_t checkpoint_seq_ = 0;
  /// Wal::bytes_written() at the last checkpoint (auto-checkpoint delta).
  uint64_t wal_bytes_at_last_checkpoint_ = 0;
  uint64_t last_recovery_replayed_bytes_ = 0;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_ARCHIS_H_
