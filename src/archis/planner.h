// Cost-based physical planning for SQL/XML plans (DESIGN.md §11).
//
// The translator emits a logical SqlXmlPlan; this module decides how the
// executor should run it, using the statistics catalog every
// SegmentedStore maintains (archis/stats.h). Three decisions are made:
//
//   * Access path per variable: B+-tree / block-sid id probes across all
//     segments (kIdIndex) vs a temporally pruned segment merge-scan
//     (kSegmentMerge). The cost model follows the paper's §6 segment
//     model (Eq. 3/4): a time-restricted scan touches only covering
//     segments, each contributing its tuple count plus a BlockZIP
//     inflation charge, while an id probe pays a probe per segment but
//     reads only that object's versions.
//   * Fetch order: variables are fetched cheapest-estimated-rows first,
//     and an empty fetch short-circuits the remaining ones (any empty
//     input empties the join).
//   * Aggregate pushdown: single-variable scalar/temporal aggregates are
//     computed while scanning, skipping the join/buffer pipeline.
//
// This module is the ONLY producer of PhysicalPlan values (enforced by
// the archis-lint `plan-ownership` rule); everything else consumes them
// read-only.
#ifndef ARCHIS_ARCHIS_PLANNER_H_
#define ARCHIS_ARCHIS_PLANNER_H_

#include "archis/archiver.h"
#include "archis/sqlxml.h"

namespace archis::core {

/// The fixed pre-planner shape: id-restricted variables probe the id
/// index, everything else merge-scans; declaration-order fetch; no
/// pushdown. Running it reproduces the legacy executor exactly — it is
/// the planner-off baseline of the ablation benchmarks.
PhysicalPlan DefaultPhysicalPlan(const SqlXmlPlan& plan);

/// Chooses a physical plan for `plan` from the segment statistics of the
/// stores it touches. Fails only when a plan variable references an
/// unknown relation/attribute (the executor would fail identically).
Result<PhysicalPlan> PlanQuery(const Archiver& archiver,
                               const SqlXmlPlan& plan);

/// Appends a byte-exact structural key of the planning-relevant fields of
/// `plan` (variables with their pushed-down conditions, cross conditions,
/// join and aggregate shape) to `*out`. Two plans with equal keys always
/// receive the same PhysicalPlan from PlanQuery at equal statistics, so
/// the key — an exact encoding, not a hash, so collisions are impossible —
/// backs the facade's plan cache (archis.h). Append-style so the hot
/// cache-hit path can reuse one scratch buffer instead of allocating.
// archis-lint: allow(void-mutator) -- pure byte-append encoder, infallible
void AppendPlanCacheKey(const SqlXmlPlan& plan, std::string* out);

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_PLANNER_H_
