// Usefulness-based segment clustering (paper Section 6).
//
// Each H-table (key table or attribute history table) is a SegmentedStore:
// a live segment receiving all updates plus a chain of frozen, id-sorted
// archived segments. A segment's usefulness U = N_live / N_all decays as
// tuples are closed; when U drops below U_min the live segment is frozen:
//
//   1. a new segment number is allocated and its interval recorded,
//   2. ALL tuples of the live segment are copied into the archived segment
//      sorted by id (and optionally BlockZIP-compressed),
//   3. live tuples are copied into a fresh live segment, the old one drops.
//
// Invariants (1) tstart_tuple <= segend and (2) tend_tuple >= segstart hold
// for every tuple in a frozen segment, which is what makes the segment
// table a valid pruning index for snapshot and slicing queries.
//
// Read path: queries prune at three granularities — segment (the interval
// table), block (temporal zone maps inside compressed segments), and row.
// Multi-segment scans can run the frozen segments on a thread pool
// (SegmentOptions::scan_threads > 1); each worker yields an id-sorted run
// and the runs are k-way merged by (id, tstart) with newest-copy-wins
// dedup, so the emission order and content are identical to the
// sequential configuration. Concurrent read-only scans of one store are
// thread-safe; scans concurrent with updates are not.
#ifndef ARCHIS_ARCHIS_SEGMENT_MANAGER_H_
#define ARCHIS_ARCHIS_SEGMENT_MANAGER_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "archis/compressed_segment.h"
#include "archis/stats.h"
#include "common/interval.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "minirel/database.h"

namespace archis::core {

/// Metadata row of the paper's `segment(segno, segstart, segend)` table,
/// extended with the per-segment statistics the cost-based planner reads
/// (DESIGN.md §11). distinct_ids is exact — rows are id-sorted at freeze
/// time, so counting id transitions is free.
struct SegmentInfo {
  int64_t segno;
  TimeInterval interval;
  bool compressed = false;
  uint64_t tuple_count = 0;
  uint64_t distinct_ids = 0;
  /// BlockZIP blocks (0 for uncompressed segments).
  uint64_t blocks = 0;
};

/// Tuning knobs for a SegmentedStore.
struct SegmentOptions {
  /// Master switch: disabled reproduces the paper's "without clustering"
  /// baseline (one flat history table).
  bool enabled = true;
  /// Minimum tolerable usefulness U_min (paper sweeps 0.2 .. 0.4).
  double umin = 0.4;
  /// BlockZIP-compress frozen segments (paper Section 8).
  bool compress = false;
  /// BlockZIP block size (paper uses 4000-byte BLOBs).
  size_t block_size = 4000;
  /// Worker threads for multi-segment scans. 1 keeps the read path
  /// strictly sequential; > 1 scans frozen segments in parallel and
  /// k-way-merges the runs (same output, bit for bit).
  int scan_threads = 1;
  /// Capacity of the decompressed-block LRU cache per store, in bytes
  /// (0 disables). Only compressed segments use it.
  uint64_t block_cache_bytes = 16ull << 20;
};

/// Read-path statistics (what the paper's disk-bound timings measured).
struct StoreScanStats {
  uint64_t segments_considered = 0;
  uint64_t segments_scanned = 0;
  uint64_t tuples_scanned = 0;
  uint64_t blocks_decompressed = 0;
  uint64_t blocks_pruned_by_time = 0;  ///< skipped via temporal zone maps
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
};

/// One segmented H-table.
///
/// Row layout: (id INT64, <value columns...>, tstart DATE, tend DATE).
/// The id is column 0; tstart/tend are the last two columns.
class SegmentedStore {
 public:
  /// Creates the backing tables inside `db`:
  ///   <name>__live  (id, values..., tstart, tend)      + index on id
  ///   <name>__arch  (segno, id, values..., tstart, tend) + index (segno,id)
  static Result<std::unique_ptr<SegmentedStore>> Create(
      minirel::Database* db, const std::string& name,
      const minirel::Schema& row_schema, SegmentOptions options,
      Date open_date);

  /// Releases this store's contribution to the process-wide frozen-segment
  /// gauge (archis_frozen_segments).
  ~SegmentedStore();

  const std::string& name() const { return name_; }
  const minirel::Schema& row_schema() const { return row_schema_; }
  const SegmentOptions& options() const { return options_; }

  // -- Update path ----------------------------------------------------------

  /// Appends a new current version (tstart = `now`, tend = forever).
  /// `values` are the value columns only (no id/tstart/tend).
  Status InsertVersion(int64_t id, const std::vector<minirel::Value>& values,
                       Date now);

  /// Closes the current version for `id` (tend = now - 1). NotFound if no
  /// live version exists. Clamps so tend >= tstart.
  Status CloseVersion(int64_t id, Date now);

  /// Replaces the current version for `id` with `values` as of `now`: closes
  /// the open version at now - 1 and appends a new current one. When the open
  /// version also started on `now` it is rewritten in place instead
  /// (day-granularity last-writer-wins) — closing it would mint a second
  /// version with the same (id, tstart), which is the key the multi-source
  /// scan dedup treats as "same version, newest copy wins".
  Status ReplaceVersion(int64_t id, const std::vector<minirel::Value>& values,
                        Date now);

  /// Bulk-loads a version with an explicit interval (the H-document import
  /// path). The row lands in the live segment; normal freezing applies on
  /// subsequent updates.
  Status LoadVersion(int64_t id, const std::vector<minirel::Value>& values,
                     const TimeInterval& interval);

  /// Restores a store's full logical history from checkpoint rows: each
  /// row is a complete (id, values..., tstart, tend) tuple in row-schema
  /// order, landing in the live segment. The store must be empty — this is
  /// the recovery path, not an append path; physical segmentation is
  /// rebuilt lazily by subsequent freezes.
  Status LoadCheckpointRows(const std::vector<minirel::Tuple>& rows);

  /// Applies one checkpoint-delta row by version identity (id, tstart):
  /// rewrites the matching live row in place, or bulk-loads the row when
  /// the version is new. Recovery-only, like LoadCheckpointRows; the
  /// caller installs the delta's statistics snapshot afterwards.
  Status UpsertCheckpointRow(const minirel::Tuple& row);

  // -- Dirty tracking (fuzzy incremental checkpoints, DESIGN.md §13) --------

  /// Version identities (id, tstart days) written since the last
  /// checkpoint capture. A checkpoint drains this with TakeDirty(),
  /// serializes the named rows into a delta manifest, and merges the set
  /// back with MergeDirty() if the install fails.
  size_t dirty_count() const { return dirty_.size(); }
  std::set<std::pair<int64_t, int64_t>> TakeDirty();
  void MergeDirty(const std::set<std::pair<int64_t, int64_t>>& dirty);
  /// Recovery hook: restored rows are not "dirty" (they are already in
  /// the manifest chain), so restore clears before WAL replay re-marks.
  void ClearDirty() { dirty_.clear(); }

  /// Current usefulness of the live segment (1.0 when empty).
  double Usefulness() const;

  /// Freezes the live segment unconditionally (used when archiving a
  /// database or for tests). No-op when the live segment is empty.
  Status Freeze(Date now);

  // -- Read path ------------------------------------------------------------

  /// Rows whose interval overlaps `query`, deduplicated across segments
  /// (a tuple frozen in an older segment is superseded by its copy in a
  /// newer one). `fn` receives (id, full row tuple).
  Status ScanInterval(const TimeInterval& query,
                      const std::function<bool(const minirel::Tuple&)>& fn,
                      StoreScanStats* stats = nullptr) const;

  /// Rows valid at `t` (snapshot): prunes to the covering segment.
  Status ScanSnapshot(Date t,
                      const std::function<bool(const minirel::Tuple&)>& fn,
                      StoreScanStats* stats = nullptr) const;

  /// Entire deduplicated history.
  Status ScanHistory(const std::function<bool(const minirel::Tuple&)>& fn,
                     StoreScanStats* stats = nullptr) const;

  /// History of a single id (uses the id index / block pruning).
  Status ScanId(int64_t id,
                const std::function<bool(const minirel::Tuple&)>& fn,
                StoreScanStats* stats = nullptr) const;

  // -- Introspection ---------------------------------------------------------

  /// The segment metadata table (frozen segments only).
  const std::vector<SegmentInfo>& segments() const { return segments_; }

  /// The statistics catalog entry for this store, maintained incrementally
  /// by the update path and rebuilt by recovery (LoadCheckpointRows routes
  /// through LoadVersion).
  const StoreStatistics& statistics() const { return stats_; }

  /// Installs a statistics snapshot captured by a checkpoint manifest,
  /// replacing whatever the restore rebuild accumulated. Recovery calls
  /// this after LoadCheckpointRows so planner estimates match the
  /// checkpointed instance exactly.
  void RestoreStatistics(StoreStatistics stats) { stats_ = std::move(stats); }

  /// Blocks of frozen segment `index` (its position in segments()) that a
  /// scan restricted to `window` would decompress, after temporal zone-map
  /// pruning. 0 for uncompressed segments; metadata only, nothing is read.
  uint64_t BlocksOverlapping(size_t index,
                             const std::optional<TimeInterval>& window) const;

  /// Heap statistics of the live segment's backing table (page counts for
  /// the planner's live-scan cost).
  minirel::TableStats LiveTableStats() const;

  /// Interval covered by the live segment so far: [live_start, now-ish].
  Date live_start() const { return live_start_; }

  /// Tuples in the live segment (all / live).
  uint64_t live_total() const { return live_total_; }
  uint64_t live_current() const { return live_current_; }

  /// Storage footprint: live pages + archived pages + compressed blobs.
  uint64_t StorageBytes() const;

  /// Total tuples across live + frozen segments (with duplication).
  uint64_t TotalTuples() const;

  /// Logical tuples (deduplicated history size).
  uint64_t LogicalTuples() const;

 private:
  SegmentedStore() = default;

  Status FreezeIfNeeded(Date now);
  /// Locates the open (tend = forever) live row for `id`; NotFound if none.
  Status FindOpenVersion(int64_t id, std::optional<storage::RecordId>* rid,
                         std::optional<minirel::Tuple>* row);
  Status ScanSegments(const std::vector<int64_t>& segnos, bool include_live,
                      const std::optional<TimeInterval>& filter,
                      std::optional<int64_t> id_filter,
                      const std::function<bool(const minirel::Tuple&)>& fn,
                      StoreScanStats* stats) const;
  /// Parallel multi-source scan: frozen segments on the pool, live on the
  /// calling thread, runs k-way merged. Same contract as ScanSegments.
  Status ScanSegmentsParallel(
      ThreadPool* pool, const std::vector<int64_t>& segnos, bool include_live,
      const std::optional<TimeInterval>& filter,
      std::optional<int64_t> id_filter,
      const std::function<bool(const minirel::Tuple&)>& fn,
      StoreScanStats* stats) const;
  /// Scans one frozen segment, yielding raw rows (no dedup/time filter;
  /// `window` only drives block-level zone-map pruning).
  Status ScanFrozenSegment(
      int64_t segno, const std::optional<TimeInterval>& window,
      std::optional<int64_t> id_filter,
      const std::function<bool(const minirel::Tuple&)>& fn,
      StoreScanStats* stats) const;
  /// Frozen segments whose interval overlaps `iv`, oldest first.
  std::vector<int64_t> CoveringSegments(const TimeInterval& iv) const;
  /// The scan pool, lazily created when scan_threads > 1 (else nullptr).
  /// Safe to call from concurrent scans; creation is mutex-protected.
  ThreadPool* ScanPool() const ARCHIS_EXCLUDES(pool_mu_);

  std::string name_;
  minirel::Schema row_schema_;   // (id, values..., tstart, tend)
  minirel::Schema arch_schema_;  // (segno, id, values..., tstart, tend)
  SegmentOptions options_;
  minirel::Database* db_ = nullptr;
  minirel::Table* live_ = nullptr;
  minirel::Table* arch_ = nullptr;
  std::vector<SegmentInfo> segments_;
  std::vector<std::unique_ptr<CompressedSegment>> compressed_;  // by index
  mutable Mutex pool_mu_{LockRank::kSegmentScanPool};
  mutable std::unique_ptr<ThreadPool> pool_ ARCHIS_GUARDED_BY(pool_mu_);
  Date live_start_;
  StoreStatistics stats_;
  /// Versions written since the last checkpoint capture, by identity
  /// (id, tstart days) — the same key the multi-segment dedup uses, so a
  /// delta row replayed onto a restored store lands on the right version.
  std::set<std::pair<int64_t, int64_t>> dirty_;
  int64_t next_segno_ = 1;
  uint64_t live_total_ = 0;
  uint64_t live_current_ = 0;
  size_t tstart_col_ = 0;  // within row_schema_
  size_t tend_col_ = 0;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_SEGMENT_MANAGER_H_
