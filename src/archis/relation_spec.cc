#include "archis/relation_spec.h"

#include "common/coding.h"

namespace archis::core {

using coding::AppendLengthPrefixed;
using coding::AppendU32;
using coding::ReadLengthPrefixed;
using coding::ReadU32;
using minirel::Column;
using minirel::DataType;
using minirel::Schema;

void EncodeRelationSpec(const RelationSpec& spec, std::string* out) {
  AppendLengthPrefixed(spec.name, out);
  AppendU32(static_cast<uint32_t>(spec.schema.num_columns()), out);
  for (const Column& col : spec.schema.columns()) {
    AppendLengthPrefixed(col.name, out);
    out->push_back(static_cast<char>(col.type));
  }
  AppendU32(static_cast<uint32_t>(spec.key_columns.size()), out);
  for (const std::string& k : spec.key_columns) {
    AppendLengthPrefixed(k, out);
  }
  AppendLengthPrefixed(spec.doc_name, out);
  AppendLengthPrefixed(spec.root_tag, out);
  AppendLengthPrefixed(spec.entity_tag, out);
}

Result<RelationSpec> DecodeRelationSpec(std::string_view data, size_t* pos) {
  RelationSpec spec;
  ARCHIS_ASSIGN_OR_RETURN(spec.name, ReadLengthPrefixed(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(uint32_t ncols, ReadU32(data, pos));
  std::vector<Column> cols;
  for (uint32_t i = 0; i < ncols; ++i) {
    Column col;
    ARCHIS_ASSIGN_OR_RETURN(col.name, ReadLengthPrefixed(data, pos));
    if (*pos >= data.size()) {
      return Status::Corruption("RelationSpec truncated (column type)");
    }
    col.type = static_cast<DataType>(data[*pos]);
    ++*pos;
    cols.push_back(std::move(col));
  }
  spec.schema = Schema(std::move(cols));
  ARCHIS_ASSIGN_OR_RETURN(uint32_t nkeys, ReadU32(data, pos));
  for (uint32_t i = 0; i < nkeys; ++i) {
    ARCHIS_ASSIGN_OR_RETURN(std::string k, ReadLengthPrefixed(data, pos));
    spec.key_columns.push_back(std::move(k));
  }
  ARCHIS_ASSIGN_OR_RETURN(spec.doc_name, ReadLengthPrefixed(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(spec.root_tag, ReadLengthPrefixed(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(spec.entity_tag, ReadLengthPrefixed(data, pos));
  return spec;
}

}  // namespace archis::core
