#include "archis/archiver.h"

namespace archis::core {

Status Archiver::RegisterRelation(const std::string& name,
                                  const minirel::Schema& schema,
                                  const std::vector<std::string>& key_columns,
                                  const SegmentOptions& options,
                                  Date open_date) {
  if (sets_.count(name) != 0) {
    return Status::AlreadyExists("relation '" + name + "' already archived");
  }
  ARCHIS_ASSIGN_OR_RETURN(
      std::unique_ptr<HTableSet> set,
      HTableSet::Create(hdb_, name, schema, key_columns, options, open_date));
  sets_[name] = std::move(set);
  relations_.push_back(
      {name, MakeInterval(open_date, Date::Forever())});
  return Status::OK();
}

Status Archiver::UnregisterRelation(const std::string& name, Date when) {
  for (RelationEntry& entry : relations_) {
    if (entry.name == name && entry.interval.is_current()) {
      entry.interval.tend = when;
      return Status::OK();
    }
  }
  return Status::NotFound("relation '" + name + "' not open");
}

Status Archiver::Apply(const ChangeRecord& change) {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet* set, htables(change.relation));
  switch (change.kind) {
    case ChangeKind::kInsert:
      return set->ArchiveInsert(change.new_row, change.when);
    case ChangeKind::kUpdate:
      return set->ArchiveUpdate(change.old_row, change.new_row, change.when);
    case ChangeKind::kDelete:
      return set->ArchiveDelete(change.old_row, change.when);
  }
  return Status::Internal("bad change kind");
}

Result<HTableSet*> Archiver::htables(const std::string& name) const {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    return Status::NotFound("relation '" + name + "' is not archived");
  }
  return it->second.get();
}

Status Archiver::FreezeAll(Date now) {
  for (auto& [name, set] : sets_) {
    ARCHIS_RETURN_NOT_OK(set->FreezeAll(now));
  }
  return Status::OK();
}

uint64_t Archiver::StorageBytes() const {
  uint64_t total = 0;
  for (const auto& [name, set] : sets_) total += set->StorageBytes();
  return total;
}

}  // namespace archis::core
