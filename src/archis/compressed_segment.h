// A frozen, BlockZIP-compressed segment (paper Section 8.2).
//
// Rows are sorted by id and stored in a BlobStore keyed by the id, so a
// single-object lookup decompresses only the covering blocks while a
// whole-segment scan decompresses all of them. Each block also carries a
// temporal zone map (min tstart / max tend of its rows), so time-windowed
// scans can skip blocks whose time envelope misses the query even when
// their id range covers it.
#ifndef ARCHIS_ARCHIS_COMPRESSED_SEGMENT_H_
#define ARCHIS_ARCHIS_COMPRESSED_SEGMENT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compress/blob_store.h"
#include "minirel/tuple.h"

namespace archis::core {

/// BlockZIP-compressed storage for one frozen segment's rows.
class CompressedSegment {
 public:
  /// Compresses `rows` (already id-sorted; encoded with `schema`; tstart
  /// and tend in the last two columns). `cache_bytes` > 0 enables the
  /// decompressed-block LRU cache of the underlying BlobStore.
  static Result<std::unique_ptr<CompressedSegment>> Build(
      const minirel::Schema& schema, const std::vector<minirel::Tuple>& rows,
      size_t block_size, uint64_t cache_bytes = 0);

  /// Decodes rows in stored (id, tstart) order. `id` restricts to one
  /// object via the block sid ranges; `window` skips blocks via the
  /// temporal zone maps. Rows of surviving blocks are NOT time-filtered —
  /// the zone map is a block-level test only, row-level filtering stays
  /// with the caller (which preserves the cross-segment dedup contract of
  /// SegmentedStore::ScanSegments).
  Status Scan(std::optional<int64_t> id,
              const std::optional<TimeInterval>& window,
              const std::function<bool(const minirel::Tuple&)>& fn,
              compress::BlobReadStats* stats = nullptr) const;

  /// Decodes and yields every row.
  Status ScanAll(const std::function<bool(const minirel::Tuple&)>& fn,
                 compress::BlobReadStats* stats = nullptr) const;

  /// Decodes only rows with the given id (block-pruned).
  Status ScanId(int64_t id,
                const std::function<bool(const minirel::Tuple&)>& fn,
                compress::BlobReadStats* stats = nullptr) const;

  uint64_t CompressedBytes() const { return store_.CompressedBytes(); }
  uint64_t RawBytes() const { return store_.RawBytes(); }
  size_t block_count() const { return store_.block_count(); }

  /// Blocks a `window`-restricted Scan would decompress after zone-map
  /// pruning (all of them when `window` is empty). Metadata only.
  uint64_t BlocksOverlapping(const std::optional<TimeInterval>& window) const {
    return store_.CountBlocksOverlapping(window);
  }

  const compress::BlobStore& store() const { return store_; }

 private:
  CompressedSegment() = default;

  minirel::Schema schema_;
  compress::BlobStore store_;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_COMPRESSED_SEGMENT_H_
