#include "archis/compressed_segment.h"

namespace archis::core {

Result<std::unique_ptr<CompressedSegment>> CompressedSegment::Build(
    const minirel::Schema& schema, const std::vector<minirel::Tuple>& rows,
    size_t block_size) {
  auto seg = std::unique_ptr<CompressedSegment>(new CompressedSegment());
  seg->schema_ = schema;
  std::vector<std::pair<int64_t, std::string>> records;
  records.reserve(rows.size());
  for (const minirel::Tuple& row : rows) {
    ARCHIS_ASSIGN_OR_RETURN(std::string bytes, row.Encode(schema));
    records.emplace_back(row.at(0).AsInt(), std::move(bytes));
  }
  compress::BlockZipOptions opts;
  opts.block_size = block_size;
  ARCHIS_RETURN_NOT_OK(seg->store_.Build(records, opts));
  return seg;
}

Status CompressedSegment::ScanAll(
    const std::function<bool(const minirel::Tuple&)>& fn,
    compress::BlobReadStats* stats) const {
  return store_.ScanAll(
      [&](int64_t, const std::string& rec) {
        auto t = minirel::Tuple::Decode(schema_, rec);
        if (!t.ok()) return true;
        return fn(*t);
      },
      stats);
}

Status CompressedSegment::ScanId(
    int64_t id, const std::function<bool(const minirel::Tuple&)>& fn,
    compress::BlobReadStats* stats) const {
  return store_.ScanRange(
      id, id,
      [&](int64_t, const std::string& rec) {
        auto t = minirel::Tuple::Decode(schema_, rec);
        if (!t.ok()) return true;
        return fn(*t);
      },
      stats);
}

}  // namespace archis::core
