#include "archis/compressed_segment.h"

namespace archis::core {

Result<std::unique_ptr<CompressedSegment>> CompressedSegment::Build(
    const minirel::Schema& schema, const std::vector<minirel::Tuple>& rows,
    size_t block_size, uint64_t cache_bytes) {
  auto seg = std::unique_ptr<CompressedSegment>(new CompressedSegment());
  seg->schema_ = schema;
  const size_t tstart_col = schema.num_columns() - 2;
  const size_t tend_col = schema.num_columns() - 1;
  std::vector<std::pair<int64_t, std::string>> records;
  std::vector<TimeInterval> times;
  records.reserve(rows.size());
  times.reserve(rows.size());
  for (const minirel::Tuple& row : rows) {
    ARCHIS_ASSIGN_OR_RETURN(std::string bytes, row.Encode(schema));
    records.emplace_back(row.at(0).AsInt(), std::move(bytes));
    times.emplace_back(row.at(tstart_col).AsDate(), row.at(tend_col).AsDate());
  }
  compress::BlockZipOptions opts;
  opts.block_size = block_size;
  ARCHIS_RETURN_NOT_OK(seg->store_.Build(records, opts, times));
  seg->store_.set_cache_capacity(cache_bytes);
  return seg;
}

Status CompressedSegment::Scan(
    std::optional<int64_t> id, const std::optional<TimeInterval>& window,
    const std::function<bool(const minirel::Tuple&)>& fn,
    compress::BlobReadStats* stats) const {
  const int64_t lo = id.value_or(INT64_MIN);
  const int64_t hi = id.value_or(INT64_MAX);
  return store_.ScanRangeInterval(
      lo, hi, window,
      [&](int64_t, const std::string& rec) {
        auto t = minirel::Tuple::Decode(schema_, rec);
        if (!t.ok()) return true;
        return fn(*t);
      },
      stats);
}

Status CompressedSegment::ScanAll(
    const std::function<bool(const minirel::Tuple&)>& fn,
    compress::BlobReadStats* stats) const {
  return Scan(std::nullopt, std::nullopt, fn, stats);
}

Status CompressedSegment::ScanId(
    int64_t id, const std::function<bool(const minirel::Tuple&)>& fn,
    compress::BlobReadStats* stats) const {
  return Scan(id, std::nullopt, fn, stats);
}

}  // namespace archis::core
