// Per-store statistics for cost-based planning (DESIGN.md §11).
//
// Every SegmentedStore maintains a StoreStatistics incrementally on its
// update path: logical version counts, live ratio, temporal histograms of
// version starts and ends, and a distinct-id estimate. The planner turns
// these into selectivity and cost estimates grounded in the paper's §6
// segment-length model (Eq. 3/4): how many segments a time-restricted
// query must touch, how many tuples each contributes, and how many
// compressed blocks it must inflate.
//
// The structures are streaming (no sample buffers) and deterministic, so
// a store rebuilt from the same logical rows in any order reports the
// same counts; histograms are grid-aligned so bucket boundaries depend
// only on the data range, not on insertion order. Checkpoint manifests
// persist an encoded snapshot per store and recovery installs it, so
// planner estimates survive a restart byte-for-byte.
#ifndef ARCHIS_ARCHIS_STATS_H_
#define ARCHIS_ARCHIS_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/interval.h"
#include "common/status.h"

namespace archis::core {

/// Fixed-width streaming histogram over day-encoded dates. The bucket
/// grid is anchored at absolute day 0 with a power-of-two bucket width
/// that doubles when a sample falls outside the covered range, so the
/// final layout is a function of the value range alone.
class TemporalHistogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Add(int64_t day);

  uint64_t total() const { return total_; }

  /// Estimated fraction of recorded days in [lo, hi], assuming uniform
  /// spread inside boundary buckets. 0 when the histogram is empty.
  double FractionIn(int64_t lo, int64_t hi) const;

  /// Estimated fraction of recorded days <= day.
  double FractionAtMost(int64_t day) const { return FractionIn(INT64_MIN, day); }

  bool operator==(const TemporalHistogram& other) const = default;

  // archis-lint: allow(void-mutator) -- const encoder, infallible append
  void AppendTo(std::string* out) const;
  static Result<TemporalHistogram> Parse(std::string_view data, size_t* pos);

 private:
  /// Grows the bucket width / shifts the base until `day` fits.
  void CoverDay(int64_t day);

  int64_t base_ = 0;   ///< day of bucket 0's lower edge (multiple of width_)
  int64_t width_ = 1;  ///< days per bucket, power of two
  uint64_t total_ = 0;
  std::array<uint64_t, kBuckets> counts_{};
};

/// Linear-counting distinct estimator over int64 ids: a fixed bitmap of
/// 2^12 buckets addressed by a deterministic mix, estimated as
/// -m * ln(unset / m). Exact for small id sets, within a few percent up
/// to ~10x the bitmap size — plenty for join-order decisions.
class DistinctEstimator {
 public:
  static constexpr size_t kBits = 4096;

  void Add(int64_t id);

  /// Estimated number of distinct ids added.
  uint64_t Estimate() const;

  bool operator==(const DistinctEstimator& other) const = default;

  // archis-lint: allow(void-mutator) -- const encoder, infallible append
  void AppendTo(std::string* out) const;
  static Result<DistinctEstimator> Parse(std::string_view data, size_t* pos);

 private:
  std::array<uint64_t, kBits / 64> words_{};
  uint32_t set_bits_ = 0;
};

/// The statistics catalog entry of one H-table store.
struct StoreStatistics {
  /// Logical versions recorded (live + closed, deduplicated history).
  uint64_t versions_total = 0;
  /// Versions still open (tend = forever).
  uint64_t versions_open = 0;
  TemporalHistogram tstart_hist;
  /// Ends of closed versions only (the forever sentinel would swamp the
  /// range; open versions are tracked by versions_open instead).
  TemporalHistogram tend_hist;
  DistinctEstimator distinct_ids;

  /// Fraction of versions still open — the store-wide analogue of the
  /// paper's segment usefulness U.
  double LiveRatio() const {
    return versions_total == 0
               ? 1.0
               : static_cast<double>(versions_open) /
                     static_cast<double>(versions_total);
  }

  /// Estimated logical versions whose interval overlaps `window`:
  /// started at or before the window end, minus those that closed
  /// strictly before the window start.
  double EstimateOverlapping(const TimeInterval& window) const;

  /// Estimated versions per distinct id (>= 1 once non-empty).
  double VersionsPerId() const;

  bool operator==(const StoreStatistics& other) const = default;

  // archis-lint: allow(void-mutator) -- const encoder, infallible append
  void AppendTo(std::string* out) const;
  static Result<StoreStatistics> Parse(std::string_view data, size_t* pos);

  /// Whole-snapshot codec used by checkpoint manifests.
  std::string Encode() const;
  static Result<StoreStatistics> Decode(std::string_view data);
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_STATS_H_
