#include "archis/archis.h"

#include "xml/serializer.h"
#include "xquery/parser.h"

namespace archis::core {

using minirel::Schema;
using minirel::Table;
using minirel::Tuple;
using minirel::Value;

ArchIS::ArchIS(ArchISOptions options, Date start_date)
    : options_(options), clock_(start_date), archiver_(&history_db_) {
  capture_ = std::make_unique<ChangeCapture>(
      options.capture_mode,
      [this](const ChangeRecord& change) { return archiver_.Apply(change); });
}

Status ArchIS::CreateRelation(const std::string& name, const Schema& schema,
                              const std::vector<std::string>& key_columns,
                              const DocBinding& doc,
                              const std::string& doc_name) {
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().CreateTable(name, schema));
  ARCHIS_RETURN_NOT_OK(table->CreateIndex("pk", key_columns));
  RelationInfo info;
  info.key_columns = key_columns;
  for (const std::string& k : key_columns) {
    ARCHIS_ASSIGN_OR_RETURN(size_t pos, schema.ColumnIndex(k));
    info.key_positions.push_back(pos);
  }
  info.doc = doc;
  info.doc_name = doc_name;
  relations_[name] = std::move(info);
  return archiver_.RegisterRelation(name, schema, key_columns,
                                    options_.segment, clock_);
}

Status ArchIS::DropRelation(const std::string& name) {
  if (relations_.count(name) == 0) {
    return Status::NotFound("relation '" + name + "'");
  }
  ARCHIS_RETURN_NOT_OK(current_db_.catalog().DropTable(name));
  return archiver_.UnregisterRelation(name, clock_);
}

Status ArchIS::AdvanceClock(Date now) {
  if (now < clock_) {
    return Status::InvalidArgument(
        "transaction time cannot move backwards (" + now.ToString() + " < " +
        clock_.ToString() + ")");
  }
  clock_ = now;
  return Status::OK();
}

Result<storage::RecordId> ArchIS::FindByKey(
    Table* table, const RelationInfo& info, const std::vector<Value>& key,
    Tuple* row) const {
  if (key.size() != info.key_positions.size()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  const minirel::TableIndex* idx = table->GetIndex("pk");
  std::optional<storage::RecordId> found;
  ARCHIS_RETURN_NOT_OK(table->IndexScan(
      *idx, key, key, [&](const storage::RecordId& rid, const Tuple& t) {
        found = rid;
        *row = t;
        return false;
      }));
  if (!found) return Status::NotFound("no current row with that key");
  return *found;
}

Status ArchIS::Insert(const std::string& relation, const Tuple& row) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  ARCHIS_RETURN_NOT_OK(table->Insert(row).status());
  ChangeRecord change;
  change.kind = ChangeKind::kInsert;
  change.relation = relation;
  change.new_row = row;
  change.when = clock_;
  return capture_->Record(std::move(change));
}

Status ArchIS::Update(const std::string& relation,
                      const std::vector<Value>& key, const Tuple& new_row) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  Tuple old_row;
  ARCHIS_ASSIGN_OR_RETURN(storage::RecordId rid,
                          FindByKey(table, info->second, key, &old_row));
  // Keys are invariant in history (Section 3).
  for (size_t i = 0; i < key.size(); ++i) {
    if (!(new_row.at(info->second.key_positions[i]) == key[i])) {
      return Status::InvalidArgument("key columns must not change");
    }
  }
  ARCHIS_RETURN_NOT_OK(table->Update(&rid, new_row));
  ChangeRecord change;
  change.kind = ChangeKind::kUpdate;
  change.relation = relation;
  change.old_row = old_row;
  change.new_row = new_row;
  change.when = clock_;
  return capture_->Record(std::move(change));
}

Status ArchIS::Delete(const std::string& relation,
                      const std::vector<Value>& key) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  Tuple old_row;
  ARCHIS_ASSIGN_OR_RETURN(storage::RecordId rid,
                          FindByKey(table, info->second, key, &old_row));
  ARCHIS_RETURN_NOT_OK(table->Delete(rid));
  ChangeRecord change;
  change.kind = ChangeKind::kDelete;
  change.relation = relation;
  change.old_row = old_row;
  change.when = clock_;
  return capture_->Record(std::move(change));
}

Status ArchIS::FlushLog() { return capture_->Flush(); }

TranslatorContext ArchIS::translator_context() const {
  TranslatorContext ctx;
  ctx.current_date = clock_;
  for (const auto& [name, info] : relations_) {
    ctx.docs[info.doc_name] = info.doc;
  }
  return ctx;
}

Result<QueryResult> ArchIS::Query(const std::string& xquery) {
  QueryResult result;
  auto plan = Translate(xquery);
  if (plan.ok()) {
    result.path = QueryPath::kTranslated;
    result.sql = plan->ToSql();
    ARCHIS_ASSIGN_OR_RETURN(result.xml, Execute(*plan, &result.stats));
    return result;
  }
  if (plan.status().code() != StatusCode::kUnsupported) {
    return plan.status();
  }
  // Native fallback over published H-documents.
  ARCHIS_ASSIGN_OR_RETURN(xquery::Sequence seq, QueryNative(xquery));
  result.path = QueryPath::kNativeFallback;
  result.xml = xml::XmlNode::Element("results");
  for (const xquery::Item& item : seq) {
    if (item.is_node()) {
      result.xml->AppendChild(item.node()->Clone());
    } else {
      result.xml->AppendText(item.StringValue());
    }
  }
  return result;
}

Result<SqlXmlPlan> ArchIS::Translate(const std::string& xquery) const {
  return TranslateXQuery(xquery, translator_context());
}

Result<xml::XmlNodePtr> ArchIS::Execute(const SqlXmlPlan& plan,
                                        PlanStats* stats) const {
  return ExecutePlan(archiver_, plan, clock_, stats);
}

Result<xquery::Sequence> ArchIS::QueryNative(const std::string& xquery) {
  xquery::EvalContext ctx;
  ctx.current_date = clock_;
  ctx.resolve_doc =
      [this](const std::string& doc_name) -> Result<xml::XmlNodePtr> {
    for (const auto& [name, info] : relations_) {
      if (info.doc_name == doc_name) return PublishHistory(name);
    }
    return Status::NotFound("no relation publishes doc('" + doc_name + "')");
  };
  xquery::Evaluator evaluator(std::move(ctx));
  return evaluator.EvaluateQuery(xquery);
}

Result<xml::XmlNodePtr> ArchIS::PublishHistory(
    const std::string& relation) const {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  TimeInterval relation_interval = MakeInterval(clock_, Date::Forever());
  for (const auto& entry : archiver_.relations()) {
    if (entry.name == relation) relation_interval = entry.interval;
  }
  PublishOptions opts;
  opts.root_name = info->second.doc.root_tag;
  opts.entity_name = info->second.doc.entity_tag;
  return core::PublishHistory(*set, relation_interval, opts);
}

Status ArchIS::ImportHistory(const std::string& relation,
                             const xml::XmlNodePtr& doc) {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  return core::ImportHistory(set, doc);
}

Result<std::vector<Tuple>> ArchIS::Snapshot(const std::string& relation,
                                            Date t) const {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  return set->Snapshot(t);
}

Status ArchIS::FreezeAll() { return archiver_.FreezeAll(clock_); }

}  // namespace archis::core
