#include "archis/archis.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>

#include "archis/planner.h"
#include "common/flight_recorder.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/parse.h"
#include "xml/serializer.h"
#include "xquery/parser.h"

namespace archis::core {

using minirel::Schema;
using minirel::Table;
using minirel::Tuple;
using minirel::Value;

namespace {

// Facade-level metric catalog (DESIGN.md §9): query path mix and latency,
// change-capture throughput, transaction outcomes.
metrics::Counter* QueriesTranslatedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_queries_translated_total",
      "Queries answered by the translated SQL/XML path");
  return c;
}

metrics::Counter* QueriesNativeMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_queries_native_total",
      "Queries answered by native evaluation over published H-documents");
  return c;
}

metrics::Counter* QueryFailuresMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_query_failures_total",
      "Queries that returned a non-OK status on every attempted path");
  return c;
}

metrics::Histogram* QuerySecondsMetric() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "archis_query_seconds", "End-to-end ArchIS::Query latency",
      metrics::DefaultLatencyBuckets());
  return h;
}

metrics::Counter* TxnCommitsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_txn_commits_total",
      "Committed change batches (explicit, ambient and autocommit)");
  return c;
}

metrics::Counter* TxnAbortsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_txn_aborts_total", "Aborted (discarded) change batches");
  return c;
}

metrics::Counter* TxnConflictsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_txn_conflicts_total",
      "Commits rejected by first-committer-wins conflict detection");
  return c;
}

metrics::Counter* ChangesCapturedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_changes_captured_total",
      "Change records committed into the H-tables (capture throughput)");
  return c;
}

metrics::Counter* ConflictChangesMetric() {
  // Conflict-aborted commits keep their CHANGE attribution instead of
  // vanishing: same family as the committed counter, outcome-labeled.
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_changes_captured_total{outcome=\"conflict\"}",
      "Change records committed into the H-tables (capture throughput)");
  return c;
}

metrics::Histogram* CommitSecondsMetric(bool conflict) {
  static metrics::Histogram* ok = metrics::Registry::Global().GetHistogram(
      "archis_commit_seconds{outcome=\"ok\"}",
      "Commit latency (Begin-to-durable) by outcome",
      metrics::DefaultLatencyBuckets());
  static metrics::Histogram* lost = metrics::Registry::Global().GetHistogram(
      "archis_commit_seconds{outcome=\"conflict\"}",
      "Commit latency (Begin-to-durable) by outcome",
      metrics::DefaultLatencyBuckets());
  return conflict ? lost : ok;
}

metrics::Counter* AbortReasonMetric(fr::AbortReason reason) {
  // archis_txn_abort_total{reason=...}: the per-cause breakdown of the
  // aggregate archis_txn_aborts_total counter.
  static constexpr char kHelp[] =
      "Transaction aborts broken down by reason";
  static metrics::Counter* explicit_abort =
      metrics::Registry::Global().GetCounter(
          "archis_txn_abort_total{reason=\"explicit\"}", kHelp);
  static metrics::Counter* conflict = metrics::Registry::Global().GetCounter(
      "archis_txn_abort_total{reason=\"conflict\"}", kHelp);
  static metrics::Counter* wrong_thread =
      metrics::Registry::Global().GetCounter(
          "archis_txn_abort_total{reason=\"wrong_thread\"}", kHelp);
  static metrics::Counter* wal_poison =
      metrics::Registry::Global().GetCounter(
          "archis_txn_abort_total{reason=\"wal_poison\"}", kHelp);
  switch (reason) {
    case fr::AbortReason::kConflict:
      return conflict;
    case fr::AbortReason::kWrongThread:
      return wrong_thread;
    case fr::AbortReason::kWalPoison:
      return wal_poison;
    case fr::AbortReason::kExplicit:
      break;
  }
  return explicit_abort;
}

// Sliding-window views (DESIGN.md §14): rate + percentiles over the
// trailing 1s/10s/60s, rendered as labeled gauges in the exposition.
metrics::WindowedHistogram* QueryWindowMetric() {
  static metrics::WindowedHistogram* w =
      metrics::Registry::Global().GetWindowed(
          "archis_query_window_seconds",
          "Query latency over sliding 1s/10s/60s windows",
          metrics::DefaultLatencyBuckets());
  return w;
}

metrics::WindowedHistogram* ConflictWindowMetric() {
  static metrics::WindowedHistogram* w =
      metrics::Registry::Global().GetWindowed(
          "archis_conflict_window",
          "Commit conflicts over sliding 1s/10s/60s windows (rate)",
          metrics::DefaultLatencyBuckets());
  return w;
}

// Checkpoint / bounded recovery metrics (DESIGN.md §10, §13).
metrics::Histogram* CheckpointSecondsMetric() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "archis_checkpoint_seconds",
      "Latency of one checkpoint (capture + install + WAL reset)",
      metrics::DefaultLatencyBuckets());
  return h;
}

metrics::Counter* CheckpointsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_checkpoints_total", "Checkpoints completed (manual + auto)");
  return c;
}

metrics::Counter* CheckpointDirtyRowsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_checkpoint_dirty_rows",
      "Rows serialized into checkpoint manifests (every row for a base "
      "manifest, rows dirtied since the last capture for a delta)");
  return c;
}

metrics::Counter* WalRecoveredBytesMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_wal_recovered_bytes",
      "WAL bytes replayed by recovery (suffix past the manifest only)");
  return c;
}

metrics::Counter* ManifestFallbacksMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_checkpoint_manifest_fallbacks_total",
      "Recoveries that found the newest manifest torn and used the "
      "previous one");
  return c;
}

}  // namespace

// -- Transaction ---------------------------------------------------------------

Transaction::Transaction(ArchIS* db, uint64_t txn_id, uint64_t begin_seq,
                         bool stamp_at_commit)
    : db_(db),
      txn_id_(txn_id),
      begin_seq_(begin_seq),
      // Unclaimed until first use: Begin() hands the handle out through a
      // Result move anyway, so the claim is made where the handle lands.
      owner_(),
      stamp_at_commit_(stamp_at_commit) {}

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_),
      txn_id_(other.txn_id_),
      begin_seq_(other.begin_seq_),
      changes_(std::move(other.changes_)),
      overlay_(std::move(other.overlay_)),
      // A move releases affinity: the handle stays unclaimed until its
      // first use, so moving into a thread's closure (which runs the move
      // on the spawning thread) hands ownership to the thread that
      // actually uses it.
      owner_(),
      stamp_at_commit_(other.stamp_at_commit_),
      finished_(other.finished_),
      wal_begun_(other.wal_begun_) {
  // The moved-from handle is inert; this one inherits the registration.
  other.finished_ = true;
  other.changes_.clear();
  other.overlay_.clear();
}

Transaction::~Transaction() {
  if (!finished_) {
    // Best-effort: the destructor cannot report, and nothing was applied.
    IgnoreStatus(Abort());
  }
}

Status Transaction::CheckThread() {
  if (owner_ == std::thread::id()) {
    // Freshly moved: whoever touches the handle first owns it from here.
    owner_ = std::this_thread::get_id();
    return Status::OK();
  }
  if (std::this_thread::get_id() != owner_) {
    AbortReasonMetric(fr::AbortReason::kWrongThread)->Inc();
    fr::Record(fr::EventType::kTxnAbort, txn_id_, 0,
               static_cast<uint32_t>(fr::AbortReason::kWrongThread));
    return Status::InvalidArgument(
        "Transaction is single-thread-affine: only the owning thread may "
        "use it — move the handle to hand it to another thread");
  }
  return Status::OK();
}

Status Transaction::Insert(const std::string& relation, const Tuple& row) {
  if (finished_) return Status::Aborted("transaction already finished");
  ARCHIS_RETURN_NOT_OK(CheckThread());
  return db_->TxnInsert(this, relation, row);
}

Status Transaction::Update(const std::string& relation,
                           const std::vector<Value>& key,
                           const Tuple& new_row) {
  if (finished_) return Status::Aborted("transaction already finished");
  ARCHIS_RETURN_NOT_OK(CheckThread());
  return db_->TxnUpdate(this, relation, key, new_row);
}

Status Transaction::Delete(const std::string& relation,
                           const std::vector<Value>& key) {
  if (finished_) return Status::Aborted("transaction already finished");
  ARCHIS_RETURN_NOT_OK(CheckThread());
  return db_->TxnDelete(this, relation, key);
}

Status Transaction::Commit() {
  if (finished_) return Status::Aborted("transaction already finished");
  ARCHIS_RETURN_NOT_OK(CheckThread());
  finished_ = true;
  return db_->CommitTxn(this);
}

Status Transaction::Abort() {
  // No thread check: destructors may run on any thread, and the abort
  // protocol is fully serialized under the commit lock anyway.
  if (finished_) return Status::Aborted("transaction already finished");
  finished_ = true;
  return db_->AbortTxn(this);
}

// -- Construction / recovery ---------------------------------------------------

// Crash-dump contributor: renders this instance's active-transaction table
// and commit sequence into the `.crashdump` JSON. Best-effort by design —
// if the crashing thread died holding commit_mu_, TryLock fails and the
// source reports "unavailable" instead of deadlocking the signal handler.
class ArchIS::CrashSource : public fr::CrashInfoSource {
 public:
  explicit CrashSource(ArchIS* db) : db_(db) {}

  void AppendCrashJson(std::string* out) override {
    if (!db_->commit_mu_.TryLock()) {
      out->append("{\"active_txns\":\"unavailable\"}");
      return;
    }
    out->append("{\"active_txns\":[");
    bool first = true;
    for (uint64_t id : db_->open_txns_) {
      if (!first) out->push_back(',');
      first = false;
      out->append(std::to_string(id));
    }
    out->append("],\"commit_seq\":");
    out->append(std::to_string(db_->commit_seq_));
    out->push_back('}');
    db_->commit_mu_.Unlock();
  }

 private:
  ArchIS* db_;
};

ArchIS::ArchIS(ArchISOptions options, Date start_date)
    : crash_source_(std::make_unique<CrashSource>(this)),
      options_(std::move(options)), clock_(start_date),
      archiver_(&history_db_) {
  fr::InstallCrashHandler();
  fr::RegisterCrashInfoSource(crash_source_.get());
}

ArchIS::~ArchIS() { fr::UnregisterCrashInfoSource(crash_source_.get()); }

std::string ArchIS::DumpTrace() {
  return fr::ToChromeTraceJson(fr::Snapshot());
}

Result<std::unique_ptr<ArchIS>> ArchIS::Open(ArchISOptions options,
                                             Date start_date) {
  if (options.wal.path.empty()) {
    return std::make_unique<ArchIS>(std::move(options), start_date);
  }
  const std::string wal_path = options.wal.path;
  const WalOptions wal_options = options.wal;
  // Manifest chain first (bounded recovery, DESIGN.md §10/§13): restore the
  // base snapshot, layer every delta, then replay only the commits past the
  // chain.
  CheckpointChain chain = LoadCheckpointChain(wal_path);
  if (chain.fell_back) ManifestFallbacksMetric()->Inc();
  ARCHIS_ASSIGN_OR_RETURN(WalRecovery recovery, Wal::Recover(wal_path));
  auto db = std::make_unique<ArchIS>(std::move(options), start_date);
  uint64_t replay_from_offset = 0;  // legacy (pre-v3) manifests
  uint64_t absorbed_seq = 0;        // v3 manifests filter by commit sequence
  bool filter_by_seq = false;
  uint64_t chain_next_txn_id = 0;
  if (!chain.manifests.empty()) {
    const CheckpointManifest& last = chain.manifests.back();
    if (recovery.has_checkpoint_marker &&
        recovery.checkpoint_seq > last.seq) {
      return Status::Corruption(
          "WAL was truncated by checkpoint " +
          std::to_string(recovery.checkpoint_seq) +
          " but the newest readable manifest is seq " +
          std::to_string(last.seq));
    }
    ARCHIS_RETURN_NOT_OK(db->RestoreFromCheckpoint(chain.manifests.front()));
    for (size_t i = 1; i < chain.manifests.size(); ++i) {
      ARCHIS_RETURN_NOT_OK(db->ApplyCheckpointDelta(chain.manifests[i]));
    }
    db->checkpoint_seq_ = last.seq;
    chain_next_txn_id = last.next_txn_id;
    if (db->clock_ < Date(last.clock_days)) {
      db->clock_ = Date(last.clock_days);
    }
    if (last.version >= 3) {
      // Fuzzy manifests absorb a commit-sequence prefix, not a log prefix:
      // a commit whose frames straddle the capture point replays by its
      // sequence number regardless of where its bytes sit.
      filter_by_seq = true;
      absorbed_seq = last.absorbed_commit_seq;
    } else if (!recovery.has_checkpoint_marker ||
               recovery.checkpoint_seq < last.seq) {
      // Legacy quiesced manifests measured a log offset. A marker of the
      // manifest's own seq means the log *is* this checkpoint's suffix
      // (offsets restarted at 0); an older / absent marker means the log
      // layout is still the one the manifest measured.
      replay_from_offset = last.wal_offset;
    }
  } else if (recovery.has_checkpoint_marker) {
    return Status::Corruption(
        "WAL was truncated by checkpoint " +
        std::to_string(recovery.checkpoint_seq) +
        " but no checkpoint manifest is readable");
  }
  // Restored state is durable in the chain — not dirty. Replay re-marks
  // whatever it touches.
  db->ClearAllDirty();
  const auto item_commit_seq = [](const WalReplayItem& item) -> uint64_t {
    if (const auto* create = std::get_if<WalCreateRelation>(&item)) {
      return create->commit_seq;
    }
    if (const auto* drop = std::get_if<WalDropRelation>(&item)) {
      return drop->commit_seq;
    }
    return std::get<WalCommittedTxn>(item).commit_seq;
  };
  size_t replayed_items = 0;
  uint64_t first_replayed_offset = recovery.valid_bytes;
  for (size_t i = 0; i < recovery.items.size(); ++i) {
    const WalReplayItem& item = recovery.items[i];
    if (filter_by_seq ? item_commit_seq(item) <= absorbed_seq
                      : recovery.item_offsets[i] < replay_from_offset) {
      continue;
    }
    if (replayed_items == 0) first_replayed_offset = recovery.item_offsets[i];
    ++replayed_items;
    if (const auto* create = std::get_if<WalCreateRelation>(&item)) {
      ARCHIS_RETURN_NOT_OK(db->CreateRelationInternal(
          create->spec, create->open_date, /*log_to_wal=*/false));
      if (db->clock_ < create->open_date) db->clock_ = create->open_date;
    } else if (const auto* drop = std::get_if<WalDropRelation>(&item)) {
      ARCHIS_RETURN_NOT_OK(db->DropRelationInternal(drop->name, drop->when,
                                                    /*log_to_wal=*/false));
      if (db->clock_ < drop->when) db->clock_ = drop->when;
    } else {
      const auto& txn = std::get<WalCommittedTxn>(item);
      ARCHIS_RETURN_NOT_OK(db->ApplyRecovered(txn));
      if (db->clock_ < txn.commit_date) db->clock_ = txn.commit_date;
    }
  }
  {
    MutexLock lock(db->commit_mu_);
    db->commit_seq_ = std::max(absorbed_seq, recovery.max_commit_seq);
  }
  const uint64_t replayed_bytes = recovery.valid_bytes - first_replayed_offset;
  // Drop the torn tail so the resumed log is a clean extension of the
  // prefix recovery just replayed.
  ARCHIS_RETURN_NOT_OK(
      storage::TruncateLogFile(wal_path, recovery.valid_bytes));
  uint64_t next_txn_id = recovery.max_txn_id + 1;
  if (next_txn_id < chain_next_txn_id) next_txn_id = chain_next_txn_id;
  ARCHIS_ASSIGN_OR_RETURN(db->wal_, Wal::Open(wal_options, next_txn_id));
  db->last_recovery_replayed_bytes_ = replayed_bytes;
  static metrics::Counter* recoveries = metrics::Registry::Global().GetCounter(
      "archis_wal_recoveries_total", "WAL recovery passes run by Open");
  static metrics::Counter* recovered_items =
      metrics::Registry::Global().GetCounter(
          "archis_wal_recovered_items_total",
          "Committed transactions and DDL records replayed by recovery");
  recoveries->Inc();
  recovered_items->Inc(replayed_items);
  WalRecoveredBytesMetric()->Inc(replayed_bytes);
  logging::Info("wal.recovered")
      .Kv("path", wal_path)
      .Kv("items", replayed_items)
      .Kv("skipped_items", recovery.items.size() - replayed_items)
      .Kv("valid_bytes", recovery.valid_bytes)
      .Kv("replayed_bytes", replayed_bytes)
      .Kv("checkpoint_seq", db->checkpoint_seq_)
      .Kv("chain_manifests", chain.manifests.size())
      .Kv("manifest_fallback", chain.fell_back)
      .Kv("next_txn_id", next_txn_id)
      .Kv("clock", db->clock_.ToString());
  return db;
}

Status ArchIS::CheckWritable() const {
  if (!options_.wal.path.empty() && wal_ == nullptr) {
    return Status::InvalidArgument(
        "WAL-configured ArchIS must be created with ArchIS::Open (recovery "
        "has not run)");
  }
  return Status::OK();
}

// -- Schema --------------------------------------------------------------------

Status ArchIS::CreateRelation(const RelationSpec& spec) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  return CreateRelationInternal(spec, clock_, /*log_to_wal=*/true);
}

Status ArchIS::CreateRelationInternal(RelationSpec spec, Date open_date,
                                      bool log_to_wal) {
  if (spec.root_tag.empty()) spec.root_tag = spec.name;
  if (spec.entity_tag.empty()) {
    spec.entity_tag = spec.root_tag;
    if (!spec.entity_tag.empty() && spec.entity_tag.back() == 's') {
      spec.entity_tag.pop_back();
    }
  }
  if (spec.doc_name.empty()) {
    return Status::InvalidArgument("RelationSpec::doc_name must be set");
  }
  // DDL serializes against commits: it mutates the catalog the commit
  // apply path reads, and its WAL record takes a commit sequence number.
  MutexLock lock(commit_mu_);
  ARCHIS_ASSIGN_OR_RETURN(
      Table * table, current_db_.catalog().CreateTable(spec.name, spec.schema));
  ARCHIS_RETURN_NOT_OK(table->CreateIndex("pk", spec.key_columns));
  RelationInfo info;
  info.key_columns = spec.key_columns;
  for (const std::string& k : spec.key_columns) {
    ARCHIS_ASSIGN_OR_RETURN(size_t pos, spec.schema.ColumnIndex(k));
    info.key_positions.push_back(pos);
  }
  info.doc.relation = spec.name;
  info.doc.root_tag = spec.root_tag;
  info.doc.entity_tag = spec.entity_tag;
  info.doc_name = spec.doc_name;
  relations_[spec.name] = std::move(info);
  ARCHIS_RETURN_NOT_OK(archiver_.RegisterRelation(
      spec.name, spec.schema, spec.key_columns, options_.segment, open_date));
  InvalidatePlanCache();
  // Deltas cannot express schema changes; the next checkpoint rebases.
  ddl_since_checkpoint_ = true;
  if (log_to_wal && wal_ != nullptr) {
    const uint64_t seq = ++commit_seq_;
    return wal_->LogCreateRelation(spec, open_date, seq);
  }
  return Status::OK();
}

Status ArchIS::DropRelation(const std::string& name) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  return DropRelationInternal(name, clock_, /*log_to_wal=*/true);
}

Status ArchIS::DropRelationInternal(const std::string& name, Date when,
                                    bool log_to_wal) {
  MutexLock lock(commit_mu_);
  if (relations_.count(name) == 0) {
    return Status::NotFound("relation '" + name + "'");
  }
  ARCHIS_RETURN_NOT_OK(current_db_.catalog().DropTable(name));
  ARCHIS_RETURN_NOT_OK(archiver_.UnregisterRelation(name, when));
  InvalidatePlanCache();
  ddl_since_checkpoint_ = true;
  if (log_to_wal && wal_ != nullptr) {
    const uint64_t seq = ++commit_seq_;
    return wal_->LogDropRelation(name, when, seq);
  }
  return Status::OK();
}

// -- Transaction clock ---------------------------------------------------------

Status ArchIS::AdvanceClock(Date now) {
  // Open transactions don't pin the clock: a transaction's changes are
  // stamped with the clock at its *commit* instant, so moving the clock
  // mid-transaction just means the batch commits at the newer time.
  MutexLock lock(commit_mu_);
  if (now < clock_) {
    return Status::InvalidArgument(
        "transaction time cannot move backwards (" + now.ToString() + " < " +
        clock_.ToString() + ")");
  }
  clock_ = now;
  return Status::OK();
}

// -- DML -----------------------------------------------------------------------

Result<Transaction> ArchIS::Begin() {
  return BeginInternal(/*stamp_at_commit=*/true);
}

Result<Transaction> ArchIS::BeginInternal(bool stamp_at_commit) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  MutexLock lock(commit_mu_);
  if (open_txns_.size() >= options_.max_open_transactions) {
    return Status::InvalidArgument(
        "too many open transactions (max_open_transactions = " +
        std::to_string(options_.max_open_transactions) + ")");
  }
  const uint64_t txn_id = wal_ != nullptr ? wal_->NextTxnId() : next_txn_id_++;
  open_txns_.insert(txn_id);
  fr::Record(fr::EventType::kTxnBegin, txn_id);
  return Transaction(this, txn_id, commit_seq_, stamp_at_commit);
}

Result<Transaction*> ArchIS::AmbientTxn() {
  if (!ambient_) {
    // The ambient batch keeps per-statement dates: its statements may span
    // clock advances (an update log accumulated over time), so re-stamping
    // them at commit would rewrite history.
    ARCHIS_ASSIGN_OR_RETURN(Transaction txn,
                            BeginInternal(/*stamp_at_commit=*/false));
    ambient_ = std::make_unique<Transaction>(std::move(txn));
  }
  return ambient_.get();
}

Status ArchIS::Insert(const std::string& relation, const Tuple& row) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  if (options_.capture_mode == CaptureMode::kUpdateLog) {
    ARCHIS_ASSIGN_OR_RETURN(Transaction * txn, AmbientTxn());
    return txn->Insert(relation, row);
  }
  ARCHIS_ASSIGN_OR_RETURN(Transaction txn,
                          BeginInternal(/*stamp_at_commit=*/true));
  ARCHIS_RETURN_NOT_OK(txn.Insert(relation, row));
  return txn.Commit();
}

Status ArchIS::Update(const std::string& relation,
                      const std::vector<Value>& key, const Tuple& new_row) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  if (options_.capture_mode == CaptureMode::kUpdateLog) {
    ARCHIS_ASSIGN_OR_RETURN(Transaction * txn, AmbientTxn());
    return txn->Update(relation, key, new_row);
  }
  ARCHIS_ASSIGN_OR_RETURN(Transaction txn,
                          BeginInternal(/*stamp_at_commit=*/true));
  ARCHIS_RETURN_NOT_OK(txn.Update(relation, key, new_row));
  return txn.Commit();
}

Status ArchIS::Delete(const std::string& relation,
                      const std::vector<Value>& key) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  if (options_.capture_mode == CaptureMode::kUpdateLog) {
    ARCHIS_ASSIGN_OR_RETURN(Transaction * txn, AmbientTxn());
    return txn->Delete(relation, key);
  }
  ARCHIS_ASSIGN_OR_RETURN(Transaction txn,
                          BeginInternal(/*stamp_at_commit=*/true));
  ARCHIS_RETURN_NOT_OK(txn.Delete(relation, key));
  return txn.Commit();
}

Status ArchIS::Commit() {
  if (!ambient_) return Status::OK();
  std::unique_ptr<Transaction> txn = std::move(ambient_);
  return txn->Commit();
}

size_t ArchIS::pending_changes() const {
  return ambient_ ? ambient_->pending() : 0;
}

// -- Transaction plumbing ------------------------------------------------------

Result<storage::RecordId> ArchIS::FindByKey(
    Table* table, const RelationInfo& info, const std::vector<Value>& key,
    Tuple* row) const {
  if (key.size() != info.key_positions.size()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  const minirel::TableIndex* idx = table->GetIndex("pk");
  std::optional<storage::RecordId> found;
  ARCHIS_RETURN_NOT_OK(table->IndexScan(
      *idx, key, key, [&](const storage::RecordId& rid, const Tuple& t) {
        found = rid;
        *row = t;
        return false;
      }));
  if (!found) return Status::NotFound("no current row with that key");
  return *found;
}

std::vector<Value> ArchIS::KeyOf(const RelationInfo& info, const Tuple& row) {
  std::vector<Value> key;
  key.reserve(info.key_positions.size());
  for (size_t pos : info.key_positions) key.push_back(row.at(pos));
  return key;
}

std::string ArchIS::EncodeKeyValues(const std::vector<Value>& key) {
  Tuple t;
  for (const Value& v : key) t.Append(v);
  std::string out;
  EncodeTuple(t, &out);
  return out;
}

std::string ArchIS::WriteSetKey(const std::string& relation,
                                const std::vector<Value>& key) {
  std::string out = relation;
  out.push_back('\0');
  out += EncodeKeyValues(key);
  return out;
}

std::string ArchIS::DisplayKey(const std::string& relation,
                               const std::vector<Value>& key) {
  std::string out = relation + "(";
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out += ", ";
    out += key[i].ToString();
  }
  out += ")";
  return out;
}

Status ArchIS::TxnInsert(Transaction* txn, const std::string& relation,
                         const Tuple& row) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  MutexLock lock(commit_mu_);
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  // Validate against the schema now — the deferred apply at commit must
  // not be the first place a malformed row surfaces.
  ARCHIS_RETURN_NOT_OK(row.Encode(table->schema()).status());
  const std::vector<Value> key = KeyOf(info->second, row);
  const std::string wkey = WriteSetKey(relation, key);
  bool visible = false;
  auto ov = txn->overlay_.find(wkey);
  if (ov != txn->overlay_.end()) {
    visible = ov->second.row.has_value();
  } else {
    Tuple existing;
    Result<storage::RecordId> rid = FindByKey(table, info->second, key,
                                              &existing);
    if (rid.ok()) {
      visible = true;
    } else if (rid.status().code() != StatusCode::kNotFound) {
      return rid.status();
    }
  }
  if (visible) {
    return Status::AlreadyExists("a current row with key " +
                                 DisplayKey(relation, key) +
                                 " already exists");
  }
  ChangeRecord change;
  change.kind = ChangeKind::kInsert;
  change.relation = relation;
  change.new_row = row;
  change.when = clock_;
  if (wal_ != nullptr) {
    if (!txn->wal_begun_) {
      ARCHIS_RETURN_NOT_OK(wal_->EnqueueBegin(txn->txn_id_));
      txn->wal_begun_ = true;
    }
    ARCHIS_RETURN_NOT_OK(wal_->EnqueueChange(txn->txn_id_, change));
  }
  txn->changes_.push_back(std::move(change));
  txn->overlay_[wkey] =
      Transaction::OverlayEntry{row, DisplayKey(relation, key)};
  return Status::OK();
}

Status ArchIS::TxnUpdate(Transaction* txn, const std::string& relation,
                         const std::vector<Value>& key, const Tuple& new_row) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  if (key.size() != info->second.key_positions.size()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  MutexLock lock(commit_mu_);
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  ARCHIS_RETURN_NOT_OK(new_row.Encode(table->schema()).status());
  const std::string wkey = WriteSetKey(relation, key);
  Tuple old_row;
  auto ov = txn->overlay_.find(wkey);
  if (ov != txn->overlay_.end()) {
    if (!ov->second.row.has_value()) {
      return Status::NotFound("no current row with that key");
    }
    old_row = *ov->second.row;
  } else {
    ARCHIS_RETURN_NOT_OK(
        FindByKey(table, info->second, key, &old_row).status());
  }
  // Keys are invariant in history (Section 3).
  for (size_t i = 0; i < key.size(); ++i) {
    if (!(new_row.at(info->second.key_positions[i]) == key[i])) {
      return Status::InvalidArgument("key columns must not change");
    }
  }
  ChangeRecord change;
  change.kind = ChangeKind::kUpdate;
  change.relation = relation;
  change.old_row = std::move(old_row);
  change.new_row = new_row;
  change.when = clock_;
  if (wal_ != nullptr) {
    if (!txn->wal_begun_) {
      ARCHIS_RETURN_NOT_OK(wal_->EnqueueBegin(txn->txn_id_));
      txn->wal_begun_ = true;
    }
    ARCHIS_RETURN_NOT_OK(wal_->EnqueueChange(txn->txn_id_, change));
  }
  txn->changes_.push_back(std::move(change));
  txn->overlay_[wkey] =
      Transaction::OverlayEntry{new_row, DisplayKey(relation, key)};
  return Status::OK();
}

Status ArchIS::TxnDelete(Transaction* txn, const std::string& relation,
                         const std::vector<Value>& key) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  if (key.size() != info->second.key_positions.size()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  MutexLock lock(commit_mu_);
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  const std::string wkey = WriteSetKey(relation, key);
  Tuple old_row;
  auto ov = txn->overlay_.find(wkey);
  if (ov != txn->overlay_.end()) {
    if (!ov->second.row.has_value()) {
      return Status::NotFound("no current row with that key");
    }
    old_row = *ov->second.row;
  } else {
    ARCHIS_RETURN_NOT_OK(
        FindByKey(table, info->second, key, &old_row).status());
  }
  ChangeRecord change;
  change.kind = ChangeKind::kDelete;
  change.relation = relation;
  change.old_row = std::move(old_row);
  change.when = clock_;
  if (wal_ != nullptr) {
    if (!txn->wal_begun_) {
      ARCHIS_RETURN_NOT_OK(wal_->EnqueueBegin(txn->txn_id_));
      txn->wal_begun_ = true;
    }
    ARCHIS_RETURN_NOT_OK(wal_->EnqueueChange(txn->txn_id_, change));
  }
  txn->changes_.push_back(std::move(change));
  txn->overlay_[wkey] =
      Transaction::OverlayEntry{std::nullopt, DisplayKey(relation, key)};
  return Status::OK();
}

void ArchIS::UnregisterTxnLocked(uint64_t txn_id) {
  open_txns_.erase(txn_id);
  // The last transaction out clears the committed-writer index: with no
  // open transaction left, nothing can conflict with those entries, and
  // every future Begin starts at the current commit sequence anyway.
  if (open_txns_.empty()) key_last_writer_.clear();
}

Status ArchIS::ApplyCommitted(const ChangeRecord& change) {
  auto info = relations_.find(change.relation);
  if (info == relations_.end()) {
    return Status::Internal("commit apply for unknown relation '" +
                            change.relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(change.relation));
  switch (change.kind) {
    case ChangeKind::kInsert:
      ARCHIS_RETURN_NOT_OK(table->Insert(change.new_row).status());
      break;
    case ChangeKind::kUpdate: {
      Tuple row;
      ARCHIS_ASSIGN_OR_RETURN(
          storage::RecordId rid,
          FindByKey(table, info->second, KeyOf(info->second, change.new_row),
                    &row));
      ARCHIS_RETURN_NOT_OK(table->Update(&rid, change.new_row));
      break;
    }
    case ChangeKind::kDelete: {
      Tuple row;
      ARCHIS_ASSIGN_OR_RETURN(
          storage::RecordId rid,
          FindByKey(table, info->second, KeyOf(info->second, change.old_row),
                    &row));
      ARCHIS_RETURN_NOT_OK(table->Delete(rid));
      break;
    }
  }
  ARCHIS_RETURN_NOT_OK(archiver_.Apply(change));
  const Tuple& key_row = change.kind == ChangeKind::kDelete ? change.old_row
                                                            : change.new_row;
  dirty_current_keys_[change.relation].insert(
      EncodeKeyValues(KeyOf(info->second, key_row)));
  return Status::OK();
}

Status ArchIS::CommitTxn(Transaction* txn) {
  if (txn->changes_.empty()) {
    MutexLock lock(commit_mu_);
    if (wal_ != nullptr && txn->wal_begun_) {
      IgnoreStatus(wal_->EnqueueAbort(txn->txn_id_));
    }
    UnregisterTxnLocked(txn->txn_id_);
    return Status::OK();
  }
  const size_t nchanges = txn->changes_.size();
  const auto commit_started = std::chrono::steady_clock::now();
  auto commit_seconds = [&commit_started] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         commit_started)
        .count();
  };
  uint64_t ticket = 0;
  uint64_t committed_seq = 0;
  {
    MutexLock lock(commit_mu_);
    // First committer wins: any key this transaction wrote that a later
    // commit also wrote is a lost update waiting to happen — reject.
    for (const auto& [wkey, entry] : txn->overlay_) {
      auto it = key_last_writer_.find(wkey);
      if (it != key_last_writer_.end() && it->second > txn->begin_seq_) {
        // UnregisterTxnLocked may clear key_last_writer_ (last open txn
        // gone), invalidating `it` — read the winner's seq first.
        const uint64_t winner_seq = it->second;
        if (wal_ != nullptr && txn->wal_begun_) {
          IgnoreStatus(wal_->EnqueueAbort(txn->txn_id_));
        }
        UnregisterTxnLocked(txn->txn_id_);
        TxnConflictsMetric()->Inc();
        TxnAbortsMetric()->Inc();
        AbortReasonMetric(fr::AbortReason::kConflict)->Inc();
        // Conflict-aborted commits keep their latency and CHANGE-count
        // attribution (outcome=conflict) instead of vanishing.
        CommitSecondsMetric(/*conflict=*/true)->Observe(commit_seconds());
        ConflictChangesMetric()->Inc(nchanges);
        ConflictWindowMetric()->Observe(0.0);
        fr::Record(fr::EventType::kTxnConflict, txn->txn_id_, winner_seq, 0,
                   entry.display);
        fr::Record(fr::EventType::kTxnAbort, txn->txn_id_, 0,
                   static_cast<uint32_t>(fr::AbortReason::kConflict));
        return Status::Conflict(
            "write-write conflict on " + entry.display +
            ": a concurrent transaction committed this key first");
      }
    }
    // One transaction, one transaction-time instant: the clock at commit.
    if (txn->stamp_at_commit_) {
      for (ChangeRecord& change : txn->changes_) change.when = clock_;
    }
    const uint64_t seq = commit_seq_ + 1;
    if (wal_ != nullptr) {
      // Enqueued under the commit lock, so log order equals commit order;
      // the durability wait happens outside it (group commit).
      Result<uint64_t> enq = wal_->EnqueueCommit(
          txn->txn_id_, clock_, txn->stamp_at_commit_, seq);
      if (!enq.ok()) {
        UnregisterTxnLocked(txn->txn_id_);
        TxnAbortsMetric()->Inc();
        AbortReasonMetric(fr::AbortReason::kWalPoison)->Inc();
        fr::Record(fr::EventType::kTxnAbort, txn->txn_id_, 0,
                   static_cast<uint32_t>(fr::AbortReason::kWalPoison));
        return enq.status();
      }
      ticket = *enq;
    }
    Status applied = Status::OK();
    for (const ChangeRecord& change : txn->changes_) {
      applied = ApplyCommitted(change);
      if (!applied.ok()) break;
    }
    if (!applied.ok()) {
      UnregisterTxnLocked(txn->txn_id_);
      return applied;
    }
    commit_seq_ = seq;
    for (const auto& [wkey, entry] : txn->overlay_) {
      key_last_writer_[wkey] = seq;
    }
    committed_seq = seq;
    UnregisterTxnLocked(txn->txn_id_);
  }
  if (wal_ != nullptr) {
    Status durable = wal_->WaitDurable(ticket);
    if (!durable.ok()) {
      TxnAbortsMetric()->Inc();
      AbortReasonMetric(fr::AbortReason::kWalPoison)->Inc();
      fr::Record(fr::EventType::kTxnAbort, txn->txn_id_, 0,
                 static_cast<uint32_t>(fr::AbortReason::kWalPoison));
      return durable;
    }
  }
  InvalidatePlanCache();
  TxnCommitsMetric()->Inc();
  ChangesCapturedMetric()->Inc(nchanges);
  CommitSecondsMetric(/*conflict=*/false)->Observe(commit_seconds());
  // Recorded only after WaitDurable succeeds: every txn_commit event in a
  // crash dump must name a transaction the WAL will recover as committed.
  fr::Record(fr::EventType::kTxnCommit, txn->txn_id_, committed_seq,
             static_cast<uint32_t>(nchanges));
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status ArchIS::AbortTxn(Transaction* txn) {
  MutexLock lock(commit_mu_);
  if (wal_ != nullptr && txn->wal_begun_) {
    // Best-effort: the frame rides out with the next durable batch. A
    // lost ABORT is harmless — recovery discards uncommitted frames.
    IgnoreStatus(wal_->EnqueueAbort(txn->txn_id_));
  }
  UnregisterTxnLocked(txn->txn_id_);
  if (!txn->changes_.empty()) {
    TxnAbortsMetric()->Inc();
    AbortReasonMetric(fr::AbortReason::kExplicit)->Inc();
  }
  fr::Record(fr::EventType::kTxnAbort, txn->txn_id_, 0,
             static_cast<uint32_t>(fr::AbortReason::kExplicit));
  txn->changes_.clear();
  txn->overlay_.clear();
  return Status::OK();
}

// -- Recovery replay -----------------------------------------------------------

Status ArchIS::ApplyRecovered(const WalCommittedTxn& txn) {
  MutexLock lock(commit_mu_);
  for (const ChangeRecord& change : txn.changes) {
    ARCHIS_RETURN_NOT_OK(ReplayChange(change));
  }
  InvalidatePlanCache();
  return Status::OK();
}

Status ArchIS::ReplayChange(const ChangeRecord& change) {
  auto info = relations_.find(change.relation);
  if (info == relations_.end()) {
    return Status::Corruption("recovered change for unknown relation '" +
                              change.relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(change.relation));
  const Tuple* applied_row = nullptr;
  switch (change.kind) {
    case ChangeKind::kInsert: {
      Tuple existing;
      auto rid = FindByKey(table, info->second,
                           KeyOf(info->second, change.new_row), &existing);
      if (rid.ok()) return Status::OK();  // already applied
      if (rid.status().code() != StatusCode::kNotFound) return rid.status();
      ARCHIS_RETURN_NOT_OK(table->Insert(change.new_row).status());
      ARCHIS_RETURN_NOT_OK(archiver_.Apply(change));
      applied_row = &change.new_row;
      break;
    }
    case ChangeKind::kUpdate: {
      Tuple existing;
      ARCHIS_ASSIGN_OR_RETURN(
          storage::RecordId rid,
          FindByKey(table, info->second, KeyOf(info->second, change.new_row),
                    &existing));
      if (existing == change.new_row) return Status::OK();  // already applied
      ARCHIS_RETURN_NOT_OK(table->Update(&rid, change.new_row));
      ARCHIS_RETURN_NOT_OK(archiver_.Apply(change));
      applied_row = &change.new_row;
      break;
    }
    case ChangeKind::kDelete: {
      Tuple existing;
      auto rid = FindByKey(table, info->second,
                           KeyOf(info->second, change.old_row), &existing);
      if (!rid.ok()) {
        if (rid.status().code() == StatusCode::kNotFound) {
          return Status::OK();  // already applied
        }
        return rid.status();
      }
      ARCHIS_RETURN_NOT_OK(table->Delete(*rid));
      ARCHIS_RETURN_NOT_OK(archiver_.Apply(change));
      applied_row = &change.old_row;
      break;
    }
  }
  if (applied_row != nullptr) {
    dirty_current_keys_[change.relation].insert(
        EncodeKeyValues(KeyOf(info->second, *applied_row)));
  }
  return Status::OK();
}

// -- Checkpointing -------------------------------------------------------------

Status ArchIS::Checkpoint(CheckpointCrashPoint crash_point) {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "Checkpoint requires a WAL-backed instance (in-memory instances "
        "have nothing to truncate)");
  }
  const auto started = std::chrono::steady_clock::now();
  MutexLock ckpt_lock(checkpoint_mu_);
  CheckpointManifest manifest;
  std::vector<RelationDirty> drained;
  bool is_base = false;
  bool had_ddl = false;
  {
    // checkpoint_mu_ -> commit_mu_ is the one true order (ranks 3 -> 5,
    // enforced at runtime by LockRank). The analyzer's reverse edge is a
    // name-resolution artifact: Table internals dispatch `tree.Insert` to
    // ArchIS::Insert, whose commit path reaches MaybeAutoCheckpoint — but
    // that call runs after commit_mu_ is released, never under it.
    // archis-analyze: allow(lock-cycle) -- false reverse edge via untyped Insert dispatch
    MutexLock lock(commit_mu_);
    // Capture barrier: everything enqueued so far becomes durable before
    // the capture, so the manifest never absorbs a commit the log could
    // still lose. No quiesce — open transactions keep their handles; their
    // uncommitted changes are simply not in any table yet.
    ARCHIS_RETURN_NOT_OK(wal_->FlushDurable());
    is_base = ddl_since_checkpoint_ || checkpoint_chain_len_ == 0 ||
              checkpoint_chain_len_ >= options_.wal.checkpoint_base_every;
    had_ddl = ddl_since_checkpoint_;
    ddl_since_checkpoint_ = false;
    manifest.seq = checkpoint_seq_ + 1;
    fr::Record(fr::EventType::kCheckpointPhase, manifest.seq, 0, 0, "capture");
    manifest.clock_days = clock_.days();
    manifest.next_txn_id = wal_->PeekNextTxnId();
    manifest.wal_offset = wal_->end_offset();
    manifest.base = is_base;
    manifest.prev_seq = is_base ? 0 : checkpoint_seq_;
    manifest.absorbed_commit_seq = commit_seq_;
    manifest.active_txn_ids.assign(open_txns_.begin(), open_txns_.end());
    Status captured = Status::OK();
    for (const Archiver::RelationEntry& entry : archiver_.relations()) {
      if (is_base) {
        Result<CheckpointRelation> rel =
            CaptureRelation(entry.name, entry.interval);
        if (!rel.ok()) {
          captured = rel.status();
          break;
        }
        RelationDirty rd;
        DrainDirty(entry.name, &rd);
        drained.push_back(std::move(rd));
        manifest.relations.push_back(std::move(*rel));
      } else {
        Result<HTableSet*> set = archiver_.htables(entry.name);
        if (!set.ok()) {
          captured = set.status();
          break;
        }
        bool dirty = (*set)->dirty_surrogate_count() > 0 ||
                     (*set)->key_store()->dirty_count() > 0;
        for (const std::string& attr : (*set)->attribute_names()) {
          if (dirty) break;
          Result<SegmentedStore*> store = (*set)->attribute_store(attr);
          if (!store.ok()) {
            // Name came from attribute_names(): the lookup cannot fail.
            IgnoreStatus(store.status());
            continue;
          }
          if ((*store)->dirty_count() > 0) dirty = true;
        }
        if (!dirty) {
          auto it = dirty_current_keys_.find(entry.name);
          dirty = it != dirty_current_keys_.end() && !it->second.empty();
        }
        if (!dirty) continue;
        RelationDirty rd;
        Result<CheckpointRelation> rel =
            CaptureRelationDelta(entry.name, entry.interval, &rd);
        drained.push_back(std::move(rd));
        if (!rel.ok()) {
          captured = rel.status();
          break;
        }
        manifest.relations.push_back(std::move(*rel));
      }
    }
    if (!captured.ok()) {
      MergeDirtyBack(drained);
      ddl_since_checkpoint_ = ddl_since_checkpoint_ || had_ddl;
      return captured;
    }
  }
  uint64_t manifest_rows = 0;
  for (const CheckpointRelation& rel : manifest.relations) {
    for (const auto& rows : rel.store_rows) manifest_rows += rows.size();
    manifest_rows += rel.current_rows.size() + rel.current_deletes.size();
  }
  fr::Record(fr::EventType::kCheckpointPhase, manifest.seq, 0, 0, "encode");
  Result<std::string> encoded = EncodeCheckpointManifest(manifest);
  fr::Record(fr::EventType::kCheckpointPhase, manifest.seq, 0, 0, "install");
  Status install =
      encoded.ok()
          ? (is_base ? InstallCheckpointManifest(options_.wal.path, *encoded,
                                                 crash_point)
                     : AppendCheckpointDelta(options_.wal.path, *encoded,
                                             checkpoint_file_valid_bytes_,
                                             crash_point))
          : encoded.status();
  if (!install.ok()) {
    MutexLock lock(commit_mu_);
    MergeDirtyBack(drained);
    ddl_since_checkpoint_ = ddl_since_checkpoint_ || had_ddl;
    return install;
  }
  checkpoint_seq_ = manifest.seq;
  checkpoint_chain_len_ = is_base ? 1 : checkpoint_chain_len_ + 1;
  checkpoint_file_valid_bytes_ = is_base
                                     ? encoded->size()
                                     : checkpoint_file_valid_bytes_ +
                                           encoded->size();
  if (crash_point == CheckpointCrashPoint::kBeforeWalReset) {
    return Status::IOError("injected crash before WAL reset");
  }
  // The WAL can only be truncated when nothing is in flight: no open
  // transaction (their BEGIN/CHANGE frames must survive) and no commit
  // past the capture. Otherwise the log keeps growing and recovery bounds
  // replay by commit sequence instead.
  bool wal_reset = false;
  {
    MutexLock lock(commit_mu_);
    if (open_txns_.empty() && commit_seq_ == manifest.absorbed_commit_seq) {
      ARCHIS_RETURN_NOT_OK(wal_->FlushDurable());
      ARCHIS_RETURN_NOT_OK(wal_->ResetAfterCheckpoint(manifest.seq));
      wal_reset = true;
      fr::Record(fr::EventType::kCheckpointPhase, manifest.seq, 0, 0,
                 "wal_reset");
    }
  }
  wal_bytes_at_last_checkpoint_ = wal_->bytes_written();
  CheckpointsMetric()->Inc();
  CheckpointDirtyRowsMetric()->Inc(manifest_rows);
  CheckpointSecondsMetric()->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count());
  fr::Record(fr::EventType::kCheckpointPhase, manifest.seq, 0, 0, "complete");
  logging::Info("checkpoint.complete")
      .Kv("seq", manifest.seq)
      .Kv("kind", is_base ? "base" : "delta")
      .Kv("relations", manifest.relations.size())
      .Kv("manifest_bytes", encoded->size())
      .Kv("rows", manifest_rows)
      .Kv("active_txns", manifest.active_txn_ids.size())
      .Kv("wal_reset", wal_reset)
      .Kv("clock", Date(manifest.clock_days).ToString());
  return Status::OK();
}

Result<CheckpointRelation> ArchIS::CaptureRelation(
    const std::string& name, const TimeInterval& interval) {
  auto info = relations_.find(name);
  if (info == relations_.end()) {
    return Status::Internal("archived relation '" + name +
                            "' has no catalog entry");
  }
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(name));
  CheckpointRelation rel;
  rel.spec.name = name;
  rel.spec.schema = set->current_schema();
  rel.spec.key_columns = set->key_columns();
  rel.spec.doc_name = info->second.doc_name;
  rel.spec.root_tag = info->second.doc.root_tag;
  rel.spec.entity_tag = info->second.doc.entity_tag;
  rel.open_days = interval.tstart.days();
  rel.close_days = interval.tend.days();
  rel.dropped = !interval.is_current();
  rel.full = true;
  rel.surrogates.assign(set->surrogate_ids().begin(),
                        set->surrogate_ids().end());
  std::sort(rel.surrogates.begin(), rel.surrogates.end());
  rel.next_surrogate = set->next_surrogate();
  // Raw deduplicated store rows, key table first (the manifest must round-
  // trip re-insertions of one key without merging their intervals, which
  // the published H-document would).
  rel.store_rows.emplace_back();
  ARCHIS_RETURN_NOT_OK(
      set->key_store()->ScanHistory([&](const Tuple& row) {
        rel.store_rows.back().push_back(row);
        return true;
      }));
  rel.store_stats.push_back(set->key_store()->statistics().Encode());
  for (const std::string& attr : set->attribute_names()) {
    ARCHIS_ASSIGN_OR_RETURN(SegmentedStore * store,
                            set->attribute_store(attr));
    rel.store_rows.emplace_back();
    ARCHIS_RETURN_NOT_OK(store->ScanHistory([&](const Tuple& row) {
      rel.store_rows.back().push_back(row);
      return true;
    }));
    rel.store_stats.push_back(store->statistics().Encode());
  }
  if (!rel.dropped) {
    ARCHIS_ASSIGN_OR_RETURN(Table * table,
                            current_db_.catalog().GetTable(name));
    ARCHIS_RETURN_NOT_OK(
        table->Scan([&](const storage::RecordId&, const Tuple& row) {
          rel.current_rows.push_back(row);
          return true;
        }));
  }
  return rel;
}

void ArchIS::DrainDirty(const std::string& name, RelationDirty* drained) {
  drained->name = name;
  Result<HTableSet*> set = archiver_.htables(name);
  if (!set.ok()) {
    // Relation vanished between the caller's iteration and here; nothing
    // to drain.
    IgnoreStatus(set.status());
    return;
  }
  drained->store_dirty.push_back((*set)->key_store()->TakeDirty());
  for (const std::string& attr : (*set)->attribute_names()) {
    Result<SegmentedStore*> store = (*set)->attribute_store(attr);
    if (!store.ok()) {
      IgnoreStatus(store.status());
      drained->store_dirty.emplace_back();
      continue;
    }
    drained->store_dirty.push_back((*store)->TakeDirty());
  }
  drained->surrogates = (*set)->TakeDirtySurrogates();
  auto it = dirty_current_keys_.find(name);
  if (it != dirty_current_keys_.end()) {
    drained->current_keys = std::move(it->second);
    dirty_current_keys_.erase(it);
  }
}

Result<CheckpointRelation> ArchIS::CaptureRelationDelta(
    const std::string& name, const TimeInterval& interval,
    RelationDirty* drained) {
  auto info = relations_.find(name);
  if (info == relations_.end()) {
    return Status::Internal("archived relation '" + name +
                            "' has no catalog entry");
  }
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(name));
  DrainDirty(name, drained);
  CheckpointRelation rel;
  rel.spec.name = name;
  rel.spec.schema = set->current_schema();
  rel.spec.key_columns = set->key_columns();
  rel.spec.doc_name = info->second.doc_name;
  rel.spec.root_tag = info->second.doc.root_tag;
  rel.spec.entity_tag = info->second.doc.entity_tag;
  rel.open_days = interval.tstart.days();
  rel.close_days = interval.tend.days();
  rel.dropped = !interval.is_current();
  rel.full = false;
  rel.surrogates = drained->surrogates;
  std::sort(rel.surrogates.begin(), rel.surrogates.end());
  rel.next_surrogate = set->next_surrogate();
  // Dirty store rows only, by version identity (id, tstart): the recovery
  // side upserts them onto the restored base.
  std::vector<SegmentedStore*> stores;
  stores.push_back(set->key_store());
  for (const std::string& attr : set->attribute_names()) {
    ARCHIS_ASSIGN_OR_RETURN(SegmentedStore * store,
                            set->attribute_store(attr));
    stores.push_back(store);
  }
  for (size_t s = 0; s < stores.size(); ++s) {
    rel.store_rows.emplace_back();
    const std::set<std::pair<int64_t, int64_t>>& dirty =
        drained->store_dirty[s];
    const size_t tstart_col = stores[s]->row_schema().num_columns() - 2;
    std::map<int64_t, std::set<int64_t>> by_id;
    for (const auto& [id, tstart_days] : dirty) {
      by_id[id].insert(tstart_days);
    }
    for (const auto& [id, tstarts] : by_id) {
      ARCHIS_RETURN_NOT_OK(stores[s]->ScanId(id, [&](const Tuple& row) {
        if (tstarts.count(row.at(tstart_col).AsDate().days()) > 0) {
          rel.store_rows.back().push_back(row);
        }
        return true;
      }));
    }
    rel.store_stats.push_back(stores[s]->statistics().Encode());
  }
  // Current-table delta: for every key written since the last capture,
  // either its current row (upsert) or a delete marker.
  if (!rel.dropped && !drained->current_keys.empty()) {
    ARCHIS_ASSIGN_OR_RETURN(Table * table,
                            current_db_.catalog().GetTable(name));
    for (const std::string& encoded_key : drained->current_keys) {
      size_t pos = 0;
      ARCHIS_ASSIGN_OR_RETURN(Tuple key_tuple,
                              DecodeTuple(encoded_key, &pos));
      std::vector<Value> key;
      key.reserve(key_tuple.size());
      for (size_t i = 0; i < key_tuple.size(); ++i) {
        key.push_back(key_tuple.at(i));
      }
      Tuple row;
      Result<storage::RecordId> rid =
          FindByKey(table, info->second, key, &row);
      if (rid.ok()) {
        rel.current_rows.push_back(std::move(row));
      } else if (rid.status().code() == StatusCode::kNotFound) {
        rel.current_deletes.push_back(encoded_key);
      } else {
        return rid.status();
      }
    }
  }
  return rel;
}

void ArchIS::MergeDirtyBack(const std::vector<RelationDirty>& drained) {
  for (const RelationDirty& rd : drained) {
    Result<HTableSet*> set = archiver_.htables(rd.name);
    if (!set.ok()) {
      // The relation was dropped since the drain: its dirty state died
      // with it.
      IgnoreStatus(set.status());
      continue;
    }
    if (!rd.store_dirty.empty()) {
      (*set)->key_store()->MergeDirty(rd.store_dirty[0]);
      for (size_t a = 0; a < (*set)->attribute_names().size(); ++a) {
        if (1 + a >= rd.store_dirty.size()) break;
        Result<SegmentedStore*> store =
            (*set)->attribute_store((*set)->attribute_names()[a]);
        if (!store.ok()) {
          IgnoreStatus(store.status());
          continue;
        }
        (*store)->MergeDirty(rd.store_dirty[1 + a]);
      }
    }
    (*set)->MergeDirtySurrogates(rd.surrogates);
    dirty_current_keys_[rd.name].insert(rd.current_keys.begin(),
                                        rd.current_keys.end());
  }
}

Status ArchIS::RestoreFromCheckpoint(const CheckpointManifest& manifest) {
  for (const CheckpointRelation& rel : manifest.relations) {
    ARCHIS_RETURN_NOT_OK(CreateRelationInternal(rel.spec, Date(rel.open_days),
                                                /*log_to_wal=*/false));
    ARCHIS_ASSIGN_OR_RETURN(HTableSet * set,
                            archiver_.htables(rel.spec.name));
    set->RestoreSurrogates(rel.surrogates, rel.next_surrogate);
    if (rel.store_rows.size() != 1 + set->attribute_names().size()) {
      return Status::Corruption(
          "manifest for '" + rel.spec.name + "' carries " +
          std::to_string(rel.store_rows.size()) + " stores, schema needs " +
          std::to_string(1 + set->attribute_names().size()));
    }
    // Install the checkpointed statistics snapshot over the rebuild's
    // (identical for deterministic stats, but the manifest is the record).
    const bool has_stats = rel.store_stats.size() == rel.store_rows.size();
    ARCHIS_RETURN_NOT_OK(
        set->key_store()->LoadCheckpointRows(rel.store_rows[0]));
    if (has_stats) {
      ARCHIS_ASSIGN_OR_RETURN(StoreStatistics stats,
                              StoreStatistics::Decode(rel.store_stats[0]));
      set->key_store()->RestoreStatistics(std::move(stats));
    }
    for (size_t a = 0; a < set->attribute_names().size(); ++a) {
      ARCHIS_ASSIGN_OR_RETURN(
          SegmentedStore * store,
          set->attribute_store(set->attribute_names()[a]));
      ARCHIS_RETURN_NOT_OK(store->LoadCheckpointRows(rel.store_rows[1 + a]));
      if (has_stats) {
        ARCHIS_ASSIGN_OR_RETURN(
            StoreStatistics stats,
            StoreStatistics::Decode(rel.store_stats[1 + a]));
        store->RestoreStatistics(std::move(stats));
      }
    }
    if (rel.dropped) {
      ARCHIS_RETURN_NOT_OK(DropRelationInternal(
          rel.spec.name, Date(rel.close_days), /*log_to_wal=*/false));
    } else {
      ARCHIS_ASSIGN_OR_RETURN(Table * table,
                              current_db_.catalog().GetTable(rel.spec.name));
      for (const Tuple& row : rel.current_rows) {
        ARCHIS_RETURN_NOT_OK(table->Insert(row).status());
      }
    }
  }
  InvalidatePlanCache();
  return Status::OK();
}

Status ArchIS::ApplyCheckpointDelta(const CheckpointManifest& manifest) {
  for (const CheckpointRelation& rel : manifest.relations) {
    auto info = relations_.find(rel.spec.name);
    if (info == relations_.end()) {
      return Status::Corruption("checkpoint delta patches relation '" +
                                rel.spec.name +
                                "' which no base manifest created");
    }
    ARCHIS_ASSIGN_OR_RETURN(HTableSet * set,
                            archiver_.htables(rel.spec.name));
    set->AddSurrogates(rel.surrogates, rel.next_surrogate);
    if (rel.store_rows.size() != 1 + set->attribute_names().size()) {
      return Status::Corruption(
          "delta manifest for '" + rel.spec.name + "' carries " +
          std::to_string(rel.store_rows.size()) + " stores, schema needs " +
          std::to_string(1 + set->attribute_names().size()));
    }
    const bool has_stats = rel.store_stats.size() == rel.store_rows.size();
    std::vector<SegmentedStore*> stores;
    stores.push_back(set->key_store());
    for (const std::string& attr : set->attribute_names()) {
      ARCHIS_ASSIGN_OR_RETURN(SegmentedStore * store,
                              set->attribute_store(attr));
      stores.push_back(store);
    }
    for (size_t s = 0; s < stores.size(); ++s) {
      for (const Tuple& row : rel.store_rows[s]) {
        ARCHIS_RETURN_NOT_OK(stores[s]->UpsertCheckpointRow(row));
      }
      if (has_stats) {
        ARCHIS_ASSIGN_OR_RETURN(StoreStatistics stats,
                                StoreStatistics::Decode(rel.store_stats[s]));
        stores[s]->RestoreStatistics(std::move(stats));
      }
    }
    if (!rel.dropped) {
      ARCHIS_ASSIGN_OR_RETURN(Table * table,
                              current_db_.catalog().GetTable(rel.spec.name));
      for (const Tuple& row : rel.current_rows) {
        const std::vector<Value> key = KeyOf(info->second, row);
        Tuple existing;
        Result<storage::RecordId> rid =
            FindByKey(table, info->second, key, &existing);
        if (rid.ok()) {
          storage::RecordId r = *rid;
          ARCHIS_RETURN_NOT_OK(table->Update(&r, row));
        } else if (rid.status().code() == StatusCode::kNotFound) {
          ARCHIS_RETURN_NOT_OK(table->Insert(row).status());
        } else {
          return rid.status();
        }
      }
      for (const std::string& encoded_key : rel.current_deletes) {
        size_t pos = 0;
        ARCHIS_ASSIGN_OR_RETURN(Tuple key_tuple,
                                DecodeTuple(encoded_key, &pos));
        std::vector<Value> key;
        key.reserve(key_tuple.size());
        for (size_t i = 0; i < key_tuple.size(); ++i) {
          key.push_back(key_tuple.at(i));
        }
        Tuple existing;
        Result<storage::RecordId> rid =
            FindByKey(table, info->second, key, &existing);
        if (rid.ok()) {
          ARCHIS_RETURN_NOT_OK(table->Delete(*rid));
        } else if (rid.status().code() != StatusCode::kNotFound) {
          return rid.status();
        }
        // NotFound: the key was inserted and deleted between the base and
        // this delta — nothing to remove.
      }
    }
  }
  InvalidatePlanCache();
  return Status::OK();
}

void ArchIS::ClearAllDirty() {
  for (const Archiver::RelationEntry& entry : archiver_.relations()) {
    Result<HTableSet*> set = archiver_.htables(entry.name);
    if (!set.ok()) {
      IgnoreStatus(set.status());
      continue;
    }
    (*set)->TakeDirtySurrogates();
    (*set)->key_store()->ClearDirty();
    for (const std::string& attr : (*set)->attribute_names()) {
      Result<SegmentedStore*> store = (*set)->attribute_store(attr);
      if (!store.ok()) {
        IgnoreStatus(store.status());
        continue;
      }
      (*store)->ClearDirty();
    }
  }
  MutexLock lock(commit_mu_);
  dirty_current_keys_.clear();
}

void ArchIS::MaybeAutoCheckpoint() {
  const uint64_t threshold = options_.wal.checkpoint_after_bytes;
  if (wal_ == nullptr || threshold == 0) return;
  {
    MutexLock l(checkpoint_mu_);
    if (wal_->bytes_written() - wal_bytes_at_last_checkpoint_ < threshold) {
      return;
    }
  }
  // Two committers may race past the threshold check; the second just
  // writes a (near-empty) delta. Checkpoint serializes on checkpoint_mu_.
  Status st = Checkpoint();
  if (!st.ok()) {
    // The triggering commit is already durable, so it must not fail here;
    // a dead WAL surfaces on the next commit.
    logging::Warn("checkpoint.auto_failed").Kv("error", st.message());
  }
}

// -- Queries -------------------------------------------------------------------

TranslatorContext ArchIS::translator_context() const {
  TranslatorContext ctx;
  ctx.current_date = clock_;
  for (const auto& [name, info] : relations_) {
    ctx.docs[info.doc_name] = info.doc;
  }
  return ctx;
}

namespace {

// ARCHIS_SLOW_QUERY_MS, parsed once. Unset, unparseable or <= 0 disables;
// a value strtod would have half-accepted ("5xyz") is rejected with one
// warning instead of silently enabling a 5ms threshold.
double SlowQueryEnvMs() {
  static const double ms = [] {
    const char* env = std::getenv("ARCHIS_SLOW_QUERY_MS");
    if (env == nullptr) return 0.0;
    Result<double> v = ParseDouble(env);
    if (!v.ok()) {
      logging::Warn("env.rejected")
          .Kv("var", "ARCHIS_SLOW_QUERY_MS")
          .Kv("value", env)
          .Kv("error", v.status().message());
      return 0.0;
    }
    return *v > 0 ? *v : 0.0;
  }();
  return ms;
}

}  // namespace

Result<QueryResult> ArchIS::Query(const std::string& xquery,
                                  const QueryOptions& options) {
  double slow_ms = options.slow_query_ms;
  if (slow_ms < 0) slow_ms = SlowQueryEnvMs();
  trace::Trace tr;
  // A live slow-query threshold forces profile collection so the slow log
  // can carry the rendered span tree even when the caller did not ask for
  // one; the profile only reaches QueryResult when collect_profile is set.
  trace::Trace* trace =
      (options.collect_profile || slow_ms > 0) ? &tr : nullptr;
  const auto started = std::chrono::steady_clock::now();
  auto observe_latency = [&started](bool ok, uint64_t rows) {
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started)
                            .count();
    QuerySecondsMetric()->Observe(secs);
    QueryWindowMetric()->Observe(secs);
    fr::Record(fr::EventType::kQueryExecute, rows,
               static_cast<uint64_t>(secs * 1e9), ok ? 1u : 0u);
    return secs;
  };
  auto fail = [&](Status st) {
    QueryFailuresMetric()->Inc();
    observe_latency(/*ok=*/false, 0);
    return st;
  };
  // Success tail shared by both paths: windowed + flight-recorder
  // accounting, slow-query log, profile hand-off.
  auto finish = [&](QueryResult* result, uint64_t rows) {
    const double secs = observe_latency(/*ok=*/true, rows);
    std::optional<trace::QueryProfile> profile;
    if (trace != nullptr) profile = tr.TakeProfile();
    if (slow_ms > 0 && secs * 1e3 >= slow_ms) {
      fr::Record(fr::EventType::kSlowQuery,
                 static_cast<uint64_t>(slow_ms * 1e6),
                 static_cast<uint64_t>(secs * 1e9));
      constexpr size_t kMaxLoggedQuery = 200;
      logging::Warn("query.slow")
          .Kv("ms", secs * 1e3)
          .Kv("threshold_ms", slow_ms)
          .Kv("path", result->path == QueryPath::kTranslated ? "translated"
                                                             : "native")
          .Kv("rows", rows)
          .Kv("query", xquery.size() > kMaxLoggedQuery
                           ? xquery.substr(0, kMaxLoggedQuery) + "..."
                           : xquery)
          .Kv("profile", profile ? profile->Render() : std::string());
    }
    if (options.collect_profile) result->profile = std::move(profile);
  };
  // A deadline already in the past fails fast — the request spent its
  // budget queueing (the server's admission queue is the usual culprit).
  if (options.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *options.deadline) {
    return fail(
        Status::DeadlineExceeded("query deadline passed before execution"));
  }
  QueryResult result;
  if (options.force_path != QueryForce::kNative) {
    // Parse and translate under separate spans (the paper reports both
    // costs; Translate() keeps them fused for API compatibility).
    Result<xquery::ExprPtr> ast = [&]() -> Result<xquery::ExprPtr> {
      trace::ScopedSpan span(trace, "parse");
      return xquery::ParseXQuery(xquery);
    }();
    Result<SqlXmlPlan> plan =
        ast.ok() ? [&]() -> Result<SqlXmlPlan> {
          trace::ScopedSpan span(trace, "translate");
          return TranslateXQuery(*ast, translator_context());
        }()
                 : Result<SqlXmlPlan>(ast.status());
    if (plan.ok()) {
      result.path = QueryPath::kTranslated;
      result.sql = plan->ToSql();
      Result<xml::XmlNodePtr> xml = [&]() -> Result<xml::XmlNodePtr> {
        trace::ScopedSpan span(trace, "execute");
        return Execute(*plan, &result.stats, trace, options.force_plan,
                       options.deadline);
      }();
      if (!xml.ok()) return fail(xml.status());
      result.xml = std::move(*xml);
      QueriesTranslatedMetric()->Inc();
      finish(&result, result.stats.result_rows);
      return result;
    }
    if (options.force_path == QueryForce::kTranslated ||
        plan.status().code() != StatusCode::kUnsupported) {
      return fail(plan.status());
    }
  }
  // Native evaluation over published H-documents. The evaluator has no
  // cancellation points, so the deadline is only checked before starting.
  if (options.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *options.deadline) {
    return fail(
        Status::DeadlineExceeded("query deadline passed before native eval"));
  }
  Result<xquery::Sequence> seq = [&]() -> Result<xquery::Sequence> {
    trace::ScopedSpan span(trace, "native-eval");
    return QueryNative(xquery);
  }();
  if (!seq.ok()) return fail(seq.status());
  result.path = QueryPath::kNativeFallback;
  result.xml = xml::XmlNode::Element("results");
  for (const xquery::Item& item : *seq) {
    if (item.is_node()) {
      result.xml->AppendChild(item.node()->Clone());
    } else {
      result.xml->AppendText(item.StringValue());
    }
  }
  QueriesNativeMetric()->Inc();
  finish(&result, seq->size());
  return result;
}

Result<SqlXmlPlan> ArchIS::Translate(const std::string& xquery) const {
  return TranslateXQuery(xquery, translator_context());
}

Result<xml::XmlNodePtr> ArchIS::Execute(
    const SqlXmlPlan& plan, PlanStats* stats, trace::Trace* trace,
    PlanForce force_plan,
    std::optional<std::chrono::steady_clock::time_point> deadline) const {
  static metrics::Counter* forced = metrics::Registry::Global().GetCounter(
      "archis_planner_forced_total",
      "Plan executions whose physical shape was pinned by "
      "QueryOptions::force_plan");
  static metrics::Counter* fallbacks = metrics::Registry::Global().GetCounter(
      "archis_planner_fallbacks_total",
      "Cost-based planning failures that fell back to the fixed shape");
  static metrics::Counter* cache_hits = metrics::Registry::Global().GetCounter(
      "archis_planner_cache_hits_total",
      "Executions that reused a cached physical plan (same structural "
      "key, no intervening mutation)");
  static metrics::Counter* cache_misses =
      metrics::Registry::Global().GetCounter(
          "archis_planner_cache_misses_total",
          "Executions that ran the cost-based planner (cold or stale "
          "cache entry)");
  if (force_plan != PlanForce::kAuto) forced->Inc();
  if (force_plan == PlanForce::kFixed) {
    // nullptr physical = the fixed legacy shape (DefaultPhysicalPlan).
    return ExecutePlan(archiver_, plan, clock_, stats, trace,
                       /*physical=*/nullptr, deadline);
  }
  // Plan cache: repeated executions of a structurally identical plan at
  // unchanged statistics (no mutation since planning) skip PlanQuery
  // entirely — prepared-statement behavior, so cheap point queries don't
  // pay planning on every call. The hit path is kept allocation-free: a
  // thread-local scratch buffer for the key, a shared_ptr copy out of
  // the cache.
  thread_local std::string key;
  key.clear();
  AppendPlanCacheKey(plan, &key);
  std::shared_ptr<const PhysicalPlan> physical;
  uint64_t epoch = 0;
  {
    MutexLock l(plan_cache_mu_);
    epoch = plan_epoch_;
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end() && it->second.epoch == plan_epoch_) {
      physical = it->second.physical;
    }
  }
  fr::Record(fr::EventType::kQueryPlan, epoch, 0,
             /*flags=*/physical != nullptr ? 1u : 0u);
  if (physical != nullptr) {
    cache_hits->Inc();
  } else {
    cache_misses->Inc();
    Result<PhysicalPlan> planned = PlanQuery(archiver_, plan);
    if (!planned.ok()) {
      if (force_plan == PlanForce::kCostBased) return planned.status();
      fallbacks->Inc();
      return ExecutePlan(archiver_, plan, clock_, stats, trace,
                         /*physical=*/nullptr, deadline);
    }
    physical = std::make_shared<const PhysicalPlan>(std::move(*planned));
    MutexLock l(plan_cache_mu_);
    // Bounded cache: a workload with unbounded distinct shapes (e.g. a
    // fresh constant per query) must not grow the map forever. 256
    // prepared shapes is far beyond any suite here; wholesale clear keeps
    // eviction O(1) without LRU bookkeeping.
    if (plan_cache_.size() >= 256) plan_cache_.clear();
    plan_cache_[key] = CachedPlan{plan_epoch_, physical};
  }
  return ExecutePlan(archiver_, plan, clock_, stats, trace, physical.get(),
                     deadline);
}

std::string ArchIS::DumpMetrics() {
  return metrics::Registry::Global().TextFormat();
}

Result<xquery::Sequence> ArchIS::QueryNative(const std::string& xquery) {
  xquery::EvalContext ctx;
  ctx.current_date = clock_;
  ctx.resolve_doc =
      [this](const std::string& doc_name) -> Result<xml::XmlNodePtr> {
    for (const auto& [name, info] : relations_) {
      if (info.doc_name == doc_name) return PublishHistory(name);
    }
    return Status::NotFound("no relation publishes doc('" + doc_name + "')");
  };
  xquery::Evaluator evaluator(std::move(ctx));
  return evaluator.EvaluateQuery(xquery);
}

Result<xml::XmlNodePtr> ArchIS::PublishHistory(
    const std::string& relation) const {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  TimeInterval relation_interval = MakeInterval(clock_, Date::Forever());
  for (const auto& entry : archiver_.relations()) {
    if (entry.name == relation) relation_interval = entry.interval;
  }
  PublishOptions opts;
  opts.root_name = info->second.doc.root_tag;
  opts.entity_name = info->second.doc.entity_tag;
  return core::PublishHistory(*set, relation_interval, opts);
}

Status ArchIS::ImportHistory(const std::string& relation,
                             const xml::XmlNodePtr& doc) {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  ARCHIS_RETURN_NOT_OK(core::ImportHistory(set, doc));
  InvalidatePlanCache();
  return Status::OK();
}

Result<std::vector<Tuple>> ArchIS::Snapshot(const std::string& relation,
                                            Date t) const {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  return set->Snapshot(t);
}

Result<std::vector<std::string>> ArchIS::KeyColumns(
    const std::string& relation) const {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  return info->second.key_columns;
}

Status ArchIS::FreezeAll() {
  ARCHIS_RETURN_NOT_OK(archiver_.FreezeAll(clock_));
  InvalidatePlanCache();
  return Status::OK();
}

void ArchIS::InvalidatePlanCache() {
  MutexLock l(plan_cache_mu_);
  ++plan_epoch_;
}

}  // namespace archis::core
