#include "archis/archis.h"

#include <chrono>

#include "common/log.h"
#include "common/metrics.h"
#include "xml/serializer.h"
#include "xquery/parser.h"

namespace archis::core {

using minirel::Schema;
using minirel::Table;
using minirel::Tuple;
using minirel::Value;

namespace {

// Facade-level metric catalog (DESIGN.md §9): query path mix and latency,
// change-capture throughput, transaction outcomes.
metrics::Counter* QueriesTranslatedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_queries_translated_total",
      "Queries answered by the translated SQL/XML path");
  return c;
}

metrics::Counter* QueriesNativeMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_queries_native_total",
      "Queries answered by native evaluation over published H-documents");
  return c;
}

metrics::Counter* QueryFailuresMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_query_failures_total",
      "Queries that returned a non-OK status on every attempted path");
  return c;
}

metrics::Histogram* QuerySecondsMetric() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "archis_query_seconds", "End-to-end ArchIS::Query latency",
      metrics::DefaultLatencyBuckets());
  return h;
}

metrics::Counter* TxnCommitsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_txn_commits_total",
      "Committed change batches (explicit, ambient and autocommit)");
  return c;
}

metrics::Counter* TxnAbortsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_txn_aborts_total", "Aborted (rolled back) change batches");
  return c;
}

metrics::Counter* ChangesCapturedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_changes_captured_total",
      "Change records committed into the H-tables (capture throughput)");
  return c;
}

}  // namespace

// -- Transaction ---------------------------------------------------------------

Transaction::Transaction(ArchIS* db, bool stamp_at_commit)
    : db_(db), stamp_at_commit_(stamp_at_commit) {
  if (stamp_at_commit_) ++db_->open_stamped_txns_;
}

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_),
      changes_(std::move(other.changes_)),
      stamp_at_commit_(other.stamp_at_commit_),
      finished_(other.finished_) {
  // The moved-from handle is inert; this one inherits its open-txn count.
  other.finished_ = true;
  other.changes_.clear();
}

Transaction::~Transaction() {
  if (!finished_) {
    // Best-effort rollback: the destructor cannot report, and the undo can
    // only fail if the instance is already inconsistent.
    IgnoreStatus(Abort());
  }
}

void Transaction::Finish() {
  finished_ = true;
  if (stamp_at_commit_) --db_->open_stamped_txns_;
}

Status Transaction::Insert(const std::string& relation, const Tuple& row) {
  if (finished_) return Status::Aborted("transaction already finished");
  return db_->TxnInsert(this, relation, row);
}

Status Transaction::Update(const std::string& relation,
                           const std::vector<Value>& key,
                           const Tuple& new_row) {
  if (finished_) return Status::Aborted("transaction already finished");
  return db_->TxnUpdate(this, relation, key, new_row);
}

Status Transaction::Delete(const std::string& relation,
                           const std::vector<Value>& key) {
  if (finished_) return Status::Aborted("transaction already finished");
  return db_->TxnDelete(this, relation, key);
}

Status Transaction::Commit() {
  if (finished_) return Status::Aborted("transaction already finished");
  Finish();
  return db_->CommitChanges(std::move(changes_), stamp_at_commit_);
}

Status Transaction::Abort() {
  if (finished_) return Status::Aborted("transaction already finished");
  Finish();
  if (!changes_.empty()) TxnAbortsMetric()->Inc();
  Status undo = db_->UndoCurrent(changes_);
  changes_.clear();
  return undo;
}

// -- Construction / recovery ---------------------------------------------------

ArchIS::ArchIS(ArchISOptions options, Date start_date)
    : options_(std::move(options)), clock_(start_date),
      archiver_(&history_db_) {}

Result<std::unique_ptr<ArchIS>> ArchIS::Open(ArchISOptions options,
                                             Date start_date) {
  if (options.wal.path.empty()) {
    return std::make_unique<ArchIS>(std::move(options), start_date);
  }
  ARCHIS_ASSIGN_OR_RETURN(WalRecovery recovery,
                          Wal::Recover(options.wal.path));
  const std::string wal_path = options.wal.path;
  const WalOptions wal_options = options.wal;
  auto db = std::make_unique<ArchIS>(std::move(options), start_date);
  for (const WalReplayItem& item : recovery.items) {
    if (const auto* create = std::get_if<WalCreateRelation>(&item)) {
      ARCHIS_RETURN_NOT_OK(db->CreateRelationInternal(
          create->spec, create->open_date, /*log_to_wal=*/false));
      if (db->clock_ < create->open_date) db->clock_ = create->open_date;
    } else if (const auto* drop = std::get_if<WalDropRelation>(&item)) {
      ARCHIS_RETURN_NOT_OK(db->DropRelationInternal(drop->name, drop->when,
                                                    /*log_to_wal=*/false));
      if (db->clock_ < drop->when) db->clock_ = drop->when;
    } else {
      const auto& txn = std::get<WalCommittedTxn>(item);
      ARCHIS_RETURN_NOT_OK(db->ApplyRecovered(txn));
      if (db->clock_ < txn.commit_date) db->clock_ = txn.commit_date;
    }
  }
  // Drop the torn tail so the resumed log is a clean extension of the
  // prefix recovery just replayed.
  ARCHIS_RETURN_NOT_OK(
      storage::TruncateLogFile(wal_path, recovery.valid_bytes));
  ARCHIS_ASSIGN_OR_RETURN(
      db->wal_, Wal::Open(wal_options, recovery.max_txn_id + 1));
  static metrics::Counter* recoveries = metrics::Registry::Global().GetCounter(
      "archis_wal_recoveries_total", "WAL recovery passes run by Open");
  static metrics::Counter* recovered_items =
      metrics::Registry::Global().GetCounter(
          "archis_wal_recovered_items_total",
          "Committed transactions and DDL records replayed by recovery");
  recoveries->Inc();
  recovered_items->Inc(recovery.items.size());
  logging::Info("wal.recovered")
      .Kv("path", wal_path)
      .Kv("items", recovery.items.size())
      .Kv("valid_bytes", recovery.valid_bytes)
      .Kv("next_txn_id", recovery.max_txn_id + 1)
      .Kv("clock", db->clock_.ToString());
  return db;
}

Status ArchIS::CheckWritable() const {
  if (!options_.wal.path.empty() && wal_ == nullptr) {
    return Status::InvalidArgument(
        "WAL-configured ArchIS must be created with ArchIS::Open (recovery "
        "has not run)");
  }
  return Status::OK();
}

// -- Schema --------------------------------------------------------------------

Status ArchIS::CreateRelation(const RelationSpec& spec) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  return CreateRelationInternal(spec, clock_, /*log_to_wal=*/true);
}

Status ArchIS::CreateRelation(const std::string& name, const Schema& schema,
                              const std::vector<std::string>& key_columns,
                              const DocBinding& doc,
                              const std::string& doc_name) {
  RelationSpec spec;
  spec.name = name;
  spec.schema = schema;
  spec.key_columns = key_columns;
  spec.doc_name = doc_name;
  spec.root_tag = doc.root_tag;
  spec.entity_tag = doc.entity_tag;
  return CreateRelation(spec);
}

Status ArchIS::CreateRelationInternal(RelationSpec spec, Date open_date,
                                      bool log_to_wal) {
  if (spec.root_tag.empty()) spec.root_tag = spec.name;
  if (spec.entity_tag.empty()) {
    spec.entity_tag = spec.root_tag;
    if (!spec.entity_tag.empty() && spec.entity_tag.back() == 's') {
      spec.entity_tag.pop_back();
    }
  }
  if (spec.doc_name.empty()) {
    return Status::InvalidArgument("RelationSpec::doc_name must be set");
  }
  ARCHIS_ASSIGN_OR_RETURN(
      Table * table, current_db_.catalog().CreateTable(spec.name, spec.schema));
  ARCHIS_RETURN_NOT_OK(table->CreateIndex("pk", spec.key_columns));
  RelationInfo info;
  info.key_columns = spec.key_columns;
  for (const std::string& k : spec.key_columns) {
    ARCHIS_ASSIGN_OR_RETURN(size_t pos, spec.schema.ColumnIndex(k));
    info.key_positions.push_back(pos);
  }
  info.doc.relation = spec.name;
  info.doc.root_tag = spec.root_tag;
  info.doc.entity_tag = spec.entity_tag;
  info.doc_name = spec.doc_name;
  relations_[spec.name] = std::move(info);
  ARCHIS_RETURN_NOT_OK(archiver_.RegisterRelation(
      spec.name, spec.schema, spec.key_columns, options_.segment, open_date));
  if (log_to_wal && wal_ != nullptr) {
    return wal_->LogCreateRelation(spec, open_date);
  }
  return Status::OK();
}

Status ArchIS::DropRelation(const std::string& name) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  return DropRelationInternal(name, clock_, /*log_to_wal=*/true);
}

Status ArchIS::DropRelationInternal(const std::string& name, Date when,
                                    bool log_to_wal) {
  if (relations_.count(name) == 0) {
    return Status::NotFound("relation '" + name + "'");
  }
  ARCHIS_RETURN_NOT_OK(current_db_.catalog().DropTable(name));
  ARCHIS_RETURN_NOT_OK(archiver_.UnregisterRelation(name, when));
  if (log_to_wal && wal_ != nullptr) {
    return wal_->LogDropRelation(name, when);
  }
  return Status::OK();
}

// -- Transaction clock ---------------------------------------------------------

Status ArchIS::AdvanceClock(Date now) {
  if (open_stamped_txns_ > 0) {
    return Status::InvalidArgument(
        "cannot advance the clock while a transaction is open (a "
        "transaction commits at one instant)");
  }
  if (now < clock_) {
    return Status::InvalidArgument(
        "transaction time cannot move backwards (" + now.ToString() + " < " +
        clock_.ToString() + ")");
  }
  clock_ = now;
  return Status::OK();
}

// -- DML -----------------------------------------------------------------------

Transaction ArchIS::Begin() {
  return Transaction(this, /*stamp_at_commit=*/true);
}

Transaction* ArchIS::AmbientTxn() {
  if (!ambient_) {
    // The ambient batch keeps per-statement dates: its statements may span
    // clock advances (an update log accumulated over time), so re-stamping
    // them at commit would rewrite history.
    ambient_ = std::unique_ptr<Transaction>(
        new Transaction(this, /*stamp_at_commit=*/false));
  }
  return ambient_.get();
}

Status ArchIS::Insert(const std::string& relation, const Tuple& row) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  if (options_.capture_mode == CaptureMode::kUpdateLog) {
    return AmbientTxn()->Insert(relation, row);
  }
  Transaction txn(this, /*stamp_at_commit=*/true);
  ARCHIS_RETURN_NOT_OK(txn.Insert(relation, row));
  return txn.Commit();
}

Status ArchIS::Update(const std::string& relation,
                      const std::vector<Value>& key, const Tuple& new_row) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  if (options_.capture_mode == CaptureMode::kUpdateLog) {
    return AmbientTxn()->Update(relation, key, new_row);
  }
  Transaction txn(this, /*stamp_at_commit=*/true);
  ARCHIS_RETURN_NOT_OK(txn.Update(relation, key, new_row));
  return txn.Commit();
}

Status ArchIS::Delete(const std::string& relation,
                      const std::vector<Value>& key) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  if (options_.capture_mode == CaptureMode::kUpdateLog) {
    return AmbientTxn()->Delete(relation, key);
  }
  Transaction txn(this, /*stamp_at_commit=*/true);
  ARCHIS_RETURN_NOT_OK(txn.Delete(relation, key));
  return txn.Commit();
}

Status ArchIS::Commit() {
  if (!ambient_) return Status::OK();
  std::unique_ptr<Transaction> txn = std::move(ambient_);
  return txn->Commit();
}

size_t ArchIS::pending_changes() const {
  return ambient_ ? ambient_->pending() : 0;
}

Status ArchIS::FlushLog() { return Commit(); }

// -- Transaction plumbing ------------------------------------------------------

Result<storage::RecordId> ArchIS::FindByKey(
    Table* table, const RelationInfo& info, const std::vector<Value>& key,
    Tuple* row) const {
  if (key.size() != info.key_positions.size()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  const minirel::TableIndex* idx = table->GetIndex("pk");
  std::optional<storage::RecordId> found;
  ARCHIS_RETURN_NOT_OK(table->IndexScan(
      *idx, key, key, [&](const storage::RecordId& rid, const Tuple& t) {
        found = rid;
        *row = t;
        return false;
      }));
  if (!found) return Status::NotFound("no current row with that key");
  return *found;
}

std::vector<Value> ArchIS::KeyOf(const RelationInfo& info, const Tuple& row) {
  std::vector<Value> key;
  key.reserve(info.key_positions.size());
  for (size_t pos : info.key_positions) key.push_back(row.at(pos));
  return key;
}

Status ArchIS::TxnInsert(Transaction* txn, const std::string& relation,
                         const Tuple& row) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  ARCHIS_RETURN_NOT_OK(table->Insert(row).status());
  ChangeRecord change;
  change.kind = ChangeKind::kInsert;
  change.relation = relation;
  change.new_row = row;
  change.when = clock_;
  txn->changes_.push_back(std::move(change));
  return Status::OK();
}

Status ArchIS::TxnUpdate(Transaction* txn, const std::string& relation,
                         const std::vector<Value>& key, const Tuple& new_row) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  Tuple old_row;
  ARCHIS_ASSIGN_OR_RETURN(storage::RecordId rid,
                          FindByKey(table, info->second, key, &old_row));
  // Keys are invariant in history (Section 3).
  for (size_t i = 0; i < key.size(); ++i) {
    if (!(new_row.at(info->second.key_positions[i]) == key[i])) {
      return Status::InvalidArgument("key columns must not change");
    }
  }
  ARCHIS_RETURN_NOT_OK(table->Update(&rid, new_row));
  ChangeRecord change;
  change.kind = ChangeKind::kUpdate;
  change.relation = relation;
  change.old_row = old_row;
  change.new_row = new_row;
  change.when = clock_;
  txn->changes_.push_back(std::move(change));
  return Status::OK();
}

Status ArchIS::TxnDelete(Transaction* txn, const std::string& relation,
                         const std::vector<Value>& key) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  Tuple old_row;
  ARCHIS_ASSIGN_OR_RETURN(storage::RecordId rid,
                          FindByKey(table, info->second, key, &old_row));
  ARCHIS_RETURN_NOT_OK(table->Delete(rid));
  ChangeRecord change;
  change.kind = ChangeKind::kDelete;
  change.relation = relation;
  change.old_row = old_row;
  change.when = clock_;
  txn->changes_.push_back(std::move(change));
  return Status::OK();
}

Status ArchIS::CommitChanges(std::vector<ChangeRecord> changes,
                             bool stamp_at_commit) {
  if (changes.empty()) return Status::OK();
  if (stamp_at_commit) {
    // One transaction, one transaction-time instant. AdvanceClock is
    // blocked while the batch is open, so the buffered dates can only
    // equal clock_ already; stamping keeps the invariant explicit.
    for (ChangeRecord& change : changes) change.when = clock_;
  }
  if (wal_ != nullptr) {
    const uint64_t txn_id = wal_->NextTxnId();
    ARCHIS_RETURN_NOT_OK(wal_->LogTransaction(txn_id, changes, clock_));
  }
  for (const ChangeRecord& change : changes) {
    ARCHIS_RETURN_NOT_OK(archiver_.Apply(change));
  }
  TxnCommitsMetric()->Inc();
  ChangesCapturedMetric()->Inc(changes.size());
  return Status::OK();
}

Status ArchIS::UndoCurrent(const std::vector<ChangeRecord>& changes) {
  for (auto it = changes.rbegin(); it != changes.rend(); ++it) {
    const ChangeRecord& change = *it;
    auto info = relations_.find(change.relation);
    if (info == relations_.end()) {
      return Status::Internal("undo for unknown relation '" +
                              change.relation + "'");
    }
    ARCHIS_ASSIGN_OR_RETURN(Table * table,
                            current_db_.catalog().GetTable(change.relation));
    switch (change.kind) {
      case ChangeKind::kInsert: {
        Tuple row;
        ARCHIS_ASSIGN_OR_RETURN(
            storage::RecordId rid,
            FindByKey(table, info->second, KeyOf(info->second, change.new_row),
                      &row));
        ARCHIS_RETURN_NOT_OK(table->Delete(rid));
        break;
      }
      case ChangeKind::kUpdate: {
        Tuple row;
        ARCHIS_ASSIGN_OR_RETURN(
            storage::RecordId rid,
            FindByKey(table, info->second, KeyOf(info->second, change.new_row),
                      &row));
        ARCHIS_RETURN_NOT_OK(table->Update(&rid, change.old_row));
        break;
      }
      case ChangeKind::kDelete:
        ARCHIS_RETURN_NOT_OK(table->Insert(change.old_row).status());
        break;
    }
  }
  return Status::OK();
}

// -- Recovery replay -----------------------------------------------------------

Status ArchIS::ApplyRecovered(const WalCommittedTxn& txn) {
  for (const ChangeRecord& change : txn.changes) {
    ARCHIS_RETURN_NOT_OK(ReplayChange(change));
  }
  return Status::OK();
}

Status ArchIS::ReplayChange(const ChangeRecord& change) {
  auto info = relations_.find(change.relation);
  if (info == relations_.end()) {
    return Status::Corruption("recovered change for unknown relation '" +
                              change.relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(change.relation));
  switch (change.kind) {
    case ChangeKind::kInsert: {
      Tuple existing;
      auto rid = FindByKey(table, info->second,
                           KeyOf(info->second, change.new_row), &existing);
      if (rid.ok()) return Status::OK();  // already applied
      if (rid.status().code() != StatusCode::kNotFound) return rid.status();
      ARCHIS_RETURN_NOT_OK(table->Insert(change.new_row).status());
      return archiver_.Apply(change);
    }
    case ChangeKind::kUpdate: {
      Tuple existing;
      ARCHIS_ASSIGN_OR_RETURN(
          storage::RecordId rid,
          FindByKey(table, info->second, KeyOf(info->second, change.new_row),
                    &existing));
      if (existing == change.new_row) return Status::OK();  // already applied
      ARCHIS_RETURN_NOT_OK(table->Update(&rid, change.new_row));
      return archiver_.Apply(change);
    }
    case ChangeKind::kDelete: {
      Tuple existing;
      auto rid = FindByKey(table, info->second,
                           KeyOf(info->second, change.old_row), &existing);
      if (!rid.ok()) {
        if (rid.status().code() == StatusCode::kNotFound) {
          return Status::OK();  // already applied
        }
        return rid.status();
      }
      ARCHIS_RETURN_NOT_OK(table->Delete(*rid));
      return archiver_.Apply(change);
    }
  }
  return Status::Internal("unreachable");
}

// -- Queries -------------------------------------------------------------------

TranslatorContext ArchIS::translator_context() const {
  TranslatorContext ctx;
  ctx.current_date = clock_;
  for (const auto& [name, info] : relations_) {
    ctx.docs[info.doc_name] = info.doc;
  }
  return ctx;
}

Result<QueryResult> ArchIS::Query(const std::string& xquery,
                                  const QueryOptions& options) {
  trace::Trace tr;
  trace::Trace* trace = options.collect_profile ? &tr : nullptr;
  const auto started = std::chrono::steady_clock::now();
  auto observe_latency = [&started] {
    QuerySecondsMetric()->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  };
  auto fail = [&](Status st) {
    QueryFailuresMetric()->Inc();
    observe_latency();
    return st;
  };
  QueryResult result;
  if (options.force_path != QueryForce::kNative) {
    // Parse and translate under separate spans (the paper reports both
    // costs; Translate() keeps them fused for API compatibility).
    Result<xquery::ExprPtr> ast = [&]() -> Result<xquery::ExprPtr> {
      trace::ScopedSpan span(trace, "parse");
      return xquery::ParseXQuery(xquery);
    }();
    Result<SqlXmlPlan> plan =
        ast.ok() ? [&]() -> Result<SqlXmlPlan> {
          trace::ScopedSpan span(trace, "translate");
          return TranslateXQuery(*ast, translator_context());
        }()
                 : Result<SqlXmlPlan>(ast.status());
    if (plan.ok()) {
      result.path = QueryPath::kTranslated;
      result.sql = plan->ToSql();
      Result<xml::XmlNodePtr> xml = [&]() -> Result<xml::XmlNodePtr> {
        trace::ScopedSpan span(trace, "execute");
        return Execute(*plan, &result.stats, trace);
      }();
      if (!xml.ok()) return fail(xml.status());
      result.xml = std::move(*xml);
      QueriesTranslatedMetric()->Inc();
      observe_latency();
      if (trace != nullptr) result.profile = tr.TakeProfile();
      return result;
    }
    if (options.force_path == QueryForce::kTranslated ||
        plan.status().code() != StatusCode::kUnsupported) {
      return fail(plan.status());
    }
  }
  // Native evaluation over published H-documents.
  Result<xquery::Sequence> seq = [&]() -> Result<xquery::Sequence> {
    trace::ScopedSpan span(trace, "native-eval");
    return QueryNative(xquery);
  }();
  if (!seq.ok()) return fail(seq.status());
  result.path = QueryPath::kNativeFallback;
  result.xml = xml::XmlNode::Element("results");
  for (const xquery::Item& item : *seq) {
    if (item.is_node()) {
      result.xml->AppendChild(item.node()->Clone());
    } else {
      result.xml->AppendText(item.StringValue());
    }
  }
  QueriesNativeMetric()->Inc();
  observe_latency();
  if (trace != nullptr) result.profile = tr.TakeProfile();
  return result;
}

Result<SqlXmlPlan> ArchIS::Translate(const std::string& xquery) const {
  return TranslateXQuery(xquery, translator_context());
}

Result<xml::XmlNodePtr> ArchIS::Execute(const SqlXmlPlan& plan,
                                        PlanStats* stats,
                                        trace::Trace* trace) const {
  return ExecutePlan(archiver_, plan, clock_, stats, trace);
}

std::string ArchIS::DumpMetrics() {
  return metrics::Registry::Global().TextFormat();
}

Result<xquery::Sequence> ArchIS::QueryNative(const std::string& xquery) {
  xquery::EvalContext ctx;
  ctx.current_date = clock_;
  ctx.resolve_doc =
      [this](const std::string& doc_name) -> Result<xml::XmlNodePtr> {
    for (const auto& [name, info] : relations_) {
      if (info.doc_name == doc_name) return PublishHistory(name);
    }
    return Status::NotFound("no relation publishes doc('" + doc_name + "')");
  };
  xquery::Evaluator evaluator(std::move(ctx));
  return evaluator.EvaluateQuery(xquery);
}

Result<xml::XmlNodePtr> ArchIS::PublishHistory(
    const std::string& relation) const {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  TimeInterval relation_interval = MakeInterval(clock_, Date::Forever());
  for (const auto& entry : archiver_.relations()) {
    if (entry.name == relation) relation_interval = entry.interval;
  }
  PublishOptions opts;
  opts.root_name = info->second.doc.root_tag;
  opts.entity_name = info->second.doc.entity_tag;
  return core::PublishHistory(*set, relation_interval, opts);
}

Status ArchIS::ImportHistory(const std::string& relation,
                             const xml::XmlNodePtr& doc) {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  return core::ImportHistory(set, doc);
}

Result<std::vector<Tuple>> ArchIS::Snapshot(const std::string& relation,
                                            Date t) const {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  return set->Snapshot(t);
}

Status ArchIS::FreezeAll() { return archiver_.FreezeAll(clock_); }

}  // namespace archis::core
