#include "archis/archis.h"

#include <algorithm>
#include <chrono>

#include "archis/planner.h"
#include "common/log.h"
#include "common/metrics.h"
#include "xml/serializer.h"
#include "xquery/parser.h"

namespace archis::core {

using minirel::Schema;
using minirel::Table;
using minirel::Tuple;
using minirel::Value;

namespace {

// Facade-level metric catalog (DESIGN.md §9): query path mix and latency,
// change-capture throughput, transaction outcomes.
metrics::Counter* QueriesTranslatedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_queries_translated_total",
      "Queries answered by the translated SQL/XML path");
  return c;
}

metrics::Counter* QueriesNativeMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_queries_native_total",
      "Queries answered by native evaluation over published H-documents");
  return c;
}

metrics::Counter* QueryFailuresMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_query_failures_total",
      "Queries that returned a non-OK status on every attempted path");
  return c;
}

metrics::Histogram* QuerySecondsMetric() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "archis_query_seconds", "End-to-end ArchIS::Query latency",
      metrics::DefaultLatencyBuckets());
  return h;
}

metrics::Counter* TxnCommitsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_txn_commits_total",
      "Committed change batches (explicit, ambient and autocommit)");
  return c;
}

metrics::Counter* TxnAbortsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_txn_aborts_total", "Aborted (rolled back) change batches");
  return c;
}

metrics::Counter* ChangesCapturedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_changes_captured_total",
      "Change records committed into the H-tables (capture throughput)");
  return c;
}

// Checkpoint / bounded recovery metrics (DESIGN.md §10).
metrics::Histogram* CheckpointSecondsMetric() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "archis_checkpoint_seconds",
      "Latency of one full checkpoint (snapshot + install + WAL reset)",
      metrics::DefaultLatencyBuckets());
  return h;
}

metrics::Counter* CheckpointsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_checkpoints_total", "Checkpoints completed (manual + auto)");
  return c;
}

metrics::Counter* WalRecoveredBytesMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_wal_recovered_bytes",
      "WAL bytes replayed by recovery (suffix past the manifest only)");
  return c;
}

metrics::Counter* ManifestFallbacksMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_checkpoint_manifest_fallbacks_total",
      "Recoveries that found the newest manifest torn and used the "
      "previous one");
  return c;
}

}  // namespace

// -- Transaction ---------------------------------------------------------------

Transaction::Transaction(ArchIS* db, bool stamp_at_commit)
    : db_(db), stamp_at_commit_(stamp_at_commit) {
  if (stamp_at_commit_) ++db_->open_stamped_txns_;
}

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_),
      changes_(std::move(other.changes_)),
      stamp_at_commit_(other.stamp_at_commit_),
      finished_(other.finished_) {
  // The moved-from handle is inert; this one inherits its open-txn count.
  other.finished_ = true;
  other.changes_.clear();
}

Transaction::~Transaction() {
  if (!finished_) {
    // Best-effort rollback: the destructor cannot report, and the undo can
    // only fail if the instance is already inconsistent.
    IgnoreStatus(Abort());
  }
}

void Transaction::Finish() {
  finished_ = true;
  if (stamp_at_commit_) --db_->open_stamped_txns_;
}

Status Transaction::Insert(const std::string& relation, const Tuple& row) {
  if (finished_) return Status::Aborted("transaction already finished");
  return db_->TxnInsert(this, relation, row);
}

Status Transaction::Update(const std::string& relation,
                           const std::vector<Value>& key,
                           const Tuple& new_row) {
  if (finished_) return Status::Aborted("transaction already finished");
  return db_->TxnUpdate(this, relation, key, new_row);
}

Status Transaction::Delete(const std::string& relation,
                           const std::vector<Value>& key) {
  if (finished_) return Status::Aborted("transaction already finished");
  return db_->TxnDelete(this, relation, key);
}

Status Transaction::Commit() {
  if (finished_) return Status::Aborted("transaction already finished");
  Finish();
  return db_->CommitChanges(std::move(changes_), stamp_at_commit_);
}

Status Transaction::Abort() {
  if (finished_) return Status::Aborted("transaction already finished");
  Finish();
  if (!changes_.empty()) TxnAbortsMetric()->Inc();
  Status undo = db_->UndoCurrent(changes_);
  changes_.clear();
  return undo;
}

// -- Construction / recovery ---------------------------------------------------

ArchIS::ArchIS(ArchISOptions options, Date start_date)
    : options_(std::move(options)), clock_(start_date),
      archiver_(&history_db_) {}

Result<std::unique_ptr<ArchIS>> ArchIS::Open(ArchISOptions options,
                                             Date start_date) {
  if (options.wal.path.empty()) {
    return std::make_unique<ArchIS>(std::move(options), start_date);
  }
  const std::string wal_path = options.wal.path;
  const WalOptions wal_options = options.wal;
  // Manifest first (bounded recovery, DESIGN.md §10): restore the snapshot,
  // then replay only the log suffix past it.
  LoadedCheckpoint ckpt = LoadCheckpoint(wal_path);
  if (ckpt.fell_back) ManifestFallbacksMetric()->Inc();
  ARCHIS_ASSIGN_OR_RETURN(WalRecovery recovery, Wal::Recover(wal_path));
  auto db = std::make_unique<ArchIS>(std::move(options), start_date);
  uint64_t replay_from = 0;
  if (ckpt.manifest.has_value()) {
    const CheckpointManifest& manifest = *ckpt.manifest;
    if (recovery.has_checkpoint_marker &&
        recovery.checkpoint_seq > manifest.seq) {
      return Status::Corruption(
          "WAL was truncated by checkpoint " +
          std::to_string(recovery.checkpoint_seq) +
          " but the newest readable manifest is seq " +
          std::to_string(manifest.seq));
    }
    ARCHIS_RETURN_NOT_OK(db->RestoreFromCheckpoint(manifest));
    db->checkpoint_seq_ = manifest.seq;
    if (db->clock_ < Date(manifest.clock_days)) {
      db->clock_ = Date(manifest.clock_days);
    }
    // A marker of the manifest's own seq means the log *is* this
    // checkpoint's suffix (offsets restarted at 0); an older / absent
    // marker means the log layout is still the one the manifest measured,
    // so its recorded offset is the replay boundary.
    if (!recovery.has_checkpoint_marker ||
        recovery.checkpoint_seq < manifest.seq) {
      replay_from = manifest.wal_offset;
    }
  } else if (recovery.has_checkpoint_marker) {
    return Status::Corruption(
        "WAL was truncated by checkpoint " +
        std::to_string(recovery.checkpoint_seq) +
        " but no checkpoint manifest is readable");
  }
  size_t replayed_items = 0;
  uint64_t first_replayed_offset = recovery.valid_bytes;
  for (size_t i = 0; i < recovery.items.size(); ++i) {
    if (recovery.item_offsets[i] < replay_from) continue;
    if (replayed_items == 0) first_replayed_offset = recovery.item_offsets[i];
    ++replayed_items;
    const WalReplayItem& item = recovery.items[i];
    if (const auto* create = std::get_if<WalCreateRelation>(&item)) {
      ARCHIS_RETURN_NOT_OK(db->CreateRelationInternal(
          create->spec, create->open_date, /*log_to_wal=*/false));
      if (db->clock_ < create->open_date) db->clock_ = create->open_date;
    } else if (const auto* drop = std::get_if<WalDropRelation>(&item)) {
      ARCHIS_RETURN_NOT_OK(db->DropRelationInternal(drop->name, drop->when,
                                                    /*log_to_wal=*/false));
      if (db->clock_ < drop->when) db->clock_ = drop->when;
    } else {
      const auto& txn = std::get<WalCommittedTxn>(item);
      ARCHIS_RETURN_NOT_OK(db->ApplyRecovered(txn));
      if (db->clock_ < txn.commit_date) db->clock_ = txn.commit_date;
    }
  }
  const uint64_t replayed_bytes = recovery.valid_bytes - first_replayed_offset;
  // Drop the torn tail so the resumed log is a clean extension of the
  // prefix recovery just replayed.
  ARCHIS_RETURN_NOT_OK(
      storage::TruncateLogFile(wal_path, recovery.valid_bytes));
  uint64_t next_txn_id = recovery.max_txn_id + 1;
  if (ckpt.manifest.has_value() && next_txn_id < ckpt.manifest->next_txn_id) {
    next_txn_id = ckpt.manifest->next_txn_id;
  }
  ARCHIS_ASSIGN_OR_RETURN(db->wal_, Wal::Open(wal_options, next_txn_id));
  db->last_recovery_replayed_bytes_ = replayed_bytes;
  static metrics::Counter* recoveries = metrics::Registry::Global().GetCounter(
      "archis_wal_recoveries_total", "WAL recovery passes run by Open");
  static metrics::Counter* recovered_items =
      metrics::Registry::Global().GetCounter(
          "archis_wal_recovered_items_total",
          "Committed transactions and DDL records replayed by recovery");
  recoveries->Inc();
  recovered_items->Inc(replayed_items);
  WalRecoveredBytesMetric()->Inc(replayed_bytes);
  logging::Info("wal.recovered")
      .Kv("path", wal_path)
      .Kv("items", replayed_items)
      .Kv("skipped_items", recovery.items.size() - replayed_items)
      .Kv("valid_bytes", recovery.valid_bytes)
      .Kv("replayed_bytes", replayed_bytes)
      .Kv("checkpoint_seq", db->checkpoint_seq_)
      .Kv("manifest_fallback", ckpt.fell_back)
      .Kv("next_txn_id", next_txn_id)
      .Kv("clock", db->clock_.ToString());
  return db;
}

Status ArchIS::CheckWritable() const {
  if (!options_.wal.path.empty() && wal_ == nullptr) {
    return Status::InvalidArgument(
        "WAL-configured ArchIS must be created with ArchIS::Open (recovery "
        "has not run)");
  }
  return Status::OK();
}

// -- Schema --------------------------------------------------------------------

Status ArchIS::CreateRelation(const RelationSpec& spec) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  return CreateRelationInternal(spec, clock_, /*log_to_wal=*/true);
}

Status ArchIS::CreateRelation(const std::string& name, const Schema& schema,
                              const std::vector<std::string>& key_columns,
                              const DocBinding& doc,
                              const std::string& doc_name) {
  RelationSpec spec;
  spec.name = name;
  spec.schema = schema;
  spec.key_columns = key_columns;
  spec.doc_name = doc_name;
  spec.root_tag = doc.root_tag;
  spec.entity_tag = doc.entity_tag;
  return CreateRelation(spec);
}

Status ArchIS::CreateRelationInternal(RelationSpec spec, Date open_date,
                                      bool log_to_wal) {
  if (spec.root_tag.empty()) spec.root_tag = spec.name;
  if (spec.entity_tag.empty()) {
    spec.entity_tag = spec.root_tag;
    if (!spec.entity_tag.empty() && spec.entity_tag.back() == 's') {
      spec.entity_tag.pop_back();
    }
  }
  if (spec.doc_name.empty()) {
    return Status::InvalidArgument("RelationSpec::doc_name must be set");
  }
  ARCHIS_ASSIGN_OR_RETURN(
      Table * table, current_db_.catalog().CreateTable(spec.name, spec.schema));
  ARCHIS_RETURN_NOT_OK(table->CreateIndex("pk", spec.key_columns));
  RelationInfo info;
  info.key_columns = spec.key_columns;
  for (const std::string& k : spec.key_columns) {
    ARCHIS_ASSIGN_OR_RETURN(size_t pos, spec.schema.ColumnIndex(k));
    info.key_positions.push_back(pos);
  }
  info.doc.relation = spec.name;
  info.doc.root_tag = spec.root_tag;
  info.doc.entity_tag = spec.entity_tag;
  info.doc_name = spec.doc_name;
  relations_[spec.name] = std::move(info);
  ARCHIS_RETURN_NOT_OK(archiver_.RegisterRelation(
      spec.name, spec.schema, spec.key_columns, options_.segment, open_date));
  InvalidatePlanCache();
  if (log_to_wal && wal_ != nullptr) {
    return wal_->LogCreateRelation(spec, open_date);
  }
  return Status::OK();
}

Status ArchIS::DropRelation(const std::string& name) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  return DropRelationInternal(name, clock_, /*log_to_wal=*/true);
}

Status ArchIS::DropRelationInternal(const std::string& name, Date when,
                                    bool log_to_wal) {
  if (relations_.count(name) == 0) {
    return Status::NotFound("relation '" + name + "'");
  }
  ARCHIS_RETURN_NOT_OK(current_db_.catalog().DropTable(name));
  ARCHIS_RETURN_NOT_OK(archiver_.UnregisterRelation(name, when));
  InvalidatePlanCache();
  if (log_to_wal && wal_ != nullptr) {
    return wal_->LogDropRelation(name, when);
  }
  return Status::OK();
}

// -- Transaction clock ---------------------------------------------------------

Status ArchIS::AdvanceClock(Date now) {
  if (open_stamped_txns_ > 0) {
    return Status::InvalidArgument(
        "cannot advance the clock while a transaction is open (a "
        "transaction commits at one instant)");
  }
  if (now < clock_) {
    return Status::InvalidArgument(
        "transaction time cannot move backwards (" + now.ToString() + " < " +
        clock_.ToString() + ")");
  }
  clock_ = now;
  return Status::OK();
}

// -- DML -----------------------------------------------------------------------

Transaction ArchIS::Begin() {
  return Transaction(this, /*stamp_at_commit=*/true);
}

Transaction* ArchIS::AmbientTxn() {
  if (!ambient_) {
    // The ambient batch keeps per-statement dates: its statements may span
    // clock advances (an update log accumulated over time), so re-stamping
    // them at commit would rewrite history.
    ambient_ = std::unique_ptr<Transaction>(
        new Transaction(this, /*stamp_at_commit=*/false));
  }
  return ambient_.get();
}

Status ArchIS::Insert(const std::string& relation, const Tuple& row) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  if (options_.capture_mode == CaptureMode::kUpdateLog) {
    return AmbientTxn()->Insert(relation, row);
  }
  Transaction txn(this, /*stamp_at_commit=*/true);
  ARCHIS_RETURN_NOT_OK(txn.Insert(relation, row));
  return txn.Commit();
}

Status ArchIS::Update(const std::string& relation,
                      const std::vector<Value>& key, const Tuple& new_row) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  if (options_.capture_mode == CaptureMode::kUpdateLog) {
    return AmbientTxn()->Update(relation, key, new_row);
  }
  Transaction txn(this, /*stamp_at_commit=*/true);
  ARCHIS_RETURN_NOT_OK(txn.Update(relation, key, new_row));
  return txn.Commit();
}

Status ArchIS::Delete(const std::string& relation,
                      const std::vector<Value>& key) {
  ARCHIS_RETURN_NOT_OK(CheckWritable());
  if (options_.capture_mode == CaptureMode::kUpdateLog) {
    return AmbientTxn()->Delete(relation, key);
  }
  Transaction txn(this, /*stamp_at_commit=*/true);
  ARCHIS_RETURN_NOT_OK(txn.Delete(relation, key));
  return txn.Commit();
}

Status ArchIS::Commit() {
  if (!ambient_) return Status::OK();
  std::unique_ptr<Transaction> txn = std::move(ambient_);
  return txn->Commit();
}

size_t ArchIS::pending_changes() const {
  return ambient_ ? ambient_->pending() : 0;
}

Status ArchIS::FlushLog() { return Commit(); }

// -- Transaction plumbing ------------------------------------------------------

Result<storage::RecordId> ArchIS::FindByKey(
    Table* table, const RelationInfo& info, const std::vector<Value>& key,
    Tuple* row) const {
  if (key.size() != info.key_positions.size()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  const minirel::TableIndex* idx = table->GetIndex("pk");
  std::optional<storage::RecordId> found;
  ARCHIS_RETURN_NOT_OK(table->IndexScan(
      *idx, key, key, [&](const storage::RecordId& rid, const Tuple& t) {
        found = rid;
        *row = t;
        return false;
      }));
  if (!found) return Status::NotFound("no current row with that key");
  return *found;
}

std::vector<Value> ArchIS::KeyOf(const RelationInfo& info, const Tuple& row) {
  std::vector<Value> key;
  key.reserve(info.key_positions.size());
  for (size_t pos : info.key_positions) key.push_back(row.at(pos));
  return key;
}

Status ArchIS::TxnInsert(Transaction* txn, const std::string& relation,
                         const Tuple& row) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  ARCHIS_RETURN_NOT_OK(table->Insert(row).status());
  ChangeRecord change;
  change.kind = ChangeKind::kInsert;
  change.relation = relation;
  change.new_row = row;
  change.when = clock_;
  txn->changes_.push_back(std::move(change));
  return Status::OK();
}

Status ArchIS::TxnUpdate(Transaction* txn, const std::string& relation,
                         const std::vector<Value>& key, const Tuple& new_row) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  Tuple old_row;
  ARCHIS_ASSIGN_OR_RETURN(storage::RecordId rid,
                          FindByKey(table, info->second, key, &old_row));
  // Keys are invariant in history (Section 3).
  for (size_t i = 0; i < key.size(); ++i) {
    if (!(new_row.at(info->second.key_positions[i]) == key[i])) {
      return Status::InvalidArgument("key columns must not change");
    }
  }
  ARCHIS_RETURN_NOT_OK(table->Update(&rid, new_row));
  ChangeRecord change;
  change.kind = ChangeKind::kUpdate;
  change.relation = relation;
  change.old_row = old_row;
  change.new_row = new_row;
  change.when = clock_;
  txn->changes_.push_back(std::move(change));
  return Status::OK();
}

Status ArchIS::TxnDelete(Transaction* txn, const std::string& relation,
                         const std::vector<Value>& key) {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(relation));
  Tuple old_row;
  ARCHIS_ASSIGN_OR_RETURN(storage::RecordId rid,
                          FindByKey(table, info->second, key, &old_row));
  ARCHIS_RETURN_NOT_OK(table->Delete(rid));
  ChangeRecord change;
  change.kind = ChangeKind::kDelete;
  change.relation = relation;
  change.old_row = old_row;
  change.when = clock_;
  txn->changes_.push_back(std::move(change));
  return Status::OK();
}

Status ArchIS::CommitChanges(std::vector<ChangeRecord> changes,
                             bool stamp_at_commit) {
  if (changes.empty()) return Status::OK();
  if (stamp_at_commit) {
    // One transaction, one transaction-time instant. AdvanceClock is
    // blocked while the batch is open, so the buffered dates can only
    // equal clock_ already; stamping keeps the invariant explicit.
    for (ChangeRecord& change : changes) change.when = clock_;
  }
  if (wal_ != nullptr) {
    const uint64_t txn_id = wal_->NextTxnId();
    ARCHIS_RETURN_NOT_OK(wal_->LogTransaction(txn_id, changes, clock_));
  }
  for (const ChangeRecord& change : changes) {
    ARCHIS_RETURN_NOT_OK(archiver_.Apply(change));
  }
  InvalidatePlanCache();
  TxnCommitsMetric()->Inc();
  ChangesCapturedMetric()->Inc(changes.size());
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status ArchIS::UndoCurrent(const std::vector<ChangeRecord>& changes) {
  for (auto it = changes.rbegin(); it != changes.rend(); ++it) {
    const ChangeRecord& change = *it;
    auto info = relations_.find(change.relation);
    if (info == relations_.end()) {
      return Status::Internal("undo for unknown relation '" +
                              change.relation + "'");
    }
    ARCHIS_ASSIGN_OR_RETURN(Table * table,
                            current_db_.catalog().GetTable(change.relation));
    switch (change.kind) {
      case ChangeKind::kInsert: {
        Tuple row;
        ARCHIS_ASSIGN_OR_RETURN(
            storage::RecordId rid,
            FindByKey(table, info->second, KeyOf(info->second, change.new_row),
                      &row));
        ARCHIS_RETURN_NOT_OK(table->Delete(rid));
        break;
      }
      case ChangeKind::kUpdate: {
        Tuple row;
        ARCHIS_ASSIGN_OR_RETURN(
            storage::RecordId rid,
            FindByKey(table, info->second, KeyOf(info->second, change.new_row),
                      &row));
        ARCHIS_RETURN_NOT_OK(table->Update(&rid, change.old_row));
        break;
      }
      case ChangeKind::kDelete:
        ARCHIS_RETURN_NOT_OK(table->Insert(change.old_row).status());
        break;
    }
  }
  return Status::OK();
}

// -- Recovery replay -----------------------------------------------------------

Status ArchIS::ApplyRecovered(const WalCommittedTxn& txn) {
  for (const ChangeRecord& change : txn.changes) {
    ARCHIS_RETURN_NOT_OK(ReplayChange(change));
  }
  InvalidatePlanCache();
  return Status::OK();
}

Status ArchIS::ReplayChange(const ChangeRecord& change) {
  auto info = relations_.find(change.relation);
  if (info == relations_.end()) {
    return Status::Corruption("recovered change for unknown relation '" +
                              change.relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(Table * table,
                          current_db_.catalog().GetTable(change.relation));
  switch (change.kind) {
    case ChangeKind::kInsert: {
      Tuple existing;
      auto rid = FindByKey(table, info->second,
                           KeyOf(info->second, change.new_row), &existing);
      if (rid.ok()) return Status::OK();  // already applied
      if (rid.status().code() != StatusCode::kNotFound) return rid.status();
      ARCHIS_RETURN_NOT_OK(table->Insert(change.new_row).status());
      return archiver_.Apply(change);
    }
    case ChangeKind::kUpdate: {
      Tuple existing;
      ARCHIS_ASSIGN_OR_RETURN(
          storage::RecordId rid,
          FindByKey(table, info->second, KeyOf(info->second, change.new_row),
                    &existing));
      if (existing == change.new_row) return Status::OK();  // already applied
      ARCHIS_RETURN_NOT_OK(table->Update(&rid, change.new_row));
      return archiver_.Apply(change);
    }
    case ChangeKind::kDelete: {
      Tuple existing;
      auto rid = FindByKey(table, info->second,
                           KeyOf(info->second, change.old_row), &existing);
      if (!rid.ok()) {
        if (rid.status().code() == StatusCode::kNotFound) {
          return Status::OK();  // already applied
        }
        return rid.status();
      }
      ARCHIS_RETURN_NOT_OK(table->Delete(*rid));
      return archiver_.Apply(change);
    }
  }
  return Status::Internal("unreachable");
}

// -- Checkpointing -------------------------------------------------------------

Status ArchIS::Checkpoint(CheckpointCrashPoint crash_point) {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "Checkpoint requires a WAL-backed instance (in-memory instances "
        "have nothing to truncate)");
  }
  if (open_stamped_txns_ > 0) {
    return Status::InvalidArgument(
        "cannot checkpoint while a transaction is open");
  }
  if (pending_changes() > 0) {
    return Status::InvalidArgument(
        "cannot checkpoint with buffered ambient changes (Commit first)");
  }
  const auto started = std::chrono::steady_clock::now();
  CheckpointManifest manifest;
  manifest.seq = checkpoint_seq_ + 1;
  manifest.clock_days = clock_.days();
  manifest.next_txn_id = wal_->PeekNextTxnId();
  manifest.wal_offset = wal_->end_offset();
  for (const Archiver::RelationEntry& entry : archiver_.relations()) {
    ARCHIS_ASSIGN_OR_RETURN(CheckpointRelation rel,
                            CaptureRelation(entry.name, entry.interval));
    manifest.relations.push_back(std::move(rel));
  }
  ARCHIS_ASSIGN_OR_RETURN(std::string bytes,
                          EncodeCheckpointManifest(manifest));
  ARCHIS_RETURN_NOT_OK(
      InstallCheckpointManifest(options_.wal.path, bytes, crash_point));
  if (crash_point == CheckpointCrashPoint::kBeforeWalReset) {
    return Status::IOError("injected crash before WAL reset");
  }
  ARCHIS_RETURN_NOT_OK(wal_->ResetAfterCheckpoint(manifest.seq));
  checkpoint_seq_ = manifest.seq;
  wal_bytes_at_last_checkpoint_ = wal_->bytes_written();
  CheckpointsMetric()->Inc();
  CheckpointSecondsMetric()->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count());
  logging::Info("checkpoint.complete")
      .Kv("seq", manifest.seq)
      .Kv("relations", manifest.relations.size())
      .Kv("manifest_bytes", bytes.size())
      .Kv("clock", clock_.ToString());
  return Status::OK();
}

Result<CheckpointRelation> ArchIS::CaptureRelation(
    const std::string& name, const TimeInterval& interval) const {
  auto info = relations_.find(name);
  if (info == relations_.end()) {
    return Status::Internal("archived relation '" + name +
                            "' has no catalog entry");
  }
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(name));
  CheckpointRelation rel;
  rel.spec.name = name;
  rel.spec.schema = set->current_schema();
  rel.spec.key_columns = set->key_columns();
  rel.spec.doc_name = info->second.doc_name;
  rel.spec.root_tag = info->second.doc.root_tag;
  rel.spec.entity_tag = info->second.doc.entity_tag;
  rel.open_days = interval.tstart.days();
  rel.close_days = interval.tend.days();
  rel.dropped = !interval.is_current();
  rel.surrogates.assign(set->surrogate_ids().begin(),
                        set->surrogate_ids().end());
  std::sort(rel.surrogates.begin(), rel.surrogates.end());
  rel.next_surrogate = set->next_surrogate();
  // Raw deduplicated store rows, key table first (the manifest must round-
  // trip re-insertions of one key without merging their intervals, which
  // the published H-document would).
  rel.store_rows.emplace_back();
  ARCHIS_RETURN_NOT_OK(
      set->key_store()->ScanHistory([&](const Tuple& row) {
        rel.store_rows.back().push_back(row);
        return true;
      }));
  rel.store_stats.push_back(set->key_store()->statistics().Encode());
  for (const std::string& attr : set->attribute_names()) {
    ARCHIS_ASSIGN_OR_RETURN(SegmentedStore * store,
                            set->attribute_store(attr));
    rel.store_rows.emplace_back();
    ARCHIS_RETURN_NOT_OK(store->ScanHistory([&](const Tuple& row) {
      rel.store_rows.back().push_back(row);
      return true;
    }));
    rel.store_stats.push_back(store->statistics().Encode());
  }
  if (!rel.dropped) {
    ARCHIS_ASSIGN_OR_RETURN(Table * table,
                            current_db_.catalog().GetTable(name));
    ARCHIS_RETURN_NOT_OK(
        table->Scan([&](const storage::RecordId&, const Tuple& row) {
          rel.current_rows.push_back(row);
          return true;
        }));
  }
  return rel;
}

Status ArchIS::RestoreFromCheckpoint(const CheckpointManifest& manifest) {
  for (const CheckpointRelation& rel : manifest.relations) {
    ARCHIS_RETURN_NOT_OK(CreateRelationInternal(rel.spec, Date(rel.open_days),
                                                /*log_to_wal=*/false));
    ARCHIS_ASSIGN_OR_RETURN(HTableSet * set,
                            archiver_.htables(rel.spec.name));
    set->RestoreSurrogates(rel.surrogates, rel.next_surrogate);
    if (rel.store_rows.size() != 1 + set->attribute_names().size()) {
      return Status::Corruption(
          "manifest for '" + rel.spec.name + "' carries " +
          std::to_string(rel.store_rows.size()) + " stores, schema needs " +
          std::to_string(1 + set->attribute_names().size()));
    }
    // Install the checkpointed statistics snapshot over the rebuild's
    // (identical for deterministic stats, but the manifest is the record).
    const bool has_stats = rel.store_stats.size() == rel.store_rows.size();
    ARCHIS_RETURN_NOT_OK(
        set->key_store()->LoadCheckpointRows(rel.store_rows[0]));
    if (has_stats) {
      ARCHIS_ASSIGN_OR_RETURN(StoreStatistics stats,
                              StoreStatistics::Decode(rel.store_stats[0]));
      set->key_store()->RestoreStatistics(std::move(stats));
    }
    for (size_t a = 0; a < set->attribute_names().size(); ++a) {
      ARCHIS_ASSIGN_OR_RETURN(
          SegmentedStore * store,
          set->attribute_store(set->attribute_names()[a]));
      ARCHIS_RETURN_NOT_OK(store->LoadCheckpointRows(rel.store_rows[1 + a]));
      if (has_stats) {
        ARCHIS_ASSIGN_OR_RETURN(
            StoreStatistics stats,
            StoreStatistics::Decode(rel.store_stats[1 + a]));
        store->RestoreStatistics(std::move(stats));
      }
    }
    if (rel.dropped) {
      ARCHIS_RETURN_NOT_OK(DropRelationInternal(
          rel.spec.name, Date(rel.close_days), /*log_to_wal=*/false));
    } else {
      ARCHIS_ASSIGN_OR_RETURN(Table * table,
                              current_db_.catalog().GetTable(rel.spec.name));
      for (const Tuple& row : rel.current_rows) {
        ARCHIS_RETURN_NOT_OK(table->Insert(row).status());
      }
    }
  }
  InvalidatePlanCache();
  return Status::OK();
}

void ArchIS::MaybeAutoCheckpoint() {
  const uint64_t threshold = options_.wal.checkpoint_after_bytes;
  if (wal_ == nullptr || threshold == 0) return;
  // Quiesce gate: mid-transaction commits (or a half-flushed ambient
  // batch) retry at the next commit that finds the instance idle.
  if (open_stamped_txns_ > 0 || pending_changes() > 0) return;
  if (wal_->bytes_written() - wal_bytes_at_last_checkpoint_ < threshold) {
    return;
  }
  Status st = Checkpoint();
  if (!st.ok()) {
    // The triggering commit is already durable, so it must not fail here;
    // a dead WAL surfaces on the next commit.
    logging::Warn("checkpoint.auto_failed").Kv("error", st.message());
  }
}

// -- Queries -------------------------------------------------------------------

TranslatorContext ArchIS::translator_context() const {
  TranslatorContext ctx;
  ctx.current_date = clock_;
  for (const auto& [name, info] : relations_) {
    ctx.docs[info.doc_name] = info.doc;
  }
  return ctx;
}

Result<QueryResult> ArchIS::Query(const std::string& xquery,
                                  const QueryOptions& options) {
  trace::Trace tr;
  trace::Trace* trace = options.collect_profile ? &tr : nullptr;
  const auto started = std::chrono::steady_clock::now();
  auto observe_latency = [&started] {
    QuerySecondsMetric()->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  };
  auto fail = [&](Status st) {
    QueryFailuresMetric()->Inc();
    observe_latency();
    return st;
  };
  QueryResult result;
  if (options.force_path != QueryForce::kNative) {
    // Parse and translate under separate spans (the paper reports both
    // costs; Translate() keeps them fused for API compatibility).
    Result<xquery::ExprPtr> ast = [&]() -> Result<xquery::ExprPtr> {
      trace::ScopedSpan span(trace, "parse");
      return xquery::ParseXQuery(xquery);
    }();
    Result<SqlXmlPlan> plan =
        ast.ok() ? [&]() -> Result<SqlXmlPlan> {
          trace::ScopedSpan span(trace, "translate");
          return TranslateXQuery(*ast, translator_context());
        }()
                 : Result<SqlXmlPlan>(ast.status());
    if (plan.ok()) {
      result.path = QueryPath::kTranslated;
      result.sql = plan->ToSql();
      Result<xml::XmlNodePtr> xml = [&]() -> Result<xml::XmlNodePtr> {
        trace::ScopedSpan span(trace, "execute");
        return Execute(*plan, &result.stats, trace, options.force_plan);
      }();
      if (!xml.ok()) return fail(xml.status());
      result.xml = std::move(*xml);
      QueriesTranslatedMetric()->Inc();
      observe_latency();
      if (trace != nullptr) result.profile = tr.TakeProfile();
      return result;
    }
    if (options.force_path == QueryForce::kTranslated ||
        plan.status().code() != StatusCode::kUnsupported) {
      return fail(plan.status());
    }
  }
  // Native evaluation over published H-documents.
  Result<xquery::Sequence> seq = [&]() -> Result<xquery::Sequence> {
    trace::ScopedSpan span(trace, "native-eval");
    return QueryNative(xquery);
  }();
  if (!seq.ok()) return fail(seq.status());
  result.path = QueryPath::kNativeFallback;
  result.xml = xml::XmlNode::Element("results");
  for (const xquery::Item& item : *seq) {
    if (item.is_node()) {
      result.xml->AppendChild(item.node()->Clone());
    } else {
      result.xml->AppendText(item.StringValue());
    }
  }
  QueriesNativeMetric()->Inc();
  observe_latency();
  if (trace != nullptr) result.profile = tr.TakeProfile();
  return result;
}

Result<SqlXmlPlan> ArchIS::Translate(const std::string& xquery) const {
  return TranslateXQuery(xquery, translator_context());
}

Result<xml::XmlNodePtr> ArchIS::Execute(const SqlXmlPlan& plan,
                                        PlanStats* stats, trace::Trace* trace,
                                        PlanForce force_plan) const {
  static metrics::Counter* forced = metrics::Registry::Global().GetCounter(
      "archis_planner_forced_total",
      "Plan executions whose physical shape was pinned by "
      "QueryOptions::force_plan");
  static metrics::Counter* fallbacks = metrics::Registry::Global().GetCounter(
      "archis_planner_fallbacks_total",
      "Cost-based planning failures that fell back to the fixed shape");
  static metrics::Counter* cache_hits = metrics::Registry::Global().GetCounter(
      "archis_planner_cache_hits_total",
      "Executions that reused a cached physical plan (same structural "
      "key, no intervening mutation)");
  static metrics::Counter* cache_misses =
      metrics::Registry::Global().GetCounter(
          "archis_planner_cache_misses_total",
          "Executions that ran the cost-based planner (cold or stale "
          "cache entry)");
  if (force_plan != PlanForce::kAuto) forced->Inc();
  if (force_plan == PlanForce::kFixed) {
    // nullptr physical = the fixed legacy shape (DefaultPhysicalPlan).
    return ExecutePlan(archiver_, plan, clock_, stats, trace);
  }
  // Plan cache: repeated executions of a structurally identical plan at
  // unchanged statistics (no mutation since planning) skip PlanQuery
  // entirely — prepared-statement behavior, so cheap point queries don't
  // pay planning on every call. The hit path is kept allocation-free: a
  // thread-local scratch buffer for the key, a shared_ptr copy out of
  // the cache.
  thread_local std::string key;
  key.clear();
  AppendPlanCacheKey(plan, &key);
  std::shared_ptr<const PhysicalPlan> physical;
  {
    MutexLock l(plan_cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end() && it->second.epoch == plan_epoch_) {
      physical = it->second.physical;
    }
  }
  if (physical != nullptr) {
    cache_hits->Inc();
  } else {
    cache_misses->Inc();
    Result<PhysicalPlan> planned = PlanQuery(archiver_, plan);
    if (!planned.ok()) {
      if (force_plan == PlanForce::kCostBased) return planned.status();
      fallbacks->Inc();
      return ExecutePlan(archiver_, plan, clock_, stats, trace);
    }
    physical = std::make_shared<const PhysicalPlan>(std::move(*planned));
    MutexLock l(plan_cache_mu_);
    // Bounded cache: a workload with unbounded distinct shapes (e.g. a
    // fresh constant per query) must not grow the map forever. 256
    // prepared shapes is far beyond any suite here; wholesale clear keeps
    // eviction O(1) without LRU bookkeeping.
    if (plan_cache_.size() >= 256) plan_cache_.clear();
    plan_cache_[key] = CachedPlan{plan_epoch_, physical};
  }
  return ExecutePlan(archiver_, plan, clock_, stats, trace, physical.get());
}

std::string ArchIS::DumpMetrics() {
  return metrics::Registry::Global().TextFormat();
}

Result<xquery::Sequence> ArchIS::QueryNative(const std::string& xquery) {
  xquery::EvalContext ctx;
  ctx.current_date = clock_;
  ctx.resolve_doc =
      [this](const std::string& doc_name) -> Result<xml::XmlNodePtr> {
    for (const auto& [name, info] : relations_) {
      if (info.doc_name == doc_name) return PublishHistory(name);
    }
    return Status::NotFound("no relation publishes doc('" + doc_name + "')");
  };
  xquery::Evaluator evaluator(std::move(ctx));
  return evaluator.EvaluateQuery(xquery);
}

Result<xml::XmlNodePtr> ArchIS::PublishHistory(
    const std::string& relation) const {
  auto info = relations_.find(relation);
  if (info == relations_.end()) {
    return Status::NotFound("relation '" + relation + "'");
  }
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  TimeInterval relation_interval = MakeInterval(clock_, Date::Forever());
  for (const auto& entry : archiver_.relations()) {
    if (entry.name == relation) relation_interval = entry.interval;
  }
  PublishOptions opts;
  opts.root_name = info->second.doc.root_tag;
  opts.entity_name = info->second.doc.entity_tag;
  return core::PublishHistory(*set, relation_interval, opts);
}

Status ArchIS::ImportHistory(const std::string& relation,
                             const xml::XmlNodePtr& doc) {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  ARCHIS_RETURN_NOT_OK(core::ImportHistory(set, doc));
  InvalidatePlanCache();
  return Status::OK();
}

Result<std::vector<Tuple>> ArchIS::Snapshot(const std::string& relation,
                                            Date t) const {
  ARCHIS_ASSIGN_OR_RETURN(HTableSet * set, archiver_.htables(relation));
  return set->Snapshot(t);
}

Status ArchIS::FreezeAll() {
  ARCHIS_RETURN_NOT_OK(archiver_.FreezeAll(clock_));
  InvalidatePlanCache();
  return Status::OK();
}

void ArchIS::InvalidatePlanCache() {
  MutexLock l(plan_cache_mu_);
  ++plan_epoch_;
}

}  // namespace archis::core
