// Change capture on the current database (paper Section 5.2).
//
// A ChangeRecord is one captured change of one current table. Changes are
// collected by the transactional write path (archis::core::Transaction):
// in kTrigger capture mode every DML statement is its own auto-committed
// transaction (the ArchIS-DB2 configuration, archived synchronously); in
// kUpdateLog mode statements accumulate in an ambient write batch that is
// durably logged and archived on Commit (the ArchIS-ATLaS configuration,
// which the paper uses "for better performance").
//
// This header also owns the binary codec for ChangeRecord, the payload
// format of the write-ahead change log (archis/wal.*).
#ifndef ARCHIS_ARCHIS_CHANGE_CAPTURE_H_
#define ARCHIS_ARCHIS_CHANGE_CAPTURE_H_

#include <string>
#include <vector>

#include "minirel/tuple.h"

namespace archis::core {

/// Kind of captured change.
enum class ChangeKind { kInsert, kUpdate, kDelete };

/// One captured change on a current table.
struct ChangeRecord {
  ChangeKind kind = ChangeKind::kInsert;
  std::string relation;
  minirel::Tuple old_row;  // valid for update/delete
  minirel::Tuple new_row;  // valid for insert/update
  Date when;
};

/// How changes reach the archiver.
enum class CaptureMode {
  kTrigger,    ///< every statement auto-commits (archived synchronously)
  kUpdateLog,  ///< statements batch in the ambient transaction until Commit
};

/// Appends the binary encoding of `change` to `out`. Self-describing:
/// tuples carry per-value type tags, so decoding needs no schema.
void EncodeChangeRecord(const ChangeRecord& change, std::string* out);

/// Decodes a record produced by EncodeChangeRecord from `data` at `*pos`,
/// advancing `*pos` past it. Corruption on malformed input.
Result<ChangeRecord> DecodeChangeRecord(std::string_view data, size_t* pos);

/// Appends the encoding of `row` (with type tags) to `out`.
void EncodeTuple(const minirel::Tuple& row, std::string* out);

/// Decodes a tuple written by EncodeTuple.
Result<minirel::Tuple> DecodeTuple(std::string_view data, size_t* pos);

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_CHANGE_CAPTURE_H_
