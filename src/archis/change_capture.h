// Change capture on the current database (paper Section 5.2).
//
// Changes can be tracked with triggers (each statement archived
// synchronously — the ArchIS-DB2 configuration) or with an update log
// (changes buffered and archived on Flush — the ArchIS-ATLaS
// configuration, which the paper uses "for better performance").
#ifndef ARCHIS_ARCHIS_CHANGE_CAPTURE_H_
#define ARCHIS_ARCHIS_CHANGE_CAPTURE_H_

#include <functional>
#include <string>
#include <vector>

#include "minirel/tuple.h"

namespace archis::core {

/// Kind of captured change.
enum class ChangeKind { kInsert, kUpdate, kDelete };

/// One captured change on a current table.
struct ChangeRecord {
  ChangeKind kind = ChangeKind::kInsert;
  std::string relation;
  minirel::Tuple old_row;  // valid for update/delete
  minirel::Tuple new_row;  // valid for insert/update
  Date when;
};

/// How changes reach the archiver.
enum class CaptureMode {
  kTrigger,    ///< archive synchronously per statement
  kUpdateLog,  ///< buffer; archive on Flush()
};

/// Sink invoked for each change (in trigger mode) or each flushed batch.
using ChangeSink = std::function<Status(const ChangeRecord&)>;

/// Collects changes and routes them to a sink.
class ChangeCapture {
 public:
  ChangeCapture(CaptureMode mode, ChangeSink sink)
      : mode_(mode), sink_(std::move(sink)) {}

  /// Records a change; in trigger mode the sink runs before returning.
  Status Record(ChangeRecord change);

  /// Applies all buffered changes to the sink in order (update-log mode).
  Status Flush();

  /// Buffered, not-yet-archived changes.
  size_t pending() const { return log_.size(); }

  CaptureMode mode() const { return mode_; }
  void set_mode(CaptureMode mode) { mode_ = mode; }

 private:
  CaptureMode mode_;
  ChangeSink sink_;
  std::vector<ChangeRecord> log_;
};

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_CHANGE_CAPTURE_H_
