#include "archis/sqlxml.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>

#include "archis/planner.h"
#include "common/metrics.h"
#include "temporal/aggregate.h"

namespace archis::core {

using minirel::Tuple;
using minirel::Value;

namespace {

/// A normalised H-table row: key-table rows have no value.
struct HRow {
  int64_t id;
  std::optional<Value> value;
  TimeInterval interval;
};

using ExecDeadline = std::optional<std::chrono::steady_clock::time_point>;

bool DeadlinePassed(const ExecDeadline& deadline) {
  return deadline.has_value() && std::chrono::steady_clock::now() >= *deadline;
}

Status DeadlineError() {
  return Status::DeadlineExceeded("query deadline exceeded during execution");
}

Value ColValue(const HRow& row, HCol col) {
  switch (col) {
    case HCol::kId: return Value(row.id);
    case HCol::kValue: return row.value.value_or(Value(row.id));
    case HCol::kTstart: return Value(row.interval.tstart);
    case HCol::kTend: return Value(row.interval.tend);
  }
  return Value(row.id);
}

/// Fetches the rows of one plan variable, sorted by id, with every
/// pushed-down condition applied (segment pruning happens inside the store).
/// `vp` is the planner's access-path decision for this variable: kIdIndex
/// probes the id index and post-filters time; kSegmentMerge runs the
/// temporally pruned merge-scan and post-filters any id restriction.
Result<std::vector<HRow>> FetchVar(const Archiver& archiver,
                                   const PlanVar& var, const VarPlan& vp,
                                   bool cost_based, PlanStats* stats,
                                   trace::Trace* trace,
                                   const ExecDeadline& deadline) {
  trace::ScopedSpan span(
      trace, "segment-scan");
  // Scan-boundary deadline check: a multi-variable plan whose earlier
  // scans consumed the budget stops before touching the next store.
  if (DeadlinePassed(deadline)) return DeadlineError();
  const bool use_id_index =
      vp.path == AccessPath::kIdIndex && var.id_eq.has_value();
  if (trace != nullptr) {
    // Note values concatenate/format strings; only pay when a profile is
    // actually being collected.
    span.Note("table", var.attribute.empty() ? var.relation + "_id"
                                             : var.relation + "_" +
                                                   var.attribute);
    span.Note("path", use_id_index ? "id-index" : "segment-merge");
    if (cost_based) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", vp.est_rows);
      span.Note("est_rows", std::string(buf));
    }
  }
  ARCHIS_ASSIGN_OR_RETURN(HTableSet* set, archiver.htables(var.relation));
  SegmentedStore* store = nullptr;
  if (var.attribute.empty()) {
    store = set->key_store();
  } else {
    ARCHIS_ASSIGN_OR_RETURN(store, set->attribute_store(var.attribute));
  }
  const size_t ncols = store->row_schema().num_columns();
  const bool has_value = ncols > 3;

  std::vector<HRow> rows;
  StoreScanStats sstats;
  // In-scan cancellation: re-check the deadline every kDeadlineStride
  // rows; returning false stops the store scan early (partial stats are
  // still accumulated below), and the flag turns the stop into
  // kDeadlineExceeded rather than a truncated OK result.
  constexpr uint32_t kDeadlineStride = 256;
  uint32_t rows_since_check = 0;
  bool deadline_hit = false;
  auto admit = [&](const Tuple& t) {
    if (deadline.has_value() && ++rows_since_check >= kDeadlineStride) {
      rows_since_check = 0;
      if (DeadlinePassed(deadline)) {
        deadline_hit = true;
        return false;
      }
    }
    HRow row;
    row.id = t.at(0).AsInt();
    // Id restriction as a row post-filter on the merge path (a no-op on
    // the id-index path, where the scan already restricted).
    if (var.id_eq.has_value() && row.id != *var.id_eq) return true;
    if (has_value) row.value = t.at(1);
    row.interval = MakeInterval(t.at(ncols - 2).AsDate(),
                                t.at(ncols - 1).AsDate());
    if (var.current_only && !row.interval.is_current()) return true;
    for (const ValueCond& cond : var.value_conds) {
      if (!row.value.has_value()) return true;
      if (!minirel::Compare(*row.value, cond.op, cond.constant)) return true;
    }
    for (const ValueCond& cond : var.tstart_conds) {
      if (!minirel::Compare(Value(row.interval.tstart), cond.op,
                            cond.constant)) {
        return true;
      }
    }
    for (const ValueCond& cond : var.tend_conds) {
      if (!minirel::Compare(Value(row.interval.tend), cond.op,
                            cond.constant)) {
        return true;
      }
    }
    rows.push_back(std::move(row));
    return true;
  };

  Status st;
  if (use_id_index) {
    st = store->ScanId(*var.id_eq, admit, &sstats);
    // Temporal restrictions still apply on top of the id restriction.
    if (st.ok() && (var.snapshot || var.overlap)) {
      TimeInterval window = var.snapshot
                                ? MakeInterval(*var.snapshot, *var.snapshot)
                                : *var.overlap;
      std::erase_if(rows, [&](const HRow& r) {
        return !r.interval.Overlaps(window);
      });
    }
  } else if (var.snapshot.has_value()) {
    st = store->ScanSnapshot(*var.snapshot, admit, &sstats);
  } else if (var.overlap.has_value()) {
    st = store->ScanInterval(*var.overlap, admit, &sstats);
  } else {
    st = store->ScanHistory(admit, &sstats);
  }
  // Accumulate before the status check: a failed scan must still be
  // attributed (its segments were visited, its blocks decompressed).
  if (stats != nullptr) {
    stats->rows_scanned += sstats.tuples_scanned;
    stats->segments_scanned += sstats.segments_scanned;
    stats->blocks_decompressed += sstats.blocks_decompressed;
    stats->blocks_pruned_by_time += sstats.blocks_pruned_by_time;
    stats->block_cache_hits += sstats.block_cache_hits;
    stats->block_cache_misses += sstats.block_cache_misses;
  }
  span.Note("rows", static_cast<uint64_t>(rows.size()));
  span.Note("tuples_scanned", sstats.tuples_scanned);
  span.Note("segments", sstats.segments_scanned);
  if (sstats.blocks_decompressed + sstats.block_cache_hits > 0) {
    span.Note("blocks_decompressed", sstats.blocks_decompressed);
    span.Note("cache_hits", sstats.block_cache_hits);
  }
  ARCHIS_RETURN_NOT_OK(st);
  if (deadline_hit) return DeadlineError();
  // Store scans emit in (id, tstart) order already; keep it stable.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const HRow& a, const HRow& b) { return a.id < b.id; });
  return rows;
}

/// One joined result row: the participating row of each plan variable.
using JoinedRow = std::vector<const HRow*>;

bool CrossCondsHold(const std::vector<CrossCond>& conds,
                    const JoinedRow& row) {
  for (const CrossCond& cond : conds) {
    const HRow& l = *row[cond.lhs.var];
    const HRow& r = *row[cond.rhs.var];
    switch (cond.kind) {
      case CrossCond::Kind::kCompare: {
        if (!minirel::Compare(ColValue(l, cond.lhs.col), cond.op,
                              ColValue(r, cond.rhs.col))) {
          return false;
        }
        break;
      }
      case CrossCond::Kind::kOverlaps:
        if (!l.interval.Overlaps(r.interval)) return false;
        break;
      case CrossCond::Kind::kContains:
        if (!l.interval.Contains(r.interval)) return false;
        break;
      case CrossCond::Kind::kEquals:
        if (!l.interval.Equals(r.interval)) return false;
        break;
      case CrossCond::Kind::kMeets:
        if (!l.interval.Meets(r.interval)) return false;
        break;
      case CrossCond::Kind::kPrecedes:
        if (!l.interval.Precedes(r.interval)) return false;
        break;
    }
  }
  return true;
}

/// Id-sorted k-way merge join across one join group's variables (linear in
/// the inputs, as Section 5.3 notes for id-sorted H-tables). Emits one
/// partial row (pointer per group member) per combination.
void MergeJoin(const std::vector<const std::vector<HRow>*>& inputs,
               PlanStats* stats,
               const std::function<void(const JoinedRow&)>& emit) {
  const size_t k = inputs.size();
  std::vector<size_t> pos(k, 0);
  while (true) {
    // Find the largest current id; check all cursors can reach it.
    int64_t target = INT64_MIN;
    for (size_t v = 0; v < k; ++v) {
      if (pos[v] >= inputs[v]->size()) return;
      target = std::max(target, (*inputs[v])[pos[v]].id);
    }
    bool aligned = true;
    for (size_t v = 0; v < k; ++v) {
      while (pos[v] < inputs[v]->size() && (*inputs[v])[pos[v]].id < target) {
        ++pos[v];
      }
      if (pos[v] >= inputs[v]->size()) return;
      if ((*inputs[v])[pos[v]].id != target) {
        aligned = false;
      }
    }
    if (!aligned) continue;
    // Equal-id runs per variable.
    std::vector<std::pair<size_t, size_t>> runs(k);
    for (size_t v = 0; v < k; ++v) {
      size_t end = pos[v];
      while (end < inputs[v]->size() && (*inputs[v])[end].id == target) ++end;
      runs[v] = {pos[v], end};
    }
    // Cross product of the runs.
    JoinedRow row(k);
    std::vector<size_t> idx(k);
    for (size_t v = 0; v < k; ++v) idx[v] = runs[v].first;
    while (true) {
      for (size_t v = 0; v < k; ++v) row[v] = &(*inputs[v])[idx[v]];
      if (stats != nullptr) ++stats->rows_joined;
      emit(row);
      // Odometer increment.
      size_t v = 0;
      for (; v < k; ++v) {
        if (++idx[v] < runs[v].second) break;
        idx[v] = runs[v].first;
      }
      if (v == k) break;
    }
    for (size_t v = 0; v < k; ++v) pos[v] = runs[v].second;
  }
}

bool SpecContainsAgg(const OutputSpec& spec) {
  if (spec.kind == OutputSpec::Kind::kAgg) return true;
  for (const OutputSpec& child : spec.children) {
    if (SpecContainsAgg(child)) return true;
  }
  return false;
}

/// Instantiates an output spec for one joined row, appending to `parent`.
void EmitSpecForRow(const OutputSpec& spec, const JoinedRow& row,
                    const xml::XmlNodePtr& parent) {
  switch (spec.kind) {
    case OutputSpec::Kind::kElement: {
      auto elem = xml::XmlNode::Element(spec.name);
      if (spec.attr_var.has_value()) {
        elem->SetInterval(row[*spec.attr_var]->interval);
      }
      for (const OutputSpec& child : spec.children) {
        EmitSpecForRow(child, row, elem);
      }
      if (spec.column.has_value()) {
        elem->AppendText(
            ColValue(*row[spec.column->var], spec.column->col).ToString());
      }
      parent->AppendChild(std::move(elem));
      break;
    }
    case OutputSpec::Kind::kColumn: {
      parent->AppendText(
          ColValue(*row[spec.column->var], spec.column->col).ToString());
      break;
    }
    case OutputSpec::Kind::kInterval: {
      auto iv = row[*spec.ivl_lhs]->interval.Intersect(
          row[*spec.ivl_rhs]->interval);
      if (iv.has_value()) {
        auto elem = xml::XmlNode::Element("interval");
        elem->SetInterval(*iv);
        parent->AppendChild(std::move(elem));
      }
      break;
    }
    case OutputSpec::Kind::kText:
      parent->AppendText(spec.name);
      break;
    case OutputSpec::Kind::kAgg:
      // Handled by the grouping driver.
      break;
  }
}

/// Instantiates an element spec for a group of rows: non-agg children are
/// taken from the group's first row, agg children repeat per row (the
/// XMLAgg + GROUP BY id shape of Section 5.3).
void EmitSpecForGroup(const OutputSpec& spec,
                      const std::vector<JoinedRow>& group,
                      const xml::XmlNodePtr& parent) {
  if (spec.kind == OutputSpec::Kind::kAgg) {
    for (const JoinedRow& row : group) {
      for (const OutputSpec& child : spec.children) {
        EmitSpecForRow(child, row, parent);
      }
    }
    return;
  }
  if (spec.kind != OutputSpec::Kind::kElement) {
    EmitSpecForRow(spec, group.front(), parent);
    return;
  }
  auto elem = xml::XmlNode::Element(spec.name);
  if (spec.attr_var.has_value()) {
    elem->SetInterval(group.front()[*spec.attr_var]->interval);
  }
  for (const OutputSpec& child : spec.children) {
    EmitSpecForGroup(child, group, elem);
  }
  if (spec.column.has_value()) {
    elem->AppendText(ColValue(*group.front()[spec.column->var],
                              spec.column->col)
                         .ToString());
  }
  parent->AppendChild(std::move(elem));
}

}  // namespace

namespace {

/// One aggregate input fact: (join id, the aggregated variable's row).
using AggFact = std::pair<int64_t, const HRow*>;

/// Evaluates the plan's aggregate over `facts` and renders the result
/// element(s). Shared by the join pipeline (facts = first variable of each
/// joined row) and the streaming pushdown path (facts = the single
/// variable's scan output, no join or row buffers in between).
xml::XmlNodePtr RenderAggregate(const SqlXmlPlan& plan,
                                const std::vector<AggFact>& facts,
                                PlanStats* stats) {
  auto root = xml::XmlNode::Element("results");

  // Temporal aggregate: the sweep over matching facts (Section 5.4 maps
  // these to SQL:2003 OLAP functions; we run the same single scan).
  if (plan.aggregate == PlanAggregate::kTAvg) {
    std::vector<temporal::TimedNumber> tfacts;
    for (const AggFact& fact : facts) {
      auto v = ColValue(*fact.second, HCol::kValue).AsNumeric();
      if (v.ok()) tfacts.push_back({*v, fact.second->interval});
    }
    uint64_t steps = 0;
    for (const temporal::AggregateStep& step : temporal::TemporalAggregate(
             std::move(tfacts), temporal::TemporalAggFn::kAvg)) {
      auto elem = xml::XmlNode::Element("tavg");
      elem->SetInterval(step.interval);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", step.value);
      elem->AppendText(buf);
      root->AppendChild(std::move(elem));
      ++steps;
    }
    if (stats != nullptr) stats->result_rows = steps;
    return root;
  }

  // Scalar aggregates (Section 5.4: OLAP-function mapping).
  double result = 0;
  switch (plan.aggregate) {
    case PlanAggregate::kAvgValue: {
      double sum = 0;
      for (const AggFact& fact : facts) {
        auto v = ColValue(*fact.second, HCol::kValue).AsNumeric();
        if (v.ok()) sum += *v;
      }
      result = facts.empty() ? 0 : sum / static_cast<double>(facts.size());
      break;
    }
    case PlanAggregate::kCount:
      result = static_cast<double>(facts.size());
      break;
    case PlanAggregate::kCountDistinctIds: {
      std::set<int64_t> ids;
      for (const AggFact& fact : facts) ids.insert(fact.first);
      result = static_cast<double>(ids.size());
      break;
    }
    case PlanAggregate::kMaxValue: {
      bool first = true;
      for (const AggFact& fact : facts) {
        auto v = ColValue(*fact.second, HCol::kValue).AsNumeric();
        if (!v.ok()) continue;
        if (first || *v > result) result = *v;
        first = false;
      }
      break;
    }
    case PlanAggregate::kMaxIncrease: {
      // Temporal self-join per id: the best value delta between two
      // versions whose starts are within the window.
      std::map<int64_t, std::vector<std::pair<Date, double>>> by_id;
      for (const AggFact& fact : facts) {
        auto v = ColValue(*fact.second, HCol::kValue).AsNumeric();
        if (v.ok()) {
          by_id[fact.first].emplace_back(fact.second->interval.tstart, *v);
        }
      }
      for (auto& [id, versions] : by_id) {
        std::sort(versions.begin(), versions.end());
        for (size_t i = 0; i < versions.size(); ++i) {
          for (size_t j = i + 1; j < versions.size(); ++j) {
            if (versions[j].first - versions[i].first >
                plan.agg_window_days) {
              break;
            }
            result = std::max(result,
                              versions[j].second - versions[i].second);
          }
        }
      }
      break;
    }
    case PlanAggregate::kNone:
    case PlanAggregate::kTAvg:
      break;
  }
  auto elem = xml::XmlNode::Element(
      plan.output.name.empty() ? "result" : plan.output.name);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", result);
  elem->AppendText(buf);
  root->AppendChild(std::move(elem));
  if (stats != nullptr) stats->result_rows = 1;
  return root;
}

Result<xml::XmlNodePtr> ExecutePlanImpl(const Archiver& archiver,
                                        const SqlXmlPlan& plan,
                                        Date current_date, PlanStats* stats,
                                        trace::Trace* trace,
                                        const PhysicalPlan& physical,
                                        const ExecDeadline& deadline) {
  (void)current_date;
  if (plan.vars.empty()) {
    return Status::InvalidArgument("plan has no variables");
  }
  if (physical.vars.size() != plan.vars.size() ||
      physical.fetch_order.size() != plan.vars.size()) {
    return Status::InvalidArgument(
        "physical plan does not match the logical plan");
  }
  if (stats != nullptr) {
    stats->cost_based_plan = physical.cost_based;
    stats->est_cost = physical.est_total_cost;
    stats->est_rows = physical.est_result_rows;
  }
  if (trace != nullptr) {
    // Describe() formats several floats; only pay for it when a profile
    // is actually being collected.
    trace::ScopedSpan plan_span(trace, "plan");
    plan_span.Note("physical", physical.Describe());
  }

  // Fetch phase, in the planner's order. A variable that fetches empty
  // empties the whole join (its join group's partial is empty, and the
  // cross-product gate below requires every partial non-empty), so a
  // cost-based plan stops fetching at the first empty input. The fixed
  // legacy shape keeps the eager behaviour.
  std::vector<std::vector<HRow>> inputs(plan.vars.size());
  for (size_t ord : physical.fetch_order) {
    ARCHIS_ASSIGN_OR_RETURN(
        std::vector<HRow> rows,
        FetchVar(archiver, plan.vars[ord], physical.vars[ord],
                 physical.cost_based, stats, trace, deadline));
    const bool empty = rows.empty();
    inputs[ord] = std::move(rows);
    if (physical.cost_based && empty) {
      if (trace != nullptr) {
        trace->NoteCurrent("early_exit", "empty-input v" + std::to_string(ord));
      }
      break;
    }
  }

  // Aggregate pushdown: a single-variable aggregate with no cross
  // conditions consumes the scan output directly — no join, no JoinedRow
  // buffers, no distinct pass (single-variable rows are already unique).
  if (physical.stream_aggregate && plan.vars.size() == 1 &&
      plan.cross_conds.empty() && plan.aggregate != PlanAggregate::kNone) {
    std::vector<AggFact> facts;
    facts.reserve(inputs[0].size());
    for (const HRow& r : inputs[0]) facts.emplace_back(r.id, &r);
    return RenderAggregate(plan, facts, stats);
  }

  // Join phase. Variables in the same join group id-equijoin via a sorted
  // merge; groups combine by cross product filtered by the cross conditions
  // (Algorithm 1 only generates id joins between variables rooted in the
  // same document variable).
  std::optional<trace::ScopedSpan> join_span;
  if (trace != nullptr) join_span.emplace(trace, "join");
  std::map<size_t, std::vector<size_t>> group_members;
  for (size_t v = 0; v < plan.vars.size(); ++v) {
    size_t gid = plan.join_on_id ? plan.vars[v].join_group : v;
    group_members[gid].push_back(v);
  }
  // Per group: list of partial rows (pointer per member).
  std::vector<std::vector<size_t>> members_list;
  std::vector<std::vector<JoinedRow>> partials;
  for (const auto& [gid, members] : group_members) {
    members_list.push_back(members);
    std::vector<JoinedRow> rows;
    if (members.size() == 1) {
      rows.reserve(inputs[members[0]].size());
      for (const HRow& r : inputs[members[0]]) rows.push_back({&r});
    } else {
      std::vector<const std::vector<HRow>*> views;
      for (size_t m : members) views.push_back(&inputs[m]);
      MergeJoin(views, stats, [&](const JoinedRow& row) {
        rows.push_back(row);
      });
    }
    partials.push_back(std::move(rows));
  }
  // Cross product across groups into full rows, then filter.
  std::vector<std::pair<int64_t, JoinedRow>> joined;
  std::vector<size_t> cursor(partials.size(), 0);
  if (std::none_of(partials.begin(), partials.end(),
                   [](const auto& p) { return p.empty(); })) {
    // The cross product can dwarf the scans (it is the join's only
    // super-linear phase), so it re-checks the deadline periodically too.
    uint64_t iterations = 0;
    while (true) {
      if (deadline.has_value() && (++iterations & 4095) == 0 &&
          DeadlinePassed(deadline)) {
        return DeadlineError();
      }
      JoinedRow full(plan.vars.size(), nullptr);
      for (size_t g = 0; g < partials.size(); ++g) {
        const JoinedRow& part = partials[g][cursor[g]];
        for (size_t m = 0; m < members_list[g].size(); ++m) {
          full[members_list[g][m]] = part[m];
        }
      }
      if (CrossCondsHold(plan.cross_conds, full)) {
        joined.emplace_back(full[0]->id, full);
      }
      size_t g = 0;
      for (; g < partials.size(); ++g) {
        if (++cursor[g] < partials[g].size()) break;
        cursor[g] = 0;
      }
      if (g == partials.size()) break;
    }
  }

  // SELECT DISTINCT on the output-referenced variables: collapse joined
  // rows that only differ in variables the output never reads.
  if (plan.distinct_output && !joined.empty()) {
    std::set<size_t> referenced;
    std::function<void(const OutputSpec&)> collect =
        [&](const OutputSpec& spec) {
      if (spec.attr_var) referenced.insert(*spec.attr_var);
      if (spec.column) referenced.insert(spec.column->var);
      if (spec.ivl_lhs) referenced.insert(*spec.ivl_lhs);
      if (spec.ivl_rhs) referenced.insert(*spec.ivl_rhs);
      for (const OutputSpec& child : spec.children) collect(child);
    };
    collect(plan.output);
    if (plan.aggregate != PlanAggregate::kNone) referenced.insert(0);
    if (referenced.empty()) referenced.insert(0);
    std::set<std::vector<const HRow*>> seen;
    std::vector<std::pair<int64_t, JoinedRow>> unique;
    for (auto& [id, row] : joined) {
      std::vector<const HRow*> key;
      key.reserve(referenced.size());
      for (size_t v : referenced) key.push_back(row[v]);
      if (seen.insert(std::move(key)).second) {
        unique.emplace_back(id, row);
      }
    }
    joined = std::move(unique);
  }
  if (join_span.has_value()) {
    join_span->Note("rows_joined", static_cast<uint64_t>(joined.size()));
    join_span.reset();
  }

  // Aggregates over the joined rows (the non-pushdown shape: multi
  // variable, cross conditions, or planner off).
  if (plan.aggregate != PlanAggregate::kNone) {
    std::vector<AggFact> facts;
    facts.reserve(joined.size());
    for (const auto& [id, row] : joined) facts.emplace_back(id, row[0]);
    return RenderAggregate(plan, facts, stats);
  }

  if (stats != nullptr) {
    stats->result_rows = static_cast<uint64_t>(joined.size());
  }
  auto root = xml::XmlNode::Element("results");

  // XML construction phase.
  if (SpecContainsAgg(plan.output)) {
    // Group by id (Algorithm 1 adds GROUP BY for XMLAgg outputs).
    std::map<int64_t, std::vector<JoinedRow>> groups;
    for (const auto& [id, row] : joined) groups[id].push_back(row);
    for (const auto& [id, group] : groups) {
      EmitSpecForGroup(plan.output, group, root);
    }
  } else {
    for (const auto& [id, row] : joined) {
      EmitSpecForRow(plan.output, row, root);
    }
  }
  return root;
}

}  // namespace

Result<xml::XmlNodePtr> ExecutePlan(
    const Archiver& archiver, const SqlXmlPlan& plan, Date current_date,
    PlanStats* stats, trace::Trace* trace, const PhysicalPlan* physical,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  static metrics::Counter* rows_scanned =
      metrics::Registry::Global().GetCounter(
          "archis_exec_rows_scanned_total",
          "H-table rows scanned by the SQL/XML executor");
  static metrics::Counter* rows_joined =
      metrics::Registry::Global().GetCounter(
          "archis_exec_rows_joined_total",
          "Rows produced by the executor's id-equijoin phase");
  static metrics::Counter* segments_scanned =
      metrics::Registry::Global().GetCounter(
          "archis_exec_segments_scanned_total",
          "Segments visited by SQL/XML plan scans");
  static metrics::Counter* plans =
      metrics::Registry::Global().GetCounter(
          "archis_exec_plans_total", "SQL/XML plans executed");
  static metrics::Counter* plan_failures =
      metrics::Registry::Global().GetCounter(
          "archis_exec_plan_failures_total",
          "SQL/XML plan executions that returned a non-OK status");

  // A caller without a planner decision runs the fixed legacy shape.
  std::optional<PhysicalPlan> fallback;
  if (physical == nullptr) {
    fallback = DefaultPhysicalPlan(plan);
    physical = &*fallback;
  }

  // Run with a local PlanStats so the partial work of a failing plan is
  // still published (registry + caller), then merge into the caller's.
  PlanStats local;
  Result<xml::XmlNodePtr> result = ExecutePlanImpl(
      archiver, plan, current_date, &local, trace, *physical, deadline);
  if (stats != nullptr) {
    stats->rows_scanned += local.rows_scanned;
    stats->rows_joined += local.rows_joined;
    stats->segments_scanned += local.segments_scanned;
    stats->blocks_decompressed += local.blocks_decompressed;
    stats->blocks_pruned_by_time += local.blocks_pruned_by_time;
    stats->block_cache_hits += local.block_cache_hits;
    stats->block_cache_misses += local.block_cache_misses;
    stats->cost_based_plan = local.cost_based_plan;
    stats->est_cost = local.est_cost;
    stats->est_rows = local.est_rows;
    stats->result_rows += local.result_rows;
  }
  // Estimate-vs-actual on the caller's execute span (the EXPLAIN surface).
  if (trace != nullptr && result.ok()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", local.est_rows);
    trace->NoteCurrent("est_rows", std::string(buf));
    trace->NoteCurrent("actual_rows", local.result_rows);
  }
  rows_scanned->Inc(local.rows_scanned);
  rows_joined->Inc(local.rows_joined);
  segments_scanned->Inc(local.segments_scanned);
  plans->Inc();
  if (!result.ok()) plan_failures->Inc();
  return result;
}

// ---------------------------------------------------------------------------
// SQL/XML rendering
// ---------------------------------------------------------------------------

namespace {

std::string VarAlias(const SqlXmlPlan& plan, size_t v) {
  const PlanVar& var = plan.vars[v];
  std::string alias = var.xq_name.empty() ? "t" + std::to_string(v)
                                          : var.xq_name;
  // SQL identifiers: strip the '$' of XQuery variables, dot -> underscore.
  std::string out;
  for (char c : alias) {
    if (c == '$') continue;
    out += (c == '.' ? '_' : c);
  }
  return out.empty() ? "t" + std::to_string(v) : out;
}

std::string TableName(const PlanVar& var) {
  return var.attribute.empty() ? var.relation + "_id"
                               : var.relation + "_" + var.attribute;
}

std::string ColName(const SqlXmlPlan& plan, const HColRef& ref) {
  const PlanVar& var = plan.vars[ref.var];
  std::string alias = VarAlias(plan, ref.var);
  switch (ref.col) {
    case HCol::kId: return alias + ".id";
    case HCol::kValue:
      return alias + "." + (var.attribute.empty() ? "id" : var.attribute);
    case HCol::kTstart: return alias + ".tstart";
    case HCol::kTend: return alias + ".tend";
  }
  return alias + ".?";
}

const char* OpText(minirel::CompareOp op) {
  switch (op) {
    case minirel::CompareOp::kEq: return "=";
    case minirel::CompareOp::kNe: return "<>";
    case minirel::CompareOp::kLt: return "<";
    case minirel::CompareOp::kLe: return "<=";
    case minirel::CompareOp::kGt: return ">";
    case minirel::CompareOp::kGe: return ">=";
  }
  return "?";
}

void RenderSpec(const SqlXmlPlan& plan, const OutputSpec& spec,
                std::string* out) {
  switch (spec.kind) {
    case OutputSpec::Kind::kElement: {
      *out += "XMLElement(Name \"" + spec.name + "\"";
      if (spec.attr_var.has_value()) {
        std::string alias = VarAlias(plan, *spec.attr_var);
        *out += ", XMLAttributes(" + alias + ".tstart AS \"tstart\", " +
                alias + ".tend AS \"tend\")";
      }
      for (const OutputSpec& child : spec.children) {
        *out += ", ";
        RenderSpec(plan, child, out);
      }
      if (spec.column.has_value()) {
        *out += ", " + ColName(plan, *spec.column);
      }
      *out += ")";
      break;
    }
    case OutputSpec::Kind::kColumn:
      *out += ColName(plan, *spec.column);
      break;
    case OutputSpec::Kind::kAgg: {
      *out += "XMLAgg(";
      for (size_t i = 0; i < spec.children.size(); ++i) {
        if (i > 0) *out += ", ";
        RenderSpec(plan, spec.children[i], out);
      }
      *out += ")";
      break;
    }
    case OutputSpec::Kind::kInterval:
      *out += "overlapinterval(" + VarAlias(plan, *spec.ivl_lhs) + ", " +
              VarAlias(plan, *spec.ivl_rhs) + ")";
      break;
    case OutputSpec::Kind::kText:
      *out += "'" + spec.name + "'";
      break;
  }
}

}  // namespace

std::string SqlXmlPlan::ToSql() const {
  std::string sql = "SELECT ";
  switch (aggregate) {
    case PlanAggregate::kNone:
      RenderSpec(*this, output, &sql);
      break;
    case PlanAggregate::kAvgValue: sql += "AVG(" +
        ColName(*this, {0, HCol::kValue}) + ")"; break;
    case PlanAggregate::kCount: sql += "COUNT(*)"; break;
    case PlanAggregate::kCountDistinctIds:
      sql += "COUNT(DISTINCT " + ColName(*this, {0, HCol::kId}) + ")";
      break;
    case PlanAggregate::kMaxValue:
      sql += "MAX(" + ColName(*this, {0, HCol::kValue}) + ")";
      break;
    case PlanAggregate::kMaxIncrease:
      sql += "MAX(s2." + vars[0].attribute + " - s1." + vars[0].attribute +
             ") /* windowed self-join */";
      break;
    case PlanAggregate::kTAvg:
      sql += "TAVG(" + ColName(*this, {0, HCol::kValue}) +
             ") /* OLAP sweep */";
      break;
  }
  sql += "\nFROM ";
  for (size_t v = 0; v < vars.size(); ++v) {
    if (v > 0) sql += ", ";
    sql += TableName(vars[v]) + " AS " + VarAlias(*this, v);
  }
  std::vector<std::string> where;
  if (join_on_id) {
    for (size_t v = 1; v < vars.size(); ++v) {
      where.push_back(VarAlias(*this, 0) + ".id = " + VarAlias(*this, v) +
                      ".id");
    }
  }
  for (size_t v = 0; v < vars.size(); ++v) {
    const PlanVar& var = vars[v];
    std::string alias = VarAlias(*this, v);
    if (var.id_eq) {
      where.push_back(alias + ".id = " + std::to_string(*var.id_eq));
    }
    for (const ValueCond& cond : var.value_conds) {
      where.push_back(ColName(*this, {v, HCol::kValue}) +
                      std::string(" ") + OpText(cond.op) + " '" +
                      cond.constant.ToString() + "'");
    }
    if (var.snapshot) {
      where.push_back(alias + ".segno = SEGMENT_OF('" +
                      var.snapshot->ToString() + "')");
      where.push_back(alias + ".tstart <= '" + var.snapshot->ToString() +
                      "'");
      where.push_back(alias + ".tend >= '" + var.snapshot->ToString() + "'");
    }
    if (var.overlap) {
      where.push_back(alias + ".segno IN SEGMENTS_OVERLAPPING('" +
                      var.overlap->tstart.ToString() + "','" +
                      var.overlap->tend.ToString() + "')");
      where.push_back("toverlaps(" + alias + ".tstart, " + alias +
                      ".tend, '" + var.overlap->tstart.ToString() + "', '" +
                      var.overlap->tend.ToString() + "')");
    }
    if (var.current_only) {
      // The sentinel spelling comes from Date::Forever(), never a literal
      // (archis-lint `forbidden-literal` keeps the encoding in one place).
      where.push_back(alias + ".tend = '" + Date::Forever().ToString() + "'");
    }
  }
  for (const CrossCond& cond : cross_conds) {
    switch (cond.kind) {
      case CrossCond::Kind::kCompare:
        where.push_back(ColName(*this, cond.lhs) + std::string(" ") +
                        OpText(cond.op) + " " + ColName(*this, cond.rhs));
        break;
      case CrossCond::Kind::kOverlaps:
        where.push_back("toverlaps(" + VarAlias(*this, cond.lhs.var) + ", " +
                        VarAlias(*this, cond.rhs.var) + ")");
        break;
      case CrossCond::Kind::kContains:
        where.push_back("tcontains(" + VarAlias(*this, cond.lhs.var) + ", " +
                        VarAlias(*this, cond.rhs.var) + ")");
        break;
      case CrossCond::Kind::kEquals:
        where.push_back("tequals(" + VarAlias(*this, cond.lhs.var) + ", " +
                        VarAlias(*this, cond.rhs.var) + ")");
        break;
      case CrossCond::Kind::kMeets:
        where.push_back("tmeets(" + VarAlias(*this, cond.lhs.var) + ", " +
                        VarAlias(*this, cond.rhs.var) + ")");
        break;
      case CrossCond::Kind::kPrecedes:
        where.push_back("tprecedes(" + VarAlias(*this, cond.lhs.var) + ", " +
                        VarAlias(*this, cond.rhs.var) + ")");
        break;
    }
  }
  if (!where.empty()) {
    sql += "\nWHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += where[i];
    }
  }
  bool has_agg = false;
  // GROUP BY id when the output aggregates rows into one element per id.
  std::function<void(const OutputSpec&)> find_agg =
      [&](const OutputSpec& spec) {
    if (spec.kind == OutputSpec::Kind::kAgg) has_agg = true;
    for (const OutputSpec& child : spec.children) find_agg(child);
  };
  find_agg(output);
  if (has_agg) {
    sql += "\nGROUP BY " + VarAlias(*this, 0) + ".id";
  }
  return sql;
}

}  // namespace archis::core
