#include "archis/wal.h"

#include <chrono>
#include <map>

#include "common/coding.h"
#include "common/flight_recorder.h"
#include "common/log.h"
#include "common/metrics.h"

namespace archis::core {

namespace {

// Group-commit observability (DESIGN.md §9): fsync latency, how much each
// sync batch coalesces, and how often committers ride a leader's sync
// instead of issuing their own.
metrics::Histogram* WalFsyncSecondsMetric() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "archis_wal_fsync_seconds",
      "Latency of one WAL leader append+fsync batch",
      metrics::DefaultLatencyBuckets());
  return h;
}

metrics::Histogram* WalBatchBytesMetric() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "archis_wal_sync_batch_bytes",
      "Bytes coalesced into one WAL append+fsync batch",
      metrics::DefaultSizeBuckets());
  return h;
}

metrics::Counter* WalCommitsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_wal_commits_total", "Durable WAL commits acknowledged");
  return c;
}

metrics::Counter* WalSyncsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_wal_syncs_total", "WAL leader append+fsync batches issued");
  return c;
}

metrics::Counter* WalBytesMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_wal_bytes_written_total", "Framed bytes appended to the WAL");
  return c;
}

metrics::Counter* WalFollowerWaitsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_wal_follower_waits_total",
      "Times a committer waited on another thread's in-flight sync "
      "instead of leading its own");
  return c;
}

metrics::WindowedHistogram* FsyncWindowMetric() {
  static metrics::WindowedHistogram* w =
      metrics::Registry::Global().GetWindowed(
          "archis_fsync_window_seconds",
          "Sliding-window WAL fsync latency (rate, p50/p95/p99 over "
          "1s/10s/60s)",
          metrics::DefaultLatencyBuckets());
  return w;
}

using coding::AppendI64;
using coding::AppendLengthPrefixed;
using coding::AppendU64;
using coding::ReadI64;
using coding::ReadLengthPrefixed;
using coding::ReadU64;
using storage::AppendFrame;

void EncodeBegin(uint64_t txn_id, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordType::kBegin));
  AppendU64(txn_id, &payload);
  AppendFrame(payload, out);
}

void EncodeChange(uint64_t txn_id, const ChangeRecord& change,
                  std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordType::kChange));
  AppendU64(txn_id, &payload);
  EncodeChangeRecord(change, &payload);
  AppendFrame(payload, out);
}

void EncodeCommit(uint64_t txn_id, Date commit_date, bool stamped,
                  uint64_t commit_seq, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordType::kCommit));
  AppendU64(txn_id, &payload);
  AppendI64(commit_date.days(), &payload);
  payload.push_back(stamped ? 1 : 0);
  AppendU64(commit_seq, &payload);
  AppendFrame(payload, out);
}

void EncodeAbort(uint64_t txn_id, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordType::kAbort));
  AppendU64(txn_id, &payload);
  AppendFrame(payload, out);
}

void EncodeCreateRelation(const RelationSpec& spec, Date open_date,
                          uint64_t commit_seq, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordType::kCreateRelation));
  EncodeRelationSpec(spec, &payload);
  AppendI64(open_date.days(), &payload);
  AppendU64(commit_seq, &payload);
  AppendFrame(payload, out);
}

void EncodeDropRelation(const std::string& name, Date when,
                        uint64_t commit_seq, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordType::kDropRelation));
  AppendLengthPrefixed(name, &payload);
  AppendI64(when.days(), &payload);
  AppendU64(commit_seq, &payload);
  AppendFrame(payload, out);
}

void EncodeCheckpointMarker(uint64_t checkpoint_seq, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordType::kCheckpoint));
  AppendU64(checkpoint_seq, &payload);
  AppendFrame(payload, out);
}

Result<WalCreateRelation> DecodeCreateRelation(std::string_view data,
                                               size_t* pos) {
  WalCreateRelation out;
  ARCHIS_ASSIGN_OR_RETURN(out.spec, DecodeRelationSpec(data, pos));
  ARCHIS_ASSIGN_OR_RETURN(int64_t days, ReadI64(data, pos));
  out.open_date = Date(days);
  ARCHIS_ASSIGN_OR_RETURN(out.commit_seq, ReadU64(data, pos));
  return out;
}

}  // namespace

Result<WalRecovery> Wal::Recover(const std::string& path) {
  ARCHIS_ASSIGN_OR_RETURN(storage::LogScan scan,
                          storage::ScanLogFile(path));
  WalRecovery rec;
  rec.valid_bytes = scan.valid_bytes;
  rec.torn_tail = scan.torn_tail;
  // Transactions in flight: BEGIN seen, COMMIT/ABORT not yet. The offset
  // is the BEGIN frame's: a committed transaction is replay-ordered by its
  // COMMIT record but *located* at its BEGIN, so offset-based filtering
  // (legacy manifests) treats the whole run as one unit.
  struct OpenTxn {
    WalCommittedTxn txn;
    uint64_t begin_offset = 0;
  };
  std::map<uint64_t, OpenTxn> open;
  for (const storage::LogRecord& record : scan.records) {
    std::string_view payload = record.payload;
    if (payload.empty()) {
      return Status::Corruption("WAL record with empty payload");
    }
    auto type = static_cast<WalRecordType>(payload[0]);
    size_t pos = 1;
    switch (type) {
      case WalRecordType::kBegin: {
        ARCHIS_ASSIGN_OR_RETURN(uint64_t id, ReadU64(payload, &pos));
        if (!open.try_emplace(id,
                              OpenTxn{WalCommittedTxn{id, Date(), 0, {}},
                                      record.offset})
                 .second) {
          return Status::Corruption("WAL BEGIN for already-open txn " +
                                    std::to_string(id));
        }
        rec.max_txn_id = std::max(rec.max_txn_id, id);
        break;
      }
      case WalRecordType::kChange: {
        ARCHIS_ASSIGN_OR_RETURN(uint64_t id, ReadU64(payload, &pos));
        auto it = open.find(id);
        if (it == open.end()) {
          return Status::Corruption("WAL CHANGE for unknown txn " +
                                    std::to_string(id));
        }
        ARCHIS_ASSIGN_OR_RETURN(ChangeRecord change,
                                DecodeChangeRecord(payload, &pos));
        it->second.txn.changes.push_back(std::move(change));
        break;
      }
      case WalRecordType::kCommit: {
        ARCHIS_ASSIGN_OR_RETURN(uint64_t id, ReadU64(payload, &pos));
        auto it = open.find(id);
        if (it == open.end()) {
          return Status::Corruption("WAL COMMIT for unknown txn " +
                                    std::to_string(id));
        }
        ARCHIS_ASSIGN_OR_RETURN(int64_t days, ReadI64(payload, &pos));
        if (pos >= payload.size()) {
          return Status::Corruption("WAL COMMIT truncated payload");
        }
        const bool stamped = payload[pos++] != 0;
        ARCHIS_ASSIGN_OR_RETURN(uint64_t seq, ReadU64(payload, &pos));
        it->second.txn.commit_date = Date(days);
        it->second.txn.commit_seq = seq;
        if (stamped) {
          // Explicit transactions commit at one instant: their CHANGE
          // frames were logged at DML time (possibly before a clock
          // advance), so the commit date overrides the per-change dates.
          for (ChangeRecord& change : it->second.txn.changes) {
            change.when = Date(days);
          }
        }
        rec.max_commit_seq = std::max(rec.max_commit_seq, seq);
        rec.items.emplace_back(std::move(it->second.txn));
        rec.item_offsets.push_back(it->second.begin_offset);
        open.erase(it);
        break;
      }
      case WalRecordType::kAbort: {
        ARCHIS_ASSIGN_OR_RETURN(uint64_t id, ReadU64(payload, &pos));
        if (open.erase(id) == 0) {
          return Status::Corruption("WAL ABORT for unknown txn " +
                                    std::to_string(id));
        }
        break;
      }
      case WalRecordType::kCreateRelation: {
        ARCHIS_ASSIGN_OR_RETURN(WalCreateRelation create,
                                DecodeCreateRelation(payload, &pos));
        rec.max_commit_seq = std::max(rec.max_commit_seq, create.commit_seq);
        rec.items.emplace_back(std::move(create));
        rec.item_offsets.push_back(record.offset);
        break;
      }
      case WalRecordType::kDropRelation: {
        WalDropRelation drop;
        ARCHIS_ASSIGN_OR_RETURN(drop.name, ReadLengthPrefixed(payload, &pos));
        ARCHIS_ASSIGN_OR_RETURN(int64_t days, ReadI64(payload, &pos));
        drop.when = Date(days);
        ARCHIS_ASSIGN_OR_RETURN(drop.commit_seq, ReadU64(payload, &pos));
        rec.max_commit_seq = std::max(rec.max_commit_seq, drop.commit_seq);
        rec.items.emplace_back(std::move(drop));
        rec.item_offsets.push_back(record.offset);
        break;
      }
      case WalRecordType::kCheckpoint: {
        // Only ever written as the first record of a freshly truncated
        // log; anywhere else the log was stitched together wrongly.
        if (record.offset != 0) {
          return Status::Corruption("WAL checkpoint marker not at offset 0");
        }
        ARCHIS_ASSIGN_OR_RETURN(rec.checkpoint_seq, ReadU64(payload, &pos));
        rec.has_checkpoint_marker = true;
        break;
      }
      default:
        return Status::Corruption("WAL record with unknown type " +
                                  std::to_string(payload[0]));
    }
  }
  // Whatever is still open was begun but never committed: crash fallout,
  // dropped (its changes were never applied to any durable state).
  rec.uncommitted_txns = open.size();
  return rec;
}

Result<std::unique_ptr<Wal>> Wal::Open(const WalOptions& options,
                                       uint64_t next_txn_id) {
  if (options.path.empty()) {
    return Status::InvalidArgument("WAL path must not be empty");
  }
  storage::LogFileOptions lf;
  lf.path = options.path;
  lf.sync = options.sync;
  lf.fail_after_bytes = options.fail_after_bytes;
  ARCHIS_ASSIGN_OR_RETURN(std::unique_ptr<storage::AppendLogFile> file,
                          storage::AppendLogFile::Open(lf));
  auto wal = std::unique_ptr<Wal>(new Wal(std::move(file)));
  wal->next_txn_id_ = next_txn_id == 0 ? 1 : next_txn_id;
  return wal;
}

uint64_t Wal::NextTxnId() {
  MutexLock lock(mu_);
  return next_txn_id_++;
}

uint64_t Wal::PeekNextTxnId() const {
  MutexLock lock(mu_);
  return next_txn_id_;
}

Status Wal::ResetAfterCheckpoint(uint64_t checkpoint_seq) {
  MutexLock lock(mu_);
  if (!dead_.ok()) return dead_;
  if (sync_in_progress_ || !pending_.empty()) {
    return Status::InvalidArgument(
        "WAL reset with frames in flight (truncation requires an idle log)");
  }
  // Truncate, then immediately re-seed the log with a durable marker. If
  // any step fails the WAL is dead (sticky), so a log truncated here either
  // starts with this marker or accepts no further commits — recovery can
  // trust a marker-less log to be the pre-checkpoint one.
  std::string framed;
  EncodeCheckpointMarker(checkpoint_seq, &framed);
  Status io = file_->Reset();
  if (io.ok()) io = file_->Append(framed);
  if (io.ok()) io = file_->Sync();
  bytes_ = file_->bytes_written();
  if (!io.ok()) {
    dead_ = io;
    logging::Error("wal.dead")
        .Kv("error", io.ToString())
        .Kv("op", "checkpoint-reset");
    return io;
  }
  return Status::OK();
}

Status Wal::EnqueueBegin(uint64_t txn_id) {
  std::string framed;
  EncodeBegin(txn_id, &framed);
  fr::Record(fr::EventType::kWalAppend, txn_id, framed.size());
  return Enqueue(framed).status();
}

Status Wal::EnqueueChange(uint64_t txn_id, const ChangeRecord& change) {
  std::string framed;
  EncodeChange(txn_id, change, &framed);
  fr::Record(fr::EventType::kWalAppend, txn_id, framed.size());
  return Enqueue(framed).status();
}

Status Wal::EnqueueAbort(uint64_t txn_id) {
  std::string framed;
  EncodeAbort(txn_id, &framed);
  fr::Record(fr::EventType::kWalAppend, txn_id, framed.size());
  return Enqueue(framed).status();
}

Result<uint64_t> Wal::EnqueueCommit(uint64_t txn_id, Date commit_date,
                                    bool stamped, uint64_t commit_seq) {
  std::string framed;
  EncodeCommit(txn_id, commit_date, stamped, commit_seq, &framed);
  fr::Record(fr::EventType::kWalAppend, txn_id, framed.size());
  return Enqueue(framed);
}

Status Wal::WaitDurable(uint64_t ticket) {
  return WaitDurableInternal(ticket, /*count_commit=*/true);
}

Status Wal::FlushDurable() {
  uint64_t ticket;
  {
    MutexLock lock(mu_);
    if (!dead_.ok()) return dead_;
    ticket = submitted_seq_;
  }
  if (ticket == 0) return Status::OK();
  return WaitDurableInternal(ticket, /*count_commit=*/false);
}

Status Wal::LogTransaction(uint64_t txn_id,
                           const std::vector<ChangeRecord>& changes,
                           Date commit_date, bool stamped,
                           uint64_t commit_seq) {
  std::string framed;
  EncodeBegin(txn_id, &framed);
  for (const ChangeRecord& change : changes) {
    EncodeChange(txn_id, change, &framed);
  }
  EncodeCommit(txn_id, commit_date, stamped, commit_seq, &framed);
  return SubmitDurable(framed);
}

Status Wal::LogCreateRelation(const RelationSpec& spec, Date open_date,
                              uint64_t commit_seq) {
  std::string framed;
  EncodeCreateRelation(spec, open_date, commit_seq, &framed);
  return SubmitDurable(framed);
}

Status Wal::LogDropRelation(const std::string& name, Date when,
                            uint64_t commit_seq) {
  std::string framed;
  EncodeDropRelation(name, when, commit_seq, &framed);
  return SubmitDurable(framed);
}

Result<uint64_t> Wal::Enqueue(std::string_view framed) {
  MutexLock lock(mu_);
  if (!dead_.ok()) return dead_;
  const uint64_t my_seq = ++submitted_seq_;
  pending_.append(framed);
  pending_seq_ = my_seq;
  return my_seq;
}

Status Wal::SubmitDurable(std::string_view framed) {
  ARCHIS_ASSIGN_OR_RETURN(uint64_t ticket, Enqueue(framed));
  return WaitDurableInternal(ticket, /*count_commit=*/true);
}

Status Wal::WaitDurableInternal(uint64_t ticket, bool count_commit) {
  mu_.Lock();
  for (;;) {
    if (durable_seq_ >= ticket) {
      if (count_commit) ++commits_;
      mu_.Unlock();
      if (count_commit) WalCommitsMetric()->Inc();
      return Status::OK();
    }
    if (!dead_.ok()) {
      Status st = dead_;
      mu_.Unlock();
      return st;
    }
    if (!sync_in_progress_) {
      // Become the leader: write and sync everything accumulated so far,
      // covering this caller and any followers that queued behind it.
      // Every frame <= ticket is in pending_ here: not durable, and no
      // other leader is in flight to have taken it.
      sync_in_progress_ = true;
      std::string batch = std::move(pending_);
      pending_.clear();
      const uint64_t batch_seq = pending_seq_;
      // Frames this leader's sync will cover (its own plus every follower
      // that queued behind it) — the group-commit coalescing factor.
      const uint64_t batch_frames = batch_seq - durable_seq_;
      mu_.Unlock();
      fr::Record(fr::EventType::kWalLeaderHandoff, batch_frames);
      const auto sync_start = std::chrono::steady_clock::now();
      Status io = file_->Append(batch);
      if (io.ok()) io = file_->Sync();
      const double sync_secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        sync_start)
              .count();
      mu_.Lock();
      sync_in_progress_ = false;
      bytes_ = file_->bytes_written();
      if (io.ok()) {
        durable_seq_ = batch_seq;
        ++syncs_;
        WalFsyncSecondsMetric()->Observe(sync_secs);
        FsyncWindowMetric()->Observe(sync_secs);
        WalBatchBytesMetric()->Observe(static_cast<double>(batch.size()));
        WalSyncsMetric()->Inc();
        WalBytesMetric()->Inc(batch.size());
        fr::Record(fr::EventType::kWalFsync, batch.size(),
                   static_cast<uint64_t>(sync_secs * 1e9),
                   static_cast<uint32_t>(batch_frames));
      } else {
        dead_ = io;  // the log is crashed; every committer sees the error
        logging::Error("wal.dead")
            .Kv("error", io.ToString())
            .Kv("batch_bytes", batch.size());
      }
      cv_.NotifyAll();
    } else {
      WalFollowerWaitsMetric()->Inc();
      cv_.Wait(mu_, [this, ticket]() ARCHIS_REQUIRES(mu_) {
        return durable_seq_ >= ticket || !sync_in_progress_ || !dead_.ok();
      });
    }
  }
}

uint64_t Wal::commit_count() const {
  MutexLock lock(mu_);
  return commits_;
}

uint64_t Wal::sync_count() const {
  MutexLock lock(mu_);
  return syncs_;
}

uint64_t Wal::bytes_written() const {
  MutexLock lock(mu_);
  return bytes_;
}

uint64_t Wal::end_offset() const {
  MutexLock lock(mu_);
  // Callers read this after FlushDurable() under the facade commit lock
  // (no leader in flight), when the file handle is safe to inspect.
  return file_->end_offset();
}

}  // namespace archis::core
