#include "archis/publisher.h"

#include <map>

#include "common/parse.h"

namespace archis::core {

using minirel::Tuple;
using minirel::Value;

Result<xml::XmlNodePtr> PublishHistory(const HTableSet& set,
                                       const TimeInterval& relation_interval,
                                       PublishOptions options) {
  std::string root_name =
      options.root_name.empty() ? set.relation() : options.root_name;
  std::string entity_name = options.entity_name;
  if (entity_name.empty()) {
    if (root_name.size() > 1 && root_name.back() == 's') {
      entity_name = root_name.substr(0, root_name.size() - 1);
    } else {
      entity_name = root_name + "_row";
    }
  }

  // Key intervals per id (usually one; spans re-insertions).
  std::map<int64_t, TimeInterval> key_spans;
  ARCHIS_RETURN_NOT_OK(set.key_store()->ScanHistory([&](const Tuple& row) {
    int64_t id = row.at(0).AsInt();
    TimeInterval iv(row.at(1).AsDate(), row.at(2).AsDate());
    auto [it, inserted] = key_spans.try_emplace(id, iv);
    if (!inserted) it->second = it->second.Span(iv);
    return true;
  }));

  // Attribute versions per id per attribute, in history order.
  struct Version {
    minirel::Value value;
    TimeInterval interval;
  };
  const auto& attr_names = set.attribute_names();
  std::vector<std::map<int64_t, std::vector<Version>>> versions(
      attr_names.size());
  for (size_t a = 0; a < attr_names.size(); ++a) {
    ARCHIS_ASSIGN_OR_RETURN(SegmentedStore * store,
                            set.attribute_store(attr_names[a]));
    ARCHIS_RETURN_NOT_OK(store->ScanHistory([&](const Tuple& row) {
      versions[a][row.at(0).AsInt()].push_back(
          {row.at(1), MakeInterval(row.at(2).AsDate(), row.at(3).AsDate())});
      return true;
    }));
  }

  auto root = xml::XmlNode::Element(root_name);
  root->SetInterval(relation_interval);
  for (const auto& [id, span] : key_spans) {
    auto entity = xml::XmlNode::Element(entity_name);
    entity->SetInterval(span);
    auto id_elem = xml::XmlNode::Element("id");
    id_elem->SetInterval(span);
    id_elem->AppendText(std::to_string(id));
    entity->AppendChild(std::move(id_elem));
    for (size_t a = 0; a < attr_names.size(); ++a) {
      auto it = versions[a].find(id);
      if (it == versions[a].end()) continue;
      for (const Version& v : it->second) {
        auto elem = xml::XmlNode::Element(attr_names[a]);
        elem->SetInterval(v.interval);
        elem->AppendText(v.value.ToString());
        entity->AppendChild(std::move(elem));
      }
    }
    root->AppendChild(std::move(entity));
  }
  return root;
}


namespace {

/// Parses an element's text into a Value of the column type.
Result<Value> ParseValue(const std::string& text, minirel::DataType type) {
  switch (type) {
    case minirel::DataType::kInt64: {
      // Strict: empty text, trailing garbage and out-of-range values all
      // fail (the old inline strtoll accepted "" as 0 and clamped ERANGE).
      ARCHIS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value(v);
    }
    case minirel::DataType::kDouble: {
      ARCHIS_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value(v);
    }
    case minirel::DataType::kString:
      return Value(text);
    case minirel::DataType::kDate: {
      ARCHIS_ASSIGN_OR_RETURN(Date d, Date::Parse(text));
      return Value(d);
    }
  }
  return Status::Internal("bad column type");
}

}  // namespace

Status ImportHistory(HTableSet* set, const xml::XmlNodePtr& doc) {
  if (set->key_store()->TotalTuples() != 0) {
    return Status::InvalidArgument(
        "ImportHistory requires empty H-tables for " + set->relation());
  }
  for (const auto& entity : doc->ChildElements()) {
    ARCHIS_ASSIGN_OR_RETURN(TimeInterval key_iv, entity->Interval());
    auto id_elem = entity->FirstChildNamed("id");
    if (id_elem == nullptr) {
      return Status::InvalidArgument("entity element without <id> child");
    }
    const std::string id_text = id_elem->StringValue();
    Result<int64_t> parsed = ParseInt64(id_text);
    if (!parsed.ok()) {
      return Status::ParseError("bad <id> value '" + id_text + "': " +
                                parsed.status().message());
    }
    const int64_t id = *parsed;
    ARCHIS_RETURN_NOT_OK(set->key_store()->LoadVersion(id, {}, key_iv));
    for (const auto& child : entity->ChildElements()) {
      if (child->name() == "id") continue;
      ARCHIS_ASSIGN_OR_RETURN(SegmentedStore * store,
                              set->attribute_store(child->name()));
      ARCHIS_ASSIGN_OR_RETURN(TimeInterval iv, child->Interval());
      ARCHIS_ASSIGN_OR_RETURN(
          Value v,
          ParseValue(child->StringValue(), store->row_schema().column(1).type));
      ARCHIS_RETURN_NOT_OK(store->LoadVersion(id, {v}, iv));
    }
  }
  return Status::OK();
}

}  // namespace archis::core
