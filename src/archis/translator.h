// XQuery -> SQL/XML translation (paper Section 5.3, Algorithm 1).
//
// The five mapping steps:
//   1. identification of variable range  — each for/let variable binds to a
//      tuple variable over a key table or an attribute history table;
//   2. generation of join conditions     — Vi.id = Vj.id for variables
//      defined by a relative path from the same root variable;
//   3. generation of where conditions    — path predicates and where-clause
//      conjuncts become column conditions;
//   4. translation of built-in functions — temporal UDFs map to interval
//      conditions on (tstart, tend), with snapshot/slicing patterns pushed
//      down so the executor can prune to covering segments (Section 6.3);
//   5. output generation                 — the return clause becomes an
//      XMLElement/XMLAttributes/XMLAgg construction spec.
//
// Coverage: the query classes exercised in the paper (temporal projection,
// snapshot, slicing, single-relation joins on attribute values, since-style
// current-tense predicates, temporal aggregates). Constructs outside the
// subset return Unsupported, and the ArchIS facade falls back to native
// evaluation over published H-documents.
#ifndef ARCHIS_ARCHIS_TRANSLATOR_H_
#define ARCHIS_ARCHIS_TRANSLATOR_H_

#include <map>
#include <string>

#include "archis/sqlxml.h"
#include "xquery/ast.h"

namespace archis::core {

/// Registration of one published document name.
struct DocBinding {
  std::string relation;     ///< archived relation the document views
  std::string root_tag;     ///< H-document root element tag
  std::string entity_tag;   ///< per-key element tag
};

/// Translation-time context.
struct TranslatorContext {
  /// doc("name") bindings, e.g. "employees.xml" -> {employees, employees,
  /// employee}.
  std::map<std::string, DocBinding> docs;
  /// Value of current-date() at translation time (constant folding of
  /// now-relative predicates).
  Date current_date;
};

/// Translates a parsed XQuery into an SqlXmlPlan. Unsupported for queries
/// outside the covered subset.
Result<SqlXmlPlan> TranslateXQuery(const xquery::ExprPtr& query,
                                   const TranslatorContext& ctx);

/// Convenience: parse + translate.
Result<SqlXmlPlan> TranslateXQuery(const std::string& query,
                                   const TranslatorContext& ctx);

}  // namespace archis::core

#endif  // ARCHIS_ARCHIS_TRANSLATOR_H_
